"""Numerical accuracy analysis for Winograd transform variants.

The paper motivates restricting Winograd to 3x3 (and 5x5) filters
"because of a numerical inaccuracy issue for large kernel sizes"
(Section 2).  This module quantifies that: it measures the fp32 error of
F(m, r) against an fp64 direct correlation for growing tile/filter
sizes and for different interpolation point sets, supporting the point-
selection ablation called out in DESIGN.md (and reference [1] of the
paper, Alam et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.winograd.cook_toom import WinogradTransforms, cook_toom


@dataclass(frozen=True)
class AccuracyReport:
    """Error statistics of one F(m, r) variant at one precision."""

    m: int
    r: int
    points: tuple[Fraction, ...]
    max_rel_error: float
    mean_rel_error: float
    samples: int


def measure_accuracy(
    tf: WinogradTransforms,
    samples: int = 200,
    seed: int = 0,
    dtype=np.float32,
) -> AccuracyReport:
    """Measure relative error of F(m, r) computed in ``dtype`` vs fp64 direct.

    Inputs are drawn i.i.d. standard normal — the regime where Winograd's
    growing transform constants show their cancellation error.
    """
    rng = np.random.default_rng(seed)
    at = tf.AT(dtype)
    g_ = tf.G(dtype)
    bt = tf.BT(dtype)
    rel_errors = np.empty(samples, dtype=np.float64)
    for s in range(samples):
        d = rng.standard_normal(tf.n).astype(dtype)
        g = rng.standard_normal(tf.r).astype(dtype)
        y = at @ ((g_ @ g) * (bt @ d))
        ref = np.array(
            [np.dot(g.astype(np.float64), d[i : i + tf.r].astype(np.float64))
             for i in range(tf.m)]
        )
        denom = np.maximum(np.abs(ref), 1e-30)
        rel_errors[s] = float(np.max(np.abs(y.astype(np.float64) - ref) / denom))
    return AccuracyReport(
        m=tf.m,
        r=tf.r,
        points=tf.points,
        max_rel_error=float(rel_errors.max()),
        mean_rel_error=float(rel_errors.mean()),
        samples=samples,
    )


def accuracy_vs_filter_size(
    filter_sizes: Sequence[int] = (3, 5, 7, 9, 11),
    m: int = 6,
    samples: int = 100,
    seed: int = 0,
) -> list[AccuracyReport]:
    """The paper's Section 2 claim, quantified: error grows with r.

    Returns one report per filter size, all at fp32 with default points.
    """
    return [
        measure_accuracy(cook_toom(m, r), samples=samples, seed=seed)
        for r in filter_sizes
    ]


def compare_point_sets(
    m: int,
    r: int,
    point_sets: Sequence[Sequence[Fraction]],
    samples: int = 200,
    seed: int = 0,
) -> list[AccuracyReport]:
    """Point-selection ablation: same F(m, r), different evaluation points."""
    return [
        measure_accuracy(cook_toom(m, r, pts), samples=samples, seed=seed)
        for pts in point_sets
    ]
