"""Cook-Toom construction of Winograd convolution transforms.

Winograd's minimal filtering algorithm F(m, r) computes ``m`` outputs of
a valid correlation with an ``r``-tap filter from ``n = m + r - 1``
inputs using only ``n`` general multiplications:

    y = A^T [ (G g) ⊙ (B^T d) ]

This module constructs the transform matrices for any output size ``m``,
filter size ``r`` and set of interpolation points, over exact rational
arithmetic (:class:`fractions.Fraction`), following the classical
Toom-Cook evaluation/interpolation derivation (see Lavin & Gray's
"Fast Algorithms for Convolutional Neural Networks" and Alam et al.,
"Winograd Convolution for Deep Neural Networks: Efficient Point
Selection" — reference [1] of the paper).

Derivation (also checked property-based in the test suite).  Linear
convolution of the filter polynomial ``g(x)`` (degree r-1) and a data
polynomial ``d(x)`` (degree m-1) is evaluated at ``n-1`` finite points
``a_i`` plus the point at infinity and interpolated back:

    lin_g = C · diag(G g) · E

where ``E`` (n x m) evaluates ``d``, ``G`` (n x r) evaluates ``g`` (with
the Lagrange denominators folded in), and ``C`` (n x n) interpolates.
Valid correlation is the *transpose* of linear convolution as a linear
map of the data, so

    corr_g = E^T · diag(G g) · C^T  =  A^T diag(G g) B^T

with ``A^T = E^T`` and ``B^T = C^T``.  The rows of ``B^T`` are therefore
the coefficient vectors of the Lagrange numerator polynomials
``Π_{k≠i}(x - a_k)`` and, for the infinity row, of
``M(x) = Π_k (x - a_k)``.

The paper uses NNPACK's F(6x6, 3x3): 8x8 input tiles, 3x3 filters,
6x6 outputs — i.e. the 2D nesting of F(6, 3) with the interpolation
points ``0, ±1, ±2, ±1/2`` (plus infinity), exposed here as
:data:`NNPACK_POINTS_F6X3` / :func:`f6x3_transforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.errors import ConfigError

#: Interpolation points of NNPACK's F(6x6, 3x3) kernels (plus infinity):
#: small magnitudes and exact binary fractions keep fp32 error low.
NNPACK_POINTS_F6X3: tuple[Fraction, ...] = (
    Fraction(0),
    Fraction(1),
    Fraction(-1),
    Fraction(2),
    Fraction(-2),
    Fraction(1, 2),
    Fraction(-1, 2),
)

#: Classic F(2, 3) points (plus infinity), for tests and small tiles.
POINTS_F2X3: tuple[Fraction, ...] = (Fraction(0), Fraction(1), Fraction(-1))

#: Classic F(4, 3) points (plus infinity).
POINTS_F4X3: tuple[Fraction, ...] = (
    Fraction(0),
    Fraction(1),
    Fraction(-1),
    Fraction(2),
    Fraction(-2),
)


def _poly_mul(p: list[Fraction], q: list[Fraction]) -> list[Fraction]:
    """Multiply two polynomials given as ascending coefficient lists."""
    out = [Fraction(0)] * (len(p) + len(q) - 1)
    for i, pi in enumerate(p):
        if pi:
            for j, qj in enumerate(q):
                out[i + j] += pi * qj
    return out


def _poly_from_roots(roots: Sequence[Fraction]) -> list[Fraction]:
    """Monic polynomial with the given roots, ascending coefficients."""
    poly = [Fraction(1)]
    for rt in roots:
        poly = _poly_mul(poly, [-rt, Fraction(1)])
    return poly


@dataclass(frozen=True)
class WinogradTransforms:
    """The three transform matrices of F(m, r), exact and as float arrays.

    Attributes:
        m: number of outputs per application (output tile size per dim).
        r: filter taps per dimension.
        points: the finite interpolation points used (infinity implied).
        AT: output (inverse) transform, shape (m, n).
        G: filter transform, shape (n, r).
        BT: input transform, shape (n, n).
    """

    m: int
    r: int
    points: tuple[Fraction, ...]
    AT_exact: tuple[tuple[Fraction, ...], ...]
    G_exact: tuple[tuple[Fraction, ...], ...]
    BT_exact: tuple[tuple[Fraction, ...], ...]

    @property
    def n(self) -> int:
        """Input tile size per dimension: m + r - 1."""
        return self.m + self.r - 1

    def _as_array(self, mat: tuple[tuple[Fraction, ...], ...], dtype) -> np.ndarray:
        return np.array([[float(x) for x in row] for row in mat], dtype=dtype)

    def AT(self, dtype=np.float64) -> np.ndarray:
        return self._as_array(self.AT_exact, dtype)

    def G(self, dtype=np.float64) -> np.ndarray:
        return self._as_array(self.G_exact, dtype)

    def BT(self, dtype=np.float64) -> np.ndarray:
        return self._as_array(self.BT_exact, dtype)

    # ------------------------------------------------------------------
    def correlate_1d(self, d: np.ndarray, g: np.ndarray) -> np.ndarray:
        """Compute the m valid correlation outputs through the transforms.

        Reference-semantics helper used by tests: ``y[i] = sum_j g[j] *
        d[i+j]``.
        """
        d = np.asarray(d, dtype=np.float64)
        g = np.asarray(g, dtype=np.float64)
        if d.shape != (self.n,) or g.shape != (self.r,):
            raise ConfigError(
                f"F({self.m},{self.r}) expects d of length {self.n} and g of "
                f"length {self.r}, got {d.shape} and {g.shape}"
            )
        return self.AT() @ ((self.G() @ g) * (self.BT() @ d))

    def correlate_2d(self, d: np.ndarray, g: np.ndarray) -> np.ndarray:
        """2D nested form: ``Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A``."""
        d = np.asarray(d, dtype=np.float64)
        g = np.asarray(g, dtype=np.float64)
        if d.shape != (self.n, self.n) or g.shape != (self.r, self.r):
            raise ConfigError(
                f"2D F({self.m},{self.r}) expects {self.n}x{self.n} input "
                f"tile and {self.r}x{self.r} filter, got {d.shape}, {g.shape}"
            )
        AT, G, BT = self.AT(), self.G(), self.BT()
        U = G @ g @ G.T
        V = BT @ d @ BT.T
        return AT @ (U * V) @ AT.T

    def multiplication_count_2d(self) -> int:
        """General multiplications per 2D tile: n^2 (vs m^2 r^2 direct)."""
        return self.n * self.n

    def arithmetic_reduction_2d(self) -> float:
        """Direct-to-Winograd multiplication ratio, e.g. 5.0625 for F(6,3)."""
        return (self.m * self.r) ** 2 / float(self.n * self.n)


def cook_toom(m: int, r: int, points: Sequence[Fraction] | None = None) -> WinogradTransforms:
    """Construct F(m, r) transform matrices from interpolation points.

    Args:
        m: outputs per application (per dimension); must be >= 1.
        r: filter taps (per dimension); must be >= 1.
        points: ``m + r - 2`` distinct finite interpolation points (the
            point at infinity is always used in addition).  Defaults to
            the symmetric small-magnitude sets used in practice for the
            common sizes, or ``0, 1, -1, 2, -2, ...`` otherwise.

    Returns:
        A :class:`WinogradTransforms` with exact rational matrices.

    Raises:
        ConfigError: for invalid sizes or repeated points.
    """
    if m < 1 or r < 1:
        raise ConfigError(f"F(m={m}, r={r}) requires m >= 1 and r >= 1")
    n = m + r - 1
    num_finite = n - 1
    if points is None:
        points = default_points(num_finite)
    pts = tuple(Fraction(p) for p in points)
    if len(pts) != num_finite:
        raise ConfigError(
            f"F({m},{r}) needs exactly {num_finite} finite points, got {len(pts)}"
        )
    if len(set(pts)) != len(pts):
        raise ConfigError(f"interpolation points must be distinct, got {pts}")

    # Lagrange denominators N_i = prod_{k != i} (a_i - a_k).
    denoms = [
        Fraction(int(np.prod([1])))
        for _ in range(num_finite)
    ]
    for i in range(num_finite):
        prod = Fraction(1)
        for k in range(num_finite):
            if k != i:
                prod *= pts[i] - pts[k]
        denoms[i] = prod

    # G (n x r): filter evaluation with denominators folded in.
    G_rows: list[tuple[Fraction, ...]] = []
    for i in range(num_finite):
        G_rows.append(tuple(pts[i] ** j / denoms[i] for j in range(r)))
    G_rows.append(tuple(Fraction(1) if j == r - 1 else Fraction(0) for j in range(r)))

    # A^T (m x n): data evaluation transposed.
    AT_rows: list[tuple[Fraction, ...]] = []
    for j in range(m):
        row = [pts[i] ** j for i in range(num_finite)]
        row.append(Fraction(1) if j == m - 1 else Fraction(0))
        AT_rows.append(tuple(row))

    # B^T (n x n): interpolation transposed. Row i (finite) holds the
    # coefficients of prod_{k != i} (x - a_k) padded to length n; the
    # infinity row holds the coefficients of M(x) = prod_k (x - a_k).
    BT_rows: list[tuple[Fraction, ...]] = []
    for i in range(num_finite):
        numer = _poly_from_roots([pts[k] for k in range(num_finite) if k != i])
        padded = numer + [Fraction(0)] * (n - len(numer))
        BT_rows.append(tuple(padded))
    mpoly = _poly_from_roots(list(pts))
    BT_rows.append(tuple(mpoly + [Fraction(0)] * (n - len(mpoly))))

    return WinogradTransforms(
        m=m,
        r=r,
        points=pts,
        AT_exact=tuple(AT_rows),
        G_exact=tuple(G_rows),
        BT_exact=tuple(BT_rows),
    )


def default_points(num_finite: int) -> tuple[Fraction, ...]:
    """Practical interpolation point sets by count.

    Uses the community-standard sets for the common sizes (matching
    NNPACK for F(6, 3)) and a generic ``0, ±1, ±2, ±1/2, ±3, ...``
    progression beyond.
    """
    known = {
        2: POINTS_F2X3[:2],
        3: POINTS_F2X3,
        5: POINTS_F4X3,
        7: NNPACK_POINTS_F6X3,
    }
    if num_finite in known:
        return tuple(known[num_finite])
    seq: list[Fraction] = [Fraction(0)]
    k = 1
    while len(seq) < num_finite:
        for cand in (Fraction(k), Fraction(-k), Fraction(1, k + 1), Fraction(-1, k + 1)):
            if len(seq) < num_finite and cand not in seq:
                seq.append(cand)
        k += 1
    return tuple(seq[:num_finite])


def f6x3_transforms() -> WinogradTransforms:
    """NNPACK's F(6x6, 3x3): 8x8 tiles, 3x3 filters, 6x6 outputs."""
    return cook_toom(6, 3, NNPACK_POINTS_F6X3)
