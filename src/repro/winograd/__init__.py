"""Winograd convolution mathematics.

- :mod:`repro.winograd.cook_toom` — exact Cook-Toom construction of the
  F(m, r) transform matrices for any interpolation point set; NNPACK's
  F(6x6, 3x3) is :func:`f6x3_transforms`.
- :mod:`repro.winograd.tiles` — the tiled 2D convolution pipeline in
  NumPy (the ground truth for the vectorized kernels).
- :mod:`repro.winograd.accuracy` — numerical-error analysis across
  filter sizes and point sets.
"""

from repro.winograd.cook_toom import (
    NNPACK_POINTS_F6X3,
    POINTS_F2X3,
    POINTS_F4X3,
    WinogradTransforms,
    cook_toom,
    default_points,
    f6x3_transforms,
)
from repro.winograd.tiles import TileGrid, WinogradConv2d, extract_tiles, stitch_tiles
from repro.winograd.accuracy import (
    AccuracyReport,
    accuracy_vs_filter_size,
    compare_point_sets,
    measure_accuracy,
)

__all__ = [
    "cook_toom",
    "default_points",
    "f6x3_transforms",
    "WinogradTransforms",
    "NNPACK_POINTS_F6X3",
    "POINTS_F2X3",
    "POINTS_F4X3",
    "TileGrid",
    "WinogradConv2d",
    "extract_tiles",
    "stitch_tiles",
    "AccuracyReport",
    "measure_accuracy",
    "accuracy_vs_filter_size",
    "compare_point_sets",
]
