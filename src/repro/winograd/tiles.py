"""Tiled Winograd convolution pipeline (NumPy reference semantics).

This is the algorithmic ground truth the vectorized kernels are checked
against.  It implements the NNPACK formulation the paper ports: the 2D
input is covered with overlapping ``n x n`` tiles (``n = 8`` for
F(6x6, 3x3)) advancing by the output tile size ``m = 6``; each tile of
each channel is transformed, the per-tuple-position multiplications are
batched matrix products over the channel dimension, and output tiles are
inverse-transformed and stitched together.

Data layouts (chosen to match the vectorized kernels of
:mod:`repro.kernels`, which put the channel dimension innermost so that
inter-tile parallelization across channels maps to unit-stride vectors):

- transformed input   ``V[p, t, c]`` — tuple position, tile, channel;
- transformed filters ``U[p, k, c]`` — tuple position, out-channel, in-channel;
- tuple products      ``M[p, k, t]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.winograd.cook_toom import WinogradTransforms, f6x3_transforms


@dataclass(frozen=True)
class TileGrid:
    """Tiling geometry of a Winograd convolution.

    Attributes:
        h_out/w_out: spatial output size of the convolution.
        tiles_h/tiles_w: number of tiles per dimension.
        m: output tile size; n: input tile size; pad: input padding.
    """

    h_in: int
    w_in: int
    pad: int
    m: int
    n: int

    def __post_init__(self) -> None:
        r = self.n - self.m + 1
        if self.h_in + 2 * self.pad < r or self.w_in + 2 * self.pad < r:
            raise ConfigError(
                f"input {self.h_in}x{self.w_in} with pad {self.pad} is smaller "
                f"than the filter ({r}x{r})"
            )

    @property
    def r(self) -> int:
        return self.n - self.m + 1

    @property
    def h_out(self) -> int:
        return self.h_in + 2 * self.pad - self.r + 1

    @property
    def w_out(self) -> int:
        return self.w_in + 2 * self.pad - self.r + 1

    @property
    def tiles_h(self) -> int:
        return -(-self.h_out // self.m)  # ceil division

    @property
    def tiles_w(self) -> int:
        return -(-self.w_out // self.m)

    @property
    def num_tiles(self) -> int:
        return self.tiles_h * self.tiles_w


def extract_tiles(x: np.ndarray, grid: TileGrid) -> np.ndarray:
    """Cut one channel plane into overlapping n x n tiles.

    Args:
        x: a single channel plane of shape (H, W).
        grid: tiling geometry.

    Returns:
        Array of shape (num_tiles, n, n); border tiles are zero-padded.
    """
    if x.shape != (grid.h_in, grid.w_in):
        raise ConfigError(f"plane shape {x.shape} does not match grid")
    n, m, pad = grid.n, grid.m, grid.pad
    padded = np.zeros(
        (grid.h_in + 2 * pad + n, grid.w_in + 2 * pad + n), dtype=x.dtype
    )
    padded[pad : pad + grid.h_in, pad : pad + grid.w_in] = x
    tiles = np.empty((grid.num_tiles, n, n), dtype=x.dtype)
    t = 0
    for th in range(grid.tiles_h):
        for tw in range(grid.tiles_w):
            y0, x0 = th * m, tw * m
            tiles[t] = padded[y0 : y0 + n, x0 : x0 + n]
            t += 1
    return tiles


def stitch_tiles(tiles: np.ndarray, grid: TileGrid) -> np.ndarray:
    """Assemble m x m output tiles into the (h_out, w_out) plane.

    Inverse of the tiling step: the trailing partial tiles are cropped.
    """
    m = grid.m
    full = np.zeros((grid.tiles_h * m, grid.tiles_w * m), dtype=tiles.dtype)
    t = 0
    for th in range(grid.tiles_h):
        for tw in range(grid.tiles_w):
            full[th * m : (th + 1) * m, tw * m : (tw + 1) * m] = tiles[t]
            t += 1
    return full[: grid.h_out, : grid.w_out]


class WinogradConv2d:
    """F(m x m, r x r) Winograd convolution over NCHW-style tensors.

    Args:
        transforms: the transform set; defaults to NNPACK's F(6x6, 3x3).
        dtype: compute precision for the transform/product stages.  The
            paper's kernels are fp32; tests also use fp64 to separate
            algorithmic from rounding error.
    """

    def __init__(
        self,
        transforms: WinogradTransforms | None = None,
        dtype=np.float32,
    ) -> None:
        self.tf = transforms if transforms is not None else f6x3_transforms()
        self.dtype = np.dtype(dtype)
        self._AT = self.tf.AT(self.dtype)
        self._G = self.tf.G(self.dtype)
        self._BT = self.tf.BT(self.dtype)

    # ------------------------------------------------------------------
    def grid(self, h: int, w: int, pad: int) -> TileGrid:
        return TileGrid(h_in=h, w_in=w, pad=pad, m=self.tf.m, n=self.tf.n)

    def transform_input(self, x: np.ndarray, pad: int) -> np.ndarray:
        """Input transform: (C, H, W) -> V[p, t, c]."""
        c, h, w = x.shape
        grid = self.grid(h, w, pad)
        n = self.tf.n
        v = np.empty((n * n, grid.num_tiles, c), dtype=self.dtype)
        for ci in range(c):
            tiles = extract_tiles(x[ci].astype(self.dtype, copy=False), grid)
            # (t, n, n) -> transform each tile: BT @ d @ BT.T
            td = np.einsum("ij,tjk,lk->til", self._BT, tiles, self._BT)
            v[:, :, ci] = td.reshape(grid.num_tiles, n * n).T
        return v

    def transform_filters(self, weights: np.ndarray) -> np.ndarray:
        """Filter transform: (K, C, r, r) -> U[p, k, c]."""
        k, c, r1, r2 = weights.shape
        if (r1, r2) != (self.tf.r, self.tf.r):
            raise ConfigError(
                f"filter is {r1}x{r2} but transforms are for {self.tf.r}x{self.tf.r}"
            )
        n = self.tf.n
        w = weights.astype(self.dtype, copy=False)
        tg = np.einsum("ij,kcjl,ml->kcim", self._G, w, self._G)
        return tg.reshape(k, c, n * n).transpose(2, 0, 1).copy()

    def tuple_multiply(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Batched per-tuple-position products: M[p, k, t] = U[p] V[p]^T.

        ``U[p]`` is (K, C) and ``V[p]`` is (T, C); the contraction is over
        the channel dimension, exactly what the vectorized tuple
        multiplication kernel accumulates with ``vfmacc``.
        """
        if u.shape[0] != v.shape[0] or u.shape[2] != v.shape[2]:
            raise ConfigError(
                f"tuple shapes disagree: U{u.shape} vs V{v.shape}"
            )
        return np.einsum("pkc,ptc->pkt", u, v)

    def transform_output(
        self, m_prod: np.ndarray, grid: TileGrid
    ) -> np.ndarray:
        """Output transform: M[p, k, t] -> (K, h_out, w_out)."""
        n, m = self.tf.n, self.tf.m
        p, k, t = m_prod.shape
        if p != n * n or t != grid.num_tiles:
            raise ConfigError(f"product tensor shape {m_prod.shape} mismatches grid")
        out = np.empty((k, grid.h_out, grid.w_out), dtype=self.dtype)
        tiles_kt = m_prod.reshape(n, n, k, t)
        # y = AT @ M_tile @ AT.T for every (k, t)
        y = np.einsum("ij,jlkt,ml->iktm", self._AT, tiles_kt, self._AT)
        # y: (m, k, t, m) -> per (k, t) tile (m, m)
        for ki in range(k):
            tiles_out = y[:, ki, :, :].transpose(1, 0, 2)  # (t, m, m)
            out[ki] = stitch_tiles(tiles_out.astype(self.dtype), grid)
        return out

    # ------------------------------------------------------------------
    def __call__(self, x: np.ndarray, weights: np.ndarray, pad: int = 1) -> np.ndarray:
        """Full forward convolution (stride 1).

        Args:
            x: input tensor (C, H, W).
            weights: filters (K, C, r, r).
            pad: symmetric zero padding.

        Returns:
            Output tensor (K, h_out, w_out).
        """
        if x.ndim != 3 or weights.ndim != 4:
            raise ConfigError("expected x as (C,H,W) and weights as (K,C,r,r)")
        if x.shape[0] != weights.shape[1]:
            raise ConfigError(
                f"channel mismatch: input has {x.shape[0]}, filters expect "
                f"{weights.shape[1]}"
            )
        grid = self.grid(x.shape[1], x.shape[2], pad)
        v = self.transform_input(x, pad)
        u = self.transform_filters(weights)
        m_prod = self.tuple_multiply(u, v)
        return self.transform_output(m_prod, grid)
