"""Command-line interface: ``python -m repro <command>``.

A small driver exposing the package's main entry points without writing
Python — the role Spike's and gem5's command lines play in the paper's
workflow:

- ``conv``     run one convolutional layer functionally + through the
               timing model and print its statistics;
- ``sweep``    run a network over the co-design grid (Figures 3/4,
               Tables 1/2); ``--trace DIR`` records the structured
               event stream and run manifest;
- ``profile``  simulate one network inference under the span tracer and
               print the per-layer time/counter breakdown;
               ``--roofline`` classifies every layer memory- vs
               compute-bound from the *measured* span counters and
               reconciles against the analytical roofline model;
- ``trace``    analytics over recorded traces: ``diff`` two payloads
               span-for-span, ``top`` the hottest spans plus the
               critical path, ``export`` to Chrome trace-event JSON or
               folded stacks;
- ``bench``    the regression observatory: ``record`` freezes a sweep
               into a versioned ``BENCH_<rev>.json`` baseline,
               ``compare`` re-runs it and exits non-zero on regression;
- ``roofline``     print the Figure 5/6 rooflines;
- ``lint-kernels`` audit every kernel variant with the verifier passes
                   (spec conformance, hazards, VLA portability) — by
                   trace lifting, or with ``--static`` by VLEN-symbolic
                   abstract interpretation with zero kernel executions;
                   ``--json`` emits a stable machine-readable report,
                   ``--perf`` adds the non-gating performance lints;
- ``analyze``      symbolically analyze one kernel: structural VLEN
                   regimes, perf lints, and with ``--cost`` a static
                   cost model (closed forms in VLEN) that
                   ``--reconcile`` machine-checks bit-exactly against
                   concrete traced runs;
- ``tune``         per-layer schedule search over the kernel DSL:
                   surrogate-rank the space, exactly simulate the
                   top-k, report the best schedule with provenance;
- ``info``         describe a system configuration.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.codesign import (
    MODES,
    PAPER_TABLE1_YOLO,
    PAPER_TABLE2_VGG,
    codesign_sweep,
    miss_rate_report,
    runtime_figure,
    validate_codesign_sweep,
)
from repro.conv import ConvAlgorithm, direct_conv2d
from repro.kernels import im2col_gemm_conv2d_sim, winograd_conv2d_sim
from repro.nets import vgg16_conv_layers, vgg16_layers, yolov3_layers
from repro.roofline import render_roofline, roofline_points
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig


def _add_system_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--vlen", type=int, default=512,
                   help="vector length in bits (default 512)")
    p.add_argument("--l2-mb", type=int, default=1,
                   help="L2 capacity in MB (default 1)")
    p.add_argument("--l1-kb", type=int, default=64)


def _config(args) -> SystemConfig:
    return SystemConfig(vlen_bits=args.vlen, l2_mb=args.l2_mb, l1_kb=args.l1_kb)


def cmd_conv(args) -> int:
    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal((args.channels, args.size, args.size)).astype(np.float32)
    w = rng.standard_normal(
        (args.filters, args.channels, args.ksize, args.ksize)
    ).astype(np.float32)
    machine = RvvMachine(args.vlen, memory=Memory(1 << 28),
                         tracer=Tracer(capture=True))
    if args.algorithm == "winograd":
        if args.ksize != 3:
            print("winograd requires --ksize 3", file=sys.stderr)
            return 2
        out = winograd_conv2d_sim(machine, x, w, pad=1)
        ref = direct_conv2d(x.astype(np.float64), w.astype(np.float64), pad=1)
    else:
        out = im2col_gemm_conv2d_sim(machine, x, w, stride=args.stride,
                                     pad=args.ksize // 2)
        ref = direct_conv2d(x.astype(np.float64), w.astype(np.float64),
                            stride=args.stride, pad=args.ksize // 2)
    err = float(np.max(np.abs(out - ref)))
    print(f"functional check vs direct convolution: max abs err {err:.2e}")
    stats = Simulator(_config(args)).run_trace(machine.tracer, label="cli conv")
    print(stats.report())
    return 0 if err < 1e-2 else 1


def _network(name: str):
    if name == "vgg16":
        return vgg16_layers()
    if name == "yolov3":
        return yolov3_layers()
    raise SystemExit(f"unknown network {name!r} (choose vgg16 or yolov3)")


def cmd_sweep(args) -> int:
    from dataclasses import asdict
    from pathlib import Path

    from repro.obs import JsonlSink, run_manifest, write_manifest

    layers = _network(args.network)
    vlens = tuple(int(v) for v in args.vlens.split(","))
    l2s = tuple(int(v) for v in args.l2_sizes.split(","))
    on_progress = None
    if args.progress:
        def on_progress(p):
            print(p.describe(), file=sys.stderr)
    sink = None
    if args.trace:
        trace_dir = Path(args.trace)
        write_manifest(trace_dir, run_manifest(
            "sweep", config=asdict(SystemConfig()), backend=args.mode,
            extra={"network": args.network, "vlens": list(vlens),
                   "l2_mbs": list(l2s), "workers": args.workers,
                   "hybrid": not args.pure_gemm},
        ))
        sink = JsonlSink(trace_dir / "events.jsonl")
    common = dict(hybrid=not args.pure_gemm, workers=args.workers,
                  checkpoint_dir=args.checkpoint_dir,
                  on_progress=on_progress, sink=sink)
    try:
        if args.mode == "validate":
            validation = validate_codesign_sweep(
                args.network, layers, vlens=vlens, l2_mbs=l2s, **common)
            sweep = validation.exact
        else:
            validation = None
            sweep = codesign_sweep(args.network, layers, vlens=vlens,
                                   l2_mbs=l2s, mode=args.mode, **common)
    finally:
        if sink is not None:
            sink.close()
    if args.json:
        import json

        payload = {
            "backend": sweep.backend,
            "degraded": sweep.degraded,
            "points": {
                f"{v}b/{l}MB": sweep.at(v, l).total.to_dict()
                for v in sweep.vlens for l in sweep.l2_mbs
            },
        }
        if validation is not None:
            payload["validation"] = {
                "max_miss_rate_delta": validation.max_miss_rate_delta,
                "best_agrees": validation.best_agrees,
                "deltas": {
                    f"{v}b/{l}MB": d
                    for (v, l), d in validation.miss_rate_deltas.items()
                },
            }
        print(json.dumps(payload, indent=2))
        return 0
    print(runtime_figure(sweep))
    if 1 in l2s:
        table = (PAPER_TABLE1_YOLO if args.network == "yolov3"
                 else PAPER_TABLE2_VGG)
        print()
        print(miss_rate_report(sweep, table, l2_mb=1))
    if validation is not None:
        print()
        print(validation.summary())
    if sweep.degraded:
        print("warning: the process pool degraded to serial execution "
              "during this sweep (results are exact; see the event "
              "trace)", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """Run the co-design query service until interrupted, then drain."""
    import asyncio
    import signal

    from repro.obs import JsonlSink
    from repro.serve import CodesignService, ResultStore, ServeServer

    store = ResultStore(
        max_bytes=(args.store_mb * 1024 * 1024
                   if args.store_mb is not None else None),
        directory=args.store_dir,
    )
    access_sink = (JsonlSink(args.access_log)
                   if args.access_log is not None else None)
    service = CodesignService(
        store, workers=args.workers, trace_dir=args.trace,
        access_sink=access_sink,
    )
    server = ServeServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        where = f"http://{args.host}:{server.port}"
        print(f"repro serve listening on {where} "
              f"(workers={service.workers}, "
              f"store={store.max_bytes // (1024 * 1024)}MB"
              + (f", dir={store.directory}" if store.directory else "")
              + (f", trace={service.trace_dir}" if service.trace_dir
                 else "")
              + (f", access-log={args.access_log}" if args.access_log
                 else "")
              + f"); metrics at {where}/metrics", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("repro serve: draining in-flight queries...", file=sys.stderr)
        await server.stop()

    try:
        asyncio.run(run())
    finally:
        if access_sink is not None:
            access_sink.close()
    return 0


def cmd_query(args) -> int:
    """Submit one query to a running service and print the sweep."""
    import json
    from pathlib import Path

    from repro.codesign import SweepResult
    from repro.serve import stream_query

    payload: dict = {
        "vlens": [int(v) for v in args.vlens.split(",")],
        "l2_mbs": [int(v) for v in args.l2_sizes.split(",")],
        "mode": args.mode,
    }
    if args.cfg is not None:
        payload["cfg"] = Path(args.cfg).read_text()
        payload["name"] = args.name or Path(args.cfg).stem
    elif args.network is not None:
        payload["network"] = args.network
    else:
        print("error: pass a network name or --cfg FILE", file=sys.stderr)
        return 2
    if args.layers is not None:
        payload["max_layers"] = args.layers
    if args.pure_gemm:
        payload["hybrid"] = False
    sweep_dict = None
    point_events: list[dict] = []
    query_end: dict | None = None
    try:
        for ev in stream_query(args.host, args.port, payload,
                               timeout=args.timeout):
            kind = ev.get("event")
            if kind == "point":
                point_events.append(ev)
                if args.progress:
                    print(f"[{ev.get('done')}/{ev.get('total')}] "
                          f"vlen={ev.get('vlen')} l2={ev.get('l2_mb')}MB "
                          f"{ev.get('source')}", file=sys.stderr)
            elif kind == "query_end":
                query_end = ev
            elif kind == "query_error":
                print(f"error: {ev.get('reason')}", file=sys.stderr)
                return 1
            elif kind == "query_result":
                sweep_dict = ev.get("sweep")
    except OSError as e:
        print(f"error: cannot reach {args.host}:{args.port} ({e})",
              file=sys.stderr)
        return 1
    if sweep_dict is None:
        print("error: event stream ended without a result (the service "
              "may have rejected the query; see its log)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(sweep_dict, indent=2))
    else:
        print(runtime_figure(SweepResult.from_dict(sweep_dict)))
    if args.timing:
        _print_query_timing(point_events, query_end)
    return 0


def _print_query_timing(
    point_events: list[dict], query_end: dict | None
) -> None:
    """The ``repro query --timing`` report (stderr, after the sweep).

    Per-point wall latency as the service measured it — store hits
    report the lookup time, computed/coalesced points their compute
    share — plus the end-to-end total and the hit/computed split."""
    served = (query_end or {}).get("served", {}) or {}
    total = (query_end or {}).get("seconds")
    total_text = f"{total:.3f}s" if isinstance(total, (int, float)) else "?"
    print(f"timing: {len(point_events)} points in {total_text} "
          f"(store {served.get('store', 0)}, "
          f"computed {served.get('computed', 0)}, "
          f"coalesced {served.get('coalesced', 0)})", file=sys.stderr)
    for ev in point_events:
        secs = ev.get("seconds")
        secs_text = (f"{secs:.6f}s" if isinstance(secs, (int, float))
                     else "-")
        print(f"  vlen={ev.get('vlen'):>5} l2={ev.get('l2_mb'):>3}MB  "
              f"{str(ev.get('source')):<9} {secs_text}", file=sys.stderr)


def cmd_loadtest(args) -> int:
    """Drive a running service with concurrent clients and report."""
    import asyncio
    import json
    from pathlib import Path

    from repro.errors import ReproError
    from repro.serve.loadtest import (
        DEFAULT_TIMEOUT,
        render_report_text,
        run_loadtest,
        run_saturation,
    )

    payload: dict = {
        "vlens": [int(v) for v in args.vlens.split(",")],
        "l2_mbs": [int(v) for v in args.l2_sizes.split(",")],
        "mode": args.mode,
    }
    if args.cfg is not None:
        payload["cfg"] = Path(args.cfg).read_text()
        payload["name"] = args.name or Path(args.cfg).stem
    elif args.network is not None:
        payload["network"] = args.network
    else:
        print("error: pass a network name or --cfg FILE", file=sys.stderr)
        return 2
    if args.layers is not None:
        payload["max_layers"] = args.layers
    if args.pure_gemm:
        payload["hybrid"] = False
    timeout = args.timeout if args.timeout is not None else DEFAULT_TIMEOUT

    try:
        if args.sweep is not None:
            levels = [int(v) for v in args.sweep.split(",")]
            report = asyncio.run(run_saturation(
                args.host, args.port, payload, levels,
                requests_per_client=args.requests, timeout=timeout,
            ))
            for level in report["levels"]:
                print(f"clients={level['clients']:>4}  "
                      f"{level['throughput_per_s']:>8}/s  "
                      f"server p99 {level['server_p99']}s  "
                      f"client p99 {level['client_p99']}s  "
                      f"failed {level['failed']}", file=sys.stderr)
        else:
            report = asyncio.run(run_loadtest(
                args.host, args.port, payload,
                clients=args.clients, requests_per_client=args.requests,
                loop_mode=args.loop, rate=args.rate, timeout=timeout,
            ))
            print(render_report_text(report), file=sys.stderr)
    except (ReproError, OSError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    text = json.dumps(report, indent=2)
    if args.out is not None:
        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    if args.json or args.out is None:
        print(text)
    if args.sweep is not None:
        exactly_once_ok = all(
            bool(r["points"]["exactly_once"]["ok"])
            for r in report["reports"])
        failed = sum(r["requests"]["failed"] for r in report["reports"])
    else:
        exactly_once_ok = bool(report["points"]["exactly_once"]["ok"])
        failed = report["requests"]["failed"]
    return 0 if exactly_once_ok and not failed else 1


def cmd_profile(args) -> int:
    """Simulate one inference under the span tracer and report where
    the cycles went, per layer."""
    from dataclasses import asdict
    from pathlib import Path

    from repro.nets.inference import simulate_inference
    from repro.obs import (
        Tracer,
        render_trace_json,
        render_trace_text,
        run_manifest,
        trace_payload,
        tracing,
        write_manifest,
    )

    layers = _network(args.network)
    if args.layers is not None:
        layers = layers[: args.layers]
    cfg = _config(args)
    tracer = Tracer()
    with tracing(tracer):
        result = simulate_inference(
            args.network, layers, cfg, hybrid=not args.pure_gemm
        )
    root = tracer.root
    manifest = run_manifest(
        "profile", config=asdict(cfg),
        extra={"network": args.network, "layers": len(layers),
               "hybrid": not args.pure_gemm},
    )
    if args.trace:
        trace_dir = Path(args.trace)
        write_manifest(trace_dir, manifest)
        import json

        (trace_dir / "trace.json").write_text(
            json.dumps(trace_payload(root, manifest), indent=2) + "\n")
    if args.roofline:
        return _profile_roofline(args, root, cfg, layers)
    if args.json:
        print(render_trace_json(root, manifest))
    else:
        print(render_trace_text(root))
        print()
        print(result.total.report())
    return 0


def _profile_roofline(args, root, cfg, layers) -> int:
    """``repro profile --roofline``: measured-counter attribution,
    reconciled against the analytical roofline model.  Exits non-zero
    when the two classifications disagree on any layer — the paper's
    boundedness claims are checked, not narrated."""
    from repro.conv.layer import ConvLayerSpec
    from repro.obs import disagreements, reconcile, render_attribution
    from repro.roofline import measured_roofline

    conv_specs = [l for l in layers if isinstance(l, ConvLayerSpec)]
    measured = measured_roofline(root, cfg)
    modeled = roofline_points(conv_specs, cfg, algorithm=None,
                              hybrid=not args.pure_gemm)
    recs = reconcile(measured, modeled)
    bad = disagreements(recs)
    if args.json:
        import json

        print(json.dumps({
            "network": args.network,
            "vlen_bits": cfg.vlen_bits,
            "l2_mb": cfg.l2_mb,
            "measured": [p.to_dict() for p in measured],
            "reconciliation": [r.to_dict() for r in recs],
            "agrees": not bad,
        }, indent=2))
    else:
        print(render_attribution(
            measured, recs,
            title=f"{args.network} @ {cfg.vlen_bits}b/{cfg.l2_mb}MB",
        ))
    return 1 if bad else 0


def cmd_trace_diff(args) -> int:
    """Align two trace payloads span-for-span and report the deltas.

    Exits 0 only when the trees align structurally and every primitive
    counter delta is zero (wall time may differ — it is noise); any
    counter movement is a behaviour change and exits 1.
    """
    from repro.obs import diff_payload, diff_traces, load_trace, render_diff_text

    a, b = load_trace(args.a), load_trace(args.b)
    root = diff_traces(a.span, b.span)
    clean = root.structurally_identical and root.max_abs_counter_delta == 0
    if args.json:
        import json

        print(json.dumps(diff_payload(a, b), indent=2))
    else:
        print(render_diff_text(root))
        print()
        if clean:
            print("traces are equivalent: structures align, all counter "
                  "deltas are zero (wall time is not compared)")
        else:
            print(f"traces differ: max |counter delta| "
                  f"{root.max_abs_counter_delta:g}"
                  + ("" if root.structurally_identical
                     else "; span structures diverge"))
    return 0 if clean else 1


def cmd_trace_top(args) -> int:
    """Rank a trace's spans by self cycles; append the critical path."""
    from repro.obs import (
        critical_path,
        load_trace,
        render_critical_path,
        render_top_text,
        span_cycles,
        top_spans,
    )

    payload = load_trace(args.trace)
    rows = top_spans(payload.span, n=args.n)
    total = span_cycles(payload.span)
    if args.json:
        import json

        print(json.dumps({
            "source": payload.source,
            "total_cycles": total,
            "top": [r.to_dict() for r in rows],
            "critical_path": [
                str(s.attrs.get("label", s.name))
                for s in critical_path(payload.span)
            ],
        }, indent=2))
        return 0
    print(render_top_text(rows, total))
    print()
    print(render_critical_path(critical_path(payload.span)))
    return 0


def cmd_trace_export(args) -> int:
    """Export a trace for off-the-shelf viewers."""
    from pathlib import Path

    from repro.obs import export_trace, load_trace

    payload = load_trace(args.trace)
    text = export_trace(payload.span, args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} export to {args.output}",
              file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _bench_run(config: dict):
    """Run the observatory's sweep workload described by ``config``.

    Shared by ``bench record`` (freezing a new baseline) and ``bench
    compare`` (reproducing the stored baseline's workload exactly — the
    comparison re-runs what the *baseline* recorded, not whatever the
    current flags happen to say).
    """
    from repro.obs import BenchRecorder

    layers = _network(config["network"])
    if config.get("layers"):
        layers = layers[: int(config["layers"])]
    recorder = BenchRecorder()
    for _ in range(int(config["repeat"])):
        codesign_sweep(
            config["network"], layers,
            vlens=tuple(int(v) for v in config["vlens"]),
            l2_mbs=tuple(int(l) for l in config["l2_mbs"]),
            hybrid=bool(config["hybrid"]),
            mode=config["mode"],
            recorder=recorder,
        )
    return recorder


def cmd_bench_record(args) -> int:
    """Freeze the configured sweep into ``BENCH_<rev>.json``."""
    from dataclasses import asdict

    from repro.obs import (
        BaselineStore,
        baseline_payload,
        git_rev,
        run_manifest,
    )

    config = {
        "network": args.network,
        "layers": args.layers,
        "vlens": [int(v) for v in args.vlens.split(",")],
        "l2_mbs": [int(l) for l in args.l2_sizes.split(",")],
        "hybrid": not args.pure_gemm,
        "mode": args.mode,
        "repeat": args.repeat,
    }
    recorder = _bench_run(config)
    rev = args.rev or git_rev() or "untracked"
    manifest = run_manifest("bench", config=asdict(SystemConfig()),
                            backend=args.mode, extra=config)
    payload = baseline_payload(rev, recorder, config, manifest)
    store = BaselineStore(args.dir)
    path = store.save(payload)
    print(f"recorded baseline {rev}: {len(recorder)} bench(es) x "
          f"{args.repeat} run(s) -> {path}")
    return 0


def cmd_bench_compare(args) -> int:
    """Re-run a stored baseline's workload and diff; non-zero on
    regression (exact cycles, tolerance-checked wall time)."""
    from repro.obs import (
        BaselineStore,
        baseline_payload,
        compare_payloads,
        git_rev,
        render_comparison,
    )

    store = BaselineStore(args.dir)
    base = store.resolve(args.against)
    recorder = _bench_run(base["config"])
    current = baseline_payload(
        git_rev() or "worktree", recorder, base["config"]
    )
    cmp = compare_payloads(base, current, walls=not args.cycles_only)
    if args.json:
        import json

        print(json.dumps(cmp.to_dict(), indent=2))
    else:
        print(render_comparison(cmp))
    return 0 if cmp.ok else 1


def cmd_roofline(args) -> int:
    layers = vgg16_conv_layers()[: args.layers]
    algo = (ConvAlgorithm.WINOGRAD if args.algorithm == "winograd"
            else ConvAlgorithm.IM2COL_GEMM)
    pts = roofline_points(layers, _config(args), algo)
    print(render_roofline(pts, f"VGG16 first {args.layers} layers, {args.algorithm}"))
    return 0


def cmd_disasm(args) -> int:
    from repro.rvv import listing, load_trace, summarize_basic_blocks

    tracer = load_trace(args.trace)
    if args.summary:
        print(summarize_basic_blocks(tracer))
    else:
        print(listing(tracer, start=args.start, count=args.count))
    return 0


def cmd_lint_kernels(args) -> int:
    import json

    from repro.analysis import KERNEL_SPECS, audit_kernel, fast_specs, find_spec
    from repro.analysis.symbolic import audit_kernel_static
    from repro.isa import VLEN_CHOICES

    static = args.static
    if args.vlens is not None:
        vlens = tuple(int(v) for v in args.vlens.split(","))
    else:
        vlens = VLEN_CHOICES if static else (512, 1024, 2048, 4096)
    if args.kernel:
        specs = [find_spec(name) for name in args.kernel]
    elif args.fast:
        specs = list(fast_specs())
    else:
        specs = list(KERNEL_SPECS)

    failed = 0
    reports = []
    for spec in specs:
        flavors = spec.machines
        if args.machine:
            flavors = tuple(f for f in flavors if f in args.machine)
        for flavor in flavors:
            if static:
                report = audit_kernel_static(spec, flavor, vlens,
                                             perf=args.perf)
            else:
                report = audit_kernel(spec, flavor, vlens)
            reports.append(report)
            if not args.json:
                if report.ok and not args.verbose:
                    print(report.render().splitlines()[0])
                else:
                    print(report.render())
            if not report.ok:
                failed += 1
    if args.json:
        print(json.dumps([r.to_json() for r in reports], indent=2))
        return 1 if failed else 0
    print()
    if failed:
        print(f"FAIL: {failed} kernel audit(s) reported findings")
        return 1
    mode = "statically at VLEN" if static else "clean at VLEN"
    print(f"ok: {len(specs)} kernel(s) audited {mode} "
          f"{','.join(str(v) for v in vlens)}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import find_spec
    from repro.analysis.pipeline import analyze_perf
    from repro.analysis.symbolic import (
        build_cost_model,
        interpret_kernel,
        reconcile,
    )
    from repro.isa import VLEN_CHOICES

    spec = find_spec(args.kernel)
    flavor = args.machine or spec.machines[0]
    if flavor not in spec.machines:
        print(f"error: {spec.name!r} does not support machine {flavor!r} "
              f"(supported: {', '.join(spec.machines)})", file=sys.stderr)
        return 2
    audit = interpret_kernel(spec, flavor, VLEN_CHOICES)
    groups = " | ".join(",".join(str(v) for v in rg.vlens)
                        for rg in audit.regimes)
    print(f"{spec.name} [{flavor}]  regimes: {groups or '(none)'}")
    if audit.unsupported:
        why = "; ".join(f"{v}: {r}"
                        for v, r in sorted(audit.unsupported.items()))
        print(f"  unsupported: {why}")
    if args.perf:
        print("perf lints (non-gating):")
        n = 0
        for rg in audit.regimes:
            for f in analyze_perf(rg.program):
                print(f.render())
                n += 1
        if not n:
            print("  (clean)")
    if args.cost:
        model = build_cost_model(audit)
        print(model.render())
        if args.reconcile:
            mismatches = reconcile(model, spec, flavor)
            if mismatches:
                print(f"RECONCILE FAIL ({len(mismatches)} mismatches):")
                for m in mismatches:
                    print(f"  {m}")
                return 1
            print("reconcile: static model matches concrete traces "
                  "bit-exactly")
    return 0


def cmd_info(args) -> int:
    cfg = _config(args)
    print(cfg.describe())
    print(f"lanes (fp32)      : {cfg.lanes}")
    print(f"peak GFLOP/s      : {cfg.peak_gflops:.1f}")
    print(f"DRAM bandwidth    : {cfg.dram_gbs} GB/s")
    print(f"roofline ridge AI : {cfg.peak_gflops / cfg.dram_gbs:.2f} flop/B")
    return 0


def cmd_tune(args) -> int:
    import json
    from dataclasses import asdict
    from pathlib import Path

    from repro.codesign.tuner import tune_network
    from repro.conv.layer import ConvLayerSpec
    from repro.obs import run_manifest, write_manifest

    config = _config(args)
    layers = [l for l in _network(args.network)
              if isinstance(l, ConvLayerSpec)]
    if args.layers is not None:
        layers = layers[: args.layers]
    report = tune_network(
        args.network, layers, config, seed=args.seed, budget=args.budget,
        top_k=args.top_k, max_pixels=args.max_pixels,
        max_channels=args.max_channels, exhaustive=args.exhaustive)
    payload = report.to_dict()
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "tuning_report.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        write_manifest(out, run_manifest(
            "tune", config=asdict(config), seed=args.seed,
            extra={"network": args.network, "layers": args.layers,
                   "budget": args.budget, "top_k": args.top_k,
                   "max_pixels": args.max_pixels,
                   "max_channels": args.max_channels,
                   "exhaustive": args.exhaustive}))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("conv", help="run one convolution end to end")
    _add_system_args(p)
    p.add_argument("--algorithm", choices=["winograd", "im2col"],
                   default="winograd")
    p.add_argument("--channels", type=int, default=8)
    p.add_argument("--filters", type=int, default=8)
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--ksize", type=int, default=3)
    p.add_argument("--stride", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_conv)

    p = sub.add_parser("sweep", help="co-design sweep over VLEN x L2")
    p.add_argument("network", choices=["vgg16", "yolov3"])
    p.add_argument("--vlens", default="512,1024,2048,4096",
                   help="comma-separated vector lengths in bits")
    p.add_argument("--l2-sizes", default="1,16,64,128,256",
                   help="comma-separated L2 sizes in MB")
    p.add_argument("--pure-gemm", action="store_true",
                   help="baseline policy: im2col+GEMM everywhere")
    p.add_argument("--mode", choices=list(MODES), default="exact",
                   help="exact: simulate every grid point; fast: one "
                        "stack-distance profiling pass per VLEN answers "
                        "the whole L2 axis; validate: run both and "
                        "report per-point miss-rate deltas")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable results")
    p.add_argument("--workers", type=int, default=1,
                   help="grid points evaluated in parallel (default 1: "
                        "serial; results are identical either way)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="write per-point JSON checkpoints to DIR; "
                        "re-running with the same DIR resumes an "
                        "interrupted sweep")
    p.add_argument("--progress", action="store_true",
                   help="print a per-point progress/ETA line to stderr")
    p.add_argument("--trace", default=None, metavar="DIR",
                   help="record the sweep's structured event stream "
                        "(events.jsonl) and run manifest (manifest.json) "
                        "into DIR")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the co-design query service (async HTTP, NDJSON "
             "event streams, content-addressed result store)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8037,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("--workers", type=int, default=2,
                   help="VLEN columns evaluated concurrently")
    p.add_argument("--store-mb", type=int, default=None, metavar="MB",
                   help="in-memory result-store budget (default 64)")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="persist every computed point to DIR so the "
                        "service restarts warm")
    p.add_argument("--trace", default=None, metavar="DIR",
                   help="write one query_<id>/ trace directory per "
                        "query into DIR (span trees consumable by "
                        "'repro trace diff/top/export')")
    p.add_argument("--access-log", default=None, metavar="FILE",
                   help="append one JSONL access record per query "
                        "(query_id, network_hash, point mix, wall, "
                        "status)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "query",
        help="submit one co-design query to a running 'repro serve'")
    p.add_argument("network", nargs="?", choices=["vgg16", "yolov3"],
                   help="a named network (or use --cfg)")
    p.add_argument("--cfg", default=None, metavar="FILE",
                   help="darknet cfg file describing a custom topology")
    p.add_argument("--name", default=None,
                   help="label for a --cfg topology (default: file stem)")
    p.add_argument("--layers", type=int, default=None, metavar="N",
                   help="truncate the network to its first N layers")
    p.add_argument("--vlens", default="512,1024,2048,4096",
                   help="comma-separated vector lengths in bits")
    p.add_argument("--l2-sizes", default="1,16,64,128,256",
                   help="comma-separated L2 sizes in MB")
    p.add_argument("--mode", choices=["exact", "fast"], default="exact")
    p.add_argument("--pure-gemm", action="store_true",
                   help="baseline policy: im2col+GEMM everywhere")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8037)
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="socket timeout in seconds (default: none)")
    p.add_argument("--progress", action="store_true",
                   help="print a per-point progress line to stderr")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable sweep dict")
    p.add_argument("--timing", action="store_true",
                   help="print per-point and total wall latency (and "
                        "the store-hit vs computed split) to stderr "
                        "after the query completes")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "loadtest",
        help="drive a running 'repro serve' with N concurrent clients "
             "and emit a JSON report (throughput, /metrics latency "
             "percentiles, hit-rate trajectory, exactly-once check)")
    p.add_argument("network", nargs="?", choices=["vgg16", "yolov3"],
                   help="a named network (or use --cfg)")
    p.add_argument("--cfg", default=None, metavar="FILE",
                   help="darknet cfg file describing a custom topology")
    p.add_argument("--name", default=None,
                   help="label for a --cfg topology (default: file stem)")
    p.add_argument("--layers", type=int, default=None, metavar="N",
                   help="truncate the network to its first N layers")
    p.add_argument("--vlens", default="512,1024,2048,4096",
                   help="comma-separated vector lengths in bits")
    p.add_argument("--l2-sizes", default="1,16,64,128,256",
                   help="comma-separated L2 sizes in MB")
    p.add_argument("--mode", choices=["exact", "fast"], default="fast")
    p.add_argument("--pure-gemm", action="store_true",
                   help="baseline policy: im2col+GEMM everywhere")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8037)
    p.add_argument("--clients", type=int, default=32,
                   help="concurrent clients (default 32)")
    p.add_argument("--requests", type=int, default=1, metavar="N",
                   help="queries per client (default 1)")
    p.add_argument("--loop", choices=["closed", "open"], default="closed",
                   help="closed loop (clients wait for answers) or "
                        "open loop (fixed arrival rate)")
    p.add_argument("--rate", type=float, default=None, metavar="R",
                   help="open-loop arrival rate in requests/second")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-request timeout in seconds "
                        "(default: REPRO_LOADTEST_TIMEOUT or 300)")
    p.add_argument("--sweep", default=None, metavar="N,N,...",
                   help="saturation sweep: run once per client count "
                        "and summarize throughput/latency per level")
    p.add_argument("--json", action="store_true",
                   help="print the full JSON report to stdout (a "
                        "human digest always goes to stderr)")
    p.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="also write the JSON report to FILE")
    p.set_defaults(func=cmd_loadtest)

    p = sub.add_parser(
        "profile",
        help="simulate one inference under the span tracer and print "
             "the per-layer time/counter breakdown")
    p.add_argument("network", choices=["vgg16", "yolov3"])
    _add_system_args(p)
    p.add_argument("--layers", type=int, default=None, metavar="N",
                   help="profile only the first N layers")
    p.add_argument("--pure-gemm", action="store_true",
                   help="baseline policy: im2col+GEMM everywhere")
    p.add_argument("--json", action="store_true",
                   help="emit the manifest + span tree as JSON")
    p.add_argument("--trace", default=None, metavar="DIR",
                   help="also write manifest.json and trace.json to DIR")
    p.add_argument("--roofline", action="store_true",
                   help="classify each layer memory- vs compute-bound "
                        "from its measured span counters, reconcile "
                        "against the analytical roofline model, and exit "
                        "non-zero on any disagreement")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "trace", help="analytics over recorded trace payloads")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    t = tsub.add_parser(
        "diff",
        help="align two traces span-for-span and report wall/cycle/"
             "counter deltas; exits non-zero when counters moved")
    t.add_argument("a", help="trace dir, trace.json, or profile --json file")
    t.add_argument("b", help="the trace to compare against A")
    t.add_argument("--json", action="store_true",
                   help="emit the full per-counter diff document")
    t.set_defaults(func=cmd_trace_diff)
    t = tsub.add_parser(
        "top", help="hottest spans by self cycles, plus the critical path")
    t.add_argument("trace", help="trace dir, trace.json, or profile --json file")
    t.add_argument("-n", type=int, default=10,
                   help="rows in the table (default 10)")
    t.add_argument("--json", action="store_true")
    t.set_defaults(func=cmd_trace_top)
    t = tsub.add_parser(
        "export", help="export a trace for external viewers")
    t.add_argument("trace", help="trace dir, trace.json, or profile --json file")
    t.add_argument("--format", choices=["chrome", "folded"],
                   default="chrome",
                   help="chrome: trace-event JSON for chrome://tracing/"
                        "Perfetto; folded: flamegraph.pl stacks")
    t.add_argument("-o", "--output", default=None, metavar="FILE",
                   help="write to FILE instead of stdout")
    t.set_defaults(func=cmd_trace_export)

    p = sub.add_parser(
        "bench",
        help="performance-regression observatory over sweep baselines")
    bsub = p.add_subparsers(dest="bench_command", required=True)
    b = bsub.add_parser(
        "record",
        help="run a sweep repeatedly and freeze it as BENCH_<rev>.json")
    b.add_argument("network", choices=["vgg16", "yolov3"])
    b.add_argument("--vlens", default="512,1024",
                   help="comma-separated vector lengths in bits")
    b.add_argument("--l2-sizes", default="1,16",
                   help="comma-separated L2 sizes in MB")
    b.add_argument("--layers", type=int, default=None, metavar="N",
                   help="truncate the network to its first N layers "
                        "(keeps the smoke baseline fast)")
    b.add_argument("--pure-gemm", action="store_true")
    b.add_argument("--mode", choices=["exact", "fast"], default="exact")
    b.add_argument("--repeat", type=int, default=3,
                   help="runs per bench; wall-time noise is estimated "
                        "from the spread (default 3)")
    b.add_argument("--dir", default="benchmarks/baselines",
                   help="baseline store directory")
    b.add_argument("--rev", default=None,
                   help="record under this revision name (default: "
                        "the current git revision)")
    b.set_defaults(func=cmd_bench_record)
    b = bsub.add_parser(
        "compare",
        help="re-run a stored baseline's workload and diff against it; "
             "exits non-zero on regression")
    b.add_argument("--against", default=None, metavar="REV",
                   help="baseline revision (default: most recent)")
    b.add_argument("--dir", default="benchmarks/baselines",
                   help="baseline store directory")
    b.add_argument("--cycles-only", action="store_true",
                   help="skip the wall-time comparison (for loaded or "
                        "shared machines where wall noise is unbounded)")
    b.add_argument("--json", action="store_true")
    b.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser("roofline", help="Figure 5/6 rooflines")
    _add_system_args(p)
    p.add_argument("--algorithm", choices=["winograd", "im2col"],
                   default="winograd")
    p.add_argument("--layers", type=int, default=10)
    p.set_defaults(func=cmd_roofline)

    p = sub.add_parser("disasm", help="list a saved instruction trace")
    p.add_argument("trace", help="trace file written by save_trace")
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--count", type=int, default=50)
    p.add_argument("--summary", action="store_true",
                   help="collapse runs of identical instruction classes")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser(
        "lint-kernels",
        help="audit kernels with the trace-lifted verifier passes")
    p.add_argument("--all", action="store_true",
                   help="audit the full registry (default)")
    p.add_argument("--kernel", action="append", metavar="NAME",
                   help="audit only this kernel (repeatable)")
    p.add_argument("--machine", action="append",
                   choices=["rvv", "rvv+", "sve"],
                   help="restrict to this machine flavor (repeatable)")
    p.add_argument("--vlens", default=None,
                   help="comma-separated VLENs to audit (default: "
                        "512,1024,2048,4096 traced; the full admissible "
                        "domain with --static)")
    p.add_argument("--static", action="store_true",
                   help="audit by abstract interpretation — zero kernel "
                        "executions, verdict covers every admissible VLEN")
    p.add_argument("--perf", action="store_true",
                   help="also run the non-gating performance lints "
                        "(with --static)")
    p.add_argument("--json", action="store_true",
                   help="emit the reports as a JSON list (stable schema; "
                        "exit status still reflects findings)")
    p.add_argument("--fast", action="store_true",
                   help="audit only the fast subset (skips full conv "
                        "drivers)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-pass detail even for clean kernels")
    p.set_defaults(func=cmd_lint_kernels)

    p = sub.add_parser(
        "analyze",
        help="symbolically analyze one kernel: regimes, perf lints, "
             "static cost model")
    p.add_argument("kernel", help="registered kernel name "
                                  "(see lint-kernels)")
    p.add_argument("--machine", choices=["rvv", "rvv+", "sve"],
                   default=None,
                   help="machine flavor (default: the kernel's first)")
    p.add_argument("--cost", action="store_true",
                   help="print the static cost model (closed forms in "
                        "VLEN per opclass and metric)")
    p.add_argument("--reconcile", action="store_true",
                   help="with --cost: machine-check the model against "
                        "concrete traced runs")
    p.add_argument("--perf", action="store_true",
                   help="run the non-gating performance lints")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "tune",
        help="per-layer schedule search: surrogate-rank the DSL's "
             "schedule space, exactly simulate the top-k on proxy "
             "problems, report the best schedule per layer")
    p.add_argument("network", choices=["vgg16", "yolov3"])
    _add_system_args(p)
    p.add_argument("--layers", type=int, default=None, metavar="N",
                   help="tune only the first N conv layers")
    p.add_argument("--seed", type=int, default=0,
                   help="rng seed for space sampling and test data "
                        "(results are a pure function of the seed)")
    p.add_argument("--budget", type=int, default=24,
                   help="candidate schedules surrogate-ranked per layer "
                        "(default 24; 0 = the whole space)")
    p.add_argument("--top-k", type=int, default=3, dest="top_k",
                   help="surrogate leaders re-ranked by exact "
                        "simulation (the default schedule is always "
                        "included; default 3)")
    p.add_argument("--max-pixels", type=int, default=1024,
                   help="proxy cap: halve the layer's spatial extents "
                        "until h_out*w_out fits (default 1024)")
    p.add_argument("--max-channels", type=int, default=64,
                   help="proxy cap on c_in/c_out (default 64)")
    p.add_argument("--exhaustive", action="store_true",
                   help="exactly simulate every sampled candidate "
                        "(slow; for surrogate validation)")
    p.add_argument("--json", action="store_true",
                   help="emit the full tuning report as JSON")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write tuning_report.json + manifest.json to DIR")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("info", help="describe a system configuration")
    _add_system_args(p)
    p.set_defaults(func=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
