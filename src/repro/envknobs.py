"""Environment-knob parsing with a loud invalid-value policy.

Several runtime knobs are read from the environment
(``REPRO_STREAM_CACHE_MB``, ``REPRO_SWEEP_WORKERS``,
``REPRO_BENCH_BASELINE``, ...).  Historically each reader parsed its
variable ad hoc and *silently* repaired bad values — a garbage
``REPRO_STREAM_CACHE_MB=256MB`` fell back to the default and a negative
budget clamped to zero without a word, so a mistyped knob looked exactly
like an applied one.  This module centralizes the policy:

- unset or empty/whitespace-only values mean "use the default" and stay
  silent (an empty export is how shells unset a knob);
- unparsable values fall back to the default **with a**
  :class:`RuntimeWarning` naming the variable and the bad value;
- out-of-range values clamp to the nearest bound, also with a warning.

A bad knob therefore never aborts a run (these are tuning knobs, not
configuration), but it is never silent either.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path


def env_int(
    name: str,
    default: int,
    minimum: int | None = None,
) -> int:
    """Parse an integer knob from the environment.

    Args:
        name: environment variable name.
        default: value used when the variable is unset, empty, or
            unparsable (the latter with a :class:`RuntimeWarning`).
        minimum: lower bound; values below it clamp to it, loudly.

    Returns:
        The parsed (and possibly clamped) value.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not an integer; using the default "
            f"({default})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if minimum is not None and value < minimum:
        warnings.warn(
            f"{name}={raw!r} is below the minimum ({minimum}); "
            f"clamping to {minimum}",
            RuntimeWarning,
            stacklevel=2,
        )
        return minimum
    return value


def env_float(
    name: str,
    default: float,
    minimum: float | None = None,
) -> float:
    """Parse a float knob from the environment.

    Same policy as :func:`env_int`: unset/empty is silently the
    default, garbage is the default with a :class:`RuntimeWarning`,
    below-minimum clamps loudly.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not a number; using the default "
            f"({default})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if minimum is not None and value < minimum:
        warnings.warn(
            f"{name}={raw!r} is below the minimum ({minimum}); "
            f"clamping to {minimum}",
            RuntimeWarning,
            stacklevel=2,
        )
        return minimum
    return value


def env_dir(name: str) -> str | None:
    """Parse a directory-path knob from the environment.

    Unset or empty values mean "feature off" (returns ``None``).  A
    path that already exists but is not a directory cannot possibly be
    what the user meant — that returns ``None`` with a
    :class:`RuntimeWarning` naming the variable and the path, instead
    of letting a later ``mkdir``/``open`` fail far from the typo.  A
    path that does not exist yet is fine: consumers create their
    directories on first use.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    path = raw.strip()
    if Path(path).exists() and not Path(path).is_dir():
        warnings.warn(
            f"{name}={raw!r} exists but is not a directory; ignoring it",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return path
