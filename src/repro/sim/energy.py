"""First-order energy model for the simulated vector processor.

The paper's introduction motivates long vectors partly through energy:
they improve "the energy efficiency by reducing the number of
instructions required to complete a task, thereby reducing the energy
consumed by the processor's front end, which is a significant concern
for servers with power caps and mobile devices".  The co-design study
itself never quantifies that; this model does, with the standard
event-energy decomposition used in architecture studies:

    E = N_instr * E_front                      (fetch/decode/issue)
      + N_elem_ops * E_lane                    (datapath work)
      + N_L1_access * E_L1 + N_L2_access * E_L2
      + DRAM_bytes * E_DRAM

Default per-event energies are order-of-magnitude figures for a ~22 nm
embedded core (the Ara/EPI generation the paper cites): tens of pJ per
instruction through the front end, a few pJ per lane-operation, and
the canonical ~10 pJ/bit levels for DRAM.  Absolute joules are not the
point — the *ratio* between configurations is, exactly as with cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules."""

    front_end_pj: float = 25.0  # per dynamic instruction
    lane_pj: float = 2.0  # per element operation (fp32 lane)
    l1_access_pj: float = 10.0  # per cache-line access at L1
    l2_access_pj: float = 50.0  # per cache-line access at L2
    dram_pj_per_byte: float = 15.0  # ~120 pJ/bit-line amortized

    def __post_init__(self) -> None:
        if min(self.front_end_pj, self.lane_pj, self.l1_access_pj,
               self.l2_access_pj, self.dram_pj_per_byte) < 0:
            raise ConfigError("energies must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Estimated energy of one simulated run, by component (joules)."""

    front_end: float
    datapath: float
    l1: float
    l2: float
    dram: float

    @property
    def total(self) -> float:
        return self.front_end + self.datapath + self.l1 + self.l2 + self.dram

    @property
    def front_end_share(self) -> float:
        return self.front_end / self.total if self.total else 0.0

    def report(self) -> str:
        rows = [f"{'component':<12}{'mJ':>10}{'share':>8}"]
        for name, val in (
            ("front-end", self.front_end),
            ("datapath", self.datapath),
            ("L1", self.l1),
            ("L2", self.l2),
            ("DRAM", self.dram),
        ):
            rows.append(
                f"{name:<12}{1e3 * val:>10.3f}"
                f"{100 * val / self.total if self.total else 0:>7.1f}%"
            )
        rows.append(f"{'total':<12}{1e3 * self.total:>10.3f}")
        return "\n".join(rows)


def estimate_energy(
    stats: SimStats, model: EnergyModel | None = None
) -> EnergyBreakdown:
    """Apply the event-energy model to a simulation's counters."""
    em = model if model is not None else EnergyModel()
    pj = 1e-12
    elem_ops = sum(stats.elems.values())
    return EnergyBreakdown(
        front_end=stats.total_instrs * em.front_end_pj * pj,
        datapath=elem_ops * em.lane_pj * pj,
        l1=stats.hierarchy.l1.accesses * em.l1_access_pj * pj,
        l2=stats.hierarchy.l2.accesses * em.l2_access_pj * pj,
        dram=stats.dram_bytes * em.dram_pj_per_byte * pj,
    )
