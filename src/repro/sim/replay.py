"""Record/replay stream cache for the exact cache engine.

A loop nest's materialized line stream depends only on the nest itself
and the cache-line size — never on cache geometry (the invariant the
co-design sweep exploits; see
:func:`repro.nets.inference.layer_phase_models` for the analytic
statement of the same property).  Re-simulating a program across an L2
axis therefore regenerates byte-identical streams at every grid point.
:class:`StreamCache` records each nest's ``(lines, is_store)`` segments
the first time they are materialized, keyed by ``(nest, line_bytes)``,
and replays them for every subsequent simulation — the segments are
returned as read-only arrays, so a replayed simulation is bit-identical
to a freshly generated one by construction.

Bounds and eviction
-------------------
The cache holds at most ``max_bytes`` of segment data
(:data:`DEFAULT_BUDGET_MB` MB by default; the process-wide default
honours the ``REPRO_STREAM_CACHE_MB`` environment variable).  Eviction
is LRU at *nest* granularity: a replay touches all of a nest's
segments, so partial retention would thrash.  A nest whose segments
cannot fit even after evicting every other entry is marked
unrecordable for the lifetime of its entry and streamed straight from
the generator — correctness never depends on a segment being cached.

Observability: the process-global counters
``stream_cache.{records,replays,generated,evictions}`` track cache
effectiveness (:data:`repro.obs.COUNTERS`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.envknobs import env_int
from repro.obs.counters import COUNTERS
from repro.sim.events import LoopNest

#: Default stream-cache budget in MB (see module docstring).
DEFAULT_BUDGET_MB = 256

#: Environment variable overriding the *process-wide default* budget.
BUDGET_ENV = "REPRO_STREAM_CACHE_MB"

_Segment = tuple[npt.NDArray[np.int64], npt.NDArray[np.bool_]]
_Key = tuple[LoopNest, int]


def _default_budget_bytes() -> int:
    """The process-wide budget from ``REPRO_STREAM_CACHE_MB``.

    Invalid values are never silent: garbage falls back to the default
    and negatives clamp to 0 (disabling the cache), each with a
    :class:`RuntimeWarning` naming the bad value (see
    :mod:`repro.envknobs` for the policy).
    """
    return env_int(BUDGET_ENV, DEFAULT_BUDGET_MB, minimum=0) * 1024 * 1024


@dataclass
class StreamCacheStats:
    """Effectiveness counters of one :class:`StreamCache`."""

    recorded_segments: int = 0
    replayed_segments: int = 0
    generated_segments: int = 0
    evicted_nests: int = 0
    bytes: int = 0


class _Entry:
    """One nest's recording: segment arrays plus admission state."""

    __slots__ = ("segments", "nbytes", "recordable")

    def __init__(self) -> None:
        self.segments: dict[int, _Segment] = {}
        self.nbytes = 0
        self.recordable = True


class NestStreams:
    """Replay handle for one ``(nest, line_bytes)`` pair.

    :meth:`segment` is a drop-in replacement for
    :meth:`~repro.sim.events.LoopNest.stream_for_outer`: it returns the
    recorded arrays when available and materializes (and, budget
    permitting, records) them otherwise.
    """

    __slots__ = ("_cache", "_key", "_nest", "_line_bytes")

    def __init__(self, cache: "StreamCache", nest: LoopNest,
                 line_bytes: int) -> None:
        self._cache = cache
        self._key: _Key = (nest, line_bytes)
        self._nest = nest
        self._line_bytes = line_bytes

    def segment(self, outer_index: int) -> _Segment:
        """The nest's ``(lines, is_store)`` stream for one outer
        iteration (read-only arrays when served from the cache)."""
        return self._cache._segment(
            self._key, self._nest, self._line_bytes, outer_index
        )


class StreamCache:
    """Bounded LRU cache of materialized loop-nest line streams."""

    def __init__(self, max_bytes: int | None = None) -> None:
        self.max_bytes = (
            _default_budget_bytes() if max_bytes is None else max(0, int(max_bytes))
        )
        self._entries: OrderedDict[_Key, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = StreamCacheStats()

    def streams(self, nest: LoopNest, line_bytes: int) -> NestStreams:
        """A replay handle for ``nest`` at ``line_bytes`` granularity."""
        return NestStreams(self, nest, int(line_bytes))

    def clear(self) -> None:
        """Drop every recording (stats other than ``bytes`` persist)."""
        with self._lock:
            self._entries.clear()
            self.stats.bytes = 0

    @property
    def nests_resident(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _segment(self, key: _Key, nest: LoopNest, line_bytes: int,
                 outer_index: int) -> _Segment:
        # The cache is shared by every Simulator in the process, and the
        # serve worker pool runs simulations from several threads at
        # once; all bookkeeping therefore happens under the lock, while
        # stream *generation* (the expensive numpy work) runs outside it
        # so concurrent threads still materialize different nests in
        # parallel.
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                seg = entry.segments.get(outer_index)
                if seg is not None:
                    self.stats.replayed_segments += 1
                    COUNTERS.inc("stream_cache.replays")
                    return seg
        lines, stores = nest.stream_for_outer(outer_index, line_bytes)
        with self._lock:
            self.stats.generated_segments += 1
            COUNTERS.inc("stream_cache.generated")
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry()
                self._entries[key] = entry
            if entry.recordable and outer_index not in entry.segments:
                nbytes = int(lines.nbytes) + int(stores.nbytes)
                if self._admit(key, nbytes):
                    lines.setflags(write=False)
                    stores.setflags(write=False)
                    entry.segments[outer_index] = (lines, stores)
                    entry.nbytes += nbytes
                    self.stats.bytes += nbytes
                    self.stats.recorded_segments += 1
                    COUNTERS.inc("stream_cache.records")
                else:
                    # All-or-nothing per nest: a partial recording would
                    # regenerate the missing segments every replay anyway.
                    self.stats.bytes -= entry.nbytes
                    entry.segments.clear()
                    entry.nbytes = 0
                    entry.recordable = False
        return lines, stores

    def _admit(self, key: _Key, nbytes: int) -> bool:
        """Make room for ``nbytes`` by LRU-evicting other nests.

        Caller holds ``self._lock``.
        """
        if nbytes > self.max_bytes:
            return False
        while self.stats.bytes + nbytes > self.max_bytes:
            victim = next((k for k in self._entries if k != key), None)
            if victim is None:
                return False
            dropped = self._entries.pop(victim)
            self.stats.bytes -= dropped.nbytes
            self.stats.evicted_nests += 1
            COUNTERS.inc("stream_cache.evictions")
        return True


# ----------------------------------------------------------------------
# Process-wide default, shared by every Simulator unless overridden.
# ----------------------------------------------------------------------
_default: StreamCache | None = None


def default_stream_cache() -> StreamCache:
    """The process-wide stream cache (created lazily; budget from
    ``REPRO_STREAM_CACHE_MB`` at first use)."""
    global _default
    if _default is None:
        _default = StreamCache()
    return _default


def set_default_stream_cache(cache: StreamCache | None) -> StreamCache | None:
    """Replace the process-wide cache (``None`` resets to lazy
    creation); returns the previous one for restoration."""
    global _default
    previous = _default
    _default = cache
    return previous
