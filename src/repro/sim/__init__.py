"""Timing simulation (the gem5 RiscvMinorCPU role).

- :class:`SystemConfig` / :class:`Simulator` — configuration points of
  the co-design space and the program runner;
- :class:`LoopNest` / :class:`BodyInstr` — batched instruction-stream
  descriptors produced by :mod:`repro.model`;
- :class:`Cache` / :class:`CacheHierarchy` — exact set-associative LRU
  cache simulation;
- :func:`reuse_profile` — one-pass stack-distance miss curves, with
  :class:`SparseReuseProfile` as the weighted sparse form the sweep's
  fast backend queries per L2 capacity;
- :class:`LatencyModel` / :class:`MemoryTimings` — issue occupancy
  (constant-latency vector mode, per the paper's gem5 fork) and stall
  modeling;
- :class:`StreamCache` — bounded record/replay store for materialized
  nest line streams (streams are cache-size independent, so one
  recording serves a whole co-design sweep);
- :class:`SimStats` — the reported statistics.
"""

from repro.sim.cache import Cache, CacheHierarchy, CacheStats, HierarchyStats
from repro.sim.core import CONSTANT, THROUGHPUT, LatencyModel, MemoryTimings
from repro.sim.energy import EnergyBreakdown, EnergyModel, estimate_energy
from repro.sim.events import BodyInstr, LoopNest, total_counts
from repro.sim.replay import (
    StreamCache,
    StreamCacheStats,
    default_stream_cache,
    set_default_stream_cache,
)
from repro.sim.stackdist import ReuseProfile, SparseReuseProfile, reuse_profile
from repro.sim.stats import SimStats
from repro.sim.system import Simulator, SystemConfig

__all__ = [
    "SystemConfig",
    "Simulator",
    "SimStats",
    "LoopNest",
    "BodyInstr",
    "total_counts",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyStats",
    "ReuseProfile",
    "SparseReuseProfile",
    "reuse_profile",
    "LatencyModel",
    "MemoryTimings",
    "CONSTANT",
    "THROUGHPUT",
    "EnergyModel",
    "EnergyBreakdown",
    "estimate_energy",
    "StreamCache",
    "StreamCacheStats",
    "default_stream_cache",
    "set_default_stream_cache",
]
