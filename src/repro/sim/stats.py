"""Aggregated simulation statistics (the gem5 ``stats.txt`` role).

:class:`SimStats` is what every experiment in the package reports:
cycles (split into issue and stall components), dynamic instruction
counts per opcode class, flops, cache statistics and DRAM traffic, with
the derived quantities the paper reads off gem5 — runtime, achieved
GFLOP/s, L2 miss rate, and the DRAM-byte arithmetic intensity used for
the roofline plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa import OpClass
from repro.sim.cache import HierarchyStats


@dataclass
class SimStats:
    """Results of simulating one program (kernel, layer, or network).

    All counter fields are additive, so per-layer stats merge into
    network totals with :meth:`merge`.
    """

    freq_ghz: float = 2.0
    issue_cycles: float = 0.0
    l2_stall_cycles: float = 0.0
    dram_stall_cycles: float = 0.0
    instrs: dict[str, int] = field(default_factory=dict)
    elems: dict[str, int] = field(default_factory=dict)
    flops: int = 0
    hierarchy: HierarchyStats = field(default_factory=HierarchyStats)
    label: str = ""

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> float:
        return self.issue_cycles + self.l2_stall_cycles + self.dram_stall_cycles

    @property
    def seconds(self) -> float:
        return self.cycles / (self.freq_ghz * 1e9)

    @property
    def total_instrs(self) -> int:
        return sum(self.instrs.values())

    @property
    def vector_instrs(self) -> int:
        return sum(
            n for c, n in self.instrs.items() if c != OpClass.SCALAR.value
        )

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s (the roofline y-axis)."""
        return self.flops / self.seconds / 1e9 if self.cycles else 0.0

    @property
    def dram_bytes(self) -> int:
        return self.hierarchy.dram_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte — the paper computes AI "based on the
        DRAM bytes" (Section 6)."""
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")

    @property
    def l1_miss_rate(self) -> float:
        return self.hierarchy.l1.miss_rate

    @property
    def l2_miss_rate(self) -> float:
        return self.hierarchy.l2.miss_rate

    @property
    def stall_fraction(self) -> float:
        c = self.cycles
        return (self.l2_stall_cycles + self.dram_stall_cycles) / c if c else 0.0

    # ------------------------------------------------------------------
    def merge(self, other: "SimStats") -> None:
        """Accumulate another run's counters into this one (in place).

        Both runs must share one clock: ``seconds`` divides merged
        cycles by ``freq_ghz``, so silently mixing frequencies would
        corrupt every derived time.
        """
        if other.freq_ghz != self.freq_ghz:
            raise ConfigError(
                f"cannot merge stats at {other.freq_ghz} GHz into stats at "
                f"{self.freq_ghz} GHz"
            )
        self.issue_cycles += other.issue_cycles
        self.l2_stall_cycles += other.l2_stall_cycles
        self.dram_stall_cycles += other.dram_stall_cycles
        for k, v in other.instrs.items():
            self.instrs[k] = self.instrs.get(k, 0) + v
        for k, v in other.elems.items():
            self.elems[k] = self.elems.get(k, 0) + v
        self.flops += other.flops
        self.hierarchy.merge(other.hierarchy)

    def speedup_over(self, baseline: "SimStats") -> float:
        """baseline.cycles / self.cycles — how much faster this run is."""
        return baseline.cycles / self.cycles if self.cycles else float("inf")

    def to_dict(self) -> dict:
        """JSON-serializable summary (for tooling, the CLI, and sweep
        checkpoints).

        Carries every raw counter (the flat ``l1_*``/``l2_*`` keys are
        a readable summary; ``elems`` and ``hierarchy`` complete the
        state), so :meth:`from_dict` round-trips losslessly.
        """
        return {
            "label": self.label,
            "freq_ghz": self.freq_ghz,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "issue_cycles": self.issue_cycles,
            "l2_stall_cycles": self.l2_stall_cycles,
            "dram_stall_cycles": self.dram_stall_cycles,
            "instructions": dict(self.instrs),
            "elems": dict(self.elems),
            "flops": self.flops,
            "gflops": self.gflops,
            "l1_accesses": self.hierarchy.l1.accesses,
            "l1_misses": self.hierarchy.l1.misses,
            "l2_accesses": self.hierarchy.l2.accesses,
            "l2_misses": self.hierarchy.l2.misses,
            "l2_miss_rate": self.l2_miss_rate,
            "dram_bytes": self.dram_bytes,
            "arithmetic_intensity": (
                None if self.dram_bytes == 0 else self.arithmetic_intensity
            ),
            "hierarchy": self.hierarchy.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SimStats":
        """Inverse of :meth:`to_dict` (sweep checkpoint resume).

        Accepts older summaries without the ``hierarchy`` block by
        rebuilding the cache counters from the flat keys (eviction and
        writeback counts are then lost, which only affects reporting).
        """
        if "hierarchy" in d:
            hierarchy = HierarchyStats.from_dict(d["hierarchy"])
        else:
            hierarchy = HierarchyStats()
            hierarchy.l1.accesses = int(d.get("l1_accesses", 0))
            hierarchy.l1.misses = int(d.get("l1_misses", 0))
            hierarchy.l2.accesses = int(d.get("l2_accesses", 0))
            hierarchy.l2.misses = int(d.get("l2_misses", 0))
        return cls(
            freq_ghz=float(d["freq_ghz"]),
            issue_cycles=float(d.get("issue_cycles", 0.0)),
            l2_stall_cycles=float(d.get("l2_stall_cycles", 0.0)),
            dram_stall_cycles=float(d.get("dram_stall_cycles", 0.0)),
            instrs={str(k): int(v) for k, v in d.get("instructions", {}).items()},
            elems={str(k): int(v) for k, v in d.get("elems", {}).items()},
            flops=int(d.get("flops", 0)),
            hierarchy=hierarchy,
            label=str(d.get("label", "")),
        )

    def report(self) -> str:
        """Multi-line human-readable summary (examples and benches)."""
        lines = [
            f"--- {self.label or 'simulation'} ---",
            f"cycles          {self.cycles:16.0f}  ({self.seconds * 1e3:.3f} ms @ {self.freq_ghz} GHz)",
            f"  issue         {self.issue_cycles:16.0f}",
            f"  L2 stalls     {self.l2_stall_cycles:16.0f}",
            f"  DRAM stalls   {self.dram_stall_cycles:16.0f}",
            f"instructions    {self.total_instrs:16d}",
            f"flops           {self.flops:16d}  ({self.gflops:.2f} GFLOP/s)",
            f"L1 miss rate    {100 * self.l1_miss_rate:15.1f}%",
            f"L2 miss rate    {100 * self.l2_miss_rate:15.1f}%",
            f"DRAM bytes      {self.dram_bytes:16d}  (AI = {self.arithmetic_intensity:.3f} flop/B)",
        ]
        return "\n".join(lines)
