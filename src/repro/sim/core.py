"""In-order core timing model (the gem5 RiscvMinorCPU role).

The paper's gem5 fork "models a constant latency for all the vector
instructions" (Section 4) on an in-order RiscvMinorCPU at 2 GHz.  We
reproduce that as the default ``constant`` latency mode: every vector
instruction occupies a fixed number of issue cycles regardless of the
vector length, so halving the dynamic instruction count (by doubling
VLEN) halves compute time — exactly the scaling regime the paper's
co-design study explores — until memory stalls dominate.

Two deliberate exceptions and one alternative mode:

- **Indexed (gather/scatter) accesses** cost a setup plus a per-element
  charge: real RVV implementations (and gem5's) issue one memory access
  per element for indexed operations, which is precisely why the paper
  finds them ~2.3x slower than the slideup workaround.
- **vsetvl/scalar** bookkeeping costs one cycle.
- ``throughput`` mode charges ``ceil(elems / lanes)`` cycles per vector
  instruction for a fixed physical datapath width — the ablation for
  how much of the paper's VL-scaling conclusion rests on the fork's
  constant-latency assumption (the paper itself flags this caveat).

With the defaults (one cycle per vector instruction, 512-bit datapath),
peak fp32 throughput at 512-bit VLEN is 16 lanes x 2 flops x 2 GHz =
64 GFLOP/s — the paper's roofline compute ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa import OpClass

#: Latency modes.
CONSTANT = "constant"
THROUGHPUT = "throughput"

_INDEXED = {OpClass.VLOAD_INDEXED, OpClass.VSTORE_INDEXED}
_STRIDED = {OpClass.VLOAD_STRIDED, OpClass.VSTORE_STRIDED}
_UNIT_MEM = {OpClass.VLOAD_UNIT, OpClass.VSTORE_UNIT}
_SINGLE_CYCLE = {OpClass.SCALAR, OpClass.VSETVL}

#: fp32 elements one L1 access (64-byte line) serves for unit accesses.
_ELEMS_PER_LINE = 16


@dataclass(frozen=True)
class LatencyModel:
    """Issue-occupancy model for dynamic instructions.

    Attributes:
        mode: ``constant`` (the paper's gem5 fork) or ``throughput``.
        vec_occupancy: cycles per ordinary vector instruction in
            constant mode (also the pipeline chime floor in throughput
            mode).
        gather_setup: fixed cycles per indexed/strided memory instruction.
        gather_per_elem: additional cycles per active element of an
            indexed memory instruction (the index-register dependency
            serializes the element accesses).
        strided_per_elem: additional cycles per element of a strided
            access — cheaper than a gather because the address sequence
            is deterministic and pipelines without an index read (as in
            Ara-class implementations).
        datapath_bits: physical vector datapath width for throughput
            mode (elements processed per cycle = datapath_bits / 32).
    """

    mode: str = CONSTANT
    vec_occupancy: int = 1
    gather_setup: int = 8
    gather_per_elem: float = 0.5
    strided_per_elem: float = 0.5
    datapath_bits: int = 512

    def __post_init__(self) -> None:
        if self.mode not in (CONSTANT, THROUGHPUT):
            raise ConfigError(f"unknown latency mode {self.mode!r}")
        if self.vec_occupancy < 1 or self.gather_setup < 0:
            raise ConfigError("occupancies must be positive")
        if self.datapath_bits % 32 or self.datapath_bits <= 0:
            raise ConfigError("datapath_bits must be a positive multiple of 32")

    @property
    def lanes(self) -> int:
        """fp32 elements the datapath processes per cycle."""
        return self.datapath_bits // 32

    def issue_cycles(self, opclass: OpClass, elems: int) -> float:
        """Issue occupancy of one dynamic instruction.

        The ``constant`` mode applies the gem5 fork's fixed latency to
        *arithmetic* vector instructions; memory instructions always pay
        the memory system's occupancy on top of that behaviour:

        - indexed and strided accesses issue one L1 access per element
          (the paper's finding that "strided vector instructions perform
          equally to scatter/gather instructions" — both are per-element
          at the load/store unit);
        - unit-stride accesses issue one L1 access per 64-byte line.
        """
        if opclass in _SINGLE_CYCLE:
            return 1.0
        if opclass in _INDEXED:
            return self.gather_setup + self.gather_per_elem * elems
        if opclass in _STRIDED:
            return self.gather_setup + self.strided_per_elem * elems
        if opclass in _UNIT_MEM:
            lines = -(-max(elems, 1) // _ELEMS_PER_LINE)
            return float(max(self.vec_occupancy, lines))
        if self.mode == CONSTANT:
            return float(self.vec_occupancy)
        chimes = -(-max(elems, 1) // self.lanes)  # ceil
        return float(max(self.vec_occupancy, chimes))

    def batch_issue_cycles(self, opclass: OpClass, instrs: int, total_elems: int) -> float:
        """Issue cycles for ``instrs`` instructions totalling ``total_elems``.

        Exact for constant mode; for throughput mode it charges the mean
        element count per instruction, which is exact when all instances
        share one vector length (the common case — tails are rare).
        """
        if instrs == 0:
            return 0.0
        if opclass in _SINGLE_CYCLE:
            return float(instrs)
        if opclass in _INDEXED:
            return self.gather_setup * instrs + self.gather_per_elem * total_elems
        if opclass in _STRIDED:
            return self.gather_setup * instrs + self.strided_per_elem * total_elems
        if opclass in _UNIT_MEM:
            mean_elems = max(total_elems / instrs, 1.0)
            lines = -(-int(round(mean_elems)) // _ELEMS_PER_LINE)
            return float(max(self.vec_occupancy, lines)) * instrs
        if self.mode == CONSTANT:
            return float(self.vec_occupancy * instrs)
        mean_elems = total_elems / instrs
        chimes = -(-max(int(round(mean_elems)), 1) // self.lanes)
        return float(max(self.vec_occupancy, chimes)) * instrs


@dataclass(frozen=True)
class MemoryTimings:
    """Stall model of the memory hierarchy below the L1.

    An in-order core stalls on misses with limited memory-level
    parallelism; ``mlp_*`` are the effective overlap factors.  DRAM line
    transfers are additionally bounded by the sustained bandwidth the
    paper's roofline uses (13 GB/s).
    """

    l2_hit_latency: int = 12
    mlp_l2: float = 4.0
    dram_latency: int = 200
    mlp_dram: float = 8.0
    dram_gbs: float = 13.0
    freq_ghz: float = 2.0
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if min(self.mlp_l2, self.mlp_dram) <= 0 or self.dram_gbs <= 0:
            raise ConfigError("MLP factors and DRAM bandwidth must be positive")

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_gbs / self.freq_ghz

    @property
    def dram_cycles_per_line(self) -> float:
        """Effective cycles per DRAM line: latency/MLP vs bandwidth bound."""
        latency_bound = self.dram_latency / self.mlp_dram
        bandwidth_bound = self.line_bytes / self.dram_bytes_per_cycle
        return max(latency_bound, bandwidth_bound)

    def stall_cycles(
        self, l1_misses: int, l2_misses: int, l2_writebacks: int
    ) -> tuple[float, float]:
        """(L2 stall cycles, DRAM stall cycles) for the given miss counts.

        Writebacks consume DRAM bandwidth but not demand latency.
        """
        l2_stalls = l1_misses * self.l2_hit_latency / self.mlp_l2
        dram_stalls = (
            l2_misses * self.dram_cycles_per_line
            + l2_writebacks * self.line_bytes / self.dram_bytes_per_cycle
        )
        return l2_stalls, dram_stalls
