"""Set-associative LRU cache simulation at cache-line granularity.

Models the two-level data cache of the paper's gem5 configuration
(RiscvMinorCPU: 64 kB L1 and a configurable L2, write-allocate,
writeback).  Accesses are cache-line IDs (byte address // line size);
the hierarchy filters L1 hits and forwards misses to L2, and counts the
DRAM line traffic (fills plus dirty writebacks) that the roofline
analysis uses as "DRAM bytes".

Implementation notes: each set is an :class:`collections.OrderedDict`
from tag to dirty bit, giving O(1) LRU updates at C speed.  Access
batches are replayed through a *batched* engine: NumPy partitions the
stream by set (stably, preserving each set's program order) and
compresses runs of consecutive same-line accesses — a re-touch of the
MRU line is an LRU no-op apart from its dirty bit — so the remaining
Python loop only walks the compressed runs.  The batched engine is
bit-identical to the per-access reference loop (property-tested in the
suite): counters, miss masks and the victim stream all match exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import repeat
from typing import Any, Iterable

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.obs.counters import COUNTERS


@dataclass
class CacheStats:
    """Access counters of one cache level."""

    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.misses += other.misses
        self.evictions += other.evictions
        self.writebacks += other.writebacks

    def scaled(self, factor: float) -> "CacheStats":
        """Extrapolated copy (used by the sampling simulator).

        Each counter is rounded to an integer, then clamped along the
        causal chain ``misses <= accesses``, ``evictions <= misses``,
        ``writebacks <= evictions`` — an eviction happens only on a
        miss and a writeback only on an eviction, so independent
        rounding of small samples could otherwise report impossible
        states (more misses than accesses, i.e. negative hits, or more
        writebacks than evictions).  For counters that already satisfy
        the chain the clamps never bind: rounding is monotone, so
        scaling preserves the ordering.
        """
        if factor < 0:
            raise ConfigError(f"scale factor must be non-negative, got {factor}")
        accesses = int(round(self.accesses * factor))
        misses = min(int(round(self.misses * factor)), accesses)
        evictions = min(int(round(self.evictions * factor)), misses)
        writebacks = min(int(round(self.writebacks * factor)), evictions)
        return CacheStats(
            accesses=accesses,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )

    def to_dict(self) -> dict[str, int]:
        """JSON-serializable counters (checkpointing, CLI)."""
        return {
            "accesses": self.accesses,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CacheStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            accesses=int(d.get("accesses", 0)),
            misses=int(d.get("misses", 0)),
            evictions=int(d.get("evictions", 0)),
            writebacks=int(d.get("writebacks", 0)),
        )


class Cache:
    """One set-associative, write-allocate, writeback LRU cache level.

    Args:
        size_bytes: total capacity.
        assoc: ways per set.
        line_bytes: line size (64, as the paper's gem5 config).
        name: level label ("l1"/"l2"); when set, every batch of
            accesses also bumps the process-global observability
            counters ``cache.<name>.{accesses,misses,evictions,
            writebacks}`` (:data:`repro.obs.COUNTERS`).
    """

    def __init__(self, size_bytes: int, assoc: int = 8, line_bytes: int = 64,
                 name: str = "") -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError("cache size, associativity and line size must be positive")
        if size_bytes % (assoc * line_bytes):
            raise ConfigError(
                f"cache of {size_bytes} B is not divisible into {assoc}-way "
                f"sets of {line_bytes} B lines"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.name = name
        self.num_sets = size_bytes // (assoc * line_bytes)
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        """Zero the counters without flushing cache contents.

        Used by the sampling simulator to discard warmup accesses."""
        self.stats = CacheStats()

    def flush(self) -> None:
        """Drop all contents and counters."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def access_lines(
        self,
        lines: npt.NDArray[np.int64],
        is_store: npt.NDArray[np.bool_] | None = None,
        victims_out: list[tuple[int, int]] | None = None,
    ) -> npt.NDArray[np.bool_]:
        """Run a line-ID stream through the cache.

        Args:
            lines: int64 array of line IDs in access order.
            is_store: aligned boolean store mask; loads assumed if None.
            victims_out: if given, ``(index, line)`` pairs of dirty
                victims are appended — the writeback stream the next
                level must absorb (``index`` is the position of the
                evicting access in ``lines``).

        Returns:
            Boolean array, True where the access missed (these accesses
            propagate to the next level in program order).
        """
        n = int(lines.size)
        missed = np.zeros(n, dtype=bool)
        if n == 0:
            return missed
        nsets = self.num_sets
        assoc = self.assoc
        sets = self._sets
        stats = self.stats
        stats.accesses += n

        # Partition by set, stably: LRU state in one set depends only on
        # that set's subsequence, in program order.
        if nsets > 1:
            set_ids = lines % nsets
            order = np.argsort(set_ids, kind="stable")
            s_lines = lines[order]
            s_sets = set_ids[order]
        else:
            order = None
            s_lines = lines
            s_sets = None
        s_stores = None
        if is_store is not None:
            s_stores = is_store if order is None else is_store[order]

        # Compress runs of consecutive same-line accesses within a set:
        # within a set's subsequence, adjacency means no intervening
        # access to that set, so every access after a run's first is a
        # guaranteed MRU hit — an LRU no-op apart from OR-ing the run's
        # store flags into the dirty bit.
        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(s_lines[1:], s_lines[:-1], out=run_start[1:])
        if s_sets is not None:
            run_start[1:] |= s_sets[1:] != s_sets[:-1]
        starts = np.flatnonzero(run_start)
        run_lines = s_lines[starts].tolist()
        run_sets: Iterable[int] = (
            s_sets[starts].tolist() if s_sets is not None else repeat(0)
        )
        # Original position of each run's first access — the only one
        # that can miss (and so the only one that can evict a victim).
        run_first = (order[starts] if order is not None else starts).tolist()
        run_dirty = (
            np.logical_or.reduceat(s_stores, starts).tolist()
            if s_stores is not None else None
        )

        miss_idx: list[int] = []
        miss_append = miss_idx.append
        victims: list[tuple[int, int]] = []
        evictions = 0
        writebacks = 0
        dirty_it: Iterable[bool] = (
            run_dirty if run_dirty is not None else repeat(False)
        )
        for line, set_id, i, store in zip(
            run_lines, run_sets, run_first, dirty_it
        ):
            s = sets[set_id]
            prev = s.pop(line, None)
            if prev is None:
                # Miss: allocate (write-allocate for stores too).
                miss_append(i)
                if len(s) >= assoc:
                    victim_line, victim_dirty = s.popitem(last=False)
                    evictions += 1
                    if victim_dirty:
                        writebacks += 1
                        if victims_out is not None:
                            victims.append((i, victim_line))
                s[line] = store
            else:
                s[line] = prev or store
        miss_count = len(miss_idx)
        if miss_idx:
            missed[miss_idx] = True
        if victims_out is not None and victims:
            # The replay visits sets out of program order; each evicting
            # access produces at most one victim, so sorting by access
            # index restores the program-order victim stream.
            victims.sort()
            victims_out.extend(victims)
        stats.misses += miss_count
        stats.evictions += evictions
        stats.writebacks += writebacks
        if self.name:
            prefix = f"cache.{self.name}."
            COUNTERS.inc(prefix + "accesses", n)
            COUNTERS.inc(prefix + "misses", miss_count)
            if evictions:
                COUNTERS.inc(prefix + "evictions", evictions)
            if writebacks:
                COUNTERS.inc(prefix + "writebacks", writebacks)
        return missed

    @property
    def lines_resident(self) -> int:
        return sum(len(s) for s in self._sets)


@dataclass
class HierarchyStats:
    """Joint statistics of an L1+L2 hierarchy plus DRAM traffic."""

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    line_bytes: int = 64

    @property
    def dram_lines(self) -> int:
        """Lines moved to/from DRAM: L2 fills plus dirty writebacks."""
        return self.l2.misses + self.l2.writebacks

    @property
    def dram_bytes(self) -> int:
        return self.dram_lines * self.line_bytes

    def merge(self, other: "HierarchyStats") -> None:
        self.l1.merge(other.l1)
        self.l2.merge(other.l2)

    def scaled(self, factor: float) -> "HierarchyStats":
        return HierarchyStats(
            l1=self.l1.scaled(factor), l2=self.l2.scaled(factor),
            line_bytes=self.line_bytes,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable counters (checkpointing, CLI)."""
        return {
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "line_bytes": self.line_bytes,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "HierarchyStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            l1=CacheStats.from_dict(d.get("l1", {})),
            l2=CacheStats.from_dict(d.get("l2", {})),
            line_bytes=int(d.get("line_bytes", 64)),
        )


class CacheHierarchy:
    """Two-level data cache as in the paper's gem5 configuration.

    Args:
        l1_kb: L1 data cache capacity in kB (paper: 64).
        l2_mb: L2 capacity in MB (paper sweeps 1 — 256).
        l1_assoc/l2_assoc: associativities (gem5 defaults: 8/16-way are
            typical; results are insensitive within realistic ranges —
            see the ablation bench).
        line_bytes: cache-line size.
    """

    def __init__(
        self,
        l1_kb: int = 64,
        l2_mb: int = 1,
        l1_assoc: int = 8,
        l2_assoc: int = 16,
        line_bytes: int = 64,
    ) -> None:
        self.line_bytes = line_bytes
        self.l1 = Cache(l1_kb * 1024, l1_assoc, line_bytes, name="l1")
        self.l2 = Cache(l2_mb * 1024 * 1024, l2_assoc, line_bytes, name="l2")

    def access(
        self,
        lines: npt.NDArray[np.int64],
        is_store: npt.NDArray[np.bool_] | None = None,
    ) -> None:
        """Push a line stream through L1 then L2.

        The L2 absorbs two streams: L1 misses (refills, keeping their
        store mask) and L1 dirty-victim writebacks, which arrive as
        store accesses right after the miss that evicted them.  Without
        the writeback stream a line dirtied by an L1 store *hit* would
        silently vanish on eviction and the L2's accesses, dirty state
        and downstream DRAM traffic would all be understated.
        """
        victims: list[tuple[int, int]] = []
        l1_missed = self.l1.access_lines(lines, is_store, victims_out=victims)
        n_miss = int(l1_missed.sum())
        if n_miss == 0 and not victims:
            return
        miss_idx = np.flatnonzero(l1_missed)
        miss_lines = lines[l1_missed]
        miss_stores = (
            is_store[l1_missed]
            if is_store is not None
            else np.zeros(n_miss, dtype=bool)
        )
        if victims:
            v_idx = np.array([i for i, _ in victims], dtype=np.int64)
            v_lines = np.array([l for _, l in victims], dtype=np.int64)
            # Merge in program order; the stable sort keeps each
            # writeback just after the miss that evicted its victim.
            idx = np.concatenate([miss_idx, v_idx])
            l2_lines = np.concatenate([miss_lines, v_lines])
            l2_stores = np.concatenate(
                [miss_stores, np.ones(v_lines.size, dtype=bool)]
            )
            order = np.argsort(idx, kind="stable")
            l2_lines = l2_lines[order]
            l2_stores = l2_stores[order]
        else:
            l2_lines, l2_stores = miss_lines, miss_stores
        self.l2.access_lines(l2_lines, l2_stores)

    def snapshot(self) -> HierarchyStats:
        """Copy of the current counters."""
        return HierarchyStats(
            l1=CacheStats(**vars(self.l1.stats)),
            l2=CacheStats(**vars(self.l2.stats)),
            line_bytes=self.line_bytes,
        )

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
