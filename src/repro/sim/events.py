"""Batched instruction-stream descriptors for the timing simulator.

The functional machine can feed the timing model instruction by
instruction, but a full network layer executes on the order of 1e8-1e9
dynamic vector instructions — the same wall that forces the paper to
simulate only the first 20 YOLOv3 layers in gem5.  The analytical models
in :mod:`repro.model` therefore describe kernels as *loop nests*: a
rectangular iteration space with a fixed body of instruction templates
whose addresses are affine in the loop indices.  This preserves exactly
what the timing model consumes — dynamic instruction counts per opcode
class and the ordered cache-line address stream — while letting the
cache simulator sample the iteration space instead of enumerating it.

The two key types:

- :class:`BodyInstr` — one instruction template: opcode class, active
  element count, and (for memory operations) an affine address function
  ``base + sum_d idx[d] * dim_strides[d]`` plus an element stride or an
  explicit indexed-offset pattern.
- :class:`LoopNest` — the iteration space ``dims`` (outermost first)
  and the body executed once per point of it, in order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.isa import FLOPS_PER_ELEM, IS_MEM, OpClass


@dataclass(frozen=True)
class BodyInstr:
    """One instruction template inside a loop nest body.

    Attributes:
        opclass: opcode class of the instruction.
        elems: active vector elements per dynamic instance.
        base: base byte address (memory instructions only).
        dim_strides: byte advance of the base per unit step of each loop
            dimension (aligned with ``LoopNest.dims``; missing trailing
            entries are treated as zero).
        elem_stride: byte distance between consecutive elements (unit
            accesses use the element size, strided accesses their
            stride).
        offsets: for indexed accesses, the per-element byte offsets from
            the (affine) base.
        is_load: direction of a memory access.
        ebytes: element size in bytes.
    """

    opclass: OpClass
    elems: int
    base: int = 0
    dim_strides: tuple[int, ...] = ()
    elem_stride: int = 4
    offsets: tuple[int, ...] | None = None
    is_load: bool = True
    ebytes: int = 4

    def __post_init__(self) -> None:
        if self.elems < 0:
            raise ConfigError(f"elems must be non-negative, got {self.elems}")
        if self.opclass in IS_MEM and self.offsets is None and self.elem_stride == 0:
            raise ConfigError("memory template needs elem_stride or offsets")
        if self.offsets is not None and len(self.offsets) != self.elems:
            raise ConfigError(
                f"offsets length {len(self.offsets)} != elems {self.elems}"
            )

    @property
    def is_mem(self) -> bool:
        return self.opclass in IS_MEM

    @property
    def flops(self) -> int:
        """FLOPs contributed by one dynamic instance."""
        return FLOPS_PER_ELEM.get(self.opclass, 0) * self.elems

    @property
    def bytes(self) -> int:
        """Payload bytes moved by one dynamic instance (memory only)."""
        return self.elems * self.ebytes if self.is_mem else 0

    def element_offsets(self) -> np.ndarray:
        """Byte offsets of every element relative to the instance base."""
        if self.offsets is not None:
            return np.asarray(self.offsets, dtype=np.int64)
        return np.arange(self.elems, dtype=np.int64) * self.elem_stride

    def lines_per_instance(self, line_bytes: int = 64) -> np.ndarray:
        """Deduplicated line offsets (in lines, relative to base // line).

        Valid when the instance base is line-aligned; the cache stream
        generator handles unaligned bases by adding the base separately
        before dividing, so this helper is used only for quick sizing.
        """
        offs = self.element_offsets()
        lines = np.unique(
            np.concatenate([offs // line_bytes, (offs + self.ebytes - 1) // line_bytes])
        )
        return lines


@dataclass(frozen=True)
class LoopNest:
    """A rectangular loop nest with a fixed instruction body.

    ``dims`` are trip counts, outermost first.  The dynamic execution is
    the lexicographic walk of the iteration space, executing every
    :class:`BodyInstr` in ``body`` order at each point.

    The nests produced by :mod:`repro.model` put the largest,
    homogeneous loop outermost, which is what the sampling cache
    simulator slices.
    """

    name: str
    dims: tuple[int, ...]
    body: tuple[BodyInstr, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ConfigError(f"loop nest '{self.name}' needs at least one dim")
        if any(d < 0 for d in self.dims):
            raise ConfigError(f"negative trip count in nest '{self.name}': {self.dims}")
        if not self.body:
            raise ConfigError(f"loop nest '{self.name}' has an empty body")

    # ------------------------------------------------------------------
    # Analytic totals (exact, no enumeration)
    # ------------------------------------------------------------------
    @property
    def trips(self) -> int:
        t = 1
        for d in self.dims:
            t *= d
        return t

    @property
    def inner_trips(self) -> int:
        """Iterations of everything inside the outermost loop."""
        t = 1
        for d in self.dims[1:]:
            t *= d
        return t

    def instr_counts(self) -> dict[OpClass, int]:
        """Dynamic instruction count per opcode class."""
        counts: dict[OpClass, int] = {}
        for bi in self.body:
            counts[bi.opclass] = counts.get(bi.opclass, 0) + self.trips
        return counts

    def elem_counts(self) -> dict[OpClass, int]:
        counts: dict[OpClass, int] = {}
        for bi in self.body:
            counts[bi.opclass] = counts.get(bi.opclass, 0) + self.trips * bi.elems
        return counts

    def total_flops(self) -> int:
        return sum(bi.flops for bi in self.body) * self.trips

    def total_mem_bytes(self) -> tuple[int, int]:
        """(bytes loaded, bytes stored) over the whole nest."""
        ld = sum(bi.bytes for bi in self.body if bi.is_mem and bi.is_load)
        st = sum(bi.bytes for bi in self.body if bi.is_mem and not bi.is_load)
        return ld * self.trips, st * self.trips

    # ------------------------------------------------------------------
    # Address stream generation
    # ------------------------------------------------------------------
    def _strides_padded(self, bi: BodyInstr) -> np.ndarray:
        s = np.zeros(len(self.dims), dtype=np.int64)
        ds = np.asarray(bi.dim_strides[: len(self.dims)], dtype=np.int64)
        s[: ds.size] = ds
        return s

    def stream_for_outer(
        self, outer_index: int, line_bytes: int = 64
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ordered cache-line stream of one outermost-loop iteration.

        Enumerates the inner iteration space with NumPy index grids and
        produces, for every inner point and every memory template in
        body order, the deduplicated-per-instruction line IDs.

        Returns:
            ``(lines, is_store)`` — the int64 line-ID stream and an
            aligned boolean store mask (for writeback modeling).
        """
        if not 0 <= outer_index < self.dims[0]:
            raise ConfigError(
                f"outer index {outer_index} out of range for dims {self.dims}"
            )
        inner_dims = self.dims[1:]
        n_inner = self.inner_trips
        mem_templates = [bi for bi in self.body if bi.is_mem]
        if not mem_templates or n_inner == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)

        # Index grid of the inner space, shape (n_inner, len(inner_dims)).
        if inner_dims:
            grids = np.meshgrid(
                *[np.arange(d, dtype=np.int64) for d in inner_dims], indexing="ij"
            )
            idx = np.stack([g.ravel() for g in grids], axis=1)
        else:
            idx = np.zeros((1, 0), dtype=np.int64)

        per_instr: list[tuple[np.ndarray, np.ndarray, bool]] = []
        uniform = True
        widths: list[int] = []
        for bi in mem_templates:
            strides = self._strides_padded(bi)
            inner_adv = (
                idx @ strides[1:] if strides[1:].size
                else np.zeros(n_inner, dtype=np.int64)
            )
            bases = bi.base + outer_index * strides[0] + inner_adv  # (n_inner,)
            offs = bi.element_offsets()  # (elems,)
            first = bases[:, None] + offs[None, :]
            # Per-instruction dedup: the load/store unit touches each
            # line once.  Sorting each row and dropping consecutive
            # duplicates is exact for the affine patterns used here.
            rows = np.sort(
                np.concatenate(
                    [first // line_bytes, (first + bi.ebytes - 1) // line_bytes],
                    axis=1,
                ),
                axis=1,
            )
            keep = np.ones_like(rows, dtype=bool)
            keep[:, 1:] = rows[:, 1:] != rows[:, :-1]
            counts = keep.sum(axis=1)
            w = int(counts[0])
            if not np.all(counts == w):
                uniform = False
                w = -1
            widths.append(w)
            per_instr.append((rows, keep, not bi.is_load))

        if uniform:
            # Fast path: every instance of each template touches the same
            # number of lines, so the interleave is a reshape.
            total_w = sum(widths)
            out = np.empty((n_inner, total_w), dtype=np.int64)
            stores = np.empty((n_inner, total_w), dtype=bool)
            col = 0
            for (rows, keep, is_store), w in zip(per_instr, widths):
                out[:, col : col + w] = rows[keep].reshape(n_inner, w)
                stores[:, col : col + w] = is_store
                col += w
            return out.ravel(), stores.ravel()

        # Slow path: ragged per-instance line counts.
        chunks: list[np.ndarray] = []
        smask: list[np.ndarray] = []
        for i in range(n_inner):
            for rows, keep, is_store in per_instr:
                sel = rows[i][keep[i]]
                chunks.append(sel)
                smask.append(np.full(sel.size, is_store, dtype=bool))
        return np.concatenate(chunks), np.concatenate(smask)

    def line_stream_for_outer(
        self, outer_index: int, line_bytes: int = 64
    ) -> np.ndarray:
        """Line IDs only; see :meth:`stream_for_outer`."""
        return self.stream_for_outer(outer_index, line_bytes)[0]


def total_counts(nests: list[LoopNest]) -> dict[OpClass, int]:
    """Aggregate instruction counts over a program (list of nests)."""
    out: dict[OpClass, int] = {}
    for nest in nests:
        for c, n in nest.instr_counts().items():
            out[c] = out.get(c, 0) + n
    return out
