"""Reuse-distance (stack-distance) profiling.

One pass over an access stream yields the LRU stack-distance histogram,
from which the miss count of a fully-associative LRU cache of *any*
capacity follows directly: an access misses iff its reuse distance (the
number of distinct lines touched since the previous access to the same
line) is at least the capacity in lines.  This is the classical Mattson
et al. result and a standard, well-validated approximation for highly
associative caches like the paper's L2.

The co-design harness uses it as a fast cross-check of the exact
set-associative simulation across the paper's 1 — 256 MB L2 sweep (one
profiling pass answers every capacity at once), and the test suite uses
it to validate the exact simulator and vice versa.

The implementation is the Fenwick-tree (binary indexed tree) algorithm:
O(N log N) with NumPy-backed bulk operations where possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


class _Fenwick:
    """Fenwick tree over time slots, counting 'most recent' positions."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of entries [0, i)."""
        s = 0
        while i > 0:
            s += int(self.tree[i])
            i -= i & (-i)
        return s


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse-distance histogram of one access stream.

    ``histogram[d]`` counts accesses with stack distance exactly ``d``
    (in distinct lines); ``cold`` counts first-touch accesses, which
    miss in every finite cache.
    """

    histogram: np.ndarray
    cold: int
    total: int

    def misses_for_capacity(self, capacity_lines: int) -> int:
        """Misses of a fully-associative LRU cache with that capacity."""
        if capacity_lines <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_lines}")
        if capacity_lines >= self.histogram.size:
            return self.cold
        return self.cold + int(self.histogram[capacity_lines:].sum())

    def miss_rate_for_capacity(self, capacity_lines: int) -> float:
        return (
            self.misses_for_capacity(capacity_lines) / self.total
            if self.total
            else 0.0
        )

    def miss_curve(self, capacities_lines: list[int]) -> dict[int, float]:
        """Miss rate for each capacity — the whole sweep from one pass."""
        return {c: self.miss_rate_for_capacity(c) for c in capacities_lines}


def reuse_profile(lines: np.ndarray) -> ReuseProfile:
    """Compute the stack-distance histogram of a line-ID stream.

    Args:
        lines: int64 array of line IDs in access order.

    Returns:
        A :class:`ReuseProfile`; distances are counted in distinct lines.
    """
    n = int(lines.size)
    if n == 0:
        return ReuseProfile(histogram=np.zeros(1, dtype=np.int64), cold=0, total=0)
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    hist = np.zeros(n + 1, dtype=np.int64)
    cold = 0
    stream = lines.tolist()
    for t, line in enumerate(stream):
        prev = last_pos.get(line)
        if prev is None:
            cold += 1
        else:
            # Distinct lines accessed in (prev, t): each has its most
            # recent access marked in the tree after position prev.
            dist = tree.prefix_sum(t) - tree.prefix_sum(prev + 1)
            hist[dist] += 1
            tree.add(prev, -1)
        tree.add(t, 1)
        last_pos[line] = t
    # Trim the histogram tail.
    nz = np.nonzero(hist)[0]
    top = int(nz[-1]) + 1 if nz.size else 1
    return ReuseProfile(histogram=hist[:top].copy(), cold=cold, total=n)
