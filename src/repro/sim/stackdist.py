"""Reuse-distance (stack-distance) profiling.

One pass over an access stream yields the LRU stack-distance histogram,
from which the miss count of a fully-associative LRU cache of *any*
capacity follows directly: an access misses iff its reuse distance (the
number of distinct lines touched since the previous access to the same
line) is at least the capacity in lines.  This is the classical Mattson
et al. result and a standard, well-validated approximation for highly
associative caches like the paper's L2.

Two representations share that criterion:

- :class:`ReuseProfile` — the dense histogram an empirical pass over a
  line-ID stream produces (:func:`reuse_profile`, the Fenwick-tree
  O(N log N) algorithm);
- :class:`SparseReuseProfile` — a weighted, sorted (distance, weight)
  form with O(log N) capacity queries via precomputed suffix sums.  The
  co-design sweep's fast backend (:mod:`repro.codesign.fastpath`) builds
  one per layer from the analytical traffic classes and answers the
  whole 1 — 256 MB L2 axis from that single profiling pass; the dense
  form converts losslessly via :meth:`ReuseProfile.to_sparse`.

The test suite uses both to validate the exact set-associative
simulator and vice versa (differential and property-based campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


class _Fenwick:
    """Fenwick tree over time slots, counting 'most recent' positions."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of entries [0, i)."""
        s = 0
        while i > 0:
            s += int(self.tree[i])
            i -= i & (-i)
        return s


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse-distance histogram of one access stream.

    ``histogram[d]`` counts accesses with stack distance exactly ``d``
    (in distinct lines); ``cold`` counts first-touch accesses, which
    miss in every finite cache.
    """

    histogram: np.ndarray
    cold: int
    total: int

    def misses_for_capacity(self, capacity_lines: int) -> int:
        """Misses of a fully-associative LRU cache with that capacity."""
        if capacity_lines <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_lines}")
        if capacity_lines >= self.histogram.size:
            return self.cold
        return self.cold + int(self.histogram[capacity_lines:].sum())

    def miss_rate_for_capacity(self, capacity_lines: int) -> float:
        return (
            self.misses_for_capacity(capacity_lines) / self.total
            if self.total
            else 0.0
        )

    def miss_curve(self, capacities_lines: list[int]) -> dict[int, float]:
        """Miss rate for each capacity — the whole sweep from one pass."""
        return {c: self.miss_rate_for_capacity(c) for c in capacities_lines}

    def to_sparse(self) -> "SparseReuseProfile":
        """Lossless sparse form (cold accesses become infinite distance)."""
        idx = np.nonzero(self.histogram)[0]
        distances = idx.astype(np.float64)
        weights = self.histogram[idx].astype(np.float64)
        if self.cold:
            distances = np.append(distances, np.inf)
            weights = np.append(weights, float(self.cold))
        return SparseReuseProfile(distances=distances, weights=weights)


@dataclass(frozen=True)
class SparseReuseProfile:
    """A weighted stack-distance profile in sparse form.

    ``weights[i]`` accesses were observed (or analytically derived) at
    stack distance ``distances[i]``, counted in distinct cache lines;
    a distance of ``inf`` marks cold (first-touch) accesses, which miss
    in every finite cache.  Distances must be sorted ascending and
    unique — build via :meth:`from_distances` for arbitrary input.

    Weights may be fractional: the analytical traffic models hand the
    L2 a *expected* number of line touches per reuse-distance class,
    and the Mattson criterion is linear in the weights, so fractional
    mass composes exactly.

    Capacity queries are O(log N): a suffix-sum table is precomputed,
    and the misses of a capacity-``C`` fully-associative LRU cache are
    the total weight at distances >= ``C``.
    """

    distances: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        d = np.asarray(self.distances, dtype=np.float64)
        w = np.asarray(self.weights, dtype=np.float64)
        if d.shape != w.shape or d.ndim != 1:
            raise ConfigError(
                "distances and weights must be 1-D arrays of equal length"
            )
        if d.size and (np.any(np.diff(d) <= 0) or d[0] < 0):
            raise ConfigError(
                "distances must be non-negative, sorted and unique "
                "(use SparseReuseProfile.from_distances)"
            )
        if np.any(w < 0) or np.any(np.isnan(w)):
            raise ConfigError("weights must be non-negative")
        object.__setattr__(self, "distances", d)
        object.__setattr__(self, "weights", w)
        # suffix[i] = total weight at distances[i:]; suffix[N] = 0.
        suffix = np.zeros(d.size + 1, dtype=np.float64)
        if d.size:
            suffix[:-1] = np.cumsum(w[::-1])[::-1]
        object.__setattr__(self, "_suffix", suffix)

    @classmethod
    def from_distances(
        cls, distances: np.ndarray, weights: np.ndarray
    ) -> "SparseReuseProfile":
        """Build from unordered, possibly duplicated distances.

        Duplicate distances have their weights coalesced; zero-weight
        entries are dropped.
        """
        d = np.asarray(distances, dtype=np.float64)
        w = np.asarray(weights, dtype=np.float64)
        if d.shape != w.shape or d.ndim != 1:
            raise ConfigError(
                "distances and weights must be 1-D arrays of equal length"
            )
        uniq, inverse = np.unique(d, return_inverse=True)
        mass = np.bincount(inverse, weights=w, minlength=uniq.size)
        keep = mass > 0
        return cls(distances=uniq[keep], weights=mass[keep])

    @property
    def total(self) -> float:
        """Total access weight in the profile."""
        return float(self._suffix[0])  # type: ignore[attr-defined]

    @property
    def cold(self) -> float:
        """Weight of cold (infinite-distance) accesses."""
        if self.distances.size and np.isinf(self.distances[-1]):
            return float(self.weights[-1])
        return 0.0

    def misses_for_capacity(self, capacity_lines: float) -> float:
        """Miss weight of a fully-associative LRU cache of that capacity."""
        if capacity_lines <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_lines}")
        i = int(np.searchsorted(self.distances, capacity_lines, side="left"))
        return float(self._suffix[i])  # type: ignore[attr-defined]

    def miss_rate_for_capacity(self, capacity_lines: float) -> float:
        return (
            self.misses_for_capacity(capacity_lines) / self.total
            if self.total
            else 0.0
        )

    def miss_curve(self, capacities_lines: list[int]) -> dict[int, float]:
        """Miss rate for each capacity — the whole sweep from one pass."""
        return {c: self.miss_rate_for_capacity(c) for c in capacities_lines}

    def merge(self, other: "SparseReuseProfile") -> "SparseReuseProfile":
        """The profile of the concatenated access populations."""
        return SparseReuseProfile.from_distances(
            np.concatenate([self.distances, other.distances]),
            np.concatenate([self.weights, other.weights]),
        )


def reuse_profile(lines: np.ndarray) -> ReuseProfile:
    """Compute the stack-distance histogram of a line-ID stream.

    Args:
        lines: int64 array of line IDs in access order.

    Returns:
        A :class:`ReuseProfile`; distances are counted in distinct lines.
    """
    n = int(lines.size)
    if n == 0:
        return ReuseProfile(histogram=np.zeros(1, dtype=np.int64), cold=0, total=0)
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    hist = np.zeros(n + 1, dtype=np.int64)
    cold = 0
    stream = lines.tolist()
    for t, line in enumerate(stream):
        prev = last_pos.get(line)
        if prev is None:
            cold += 1
        else:
            # Distinct lines accessed in (prev, t): each has its most
            # recent access marked in the tree after position prev.
            dist = tree.prefix_sum(t) - tree.prefix_sum(prev + 1)
            hist[dist] += 1
            tree.add(prev, -1)
        tree.add(t, 1)
        last_pos[line] = t
    # Trim the histogram tail.
    nz = np.nonzero(hist)[0]
    top = int(nz[-1]) + 1 if nz.size else 1
    return ReuseProfile(histogram=hist[:top].copy(), cold=cold, total=n)
