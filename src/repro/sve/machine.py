"""ARM-SVE flavor of the functional vector machine.

The paper validates its RVV results by comparing against the authors'
earlier ARM-SVE port of the same kernels, finding "similar performance
and performance trends".  To reproduce that comparison we provide
:class:`SveMachine`: the same execution engine as
:class:`~repro.rvv.RvvMachine`, but speaking SVE's instruction
vocabulary and exhibiting SVE's ISA differences:

- there is no ``vsetvl``; strip-mining is expressed with ``whilelt``
  predicate generation (accounted as a mask instruction);
- there are no strided loads/stores; strided access is performed with
  gather/scatter plus index setup (SVE's actual limitation);
- in-register data movement uses ``EXT`` (accounted as a slide) and
  ``TBL`` (a permute).

Because the adapter exposes the same method names as
:class:`~repro.rvv.RvvMachine`, every kernel in :mod:`repro.kernels` is
single-source across the two ISAs — the vector-length-agnostic
portability the paper advertises — while the traced instruction mix
differs exactly where the ISAs differ.
"""

from __future__ import annotations

import numpy as np

from repro.isa import OpClass
from repro.isa.encoding import VType
from repro.isa import vsetvl as isa_vsetvl
from repro.rvv.machine import VectorEngine
from repro.rvv.tracer import Operands
from repro.errors import VectorStateError


class SveMachine(VectorEngine):
    """ARM Scalable Vector Extension functional machine.

    SVE implementations fix the vector length between 128 and 2048 bits;
    we deliberately accept the same range as the RVV machine so the
    co-design sweep can compare both ISAs at every simulated length, as
    the paper's gem5 setup does.
    """

    # --- native SVE surface ------------------------------------------------
    def whilelt(self, i: int, n: int) -> int:
        """Predicate generation: active lanes = min(n - i, VLMAX).

        Returns the number of active lanes, which the engine stores as
        the granted vector length (a contiguous predicate; none of the
        paper's kernels need sparse predicates).
        """
        if i > n:
            raise VectorStateError(f"whilelt with i={i} > n={n}")
        self.vtype = VType(sew=32, lmul=1)
        self.vl = isa_vsetvl(n - i, self.vlen_bits, 32, 1)
        self._configured = True
        self.tracer.record(OpClass.VMASK, self.vl, 32,
                           ops=Operands("whilelt", avl=n - i))
        return self.vl

    def ld1w(self, vd: int, addr: int) -> None:
        """Contiguous predicated load (``ld1w``)."""
        self._ld_unit(vd, addr, mn="ld1w")

    def st1w(self, vs: int, addr: int) -> None:
        """Contiguous predicated store (``st1w``)."""
        self._st_unit(vs, addr, mn="st1w")

    def ld1w_gather(self, vd: int, base: int, vidx: int) -> None:
        """Gather load with a vector of uint32 byte offsets."""
        self._ld_indexed(vd, base, vidx, mn="ld1w_gather")

    def st1w_scatter(self, vs: int, base: int, vidx: int) -> None:
        """Scatter store with a vector of uint32 byte offsets."""
        self._st_indexed(vs, base, vidx, mn="st1w_scatter")

    def fmla(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd += vs1 * vs2`` (FMLA)."""
        self._fma(vd, vs1, vs2, mn="fmla")

    def fmla_f(self, vd: int, f: float, vs: int) -> None:
        """FMLA against a replicated scalar."""
        self._fma_f(vd, f, vs, mn="fmla")

    def fadd(self, vd: int, vs1: int, vs2: int) -> None:
        self._arith("add", vd, vs1, vs2, mn="fadd")

    def fsub(self, vd: int, vs1: int, vs2: int) -> None:
        self._arith("sub", vd, vs1, vs2, mn="fsub")

    def fmul(self, vd: int, vs1: int, vs2: int) -> None:
        self._arith("mul", vd, vs1, vs2, mn="fmul")

    def dup(self, vd: int, f: float) -> None:
        """Broadcast a scalar to every active lane."""
        self._splat_f(vd, f, mn="dup")

    def tbl(self, vd: int, vs: int, vidx: int) -> None:
        """Table permute (``TBL``): vd[i] = vs[vidx[i]], OOB lanes 0."""
        self._gather_reg(vd, vs, vidx, mn="tbl")

    def ext(self, vd: int, vs: int, offset_elems: int) -> None:
        """``EXT``-style lane shift used to emulate a slide-up."""
        self._slideup(vd, vs, offset_elems, mn="ext")

    def index_u32(self, vd: int, start: int, step: int) -> None:
        """``INDEX``: vd[i] = start + i*step (uint32)."""
        vl = self._require_vl()
        self._u32(vd)[:vl] = (
            np.uint32(start) + np.arange(vl, dtype=np.uint32) * np.uint32(step)
        )
        self.tracer.record(OpClass.VIARITH, vl, 32,
                           ops=Operands("index", vd=vd, imm=step))

    # --- RVV-compatible adapter (single-source kernels) ---------------------
    def setvl(self, avl: int, sew: int = 32, lmul: int = 1) -> int:
        """Strip-mining adapter: maps to ``whilelt`` predicate setup."""
        if sew != 32 or lmul != 1:
            raise VectorStateError("the SVE flavor implements fp32, LMUL=1 kernels")
        return self.whilelt(0, avl)

    def vle32(self, vd: int, addr: int) -> None:
        self.ld1w(vd, addr)

    def vse32(self, vs: int, addr: int) -> None:
        self.st1w(vs, addr)

    def vlse32(self, vd: int, addr: int, stride_bytes: int) -> None:
        """SVE has no strided load: INDEX + gather, two instructions."""
        vl = self._require_vl()
        with self.alloc.scoped(1) as (vidx,):
            self.index_u32(vidx, 0, stride_bytes)
            self.ld1w_gather(vd, addr, vidx)

    def vsse32(self, vs: int, addr: int, stride_bytes: int) -> None:
        """SVE has no strided store: INDEX + scatter, two instructions."""
        with self.alloc.scoped(1) as (vidx,):
            self.index_u32(vidx, 0, stride_bytes)
            self.st1w_scatter(vs, addr, vidx)

    def vluxei32(self, vd: int, base: int, vidx: int) -> None:
        self.ld1w_gather(vd, base, vidx)

    def vsuxei32(self, vs: int, base: int, vidx: int) -> None:
        self.st1w_scatter(vs, base, vidx)

    def vfmacc_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self.fmla(vd, vs1, vs2)

    def vfmacc_vf(self, vd: int, f: float, vs: int) -> None:
        self.fmla_f(vd, f, vs)

    def vfnmsac_vf(self, vd: int, f: float, vs: int) -> None:
        self._nfms_f(vd, f, vs, mn="fnmls")

    def vfadd_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self.fadd(vd, vs1, vs2)

    def vfsub_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self.fsub(vd, vs1, vs2)

    def vfmul_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self.fmul(vd, vs1, vs2)

    def vfadd_vf(self, vd: int, vs: int, f: float) -> None:
        self._arith_f("add", vd, vs, f, mn="fadd")

    def vfmul_vf(self, vd: int, vs: int, f: float) -> None:
        self._arith_f("mul", vd, vs, f, mn="fmul")

    def vfredusum(self, vs: int) -> float:
        return self._redsum(vs, mn="faddv")

    def vfmv_v_f(self, vd: int, f: float) -> None:
        self.dup(vd, f)

    def vmv_v_v(self, vd: int, vs: int) -> None:
        self._mov(vd, vs, mn="mov")

    def vid_v(self, vd: int) -> None:
        self.index_u32(vd, 0, 1)

    def vadd_vx(self, vd: int, vs: int, x: int) -> None:
        self._iadd_x(vd, vs, x, mn="add")

    def vmul_vx(self, vd: int, vs: int, x: int) -> None:
        self._imul_x(vd, vs, x, mn="mul")

    def vand_vx(self, vd: int, vs: int, x: int) -> None:
        self._iand_x(vd, vs, x, mn="and")

    def load_index_u32(self, vd: int, offsets: np.ndarray) -> None:
        """Load precomputed byte offsets into an index register.

        SVE kernels materialize index vectors from memory just like the
        RVV ones do (Algorithm 1); the load is a contiguous ``ld1w``.
        """
        vl = self._require_vl()
        offs = np.ascontiguousarray(offsets, dtype=np.uint32)
        if offs.size < vl:
            raise VectorStateError(f"index array has {offs.size} entries but vl={vl}")
        if not hasattr(self, "_index_scratch") or self._index_scratch_cap < vl:
            self._index_scratch = self.memory.alloc(4 * self.vlmax,
                                                    label="index_scratch")
            self._index_scratch_cap = self.vlmax
        self.memory.view(self._index_scratch, vl, np.uint32)[:] = offs[:vl]
        self._u32(vd)[:vl] = offs[:vl]
        from repro.rvv.tracer import MemAccess

        self.tracer.record(
            OpClass.VLOAD_UNIT, vl, 32,
            MemAccess(kind="unit", base=self._index_scratch, elems=vl,
                      ebytes=4, stride=4, is_load=True),
            ops=Operands("ld1w", vd=vd),
        )

    def vslideup_vx(self, vd: int, vs: int, offset: int) -> None:
        """Slide-up adapter: SVE expresses this with ``EXT``."""
        self.ext(vd, vs, offset)

    def vslidedown_vx(self, vd: int, vs: int, offset: int) -> None:
        self._slidedown(vd, vs, offset, mn="ext")

    def vrgather_vv(self, vd: int, vs: int, vidx: int) -> None:
        self.tbl(vd, vs, vidx)
