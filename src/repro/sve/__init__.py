"""ARM-SVE flavor of the functional vector machine.

See :class:`SveMachine`; it shares the execution engine with the RVV
machine and exposes both SVE-native operations and an RVV-compatible
adapter so the kernels in :mod:`repro.kernels` run unmodified on both
ISAs (the paper's RVV-vs-SVE comparison, Section 5).
"""

from repro.sve.machine import SveMachine

__all__ = ["SveMachine"]
