"""The sweep's stack-distance fast backend.

The exact backend re-runs :func:`repro.nets.inference.simulate_inference`
at every (VLEN, L2) grid point, even though everything expensive about a
point — the per-layer phase models, instruction counts, issue cycles,
and the L1 split (the L1 is fixed across the sweep) — depends only on
the vector length.  Only the L2 hit/miss decision varies along the L2
axis, and Mattson's stack-distance result answers it for *every*
capacity from a single profile: an access misses a capacity-``C`` LRU
cache iff its reuse distance is at least ``C``.

:func:`profile_network` therefore runs one profiling pass per
(network, VLEN): it builds the phase models once, resolves the L1 split
with the same smoothed criterion the exact backend uses, and condenses
the L2-bound traffic of each layer into a
:class:`~repro.sim.stackdist.SparseReuseProfile` — a weighted
stack-distance histogram of the model's cache-line touch stream, in
lines.  :meth:`NetworkProfile.evaluate` then derives miss counts, DRAM
traffic and stall cycles for any L2 capacity in O(log N), collapsing
the sweep's L2 axis from N simulations to one pass.

Error model (stated, and enforced by the differential test tier): the
fast backend applies the sharp fully-associative Mattson criterion to
the L2, where the exact backend smooths the hit/miss transition to
model set-associative conflict behavior
(:data:`repro.model.traffic.SHARPNESS`).  Every L2-independent quantity
(instruction counts, issue cycles, L1 statistics, L2 accesses) is
bit-identical between the backends; L2 miss counts differ only for
traffic whose reuse distance sits near the capacity, so per-point L2
miss-*rate* deltas are bounded by the smoothing mass around the
threshold (``--mode validate`` measures it; the differential tests pin
it below :data:`MISS_RATE_BOUND`).  Use the exact backend when absolute
per-point miss counts matter; the fast backend preserves the sweep's
shape — miss curves stay monotone in capacity — and its best point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.isa import OpClass
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult
from repro.model.traffic import (
    CAPACITY_FACTOR,
    SHARPNESS,
    PhaseModel,
)
from repro.nets.layers import LayerSpec
from repro.obs import counters_from_stats, span
from repro.sim.cache import CacheStats, HierarchyStats
from repro.sim.stackdist import SparseReuseProfile
from repro.sim.stats import SimStats
from repro.sim.system import SystemConfig

#: Stated differential bound on |fast - exact| total L2 miss rate per
#: sweep point (the associativity/smoothing error the fast backend
#: accepts; see the module docstring and tests/test_sweep_fastpath.py).
MISS_RATE_BOUND = 0.15


@dataclass(frozen=True)
class LayerProfile:
    """Everything one layer needs to be evaluated at any L2 capacity.

    The scalar fields are L2-independent and bit-identical to the exact
    backend's; ``l2_profile`` is the weighted stack-distance profile of
    the layer's L2-bound line touches (distances in lines), and the
    ``store_*`` arrays carry the dirty traffic needed for writeback
    modeling (a line is written back when it misses *and* its region
    does not stay resident in the L2).
    """

    label: str
    instrs: dict[str, int]
    elems: dict[str, int]
    flops: int
    issue_cycles: float
    l1_accesses: int
    l1_misses: int
    l2_accesses: float
    l2_profile: SparseReuseProfile
    store_dist_lines: np.ndarray
    store_weights: np.ndarray
    store_region_bytes: np.ndarray

    def evaluate(self, config: SystemConfig) -> SimStats:
        """Statistics of this layer at ``config``'s L2 capacity."""
        l2_eff = config.l2_mb * 1024 * 1024 * CAPACITY_FACTOR
        cap_lines = l2_eff / config.line_bytes
        misses = self.l2_profile.misses_for_capacity(cap_lines)
        wb = float(
            self.store_weights[
                (self.store_dist_lines >= cap_lines)
                & (self.store_region_bytes > l2_eff)
            ].sum()
        )
        hstats = HierarchyStats(
            l1=CacheStats(accesses=self.l1_accesses, misses=self.l1_misses),
            l2=CacheStats(
                accesses=int(round(self.l2_accesses)),
                misses=int(round(misses)),
                writebacks=int(round(wb)),
            ),
            line_bytes=config.line_bytes,
        )
        l2_stall, dram_stall = config.memory_timings().stall_cycles(
            hstats.l1.misses, hstats.l2.misses, hstats.l2.writebacks
        )
        return SimStats(
            freq_ghz=config.freq_ghz,
            issue_cycles=self.issue_cycles,
            l2_stall_cycles=l2_stall,
            dram_stall_cycles=dram_stall,
            instrs=dict(self.instrs),
            elems=dict(self.elems),
            flops=self.flops,
            hierarchy=hstats,
            label=self.label,
        )


@dataclass(frozen=True)
class NetworkProfile:
    """One profiling pass of (network, VLEN): the whole L2 axis in hand.

    ``config`` is the profiled configuration; its ``l2_mb`` is
    irrelevant to the profile and overridden by :meth:`evaluate`.
    """

    name: str
    config: SystemConfig
    layers: tuple[LayerProfile, ...]

    @property
    def vlen_bits(self) -> int:
        return self.config.vlen_bits

    def evaluate(self, l2_mb: int) -> NetworkResult:
        """Derive the network result at one L2 capacity analytically."""
        if l2_mb <= 0:
            raise ConfigError(f"l2_mb must be positive, got {l2_mb}")
        cfg = self.config.with_(l2_mb=l2_mb)
        per_layer: list[SimStats] = []
        total = SimStats(freq_ghz=cfg.freq_ghz, label=f"{self.name} total")
        with span("evaluate_profile", network=self.name,
                  vlen_bits=self.vlen_bits, l2_mb=l2_mb) as ev_span:
            for layer in self.layers:
                stats = layer.evaluate(cfg)
                per_layer.append(stats)
                total.merge(stats)
            ev_span.add_counters(**counters_from_stats(total))
        return NetworkResult(
            name=self.name, per_layer=tuple(per_layer), total=total
        )

    def miss_curve(self, l2_mbs: list[int]) -> dict[int, float]:
        """Total L2 miss rate per capacity — the whole axis at once."""
        return {
            l2: self.evaluate(l2).total.l2_miss_rate for l2 in l2_mbs
        }


def _smooth_hit_probability(
    eff_bytes: np.ndarray, capacity_bytes: float
) -> np.ndarray:
    """Vectorized form of :func:`repro.model.traffic._hit_probability`."""
    p = np.zeros_like(eff_bytes)
    finite = np.isfinite(eff_bytes)
    zero = eff_bytes == 0.0
    ratio = np.divide(
        eff_bytes, capacity_bytes, out=np.zeros_like(eff_bytes), where=finite
    )
    with np.errstate(over="ignore"):
        p[finite] = 1.0 / (1.0 + ratio[finite] ** SHARPNESS)
    p[zero] = 1.0
    return p


def _profile_layer(
    label: str, phases: list[PhaseModel], config: SystemConfig
) -> LayerProfile:
    """Condense one layer's phase models into a :class:`LayerProfile`."""
    lat = config.latency_model()
    instr_counts: dict[str, int] = {}
    elem_counts: dict[str, int] = {}
    flops = 0
    traffic = []
    for ph in phases:
        for c, n in ph.instrs.items():
            instr_counts[c.value] = instr_counts.get(c.value, 0) + n
        for c, n in ph.elems.items():
            elem_counts[c.value] = elem_counts.get(c.value, 0) + n
        flops += ph.flops
        traffic.extend(ph.traffic)
    issue = 0.0
    for cname, n in instr_counts.items():
        issue += lat.batch_issue_cycles(
            OpClass(cname), n, elem_counts.get(cname, 0)
        )
    # Bulk-extract the traffic-class fields (the class count reaches
    # the hundreds of thousands for GEMM-heavy layers, so per-class
    # Python work here is the profiling pass's overhead budget).
    count = len(traffic)
    acc = np.fromiter(
        (t.accesses for t in traffic), dtype=np.float64, count=count
    )
    eff = np.fromiter(
        (t.distance * t.dilution for t in traffic),
        dtype=np.float64, count=count,
    )
    store_mask = np.fromiter(
        (t.is_store for t in traffic), dtype=bool, count=count
    )
    region = np.fromiter(
        (t.region for t in traffic), dtype=np.float64, count=count
    )
    # The L1 split: identical (smoothed) criterion to the exact
    # backend — the L1 is fixed across the sweep, so full fidelity
    # costs nothing.
    l1_eff = config.l1_kb * 1024 * CAPACITY_FACTOR
    p1 = _smooth_hit_probability(eff, l1_eff)
    to_l2 = acc * (1.0 - p1)
    # The L2-bound stream as a stack-distance profile, in lines.
    dist_lines = np.where(
        np.isfinite(eff), eff / config.line_bytes, np.inf
    )
    l2_profile = SparseReuseProfile.from_distances(dist_lines, to_l2)
    return LayerProfile(
        label=label,
        instrs=instr_counts,
        elems=elem_counts,
        flops=flops,
        issue_cycles=issue,
        l1_accesses=int(round(float(acc.sum()))),
        l1_misses=int(round(float(to_l2.sum()))),
        l2_accesses=float(to_l2.sum()),
        l2_profile=l2_profile,
        store_dist_lines=dist_lines[store_mask],
        store_weights=to_l2[store_mask],
        store_region_bytes=region[store_mask],
    )


def profile_network(
    name: str,
    layers: list[LayerSpec],
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> NetworkProfile:
    """One profiling pass: capture the network's reuse behavior at one
    VLEN so every L2 capacity can be answered analytically.

    Mirrors :func:`repro.nets.inference.simulate_inference` layer for
    layer (same policy, same labels, same phase models); only the L2
    criterion differs, as described in the module docstring.
    """
    if not layers:
        raise ConfigError("network has no layers")
    from repro.nets.inference import layer_phase_models

    profiles = []
    with span("profile_network", network=name,
              vlen_bits=config.vlen_bits, hybrid=hybrid,
              variant=variant) as net_span:
        for layer in layers:
            with span("profile_layer", label=layer.name) as layer_span:
                label, phases = layer_phase_models(
                    layer, config, hybrid=hybrid, variant=variant
                )
                profile = _profile_layer(label, phases, config)
                layer_span.set_attrs(label=label)
                layer_span.add_counters(
                    instrs=sum(profile.instrs.values()),
                    flops=profile.flops,
                    issue_cycles=profile.issue_cycles,
                    l1_accesses=profile.l1_accesses,
                    l1_misses=profile.l1_misses,
                )
            profiles.append(profile)
        net_span.add_counters(
            instrs=sum(sum(p.instrs.values()) for p in profiles),
            flops=sum(p.flops for p in profiles),
        )
    return NetworkProfile(name=name, config=config, layers=tuple(profiles))
