"""Parallel, checkpointable executor for the co-design sweep.

The paper's headline artifacts (Figures 3/4, Tables 1/2) each sweep a
(vector length x L2 size) grid — 20 points per network on the paper's
grids, far more for the larger co-design studies this repo grows
toward.  Every point is independent, so this module fans the grid out
over a :class:`concurrent.futures.ProcessPoolExecutor` and adds the
properties a long sweep needs in production:

- **checkpoint/resume** — with ``checkpoint_dir`` set, every finished
  point is written as one JSON file (atomically, via a temp file and
  ``os.replace``); re-running an interrupted sweep with the same
  directory restores finished points instead of recomputing them.  A
  manifest pins the run's identity (network, policy, variant, base
  configuration, *and backend*) so a directory can never silently mix
  results from different setups — in particular, fast- and
  exact-backend points never share a directory.  The manifest's
  ``run`` section additionally records the last run's telemetry
  (dropped corrupt checkpoints, pool degradation); it is informational
  and excluded from the identity check.
- **observability** — every noteworthy moment flows through one
  structured event layer (:mod:`repro.obs.events`): ``sweep_start``,
  per-point ``point_finished``/``point_restored`` ticks (with elapsed
  and ETA), warning-level ``checkpoint_corrupt`` and ``pool_degraded``
  events, and a closing ``sweep_end`` summary.  The ``on_progress``
  callback is a *rendering* of that stream — each tick event is also
  delivered as a :class:`SweepProgress` — and warning events are
  additionally raised as Python :class:`RuntimeWarning`\\ s so a plain
  CLI run is never silent about degradation or dropped data.  When an
  ambient tracer is installed (:func:`repro.obs.tracing`), the sweep
  records a ``run_sweep`` span and worker subtraces travel back with
  each result and are grafted into the parent trace; worker counter
  deltas merge into the process-global registry the same way.

Two backends evaluate the grid (``mode``), and both parallelize over
VLEN *columns* — the unit of work that amortizes per-VLEN state over
the whole L2 axis.  The exact backend records each column once
(:func:`~repro.nets.inference.record_inference`; the phase models
depend on the configuration only through the vector length) and
replays the recording per L2 size, bit-identical to a fresh
:func:`~repro.nets.inference.simulate_inference` call at every point.
The fast backend (:mod:`repro.codesign.fastpath`) runs one
stack-distance profiling pass per VLEN and answers the L2 axis
analytically.  Every checkpoint records which backend produced it.

Results are bit-identical between the serial and parallel paths: each
point is evaluated by the same pure record/replay (or profiling)
functions and travels back to the parent either in-process or via
pickle, neither of which perturbs a float.  Checkpointed points
round-trip through JSON, which Python serializes with shortest-repr
floats, so restored grids are bit-identical too.  Instrumentation is
observation-only and never feeds back into a result.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings as _warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.codesign.fastpath import profile_network
from repro.codesign.sweep import BACKEND_EXACT, BACKEND_FAST, BACKENDS, SweepResult
from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult
from repro.nets.inference import record_inference
from repro.nets.layers import LayerSpec
from repro.obs import (
    COUNTERS,
    LEVEL_WARNING,
    BenchRecorder,
    EventSink,
    Span,
    Tracer,
    bench_key,
    current_tracer,
    event,
    span,
    tracing,
)
from repro.sim.system import SystemConfig

#: Checkpoint schema version; bumped on incompatible layout changes
#: (v2 added backend provenance to the manifest and every point).
CHECKPOINT_VERSION = 2

#: Manifest file name inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"

#: Manifest section holding per-run telemetry (dropped checkpoints,
#: degradation); informational, excluded from the identity check that
#: guards resume.
MANIFEST_RUN_KEY = "run"


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of a running sweep.

    Attributes:
        done: points finished so far (including checkpoint restores).
        total: points in the grid.
        vlen/l2_mb: the point that just finished.
        point_seconds: wall time this point took (0 for restores).
        elapsed_seconds: wall time since the sweep started.
        eta_seconds: estimated remaining wall time, extrapolated from
            the wall time spent *computing* points (checkpoint-restore
            time is excluded from the base); ``None`` until at least
            one point has actually computed — rendered as "eta —".
        from_checkpoint: True when the point was restored, not run.
    """

    done: int
    total: int
    vlen: int
    l2_mb: int
    point_seconds: float
    elapsed_seconds: float
    eta_seconds: float | None
    from_checkpoint: bool

    @classmethod
    def from_event(cls, ev: dict) -> "SweepProgress":
        """Build a tick from a ``point_finished``/``point_restored``
        event — the ticker is a rendering of the event stream."""
        return cls(
            done=ev["done"], total=ev["total"],
            vlen=ev["vlen"], l2_mb=ev["l2_mb"],
            point_seconds=ev["point_seconds"],
            elapsed_seconds=ev["elapsed_seconds"],
            eta_seconds=ev["eta_seconds"],
            from_checkpoint=ev["event"] == "point_restored",
        )

    def describe(self) -> str:
        """One-line ticker text (the CLI's ``--progress`` output)."""
        src = "restored" if self.from_checkpoint else f"{self.point_seconds:.2f}s"
        eta = ("—" if self.eta_seconds is None
               else f"{self.eta_seconds:.1f}s")
        return (
            f"[{self.done}/{self.total}] {self.vlen}b/{self.l2_mb}MB "
            f"{src}  elapsed {self.elapsed_seconds:.1f}s  "
            f"eta {eta}"
        )


ProgressCallback = Callable[[SweepProgress], None]


class _SweepTelemetry:
    """The sweep's single observability funnel.

    Every progress tick, warning and summary is built here as a
    structured event, delivered to the optional sink, and — for ticks —
    re-rendered as a :class:`SweepProgress` for the legacy callback.
    Warning-level events are also raised as :class:`RuntimeWarning` so
    degradation is visible even with no sink attached.
    """

    def __init__(
        self,
        total: int,
        sink: EventSink | None,
        on_progress: ProgressCallback | None,
    ) -> None:
        self.total = total
        self.sink = sink
        self.on_progress = on_progress
        self.done = 0
        self.computed = 0
        self.restored = 0
        self.dropped_checkpoints = 0
        self.degraded = False
        self.start = time.perf_counter()
        self._compute_start: float | None = None

    # ------------------------------------------------------------------
    def _emit(self, ev: dict) -> None:
        if self.sink is not None:
            self.sink.emit(ev)
        if ev.get("level") == LEVEL_WARNING:
            detail = ev.get("reason", "")
            _warnings.warn(
                f"sweep {ev['event']}: {detail}", RuntimeWarning,
                stacklevel=4,
            )

    def _eta_seconds(self) -> float | None:
        """Remaining wall time, from computed points only.

        ``None`` until a point has actually computed: a resume that has
        so far only restored checkpoints has no computation to
        extrapolate from (the old ticker reported a confident
        ``eta 0.0s`` there).  The base excludes the restore phase's
        wall time, so a long restore cannot dilute the estimate.
        """
        if not self.computed or self._compute_start is None:
            return None
        compute_elapsed = time.perf_counter() - self._compute_start
        remaining = self.total - self.done
        return compute_elapsed / self.computed * remaining

    # ------------------------------------------------------------------
    def sweep_start(self, name: str, backend: str, workers: int) -> None:
        self._emit(event(
            "sweep_start", name=name, backend=backend, workers=workers,
            total=self.total,
        ))

    def begin_compute(self) -> None:
        """Mark the restore phase over; the ETA base starts here."""
        if self._compute_start is None:
            self._compute_start = time.perf_counter()

    def _tick(self, kind: str, vlen: int, l2_mb: int, secs: float) -> None:
        ev = event(
            kind, vlen=vlen, l2_mb=l2_mb,
            done=self.done, total=self.total, point_seconds=secs,
            elapsed_seconds=time.perf_counter() - self.start,
            eta_seconds=self._eta_seconds(),
        )
        self._emit(ev)
        if self.on_progress is not None:
            self.on_progress(SweepProgress.from_event(ev))

    def point_restored(self, vlen: int, l2_mb: int) -> None:
        self.done += 1
        self.restored += 1
        self._tick("point_restored", vlen, l2_mb, 0.0)

    def point_finished(self, vlen: int, l2_mb: int, secs: float) -> None:
        self.done += 1
        self.computed += 1
        self._tick("point_finished", vlen, l2_mb, secs)

    def checkpoint_corrupt(self, path: Path, reason: str) -> None:
        self.dropped_checkpoints += 1
        self._emit(event(
            "checkpoint_corrupt", level=LEVEL_WARNING,
            file=str(path), reason=f"{reason} (recomputing the point)",
        ))

    def pool_degraded(self, reason: str) -> None:
        self.degraded = True
        self._emit(event(
            "pool_degraded", level=LEVEL_WARNING,
            reason=f"{reason}; continuing serially in-process",
        ))

    def sweep_end(self) -> dict:
        """Emit the closing summary; returns the run-info block the
        checkpoint manifest records."""
        run_info = {
            "computed": self.computed,
            "restored": self.restored,
            "dropped_checkpoints": self.dropped_checkpoints,
            "degraded": self.degraded,
        }
        self._emit(event(
            "sweep_end",
            elapsed_seconds=time.perf_counter() - self.start,
            **run_info,
        ))
        return run_info


def _evaluate_vlen_exact(
    name: str,
    layers: list[LayerSpec],
    vlen: int,
    l2_mbs: tuple[int, ...],
    hybrid: bool,
    variant: str,
    base_config: SystemConfig,
    collect: bool = False,
    span_attrs: Mapping[str, Any] | None = None,
) -> tuple[list[tuple[int, NetworkResult, float]], dict]:
    """Evaluate one VLEN column of the grid via the exact backend.

    The layer phase models depend on the configuration only through
    the vector length, so one recording pass
    (:func:`~repro.nets.inference.record_inference`) answers the whole
    L2 axis; each point replays the recording, bit-identical to a
    fresh ``simulate_inference`` call at that point.  The recording
    pass's wall time is attributed to the column's first point so
    per-point seconds still sum to the column's true cost.  With
    ``collect`` (the pooled path), the column's span subtree and
    counter delta are captured and returned picklable, so the parent
    can graft them into its trace and registry; the serial path leaves
    it False and records into the ambient tracer directly.
    """
    def column() -> list[tuple[int, NetworkResult, float]]:
        t0 = time.perf_counter()
        cfg = base_config.with_(vlen_bits=vlen)
        recording = record_inference(
            name, layers, cfg, hybrid=hybrid, variant=variant
        )
        record_secs = time.perf_counter() - t0
        out: list[tuple[int, NetworkResult, float]] = []
        for i, l2_mb in enumerate(l2_mbs):
            t1 = time.perf_counter()
            result = recording.evaluate(l2_mb)
            secs = time.perf_counter() - t1
            if i == 0:
                secs += record_secs
            out.append((l2_mb, result, secs))
        return out

    if not collect:
        return column(), {}
    local = Tracer()
    with COUNTERS.capture() as cap, tracing(local), local.span(
        "sweep_worker", vlen=vlen, l2_mbs=list(l2_mbs), **dict(span_attrs or {})
    ):
        out = column()
    return out, {"span": local.root.to_dict(), "counters": cap.delta()}


def _evaluate_vlen_fast(
    name: str,
    layers: list[LayerSpec],
    vlen: int,
    l2_mbs: tuple[int, ...],
    hybrid: bool,
    variant: str,
    base_config: SystemConfig,
    collect: bool = False,
    span_attrs: Mapping[str, Any] | None = None,
) -> tuple[list[tuple[int, NetworkResult, float]], dict]:
    """Evaluate one VLEN column of the grid via the fast backend.

    One stack-distance profiling pass answers every requested L2 size;
    the pass's wall time is attributed to the column's first point so
    per-point seconds still sum to the column's true cost.  ``collect``
    works as in :func:`_evaluate_vlen_exact`, with one span per column.
    """
    def column() -> list[tuple[int, NetworkResult, float]]:
        t0 = time.perf_counter()
        cfg = base_config.with_(vlen_bits=vlen)
        profile = profile_network(
            name, layers, cfg, hybrid=hybrid, variant=variant
        )
        profile_secs = time.perf_counter() - t0
        out: list[tuple[int, NetworkResult, float]] = []
        for i, l2_mb in enumerate(l2_mbs):
            t1 = time.perf_counter()
            result = profile.evaluate(l2_mb)
            secs = time.perf_counter() - t1
            if i == 0:
                secs += profile_secs
            out.append((l2_mb, result, secs))
        return out

    if not collect:
        return column(), {}
    local = Tracer()
    with COUNTERS.capture() as cap, tracing(local), local.span(
        "sweep_worker", vlen=vlen, l2_mbs=list(l2_mbs), **dict(span_attrs or {})
    ):
        out = column()
    return out, {"span": local.root.to_dict(), "counters": cap.delta()}


def evaluate_column(
    name: str,
    layers: list[LayerSpec],
    vlen: int,
    l2_mbs: Sequence[int],
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    mode: str = BACKEND_EXACT,
    collect: bool = False,
    span_attrs: Mapping[str, Any] | None = None,
) -> tuple[list[tuple[int, NetworkResult, float]], dict]:
    """Evaluate one VLEN column of the co-design grid — the executor's
    reusable unit of work.

    This is the API the sweep pool *and* the serve layer
    (:mod:`repro.serve`) schedule: one call amortizes the per-VLEN pass
    (exact recording or fast profiling) over every requested L2 size
    and returns ``([(l2_mb, result, seconds), ...], extras)``, where
    ``extras`` carries the picklable span/counter capture when
    ``collect`` is set (see :func:`_evaluate_vlen_exact`).  Results are
    bit-identical to a fresh
    :func:`~repro.nets.inference.simulate_inference` /
    :func:`~repro.codesign.fastpath.profile_network` evaluation at each
    point regardless of how the l2 axis was batched.
    """
    if mode not in BACKENDS:
        raise ConfigError(
            f"unknown sweep mode {mode!r} (expected one of {BACKENDS})"
        )
    if not l2_mbs:
        raise ConfigError("evaluate_column needs at least one L2 size")
    base = base_config if base_config is not None else SystemConfig()
    column_fn = (
        _evaluate_vlen_fast if mode == BACKEND_FAST else _evaluate_vlen_exact
    )
    return column_fn(
        name, layers, int(vlen), tuple(int(l) for l in l2_mbs),
        hybrid, variant, base, collect, span_attrs,
    )


def evaluate_point(
    name: str,
    layers: list[LayerSpec],
    vlen: int,
    l2_mb: int,
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    mode: str = BACKEND_EXACT,
) -> NetworkResult:
    """Evaluate a single (VLEN, L2) grid point.

    A one-point :func:`evaluate_column`; bit-identical to the same
    point of any sweep over a grid containing it.
    """
    column, _ = evaluate_column(
        name, layers, vlen, (l2_mb,), hybrid=hybrid, variant=variant,
        base_config=base_config, mode=mode,
    )
    (_, result, _), = column
    return result


# ----------------------------------------------------------------------
# Checkpoint directory layout.
# ----------------------------------------------------------------------
def _manifest_payload(
    name: str, hybrid: bool, variant: str, base_config: SystemConfig,
    backend: str,
) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "name": name,
        "backend": backend,
        "hybrid": hybrid,
        "variant": variant,
        "config": asdict(base_config),
    }


def _manifest_identity(payload: dict) -> dict:
    """The identity-pinning part of a manifest (run telemetry, which
    legitimately differs between runs of the same sweep, stripped)."""
    return {k: v for k, v in payload.items() if k != MANIFEST_RUN_KEY}


def _point_path(directory: Path, vlen: int, l2_mb: int) -> Path:
    return directory / f"point_v{vlen}_l2mb{l2_mb}.json"


def _materialize_json(path: Path, payload: dict) -> str:
    """Write ``payload`` to a *uniquely named* sibling temp file,
    flushed and fsynced; returns the temp path, ready to publish.

    The unique name (``tempfile.mkstemp``) is what makes concurrent
    writers safe: two processes serving or resuming the same checkpoint
    directory each write their own temp file, so one can never tear or
    redirect the other's in-flight bytes (a fixed sibling ``.tmp`` name
    let writer B's content be published under writer A's ``os.replace``
    — a torn or wrong-point file).  The fsync makes the rename durable:
    after ``os.replace``, a crash can lose the *write*, never publish
    half of one.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload))
            fh.flush()
            os.fsync(fh.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return tmp


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Atomically (re)write ``path`` — safe against kills *and*
    concurrent writers.

    A kill mid-write leaves at most a stray uniquely-named ``.tmp``
    file, never half a checkpoint (torn files are treated as absent on
    resume); concurrent writers each publish a complete file and the
    last ``os.replace`` wins.
    """
    tmp = _materialize_json(path, payload)
    try:
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _create_json_excl(path: Path, payload: dict) -> bool:
    """Atomically create ``path`` with ``payload`` only if it does not
    exist yet (``O_EXCL`` semantics with full-content publication).

    Returns ``False`` when another writer won the race — and because
    publication is a hard link of an already-fsynced temp file, the
    winner's file is complete the instant it is observable; the loser
    can immediately read and validate it.
    """
    tmp = _materialize_json(path, payload)
    try:
        os.link(tmp, path)
    except FileExistsError:
        return False
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return True


def _open_checkpoint_dir(
    directory: Path, manifest: dict
) -> None:
    """Create or validate a checkpoint directory for this sweep.

    Creation is race-free: the manifest is published with ``O_EXCL``
    semantics (:func:`_create_json_excl`), so two sweeps started
    concurrently in one fresh directory cannot both believe they
    created it — exactly one publishes, the other re-validates the
    winner's manifest as if it had been there all along (the old
    ``exists()``-then-write sequence was a TOCTOU: both writers saw no
    manifest and silently proceeded, even with *different* identities).
    """
    directory.mkdir(parents=True, exist_ok=True)
    mpath = directory / MANIFEST_NAME
    if not mpath.exists() and _create_json_excl(mpath, manifest):
        return
    try:
        existing = json.loads(mpath.read_text())
    except (OSError, ValueError) as e:
        raise ConfigError(
            f"unreadable sweep manifest {mpath}: {e}"
        ) from None
    if _manifest_identity(existing) != manifest:
        raise ConfigError(
            f"checkpoint directory {directory} belongs to a different "
            f"sweep (manifest mismatch); use a fresh directory"
        )


def _load_point(
    path: Path, backend: str
) -> tuple[NetworkResult | None, str | None]:
    """Restore one checkpointed point.

    Returns ``(result, None)`` on success, ``(None, None)`` when the
    file simply does not exist, and ``(None, reason)`` when a file *was*
    there but had to be dropped — torn, unreadable, from an older
    schema, or produced by a different backend (the manifest already
    hard-rejects cross-backend directories; this is the per-file belt
    to that suspender).  Dropped files are never silent: the executor
    turns every reason into a ``checkpoint_corrupt`` warning event and
    counts it in the manifest's run section.
    """
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None, None
    except OSError as e:
        return None, f"unreadable: {e}"
    try:
        payload = json.loads(text)
    except ValueError as e:
        return None, f"invalid JSON: {e}"
    if not isinstance(payload, dict):
        return None, "payload is not a JSON object"
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        return None, (
            f"checkpoint schema v{version!r} (this executor writes "
            f"v{CHECKPOINT_VERSION})"
        )
    point_backend = payload.get("backend")
    if point_backend != backend:
        return None, (
            f"produced by backend {point_backend!r}, this sweep runs "
            f"{backend!r}"
        )
    try:
        return NetworkResult.from_dict(payload["result"]), None
    except (ValueError, KeyError, TypeError) as e:
        return None, f"malformed result payload ({type(e).__name__}: {e})"


def _save_point(
    path: Path, vlen: int, l2_mb: int, result: NetworkResult, backend: str
) -> None:
    _write_json_atomic(path, {
        "version": CHECKPOINT_VERSION,
        "backend": backend,
        "vlen": vlen,
        "l2_mb": l2_mb,
        "result": result.to_dict(),
    })


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------
def run_sweep(
    name: str,
    layers: list[LayerSpec],
    vlens: Sequence[int],
    l2_mbs: Sequence[int],
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    on_progress: ProgressCallback | None = None,
    mode: str = BACKEND_EXACT,
    sink: EventSink | None = None,
    recorder: BenchRecorder | None = None,
) -> SweepResult:
    """Run a network across the co-design grid (see
    :func:`repro.codesign.sweep.codesign_sweep` for the argument
    contract — that wrapper is the public entry point).

    ``recorder`` feeds the regression observatory: every point's
    simulated cycle count is recorded under its canonical bench key,
    with per-point wall time for *computed* points only (a checkpoint
    restore measures the disk, not the sweep, so it contributes cycles
    but no wall sample).
    """
    if mode not in BACKENDS:
        raise ConfigError(
            f"unknown sweep mode {mode!r} (expected one of {BACKENDS}; "
            f"'validate' is served by validate_codesign_sweep)"
        )
    if not vlens or not l2_mbs:
        raise ConfigError("sweep grids must be non-empty")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    base = base_config if base_config is not None else SystemConfig()
    grid_vlens = tuple(sorted(set(int(v) for v in vlens)))
    grid_l2s = tuple(sorted(set(int(l) for l in l2_mbs)))
    points = [(v, l) for v in grid_vlens for l in grid_l2s]
    total = len(points)

    directory: Path | None = None
    manifest: dict = {}
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        manifest = _manifest_payload(name, hybrid, variant, base, mode)
        _open_checkpoint_dir(directory, manifest)

    telemetry = _SweepTelemetry(total=total, sink=sink,
                                on_progress=on_progress)
    results: dict[tuple[int, int], NetworkResult] = {}

    with span("run_sweep", network=name, backend=mode,
              workers=workers, total_points=total):
        telemetry.sweep_start(name, mode, workers)

        # Phase 1: restore finished points from the checkpoint directory.
        todo: list[tuple[int, int]] = []
        for v, l in points:
            restored: NetworkResult | None = None
            if directory is not None:
                path = _point_path(directory, v, l)
                restored, corrupt_reason = _load_point(path, mode)
                if corrupt_reason is not None:
                    telemetry.checkpoint_corrupt(path, corrupt_reason)
            if restored is not None:
                results[(v, l)] = restored
                if recorder is not None:
                    recorder.add(bench_key(name, v, l), restored.cycles)
                telemetry.point_restored(v, l)
            else:
                todo.append((v, l))

        def absorb(extras: dict) -> None:
            """Merge a pooled worker's trace/counters into this process."""
            if extras.get("counters"):
                COUNTERS.merge(extras["counters"])
            tracer = current_tracer()
            if tracer is not None and extras.get("span"):
                tracer.attach(Span.from_dict(extras["span"]))

        def finish(v: int, l: int, result: NetworkResult, secs: float) -> None:
            results[(v, l)] = result
            if recorder is not None:
                recorder.add(bench_key(name, v, l), result.cycles,
                             wall_seconds=secs)
            if directory is not None:
                _save_point(_point_path(directory, v, l), v, l, result, mode)
            telemetry.point_finished(v, l, secs)

        # Phase 2: evaluate the remaining work, pooled or serial.  A
        # pool that cannot actually run (fork blocked, workers killed)
        # degrades to the serial path for whatever is still missing —
        # loudly: the degradation is a warning event, a RuntimeWarning,
        # and a ``degraded`` flag on the result and manifest.  Both
        # backends' unit of work is one VLEN column: the exact backend
        # records the column once and replays it per L2 size, the fast
        # backend's single profiling pass answers the whole L2 axis.
        if todo:
            telemetry.begin_compute()
        collect = current_tracer() is not None
        columns: dict[int, list[int]] = {}
        for v, l in todo:
            columns.setdefault(v, []).append(l)
        column_fn = (
            _evaluate_vlen_fast if mode == BACKEND_FAST
            else _evaluate_vlen_exact
        )
        pool, pool_error = _make_pool(workers, len(columns))
        if pool_error is not None:
            telemetry.pool_degraded(pool_error)
        if pool is not None:
            try:
                with pool:
                    futures = {
                        pool.submit(
                            column_fn, name, layers, v,
                            tuple(l2s), hybrid, variant, base, collect,
                        ): v
                        for v, l2s in columns.items()
                    }
                    pending = set(futures)
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for fut in finished:
                            v = futures[fut]
                            column, extras = fut.result()
                            absorb(extras)
                            for l, result, secs in column:
                                finish(v, l, result, secs)
            except (OSError, BrokenProcessPool) as e:
                telemetry.pool_degraded(
                    f"process pool broke ({type(e).__name__}: {e})"
                )
        for v, l2s in columns.items():
            missing = tuple(l for l in l2s if (v, l) not in results)
            if missing:
                column, _ = column_fn(
                    name, layers, v, missing, hybrid, variant, base
                )
                for l, result, secs in column:
                    finish(v, l, result, secs)

        run_info = telemetry.sweep_end()
        if directory is not None:
            _write_json_atomic(
                directory / MANIFEST_NAME,
                {**manifest, MANIFEST_RUN_KEY: run_info},
            )

    return SweepResult(
        name=name, vlens=grid_vlens, l2_mbs=grid_l2s, results=results,
        backend=mode, degraded=telemetry.degraded,
    )


def _make_pool(
    workers: int, tasks: int
) -> tuple[ProcessPoolExecutor | None, str | None]:
    """A process pool, or ``(None, reason)`` for the serial path.

    Serial-by-design when one worker suffices (``workers=1``, or
    nothing left to compute) — that returns ``(None, None)``, no
    degradation.  Serial-by-necessity when the platform cannot spawn a
    pool (restricted environments raise ``OSError`` /
    ``NotImplementedError``) — that returns ``(None, reason)`` so the
    caller can surface the degradation instead of hiding it.
    """
    if workers <= 1 or tasks <= 1:
        return None, None
    try:
        return ProcessPoolExecutor(max_workers=min(workers, tasks)), None
    except (OSError, NotImplementedError, ImportError) as e:
        return None, f"could not start a process pool ({type(e).__name__}: {e})"
