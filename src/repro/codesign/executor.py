"""Parallel, checkpointable executor for the co-design sweep.

The paper's headline artifacts (Figures 3/4, Tables 1/2) each sweep a
(vector length x L2 size) grid — 20 points per network on the paper's
grids, far more for the larger co-design studies this repo grows
toward.  Every point is independent, so this module fans the grid out
over a :class:`concurrent.futures.ProcessPoolExecutor` and adds the two
properties a long sweep needs in production:

- **checkpoint/resume** — with ``checkpoint_dir`` set, every finished
  point is written as one JSON file (atomically, via a temp file and
  ``os.replace``); re-running an interrupted sweep with the same
  directory restores finished points instead of recomputing them.  A
  manifest pins the run's identity (network, policy, variant, base
  configuration, *and backend*) so a directory can never silently mix
  results from different setups — in particular, fast- and
  exact-backend points never share a directory.
- **progress reporting** — an ``on_progress`` callback receives a
  :class:`SweepProgress` (points done, per-point seconds, elapsed and
  ETA) after every point, which the CLI renders as a live ticker.

Two backends evaluate the grid (``mode``): the exact backend runs
:func:`~repro.nets.inference.simulate_inference` per point and
parallelizes over points; the fast backend
(:mod:`repro.codesign.fastpath`) runs one stack-distance profiling
pass per VLEN — answering the whole L2 axis analytically — and
parallelizes over VLEN columns.  Every checkpoint records which
backend produced it.

Results are bit-identical between the serial and parallel paths: each
point is evaluated by the same pure function
(:func:`repro.nets.inference.simulate_inference`) and travels back to
the parent either in-process or via pickle, neither of which perturbs a
float.  Checkpointed points round-trip through JSON, which Python
serializes with shortest-repr floats, so restored grids are
bit-identical too.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.codesign.fastpath import profile_network
from repro.codesign.sweep import BACKEND_EXACT, BACKEND_FAST, BACKENDS, SweepResult
from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult
from repro.nets.inference import simulate_inference
from repro.nets.layers import LayerSpec
from repro.sim.system import SystemConfig

#: Checkpoint schema version; bumped on incompatible layout changes
#: (v2 added backend provenance to the manifest and every point).
CHECKPOINT_VERSION = 2

#: Manifest file name inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of a running sweep.

    Attributes:
        done: points finished so far (including checkpoint restores).
        total: points in the grid.
        vlen/l2_mb: the point that just finished.
        point_seconds: wall time this point took (0 for restores).
        elapsed_seconds: wall time since the sweep started.
        eta_seconds: estimated remaining wall time, extrapolated from
            the points computed so far (0 until one has finished).
        from_checkpoint: True when the point was restored, not run.
    """

    done: int
    total: int
    vlen: int
    l2_mb: int
    point_seconds: float
    elapsed_seconds: float
    eta_seconds: float
    from_checkpoint: bool

    def describe(self) -> str:
        """One-line ticker text (the CLI's ``--progress`` output)."""
        src = "restored" if self.from_checkpoint else f"{self.point_seconds:.2f}s"
        return (
            f"[{self.done}/{self.total}] {self.vlen}b/{self.l2_mb}MB "
            f"{src}  elapsed {self.elapsed_seconds:.1f}s  "
            f"eta {self.eta_seconds:.1f}s"
        )


ProgressCallback = Callable[[SweepProgress], None]


def _evaluate_point(
    name: str,
    layers: list[LayerSpec],
    vlen: int,
    l2_mb: int,
    hybrid: bool,
    variant: str,
    base_config: SystemConfig,
) -> tuple[NetworkResult, float]:
    """Evaluate one grid point (runs in a worker process when pooled)."""
    t0 = time.perf_counter()
    cfg = base_config.with_(vlen_bits=vlen, l2_mb=l2_mb)
    result = simulate_inference(name, layers, cfg, hybrid=hybrid, variant=variant)
    return result, time.perf_counter() - t0


def _evaluate_vlen_fast(
    name: str,
    layers: list[LayerSpec],
    vlen: int,
    l2_mbs: tuple[int, ...],
    hybrid: bool,
    variant: str,
    base_config: SystemConfig,
) -> list[tuple[int, NetworkResult, float]]:
    """Evaluate one VLEN column of the grid via the fast backend.

    One stack-distance profiling pass answers every requested L2 size;
    the pass's wall time is attributed to the column's first point so
    per-point seconds still sum to the column's true cost.
    """
    t0 = time.perf_counter()
    cfg = base_config.with_(vlen_bits=vlen)
    profile = profile_network(name, layers, cfg, hybrid=hybrid, variant=variant)
    profile_secs = time.perf_counter() - t0
    out: list[tuple[int, NetworkResult, float]] = []
    for i, l2_mb in enumerate(l2_mbs):
        t1 = time.perf_counter()
        result = profile.evaluate(l2_mb)
        secs = time.perf_counter() - t1
        if i == 0:
            secs += profile_secs
        out.append((l2_mb, result, secs))
    return out


# ----------------------------------------------------------------------
# Checkpoint directory layout.
# ----------------------------------------------------------------------
def _manifest_payload(
    name: str, hybrid: bool, variant: str, base_config: SystemConfig,
    backend: str,
) -> dict:
    return {
        "version": CHECKPOINT_VERSION,
        "name": name,
        "backend": backend,
        "hybrid": hybrid,
        "variant": variant,
        "config": asdict(base_config),
    }


def _point_path(directory: Path, vlen: int, l2_mb: int) -> Path:
    return directory / f"point_v{vlen}_l2mb{l2_mb}.json"


def _write_json_atomic(path: Path, payload: dict) -> None:
    """Write via a sibling temp file so a kill never leaves half a
    checkpoint behind (a torn file is treated as absent on resume)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def _open_checkpoint_dir(
    directory: Path, manifest: dict
) -> None:
    """Create or validate a checkpoint directory for this sweep."""
    directory.mkdir(parents=True, exist_ok=True)
    mpath = directory / MANIFEST_NAME
    if mpath.exists():
        try:
            existing = json.loads(mpath.read_text())
        except (OSError, ValueError) as e:
            raise ConfigError(
                f"unreadable sweep manifest {mpath}: {e}"
            ) from None
        if existing != manifest:
            raise ConfigError(
                f"checkpoint directory {directory} belongs to a different "
                f"sweep (manifest mismatch); use a fresh directory"
            )
    else:
        _write_json_atomic(mpath, manifest)


def _load_point(path: Path, backend: str) -> NetworkResult | None:
    """Restore one checkpointed point; None if absent, torn, from an
    older schema, or produced by a different backend (the manifest
    already hard-rejects cross-backend directories; this is the
    per-file belt to that suspender)."""
    try:
        payload = json.loads(path.read_text())
        if payload.get("version") != CHECKPOINT_VERSION:
            return None
        if payload.get("backend") != backend:
            return None
        return NetworkResult.from_dict(payload["result"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _save_point(
    path: Path, vlen: int, l2_mb: int, result: NetworkResult, backend: str
) -> None:
    _write_json_atomic(path, {
        "version": CHECKPOINT_VERSION,
        "backend": backend,
        "vlen": vlen,
        "l2_mb": l2_mb,
        "result": result.to_dict(),
    })


# ----------------------------------------------------------------------
# The executor.
# ----------------------------------------------------------------------
def run_sweep(
    name: str,
    layers: list[LayerSpec],
    vlens: Sequence[int],
    l2_mbs: Sequence[int],
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    on_progress: ProgressCallback | None = None,
    mode: str = BACKEND_EXACT,
) -> SweepResult:
    """Run a network across the co-design grid (see
    :func:`repro.codesign.sweep.codesign_sweep` for the argument
    contract — that wrapper is the public entry point).
    """
    if mode not in BACKENDS:
        raise ConfigError(
            f"unknown sweep mode {mode!r} (expected one of {BACKENDS}; "
            f"'validate' is served by validate_codesign_sweep)"
        )
    if not vlens or not l2_mbs:
        raise ConfigError("sweep grids must be non-empty")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    base = base_config if base_config is not None else SystemConfig()
    grid_vlens = tuple(sorted(set(int(v) for v in vlens)))
    grid_l2s = tuple(sorted(set(int(l) for l in l2_mbs)))
    points = [(v, l) for v in grid_vlens for l in grid_l2s]
    total = len(points)
    start = time.perf_counter()

    directory: Path | None = None
    if checkpoint_dir is not None:
        directory = Path(checkpoint_dir)
        _open_checkpoint_dir(
            directory, _manifest_payload(name, hybrid, variant, base, mode)
        )

    results: dict[tuple[int, int], NetworkResult] = {}
    done = 0
    computed = 0

    def tick(vlen: int, l2_mb: int, secs: float, restored: bool) -> None:
        nonlocal done
        done += 1
        if on_progress is None:
            return
        elapsed = time.perf_counter() - start
        remaining = total - done
        eta = elapsed / computed * remaining if computed else 0.0
        on_progress(SweepProgress(
            done=done, total=total, vlen=vlen, l2_mb=l2_mb,
            point_seconds=secs, elapsed_seconds=elapsed, eta_seconds=eta,
            from_checkpoint=restored,
        ))

    # Phase 1: restore finished points from the checkpoint directory.
    todo: list[tuple[int, int]] = []
    for v, l in points:
        restored = (
            _load_point(_point_path(directory, v, l), mode)
            if directory is not None else None
        )
        if restored is not None:
            results[(v, l)] = restored
            tick(v, l, 0.0, restored=True)
        else:
            todo.append((v, l))

    def finish(v: int, l: int, result: NetworkResult, secs: float) -> None:
        nonlocal computed
        results[(v, l)] = result
        computed += 1
        if directory is not None:
            _save_point(_point_path(directory, v, l), v, l, result, mode)
        tick(v, l, secs, restored=False)

    # Phase 2: evaluate the remaining work, pooled or serial.  A pool
    # that cannot actually run (fork blocked, workers killed) degrades
    # to the serial path for whatever is still missing.  Exact mode's
    # unit of work is one grid point; fast mode's is one VLEN column
    # (a single profiling pass answers the column's whole L2 axis).
    if mode == BACKEND_FAST:
        columns: dict[int, list[int]] = {}
        for v, l in todo:
            columns.setdefault(v, []).append(l)
        pool = _make_pool(workers, len(columns))
        if pool is not None:
            try:
                with pool:
                    futures = {
                        pool.submit(
                            _evaluate_vlen_fast, name, layers, v,
                            tuple(l2s), hybrid, variant, base,
                        ): v
                        for v, l2s in columns.items()
                    }
                    pending = set(futures)
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for fut in finished:
                            v = futures[fut]
                            for l, result, secs in fut.result():
                                finish(v, l, result, secs)
            except (OSError, BrokenProcessPool):
                pass
        for v, l2s in columns.items():
            missing = tuple(l for l in l2s if (v, l) not in results)
            if missing:
                for l, result, secs in _evaluate_vlen_fast(
                    name, layers, v, missing, hybrid, variant, base
                ):
                    finish(v, l, result, secs)
    else:
        pool = _make_pool(workers, len(todo))
        if pool is not None:
            try:
                with pool:
                    futures_pt = {
                        pool.submit(
                            _evaluate_point, name, layers, v, l, hybrid,
                            variant, base,
                        ): (v, l)
                        for v, l in todo
                    }
                    pending = set(futures_pt)
                    while pending:
                        finished, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        for fut in finished:
                            v, l = futures_pt[fut]
                            result, secs = fut.result()
                            finish(v, l, result, secs)
            except (OSError, BrokenProcessPool):
                pass
        for v, l in todo:
            if (v, l) not in results:
                result, secs = _evaluate_point(
                    name, layers, v, l, hybrid, variant, base
                )
                finish(v, l, result, secs)

    return SweepResult(
        name=name, vlens=grid_vlens, l2_mbs=grid_l2s, results=results,
        backend=mode,
    )


def _make_pool(workers: int, tasks: int) -> ProcessPoolExecutor | None:
    """A process pool, or None for the serial path.

    Serial when one worker suffices (``workers=1``, or nothing left to
    compute) or when the platform cannot spawn a pool (restricted
    environments raise ``OSError``/``NotImplementedError``) — the sweep
    then degrades gracefully instead of failing.
    """
    if workers <= 1 or tasks <= 1:
        return None
    try:
        return ProcessPoolExecutor(max_workers=min(workers, tasks))
    except (OSError, NotImplementedError, ImportError):
        return None
