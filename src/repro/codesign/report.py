"""Paper-style reporting: the reproduced tables/figures next to the
paper's published values.

Every benchmark harness prints through these helpers so that
EXPERIMENTS.md, the bench output and the examples all show the same
"paper vs measured" layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.codesign.sweep import SweepResult
from repro.errors import ConfigError

#: Published values (paper Tables 1 and 2): L2 miss rate (%) at 1 MB.
PAPER_TABLE1_YOLO = {512: 39.0, 1024: 47.0, 2048: 50.0, 4096: 52.0}
PAPER_TABLE2_VGG = {512: 80.0, 1024: 84.0, 2048: 85.0, 4096: 82.0}

#: Published headline factors (Sections 1/5 and the conclusion).
PAPER_HEADLINES = {
    "yolo_vl_speedup_512_to_4096": 1.76,
    "yolo_l2_speedup_1_to_256mb": 1.6,  # at 4096-bit (1.5-1.6 by VLEN)
    "vgg_vl_speedup_512_to_2048": 1.4,
    "vgg_l2_speedup_1_to_64mb": 1.3,
    "yolo_hybrid_vs_gemm": 1.08,
    "vgg_winograd_vs_gemm": 1.2,
    "tuple_mult_slideup_vs_indexed": 2.3,
}


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured quantity."""

    label: str
    paper: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / paper; NaN when the paper value is 0 (a ratio
        against a zero baseline is undefined, and the old ``inf``
        rendered as a confident-looking ``infx`` in tables)."""
        return self.measured / self.paper if self.paper else float("nan")

    def row(self) -> str:
        ratio = self.ratio
        cell = f"{ratio:>9.2f}x" if math.isfinite(ratio) else f"{'—':>10}"
        return (
            f"{self.label:<44}{self.paper:>9.2f}{self.measured:>10.2f}"
            f"{cell}"
        )


def comparison_table(comps: Sequence[Comparison], title: str = "") -> str:
    rows = []
    if title:
        rows.append(title)
    rows.append(f"{'quantity':<44}{'paper':>9}{'measured':>10}{'ratio':>10}")
    rows.extend(c.row() for c in comps)
    return "\n".join(rows)


def miss_rate_report(
    sweep: SweepResult,
    paper_table: Mapping[int, float],
    l2_mb: int = 1,
    title: str = "",
) -> str:
    """Render a Table 1/2-style miss-rate comparison.

    Raises :class:`ConfigError` (not a bare lookup error) when
    ``l2_mb`` was not part of the sweep grid or a grid point is missing
    from a partial sweep.
    """
    if l2_mb not in sweep.l2_mbs:
        raise ConfigError(
            f"l2_mb={l2_mb} is not in the sweep grid {sweep.l2_mbs}"
        )
    measured = sweep.miss_rate_table(l2_mb)
    rows = [title or f"L2 miss rate at {l2_mb} MB — {sweep.name}"]
    rows.append(f"{'vector length':<16}{'paper %':>10}{'measured %':>12}")
    for v in sweep.vlens:
        paper = paper_table.get(v, float('nan'))
        rows.append(f"{v:>8}-bit    {paper:>10.0f}{100 * measured[v]:>12.1f}")
    return "\n".join(rows)


def backend_timing_report(
    name: str,
    exact_seconds: float,
    fast_seconds: float,
    l2_points: int,
    max_miss_rate_delta: float,
    best_agrees: bool,
) -> str:
    """Render a fast-vs-exact wall-clock and accuracy summary.

    ``exact_seconds``/``fast_seconds`` time the same L2 axis
    (``l2_points`` capacities at one VLEN) through each backend.  Both
    backends amortize one per-VLEN pass over the axis — the exact
    backend records the column and replays it per L2 size, the fast
    backend profiles it once — so the speedup line compares the two
    amortized columns.
    """
    speedup = exact_seconds / fast_seconds if fast_seconds else float("inf")
    agree = "agrees" if best_agrees else "DISAGREES"
    return "\n".join([
        f"fast-path timing — {name} ({l2_points}-point L2 axis)",
        f"  exact backend   {exact_seconds:8.2f} s  "
        f"(1 recording + {l2_points} replays)",
        f"  fast backend    {fast_seconds:8.2f} s  (1 profiling pass)",
        f"  L2-axis speedup {speedup:8.2f}x",
        f"  max miss-rate delta {100 * max_miss_rate_delta:.2f}%; "
        f"best point {agree}",
    ])


def runtime_figure(sweep: SweepResult, title: str = "") -> str:
    """Render a Figure 3/4-style runtime grid with speedups."""
    grid = sweep.runtime_grid()
    rows = [title or f"Runtime (ms) over the co-design grid — {sweep.name}"]
    label = "VLEN / L2"
    header = f"{label:<12}" + "".join(
        f"{l:>9} MB" for l in sweep.l2_mbs
    )
    rows.append(header)
    for v in sweep.vlens:
        cells = "".join(f"{1e3 * grid[v][l]:>12.1f}" for l in sweep.l2_mbs)
        rows.append(f"{v:>8}-bit{cells}")
    rows.append("speedup vs smallest configuration:")
    for v in sweep.vlens:
        cells = "".join(
            f"{sweep.speedup(v, l):>12.2f}" for l in sweep.l2_mbs
        )
        rows.append(f"{v:>8}-bit{cells}")
    return "\n".join(rows)
