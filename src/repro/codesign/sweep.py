"""The co-design parameter sweep (Figures 3/4, Tables 1/2).

The paper tunes two hardware parameters on its simulated RISC-VV
processor: the vector length (512 — 4096 bits, the range the gem5 fork
supports) and the L2 cache size (1 — 256 MB).  :func:`codesign_sweep`
runs a network over the full grid — serially or fanned out over worker
processes with per-point checkpointing (see
:mod:`repro.codesign.executor`) — and :class:`SweepResult` answers the
paper's questions: runtime per point, speedups relative to the
smallest configuration, and L2 miss-rate tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult
from repro.nets.layers import LayerSpec
from repro.sim.system import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.codesign.executor import SweepProgress

#: The paper's sweep grids.
PAPER_VLENS = (512, 1024, 2048, 4096)
PAPER_L2_MBS = (1, 16, 64, 128, 256)


@dataclass(frozen=True)
class SweepResult:
    """Results of one network over the (VLEN x L2) grid.

    Grids are normalized at construction (sorted, deduplicated), so the
    axes read smallest-to-largest regardless of the order the caller
    listed them in.  ``results`` may cover only part of the grid while
    a checkpointed run is being resumed; :meth:`merge` combines such
    partial results and :attr:`is_complete` tells the two apart.
    """

    name: str
    vlens: tuple[int, ...]
    l2_mbs: tuple[int, ...]
    results: dict[tuple[int, int], NetworkResult]

    def __post_init__(self) -> None:
        object.__setattr__(self, "vlens", tuple(sorted(set(self.vlens))))
        object.__setattr__(self, "l2_mbs", tuple(sorted(set(self.l2_mbs))))
        for v, l in self.results:
            if v not in self.vlens or l not in self.l2_mbs:
                raise ConfigError(
                    f"result point ({v} bits, {l} MB) is outside the "
                    f"sweep grid"
                )

    @property
    def points(self) -> tuple[tuple[int, int], ...]:
        """Every (vlen, l2_mb) point of the grid, row-major."""
        return tuple((v, l) for v in self.vlens for l in self.l2_mbs)

    def missing_points(self) -> tuple[tuple[int, int], ...]:
        """Grid points without a result yet (partial/resumed sweeps)."""
        return tuple(p for p in self.points if p not in self.results)

    @property
    def is_complete(self) -> bool:
        return not self.missing_points()

    def at(self, vlen: int, l2_mb: int) -> NetworkResult:
        try:
            return self.results[(vlen, l2_mb)]
        except KeyError:
            raise ConfigError(
                f"({vlen} bits, {l2_mb} MB) was not part of the sweep"
            ) from None

    def seconds(self, vlen: int, l2_mb: int) -> float:
        return self.at(vlen, l2_mb).total.seconds

    def speedup(
        self, vlen: int, l2_mb: int,
        base_vlen: int | None = None, base_l2_mb: int | None = None,
    ) -> float:
        """Speedup of a point relative to a baseline (default: the
        smallest configuration of the sweep)."""
        bv = base_vlen if base_vlen is not None else min(self.vlens)
        bl = base_l2_mb if base_l2_mb is not None else min(self.l2_mbs)
        return self.seconds(bv, bl) / self.seconds(vlen, l2_mb)

    def miss_rate_table(self, l2_mb: int) -> dict[int, float]:
        """L2 miss rate per vector length at one L2 size (Tables 1/2)."""
        return {
            v: self.at(v, l2_mb).total.l2_miss_rate for v in self.vlens
        }

    def runtime_grid(self) -> dict[int, dict[int, float]]:
        """Seconds, keyed [vlen][l2_mb] (the Figure 3/4 series)."""
        return {
            v: {l: self.seconds(v, l) for l in self.l2_mbs}
            for v in self.vlens
        }

    def best(self) -> tuple[int, int]:
        """The fastest configuration of the grid."""
        if not self.results:
            raise ConfigError("sweep has no results yet")
        return min(
            self.results, key=lambda k: self.results[k].total.seconds
        )

    def merge(self, other: "SweepResult") -> "SweepResult":
        """Union of two (possibly partial) sweeps of the same network.

        Points present in both take this sweep's value.  Used by the
        resume path to combine checkpointed points with freshly
        computed ones.
        """
        if other.name != self.name:
            raise ConfigError(
                f"cannot merge sweep {other.name!r} into {self.name!r}"
            )
        results = dict(other.results)
        results.update(self.results)
        return SweepResult(
            name=self.name,
            vlens=self.vlens + other.vlens,
            l2_mbs=self.l2_mbs + other.l2_mbs,
            results=results,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI output, checkpoint summaries)."""
        return {
            "name": self.name,
            "vlens": list(self.vlens),
            "l2_mbs": list(self.l2_mbs),
            "results": [
                {"vlen": v, "l2_mb": l, "network": r.to_dict()}
                for (v, l), r in sorted(self.results.items())
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(d["name"]),
            vlens=tuple(int(v) for v in d["vlens"]),
            l2_mbs=tuple(int(l) for l in d["l2_mbs"]),
            results={
                (int(e["vlen"]), int(e["l2_mb"])): NetworkResult.from_dict(
                    e["network"]
                )
                for e in d.get("results", [])
            },
        )


def codesign_sweep(
    name: str,
    layers: list[LayerSpec],
    vlens: Sequence[int] = PAPER_VLENS,
    l2_mbs: Sequence[int] = PAPER_L2_MBS,
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    on_progress: "Callable[[SweepProgress], None] | None" = None,
) -> SweepResult:
    """Run a network across the co-design grid.

    Args:
        name: report label.
        layers: the network (from :mod:`repro.nets`).
        vlens: vector lengths in bits.
        l2_mbs: L2 capacities in MB.
        hybrid: algorithm policy (see
            :func:`repro.nets.inference.simulate_inference`).
        variant: tuple-multiplication variant.
        base_config: template for all other parameters (frequency,
            L1, latency constants); defaults to the paper's setup.
        workers: grid points evaluated concurrently; ``1`` runs
            serially in-process, more fans out over a process pool
            (results are bit-identical either way).
        checkpoint_dir: directory for per-point JSON checkpoints; an
            interrupted sweep re-run with the same directory resumes
            without recomputing finished points.
        on_progress: called with a
            :class:`~repro.codesign.executor.SweepProgress` after every
            finished (or checkpoint-restored) point.
    """
    from repro.codesign.executor import run_sweep

    return run_sweep(
        name, layers, vlens=vlens, l2_mbs=l2_mbs, hybrid=hybrid,
        variant=variant, base_config=base_config, workers=workers,
        checkpoint_dir=checkpoint_dir, on_progress=on_progress,
    )
