"""The co-design parameter sweep (Figures 3/4, Tables 1/2).

The paper tunes two hardware parameters on its simulated RISC-VV
processor: the vector length (512 — 4096 bits, the range the gem5 fork
supports) and the L2 cache size (1 — 256 MB).  :func:`codesign_sweep`
runs a network over the full grid and :class:`SweepResult` answers the
paper's questions: runtime per point, speedups relative to the
512-bit / 1 MB baseline, and L2 miss-rate tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult
from repro.nets.inference import simulate_inference
from repro.nets.layers import LayerSpec
from repro.sim.system import SystemConfig

#: The paper's sweep grids.
PAPER_VLENS = (512, 1024, 2048, 4096)
PAPER_L2_MBS = (1, 16, 64, 128, 256)


@dataclass(frozen=True)
class SweepResult:
    """Results of one network over the (VLEN x L2) grid."""

    name: str
    vlens: tuple[int, ...]
    l2_mbs: tuple[int, ...]
    results: dict[tuple[int, int], NetworkResult]

    def at(self, vlen: int, l2_mb: int) -> NetworkResult:
        try:
            return self.results[(vlen, l2_mb)]
        except KeyError:
            raise ConfigError(
                f"({vlen} bits, {l2_mb} MB) was not part of the sweep"
            ) from None

    def seconds(self, vlen: int, l2_mb: int) -> float:
        return self.at(vlen, l2_mb).total.seconds

    def speedup(
        self, vlen: int, l2_mb: int,
        base_vlen: int | None = None, base_l2_mb: int | None = None,
    ) -> float:
        """Speedup of a point relative to a baseline (default: the
        smallest configuration of the sweep)."""
        bv = base_vlen if base_vlen is not None else self.vlens[0]
        bl = base_l2_mb if base_l2_mb is not None else self.l2_mbs[0]
        return self.seconds(bv, bl) / self.seconds(vlen, l2_mb)

    def miss_rate_table(self, l2_mb: int) -> dict[int, float]:
        """L2 miss rate per vector length at one L2 size (Tables 1/2)."""
        return {
            v: self.at(v, l2_mb).total.l2_miss_rate for v in self.vlens
        }

    def runtime_grid(self) -> dict[int, dict[int, float]]:
        """Seconds, keyed [vlen][l2_mb] (the Figure 3/4 series)."""
        return {
            v: {l: self.seconds(v, l) for l in self.l2_mbs}
            for v in self.vlens
        }

    def best(self) -> tuple[int, int]:
        """The fastest configuration of the grid."""
        return min(
            self.results, key=lambda k: self.results[k].total.seconds
        )


def codesign_sweep(
    name: str,
    layers: list[LayerSpec],
    vlens: Sequence[int] = PAPER_VLENS,
    l2_mbs: Sequence[int] = PAPER_L2_MBS,
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
) -> SweepResult:
    """Run a network across the co-design grid.

    Args:
        name: report label.
        layers: the network (from :mod:`repro.nets`).
        vlens: vector lengths in bits.
        l2_mbs: L2 capacities in MB.
        hybrid: algorithm policy (see
            :func:`repro.nets.inference.simulate_inference`).
        variant: tuple-multiplication variant.
        base_config: template for all other parameters (frequency,
            L1, latency constants); defaults to the paper's setup.
    """
    if not vlens or not l2_mbs:
        raise ConfigError("sweep grids must be non-empty")
    base = base_config if base_config is not None else SystemConfig()
    results: dict[tuple[int, int], NetworkResult] = {}
    for v in vlens:
        for l in l2_mbs:
            cfg = base.with_(vlen_bits=v, l2_mb=l)
            results[(v, l)] = simulate_inference(
                name, layers, cfg, hybrid=hybrid, variant=variant
            )
    return SweepResult(
        name=name, vlens=tuple(vlens), l2_mbs=tuple(l2_mbs), results=results
    )
