"""The co-design parameter sweep (Figures 3/4, Tables 1/2).

The paper tunes two hardware parameters on its simulated RISC-VV
processor: the vector length (512 — 4096 bits, the range the gem5 fork
supports) and the L2 cache size (1 — 256 MB).  :func:`codesign_sweep`
runs a network over the full grid — serially or fanned out over worker
processes with per-point checkpointing (see
:mod:`repro.codesign.executor`) — and :class:`SweepResult` answers the
paper's questions: runtime per point, speedups relative to the
smallest configuration, and L2 miss-rate tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult
from repro.nets.layers import LayerSpec
from repro.sim.system import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.codesign.executor import SweepProgress
    from repro.obs import BenchRecorder, EventSink

#: The paper's sweep grids.
PAPER_VLENS = (512, 1024, 2048, 4096)
PAPER_L2_MBS = (1, 16, 64, 128, 256)

#: Sweep backends (provenance recorded on every result and checkpoint).
BACKEND_EXACT = "exact"
BACKEND_FAST = "fast"
BACKENDS = (BACKEND_EXACT, BACKEND_FAST)

#: Sweep modes accepted by :func:`codesign_sweep`'s ``mode`` argument
#: (``validate`` is served by :func:`validate_codesign_sweep`, which
#: runs both backends and reports their deltas).
MODES = (BACKEND_EXACT, BACKEND_FAST, "validate")


@dataclass(frozen=True)
class SweepResult:
    """Results of one network over the (VLEN x L2) grid.

    Grids are normalized at construction (sorted, deduplicated), so the
    axes read smallest-to-largest regardless of the order the caller
    listed them in.  ``results`` may cover only part of the grid while
    a checkpointed run is being resumed; :meth:`merge` combines such
    partial results and :attr:`is_complete` tells the two apart.

    ``backend`` records which backend produced the points — the exact
    per-point simulation or the stack-distance fast path
    (:mod:`repro.codesign.fastpath`).  The two answer the same grid
    with different L2 criteria, so mixing their points in one grid
    would silently corrupt cross-point comparisons; :meth:`merge`
    rejects it.

    ``degraded`` is True when the run that produced these points asked
    for a process pool but had to fall back to the serial path (the
    pool broke or could not start).  The numbers are still exact —
    serial and pooled evaluation are bit-identical — but the run was
    slower than requested, and a result that hides that would mask
    infrastructure problems; the executor also raises a
    ``RuntimeWarning`` and emits a ``pool_degraded`` event when it
    happens.
    """

    name: str
    vlens: tuple[int, ...]
    l2_mbs: tuple[int, ...]
    results: dict[tuple[int, int], NetworkResult]
    backend: str = BACKEND_EXACT
    degraded: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "vlens", tuple(sorted(set(self.vlens))))
        object.__setattr__(self, "l2_mbs", tuple(sorted(set(self.l2_mbs))))
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown sweep backend {self.backend!r} "
                f"(expected one of {BACKENDS})"
            )
        for v, l in self.results:
            if v not in self.vlens or l not in self.l2_mbs:
                raise ConfigError(
                    f"result point ({v} bits, {l} MB) is outside the "
                    f"sweep grid"
                )

    @property
    def points(self) -> tuple[tuple[int, int], ...]:
        """Every (vlen, l2_mb) point of the grid, row-major."""
        return tuple((v, l) for v in self.vlens for l in self.l2_mbs)

    def missing_points(self) -> tuple[tuple[int, int], ...]:
        """Grid points without a result yet (partial/resumed sweeps)."""
        return tuple(p for p in self.points if p not in self.results)

    @property
    def is_complete(self) -> bool:
        return not self.missing_points()

    def at(self, vlen: int, l2_mb: int) -> NetworkResult:
        try:
            return self.results[(vlen, l2_mb)]
        except KeyError:
            raise ConfigError(
                f"({vlen} bits, {l2_mb} MB) was not part of the sweep"
            ) from None

    def seconds(self, vlen: int, l2_mb: int) -> float:
        return self.at(vlen, l2_mb).total.seconds

    def speedup(
        self, vlen: int, l2_mb: int,
        base_vlen: int | None = None, base_l2_mb: int | None = None,
    ) -> float:
        """Speedup of a point relative to a baseline (default: the
        smallest configuration of the sweep)."""
        bv = base_vlen if base_vlen is not None else min(self.vlens)
        bl = base_l2_mb if base_l2_mb is not None else min(self.l2_mbs)
        return self.seconds(bv, bl) / self.seconds(vlen, l2_mb)

    def miss_rate_table(self, l2_mb: int) -> dict[int, float]:
        """L2 miss rate per vector length at one L2 size (Tables 1/2)."""
        return {
            v: self.at(v, l2_mb).total.l2_miss_rate for v in self.vlens
        }

    def runtime_grid(self) -> dict[int, dict[int, float]]:
        """Seconds, keyed [vlen][l2_mb] (the Figure 3/4 series)."""
        return {
            v: {l: self.seconds(v, l) for l in self.l2_mbs}
            for v in self.vlens
        }

    def best(self) -> tuple[int, int]:
        """The fastest configuration of the grid."""
        if not self.results:
            raise ConfigError("sweep has no results yet")
        return min(
            self.results, key=lambda k: self.results[k].total.seconds
        )

    def merge(self, other: "SweepResult") -> "SweepResult":
        """Union of two (possibly partial) sweeps of the same network.

        Points present in both take this sweep's value.  Used by the
        resume path to combine checkpointed points with freshly
        computed ones.
        """
        if other.name != self.name:
            raise ConfigError(
                f"cannot merge sweep {other.name!r} into {self.name!r}"
            )
        if other.backend != self.backend:
            raise ConfigError(
                f"cannot merge a {other.backend!r}-backend sweep into a "
                f"{self.backend!r}-backend sweep: the backends apply "
                f"different L2 criteria, so mixed grids are not comparable"
            )
        results = dict(other.results)
        results.update(self.results)
        return SweepResult(
            name=self.name,
            vlens=self.vlens + other.vlens,
            l2_mbs=self.l2_mbs + other.l2_mbs,
            results=results,
            backend=self.backend,
            degraded=self.degraded or other.degraded,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI output, checkpoint summaries).

        ``degraded`` is serialized only when set — it flags an
        exceptional run, and its absence keeps summaries written by
        healthy runs (including the golden fixtures) byte-stable.
        """
        d = {
            "name": self.name,
            "backend": self.backend,
            "vlens": list(self.vlens),
            "l2_mbs": list(self.l2_mbs),
            "results": [
                {"vlen": v, "l2_mb": l, "network": r.to_dict()}
                for (v, l), r in sorted(self.results.items())
            ],
        }
        if self.degraded:
            d["degraded"] = True
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`.

        Summaries written before backends existed carry no ``backend``
        key; they were produced by the exact per-point simulation.
        """
        return cls(
            name=str(d["name"]),
            vlens=tuple(int(v) for v in d["vlens"]),
            l2_mbs=tuple(int(l) for l in d["l2_mbs"]),
            results={
                (int(e["vlen"]), int(e["l2_mb"])): NetworkResult.from_dict(
                    e["network"]
                )
                for e in d.get("results", [])
            },
            backend=str(d.get("backend", BACKEND_EXACT)),
            degraded=bool(d.get("degraded", False)),
        )


def codesign_sweep(
    name: str,
    layers: list[LayerSpec],
    vlens: Sequence[int] = PAPER_VLENS,
    l2_mbs: Sequence[int] = PAPER_L2_MBS,
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    on_progress: "Callable[[SweepProgress], None] | None" = None,
    mode: str = BACKEND_EXACT,
    sink: "EventSink | None" = None,
    recorder: "BenchRecorder | None" = None,
) -> SweepResult:
    """Run a network across the co-design grid.

    Args:
        name: report label.
        layers: the network (from :mod:`repro.nets`).
        vlens: vector lengths in bits.
        l2_mbs: L2 capacities in MB.
        hybrid: algorithm policy (see
            :func:`repro.nets.inference.simulate_inference`).
        variant: tuple-multiplication variant.
        base_config: template for all other parameters (frequency,
            L1, latency constants); defaults to the paper's setup.
        workers: units of work evaluated concurrently; ``1`` runs
            serially in-process, more fans out over a process pool
            (results are bit-identical either way).  Both modes
            parallelize over VLEN columns: the exact backend records a
            column once and replays it per L2 size, the fast backend
            answers the column with one profiling pass.
        checkpoint_dir: directory for per-point JSON checkpoints; an
            interrupted sweep re-run with the same directory resumes
            without recomputing finished points.  Checkpoints record
            the backend that produced them, and a directory never
            mixes backends.
        on_progress: called with a
            :class:`~repro.codesign.executor.SweepProgress` after every
            finished (or checkpoint-restored) point.
        mode: ``"exact"`` evaluates every grid point through the full
            analytical models — recorded once per VLEN and replayed
            bit-identically across the L2 axis
            (:func:`repro.nets.inference.record_inference`); ``"fast"``
            runs one stack-distance profiling pass per VLEN and
            answers the whole L2 axis analytically (see
            :mod:`repro.codesign.fastpath` for the error model).  For
            ``"validate"`` — both backends plus a delta report — use
            :func:`validate_codesign_sweep`.
        sink: an :class:`~repro.obs.EventSink` receiving the sweep's
            structured event stream (progress ticks, warnings, run
            summary); the CLI's ``--trace`` wires a JSONL sink here.
        recorder: a :class:`~repro.obs.BenchRecorder` collecting each
            point's cycles and wall time for the regression
            observatory (``repro bench record`` / ``compare``).
    """
    if mode == "validate":
        raise ConfigError(
            "mode='validate' returns a SweepValidation, not a "
            "SweepResult; call validate_codesign_sweep instead"
        )
    from repro.codesign.executor import run_sweep

    return run_sweep(
        name, layers, vlens=vlens, l2_mbs=l2_mbs, hybrid=hybrid,
        variant=variant, base_config=base_config, workers=workers,
        checkpoint_dir=checkpoint_dir, on_progress=on_progress, mode=mode,
        sink=sink, recorder=recorder,
    )


@dataclass(frozen=True)
class SweepValidation:
    """Fast-vs-exact differential report of one sweep grid.

    Produced by :func:`validate_codesign_sweep` (the CLI's
    ``--mode validate``): both backends run the same grid, and the
    deltas quantify the fast path's stated associativity/smoothing
    error (see :mod:`repro.codesign.fastpath`).
    """

    exact: SweepResult
    fast: SweepResult

    def __post_init__(self) -> None:
        if self.exact.points != self.fast.points:
            raise ConfigError("validation requires identical grids")

    @property
    def miss_rate_deltas(self) -> dict[tuple[int, int], float]:
        """|fast - exact| total L2 miss rate per grid point."""
        return {
            (v, l): abs(
                self.fast.at(v, l).total.l2_miss_rate
                - self.exact.at(v, l).total.l2_miss_rate
            )
            for v, l in self.exact.points
        }

    @property
    def max_miss_rate_delta(self) -> float:
        deltas = self.miss_rate_deltas
        return max(deltas.values()) if deltas else 0.0

    @property
    def best_agrees(self) -> bool:
        """Whether both backends elect the same (VLEN, L2) optimum."""
        return self.exact.best() == self.fast.best()

    def summary(self) -> str:
        """Per-point delta table plus the headline max-delta line."""
        rows = [
            f"fast-vs-exact validation — {self.exact.name}",
            f"{'point':<18}{'exact miss %':>14}{'fast miss %':>13}"
            f"{'delta':>9}",
        ]
        deltas = self.miss_rate_deltas
        for v, l in self.exact.points:
            e = self.exact.at(v, l).total.l2_miss_rate
            f = self.fast.at(v, l).total.l2_miss_rate
            rows.append(
                f"{f'{v}b/{l}MB':<18}{100 * e:>13.2f}%{100 * f:>12.2f}%"
                f"{100 * deltas[(v, l)]:>8.2f}%"
            )
        agree = "agree" if self.best_agrees else "DISAGREE"
        rows.append(
            f"max miss-rate delta {100 * self.max_miss_rate_delta:.2f}% "
            f"over {len(deltas)} points; best points {agree} "
            f"(exact {self.exact.best()}, fast {self.fast.best()})"
        )
        return "\n".join(rows)


def validate_codesign_sweep(
    name: str,
    layers: list[LayerSpec],
    vlens: Sequence[int] = PAPER_VLENS,
    l2_mbs: Sequence[int] = PAPER_L2_MBS,
    hybrid: bool = True,
    variant: str = SLIDEUP,
    base_config: SystemConfig | None = None,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    on_progress: "Callable[[SweepProgress], None] | None" = None,
    sink: "EventSink | None" = None,
) -> SweepValidation:
    """Run the grid through both backends and report their deltas.

    Checkpoints (when enabled) go to ``<dir>/exact`` and ``<dir>/fast``
    so the two runs can never share point files.  Both runs emit into
    the same ``sink`` (their ``sweep_start`` events carry the backend).
    """
    def subdir(tag: str) -> Path | None:
        return Path(checkpoint_dir) / tag if checkpoint_dir else None

    exact = codesign_sweep(
        name, layers, vlens=vlens, l2_mbs=l2_mbs, hybrid=hybrid,
        variant=variant, base_config=base_config, workers=workers,
        checkpoint_dir=subdir(BACKEND_EXACT), on_progress=on_progress,
        mode=BACKEND_EXACT, sink=sink,
    )
    fast = codesign_sweep(
        name, layers, vlens=vlens, l2_mbs=l2_mbs, hybrid=hybrid,
        variant=variant, base_config=base_config, workers=workers,
        checkpoint_dir=subdir(BACKEND_FAST), on_progress=on_progress,
        mode=BACKEND_FAST, sink=sink,
    )
    return SweepValidation(exact=exact, fast=fast)
