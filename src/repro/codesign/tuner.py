"""Per-layer schedule search behind ``repro tune``.

For each convolutional layer the tuner enumerates the DSL's schedule
space (:mod:`repro.schedule.space`), ranks every candidate with the
cheap surrogate (:mod:`repro.schedule.cost` — exact issue cycles,
stack-distance-style stall estimate), then *exactly* simulates the
top-k by running the generated kernels on the functional RVV machine
and replaying the captured trace through the timing model — the same
trace-exact path the kernel microbenchmarks use.

Trust gate: an exactly-simulated candidate is only reportable if its
machine output is bit-identical to the fp32 reference
(:func:`repro.conv.reference.gemm_fp32` semantics); a mismatch raises
— a tuner must never recommend a kernel that fails differential
validation.

The default (hand-written-equivalent) schedule is always part of the
exactly-simulated set, so the winner is never worse than the shipped
kernel.  Layers are shrunk to tractable *proxy* problems (channel and
pixel caps) before search — the caps are recorded in the report and
the provenance manifest.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.conv.layer import ConvLayerSpec
from repro.conv.reference import gemm_fp32
from repro.errors import ConfigError
from repro.kernels.buffers import GemmBuffers, Im2colBuffers
from repro.kernels.common import GemmGeometry, Im2colGeometry
from repro.kernels.gemm import gemm_kernel
from repro.kernels.im2col import im2col_kernel
from repro.rvv import Memory, RvvMachine, Tracer
from repro.schedule.algorithms import CopyAlgorithm, MatmulAlgorithm
from repro.schedule.cost import copy_surrogate, matmul_surrogate
from repro.schedule.ir import Schedule, default_copy_schedule
from repro.schedule.library import scheduled_gemm, scheduled_im2col
from repro.schedule.space import matmul_space, sample_space
from repro.sim.system import Simulator, SystemConfig

#: Tuner memory arena (enough for the largest proxy problems).
_ARENA_BYTES = 1 << 28


@dataclass
class TunedCandidate:
    """One schedule point with its surrogate (and maybe exact) cost."""

    schedule: Schedule
    surrogate_cycles: float
    exact_cycles: float | None = None
    validated: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule.describe(),
            "label": self.schedule.label(),
            "surrogate_cycles": self.surrogate_cycles,
            "exact_cycles": self.exact_cycles,
            "validated": self.validated,
        }


@dataclass
class LayerTuning:
    """Search result for one (proxy) layer."""

    layer: str
    problem: dict[str, Any]
    baseline_cycles: float
    candidates: list[TunedCandidate] = field(default_factory=list)
    top_k: int = 0

    @property
    def evaluated(self) -> list[TunedCandidate]:
        return [c for c in self.candidates if c.exact_cycles is not None]

    @property
    def best(self) -> TunedCandidate:
        return min(self.evaluated, key=lambda c: (c.exact_cycles, c.surrogate_cycles))

    @property
    def speedup(self) -> float:
        assert self.best.exact_cycles is not None
        return self.baseline_cycles / self.best.exact_cycles

    def to_dict(self) -> dict[str, Any]:
        return {
            "layer": self.layer,
            "problem": self.problem,
            "baseline_cycles": self.baseline_cycles,
            "top_k": self.top_k,
            "best": self.best.to_dict(),
            "speedup": self.speedup,
            "candidates": [c.to_dict() for c in self.candidates],
        }


@dataclass
class TuningReport:
    """The full ``repro tune`` result (JSON + text renderable)."""

    net: str
    config: dict[str, Any]
    seed: int
    budget: int | None
    top_k: int
    layers: list[LayerTuning] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "net": self.net,
            "config": self.config,
            "seed": self.seed,
            "budget": self.budget,
            "top_k": self.top_k,
            "layers": [t.to_dict() for t in self.layers],
        }

    def render(self) -> str:
        lines = [
            f"schedule search: {self.net} @ VLEN {self.config['vlen_bits']} "
            f"(seed {self.seed}, budget {self.budget}, top-k {self.top_k})",
            f"{'layer':<12} {'baseline':>12} {'best':>12} {'speedup':>8}  best schedule",
        ]
        for t in self.layers:
            best = t.best
            assert best.exact_cycles is not None
            lines.append(
                f"{t.layer:<12} {t.baseline_cycles:>12.0f} "
                f"{best.exact_cycles:>12.0f} {t.speedup:>7.2f}x  "
                f"{best.schedule.label()}")
        return "\n".join(lines)


def proxy_layer(
    layer: ConvLayerSpec, max_pixels: int, max_channels: int
) -> ConvLayerSpec:
    """Shrink a layer to a tractable search proxy.

    Channel extents are clamped to ``max_channels``; spatial extents
    are halved until the output plane fits ``max_pixels``.  Schedule
    *ranking* is what the proxy must preserve: the loop structure and
    reuse-distance regimes scale with the caps, the absolute cycle
    counts do not.
    """
    h, w = layer.h_in, layer.w_in
    spec = ConvLayerSpec(
        name=layer.name, c_in=min(layer.c_in, max_channels),
        h_in=h, w_in=w, c_out=min(layer.c_out, max_channels),
        ksize=layer.ksize, stride=layer.stride, pad=layer.pad)
    while spec.h_out * spec.w_out > max_pixels:
        h = max(layer.ksize, h // 2)
        w = max(layer.ksize, w // 2)
        shrunk = ConvLayerSpec(
            name=spec.name, c_in=spec.c_in, h_in=h, w_in=w,
            c_out=spec.c_out, ksize=spec.ksize, stride=spec.stride,
            pad=spec.pad)
        if (shrunk.h_out, shrunk.w_out) == (spec.h_out, spec.w_out):
            break  # cannot shrink further
        spec = shrunk
    return spec


def _stage(
    machine: RvvMachine, layer: ConvLayerSpec, seed: int
) -> tuple[Im2colGeometry, Im2colBuffers, GemmGeometry, GemmBuffers, np.ndarray]:
    """Stage one layer's im2col+GEMM problem on a fresh machine."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(
        (layer.c_in, layer.h_in, layer.w_in)).astype(np.float32)
    w = rng.standard_normal(
        (layer.c_out, layer.c_in, layer.ksize, layer.ksize)
    ).astype(np.float32)
    ig = Im2colGeometry(c_in=layer.c_in, h=layer.h_in, w=layer.w_in,
                        ksize=layer.ksize, stride=layer.stride,
                        pad=layer.pad)
    ibufs = Im2colBuffers.allocate(machine, ig)
    ibufs.load_input(machine, ig, x)
    gg = GemmGeometry(m=layer.c_out, kd=ig.rows, n=ig.cols,
                      vlen_elems=machine.vlen_bits // 32)
    gbufs = GemmBuffers(
        a=machine.memory.alloc_f32(gg.a_size, label="gemm.a"),
        b=ibufs.cols,
        c=machine.memory.alloc_f32(gg.c_size, label="gemm.c"))
    machine.memory.write_f32(gbufs.a, w.reshape(layer.c_out, -1))
    return ig, ibufs, gg, gbufs, w.reshape(layer.c_out, -1)


def _machine(config: SystemConfig) -> RvvMachine:
    return RvvMachine(config.vlen_bits, memory=Memory(_ARENA_BYTES),
                      tracer=Tracer(capture=True))


def _exact_cycles(
    layer: ConvLayerSpec, config: SystemConfig, seed: int,
    gemm_sched: Schedule | None,
) -> tuple[float, bool]:
    """(exact cycles, output bit-identical to the fp32 reference).

    ``gemm_sched=None`` runs the hand-written kernels (the baseline);
    otherwise the generated im2col (default copy schedule) + the
    generated GEMM under ``gemm_sched``.
    """
    machine = _machine(config)
    ig, ibufs, gg, gbufs, a = _stage(machine, layer, seed)
    if gemm_sched is None:
        im2col_kernel(machine, ig, ibufs)
        gemm_kernel(machine, gg, gbufs)
    else:
        scheduled_im2col(machine, ig, ibufs, default_copy_schedule())
        scheduled_gemm(machine, gg, gbufs, gemm_sched)
    cols = ibufs.read_cols(machine, ig)
    got = gbufs.read_c(machine, gg)
    ok = bool(np.array_equal(got, gemm_fp32(a, cols)))
    stats = Simulator(config).run_trace(machine.tracer, label=layer.name)
    return stats.cycles, ok


def tune_layer(
    layer: ConvLayerSpec,
    config: SystemConfig,
    seed: int = 0,
    budget: int | None = 24,
    top_k: int = 3,
    exhaustive: bool = False,
) -> LayerTuning:
    """Search the GEMM-stage schedule space of one (proxy) layer.

    Surrogate-ranks the sampled space, exactly simulates the top-k
    plus the default schedule (or everything when ``exhaustive``),
    and differentially validates every exactly-simulated candidate
    against the fp32 reference.
    """
    if top_k < 1:
        raise ConfigError(f"top_k must be >= 1, got {top_k}")
    ig = Im2colGeometry(c_in=layer.c_in, h=layer.h_in, w=layer.w_in,
                        ksize=layer.ksize, stride=layer.stride,
                        pad=layer.pad)
    alg = MatmulAlgorithm(
        name="gemm", m=layer.c_out, n=ig.cols, kd=ig.rows,
        a_row_stride=ig.rows, b_row_stride=ig.cols, c_row_stride=ig.cols)
    space = sample_space(matmul_space(alg.m, alg.kd), budget, seed)
    copy_cost = copy_surrogate(
        CopyAlgorithm(ig), default_copy_schedule(), config).cycles

    candidates = [
        TunedCandidate(
            schedule=s,
            surrogate_cycles=copy_cost + matmul_surrogate(alg, s, config).cycles)
        for s in space
    ]
    ranked = sorted(range(len(candidates)),
                    key=lambda i: (candidates[i].surrogate_cycles, i))
    if exhaustive:
        chosen = list(range(len(candidates)))
    else:
        chosen = ranked[:top_k]
        if 0 not in chosen:
            chosen.append(0)  # the default schedule is always evaluated

    baseline, _ = _exact_cycles(layer, config, seed, None)
    for i in chosen:
        cycles, ok = _exact_cycles(layer, config, seed,
                                   candidates[i].schedule)
        if not ok:
            raise ConfigError(
                f"generated kernel failed differential validation: "
                f"{layer.name} / {candidates[i].schedule.label()}")
        candidates[i].exact_cycles = cycles
        candidates[i].validated = ok

    return LayerTuning(
        layer=layer.name,
        problem={"m": alg.m, "n": alg.n, "kd": alg.kd,
                 "c_in": layer.c_in, "h_in": layer.h_in,
                 "w_in": layer.w_in, "ksize": layer.ksize,
                 "stride": layer.stride, "pad": layer.pad,
                 "space_size": len(space)},
        baseline_cycles=baseline,
        candidates=candidates,
        top_k=top_k)


def tune_network(
    net: str,
    layers: list[ConvLayerSpec],
    config: SystemConfig,
    seed: int = 0,
    budget: int | None = 24,
    top_k: int = 3,
    max_pixels: int = 1024,
    max_channels: int = 64,
    exhaustive: bool = False,
) -> TuningReport:
    """Tune every conv layer of a network on proxy problems."""
    report = TuningReport(net=net, config=asdict(config), seed=seed,
                          budget=budget, top_k=top_k)
    for idx, layer in enumerate(layers):
        if not isinstance(layer, ConvLayerSpec):
            continue  # pooling layers have no schedule space
        proxy = proxy_layer(layer, max_pixels, max_channels)
        tuning = tune_layer(proxy, config, seed=seed + idx, budget=budget,
                            top_k=top_k, exhaustive=exhaustive)
        tuning.problem["original"] = {
            "c_in": layer.c_in, "h_in": layer.h_in, "w_in": layer.w_in,
            "c_out": layer.c_out}
        tuning.problem["proxy_caps"] = {
            "max_pixels": max_pixels, "max_channels": max_channels}
        report.layers.append(tuning)
    return report
