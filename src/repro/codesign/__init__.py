"""The co-design study: vector-length x L2-size sweeps and reporting."""

from repro.codesign.report import (
    PAPER_HEADLINES,
    PAPER_TABLE1_YOLO,
    PAPER_TABLE2_VGG,
    Comparison,
    comparison_table,
    miss_rate_report,
    runtime_figure,
)
from repro.codesign.executor import SweepProgress, run_sweep
from repro.codesign.sweep import (
    PAPER_L2_MBS,
    PAPER_VLENS,
    SweepResult,
    codesign_sweep,
)

__all__ = [
    "codesign_sweep",
    "run_sweep",
    "SweepProgress",
    "SweepResult",
    "PAPER_VLENS",
    "PAPER_L2_MBS",
    "Comparison",
    "comparison_table",
    "miss_rate_report",
    "runtime_figure",
    "PAPER_TABLE1_YOLO",
    "PAPER_TABLE2_VGG",
    "PAPER_HEADLINES",
]
