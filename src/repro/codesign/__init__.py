"""The co-design study: vector-length x L2-size sweeps and reporting.

Two backends answer the (VLEN x L2) grid: the exact per-point
simulation and the stack-distance fast path
(:mod:`repro.codesign.fastpath`), which collapses the L2 axis into one
Mattson profiling pass per VLEN.  ``codesign_sweep(mode=...)`` selects
the backend; :func:`validate_codesign_sweep` runs both and reports
per-point miss-rate deltas.
"""

from repro.codesign.executor import (
    SweepProgress,
    evaluate_column,
    evaluate_point,
    run_sweep,
)
from repro.codesign.fastpath import (
    MISS_RATE_BOUND,
    LayerProfile,
    NetworkProfile,
    profile_network,
)
from repro.codesign.report import (
    PAPER_HEADLINES,
    PAPER_TABLE1_YOLO,
    PAPER_TABLE2_VGG,
    Comparison,
    backend_timing_report,
    comparison_table,
    miss_rate_report,
    runtime_figure,
)
from repro.codesign.sweep import (
    BACKEND_EXACT,
    BACKEND_FAST,
    BACKENDS,
    MODES,
    PAPER_L2_MBS,
    PAPER_VLENS,
    SweepResult,
    SweepValidation,
    codesign_sweep,
    validate_codesign_sweep,
)
from repro.codesign.tuner import (
    LayerTuning,
    TunedCandidate,
    TuningReport,
    proxy_layer,
    tune_layer,
    tune_network,
)

__all__ = [
    "codesign_sweep",
    "validate_codesign_sweep",
    "run_sweep",
    "evaluate_column",
    "evaluate_point",
    "profile_network",
    "NetworkProfile",
    "LayerProfile",
    "MISS_RATE_BOUND",
    "SweepProgress",
    "SweepResult",
    "SweepValidation",
    "BACKEND_EXACT",
    "BACKEND_FAST",
    "BACKENDS",
    "MODES",
    "PAPER_VLENS",
    "PAPER_L2_MBS",
    "Comparison",
    "comparison_table",
    "miss_rate_report",
    "runtime_figure",
    "backend_timing_report",
    "PAPER_TABLE1_YOLO",
    "PAPER_TABLE2_VGG",
    "PAPER_HEADLINES",
    "TunedCandidate",
    "LayerTuning",
    "TuningReport",
    "proxy_layer",
    "tune_layer",
    "tune_network",
]
