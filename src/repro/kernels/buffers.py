"""Simulated-memory buffer management for the vectorized kernels."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.common import GemmGeometry, Im2colGeometry, WinogradGeometry
from repro.rvv.machine import VectorEngine


@dataclass(frozen=True)
class WinogradBuffers:
    """Byte base addresses of the Winograd pipeline arenas."""

    x: int  # padded input, CHW
    weights: int  # raw filters (K, C, 3, 3)
    v: int  # transformed input V[p][tb][c][i]
    u: int  # transformed quad-replicated filters U[p][c][4k+e]
    m: int  # tuple products M[p][kp][tb][q][lane]
    y: int  # padded output, K x (tiles_h*6) x (tiles_w*6)
    scratch: int  # per-tile transform intermediate

    @classmethod
    def allocate(cls, machine: VectorEngine, geom: WinogradGeometry) -> "WinogradBuffers":
        mem = machine.memory
        return cls(
            x=mem.alloc_f32(geom.x_size, label="winograd.x"),
            weights=mem.alloc_f32(geom.c_out * geom.c_in * 9,
                                  label="winograd.weights"),
            v=mem.alloc_f32(geom.v_size, label="winograd.v"),
            u=mem.alloc_f32(geom.u_size, label="winograd.u"),
            m=mem.alloc_f32(geom.m_size, label="winograd.m"),
            y=mem.alloc_f32(geom.y_size, label="winograd.y"),
            scratch=mem.alloc_f32(geom.scratch_size, label="winograd.scratch"),
        )

    def load_input(
        self, machine: VectorEngine, geom: WinogradGeometry, x: np.ndarray
    ) -> None:
        """Place a (C, H, W) tensor into the padded input arena.

        Padding (the convolution's zero border plus the tile-overrun
        margin) is zero-filled; this is driver-side data staging, not a
        simulated kernel (Darknet stages inputs the same way).
        """
        if x.shape != (geom.c_in, geom.h, geom.w):
            raise ConfigError(f"input shape {x.shape} mismatches geometry")
        arena = machine.memory.view(self.x, geom.x_size, np.float32)
        arena[:] = 0.0
        padded = arena.reshape(geom.c_in, geom.hp, geom.wp)
        padded[:, geom.pad : geom.pad + geom.h, geom.pad : geom.pad + geom.w] = x
        machine.memory.view(self.y, geom.y_size, np.float32)[:] = 0.0

    def load_weights(
        self, machine: VectorEngine, geom: WinogradGeometry, w: np.ndarray
    ) -> None:
        if w.shape != (geom.c_out, geom.c_in, 3, 3):
            raise ConfigError(f"weight shape {w.shape} mismatches geometry")
        machine.memory.write_f32(self.weights, w.astype(np.float32))

    def read_output(
        self, machine: VectorEngine, geom: WinogradGeometry
    ) -> np.ndarray:
        """Read back and crop the padded output to (K, h_out, w_out)."""
        arena = machine.memory.view(self.y, geom.y_size, np.float32)
        full = arena.reshape(geom.c_out, geom.yp_h, geom.yp_w)
        return full[:, : geom.grid.h_out, : geom.grid.w_out].copy()


@dataclass(frozen=True)
class GemmBuffers:
    """Byte base addresses of the GEMM operands."""

    a: int
    b: int
    c: int

    @classmethod
    def allocate(cls, machine: VectorEngine, geom: GemmGeometry) -> "GemmBuffers":
        mem = machine.memory
        return cls(
            a=mem.alloc_f32(geom.a_size, label="gemm.a"),
            b=mem.alloc_f32(geom.b_size, label="gemm.b"),
            c=mem.alloc_f32(geom.c_size, label="gemm.c"),
        )

    def load(self, machine: VectorEngine, geom: GemmGeometry,
             a: np.ndarray, b: np.ndarray) -> None:
        if a.shape != (geom.m, geom.kd) or b.shape != (geom.kd, geom.n):
            raise ConfigError(
                f"GEMM operand shapes {a.shape}, {b.shape} mismatch geometry"
            )
        machine.memory.write_f32(self.a, a.astype(np.float32))
        machine.memory.write_f32(self.b, b.astype(np.float32))

    def read_c(self, machine: VectorEngine, geom: GemmGeometry) -> np.ndarray:
        return (
            machine.memory.read_f32(self.c, geom.c_size)
            .reshape(geom.m, geom.n)
            .copy()
        )


@dataclass(frozen=True)
class Im2colBuffers:
    """Byte base addresses for the im2col kernel."""

    x: int  # padded input
    cols: int  # column matrix

    @classmethod
    def allocate(cls, machine: VectorEngine, geom: Im2colGeometry) -> "Im2colBuffers":
        mem = machine.memory
        return cls(
            x=mem.alloc_f32(geom.x_size, label="im2col.x"),
            cols=mem.alloc_f32(geom.cols_size, label="im2col.cols"),
        )

    def load_input(
        self, machine: VectorEngine, geom: Im2colGeometry, x: np.ndarray
    ) -> None:
        if x.shape != (geom.c_in, geom.h, geom.w):
            raise ConfigError(f"input shape {x.shape} mismatches geometry")
        arena = machine.memory.view(self.x, geom.x_size, np.float32)
        arena[:] = 0.0
        padded = arena.reshape(geom.c_in, geom.hp, geom.wp)
        padded[:, geom.pad : geom.pad + geom.h, geom.pad : geom.pad + geom.w] = x

    def read_cols(self, machine: VectorEngine, geom: Im2colGeometry) -> np.ndarray:
        return (
            machine.memory.read_f32(self.cols, geom.cols_size)
            .reshape(geom.rows, geom.cols)
            .copy()
        )
