"""End-to-end convolution drivers on the functional vector machines.

These run the complete vectorized pipelines (data staging -> kernels ->
result readback) on an :class:`~repro.rvv.RvvMachine` or
:class:`~repro.sve.SveMachine`, returning NumPy results that the test
suite validates bit-for-bit-tolerance against the reference algorithms
of :mod:`repro.conv`.  They are the "Spike validation" stage of the
paper's methodology.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.kernels.buffers import (
    GemmBuffers,
    Im2colBuffers,
    WinogradBuffers,
)
from repro.kernels.common import GemmGeometry, Im2colGeometry, WinogradGeometry
from repro.kernels.gemm import gemm_kernel
from repro.kernels.im2col import im2col_kernel
from repro.kernels.transforms import (
    filter_transform,
    input_transform,
    output_transform,
)
from repro.kernels.tuple_mult import SLIDEUP, tuple_multiplication
from repro.rvv.machine import VectorEngine


def winograd_conv2d_sim(
    machine: VectorEngine,
    x: np.ndarray,
    weights: np.ndarray,
    pad: int = 1,
    variant: str = SLIDEUP,
) -> np.ndarray:
    """Full Winograd convolution executed on the vector machine.

    Args:
        machine: an RVV or SVE functional machine.
        x: input (C, H, W), float32.
        weights: filters (K, C, 3, 3), float32.
        pad: 0 or 1.
        variant: tuple-multiplication variant (see
            :mod:`repro.kernels.tuple_mult`).

    Returns:
        Output (K, h_out, w_out) as float32.
    """
    if x.ndim != 3 or weights.ndim != 4 or weights.shape[2:] != (3, 3):
        raise ConfigError("expected (C,H,W) input and (K,C,3,3) filters")
    c, h, w = x.shape
    k = weights.shape[0]
    if weights.shape[1] != c:
        raise ConfigError(f"channel mismatch: {c} vs {weights.shape[1]}")
    geom = WinogradGeometry(
        c_in=c, h=h, w=w, c_out=k, pad=pad,
        vlen_elems=machine.vlen_bits // 32,
    )
    bufs = WinogradBuffers.allocate(machine, geom)
    bufs.load_input(machine, geom, np.asarray(x, dtype=np.float32))
    bufs.load_weights(machine, geom, np.asarray(weights, dtype=np.float32))
    filter_transform(machine, geom, bufs)
    input_transform(machine, geom, bufs)
    tuple_multiplication(machine, geom, bufs, variant=variant)
    output_transform(machine, geom, bufs)
    return bufs.read_output(machine, geom)


def im2col_gemm_conv2d_sim(
    machine: VectorEngine,
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Full im2col+GEMM convolution executed on the vector machine."""
    if x.ndim != 3 or weights.ndim != 4:
        raise ConfigError("expected (C,H,W) input and (K,C,kh,kw) filters")
    c, h, w = x.shape
    k, cw, kh, kw = weights.shape
    if cw != c or kh != kw:
        raise ConfigError("channel mismatch or non-square kernel")
    ig = Im2colGeometry(c_in=c, h=h, w=w, ksize=kh, stride=stride, pad=pad)
    ibufs = Im2colBuffers.allocate(machine, ig)
    ibufs.load_input(machine, ig, np.asarray(x, dtype=np.float32))
    im2col_kernel(machine, ig, ibufs)

    gg = GemmGeometry(
        m=k, kd=ig.rows, n=ig.cols, vlen_elems=machine.vlen_bits // 32,
    )
    gbufs = GemmBuffers(
        a=machine.memory.alloc_f32(gg.a_size, label="gemm.a"),
        b=ibufs.cols,  # GEMM reads the column matrix in place
        c=machine.memory.alloc_f32(gg.c_size, label="gemm.c"),
    )
    machine.memory.write_f32(
        gbufs.a, np.asarray(weights, dtype=np.float32).reshape(k, -1)
    )
    gemm_kernel(machine, gg, gbufs)
    return gbufs.read_c(machine, gg).reshape(k, ig.h_out, ig.w_out)
