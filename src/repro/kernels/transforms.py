"""Vectorized Winograd transform kernels (input, filter, output).

These are the paper's Section 3 transformation kernels, written in the
vector-length-agnostic style of its EPI-intrinsics code and runnable on
both :class:`~repro.rvv.RvvMachine` and :class:`~repro.sve.SveMachine`.

Vectorization strategy — inter-tile parallelism across channels, as the
paper describes: for the input transform, each vector holds one tile
element across ``vl`` *input channels* (strided loads from the CHW
input); for the filter and output transforms, each vector spans *output
channels*.  Each 2D transform is two passes of the 1D transform
sequence produced by :func:`~repro.kernels.common.transform_ops` (the
paper's "approximately 30 instructions" blocks, open-coded at every
application site because RVV has no vector-typed pointers to pass
output registers through a function — the programmability gap Section 3
complains about).  Between the two passes, intermediates bounce through
a per-tile scratch buffer in memory; the standalone in-register
transpose alternatives the paper evaluates are in
:mod:`repro.kernels.transpose`.

Layouts are documented on :class:`~repro.kernels.common.WinogradGeometry`.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.buffers import WinogradBuffers
from repro.kernels.common import (
    QUAD,
    TILES_PER_BLOCK,
    TransformOp,
    WinogradGeometry,
    transform_ops,
)
from repro.rvv.machine import VectorEngine
from repro.winograd.cook_toom import WinogradTransforms, f6x3_transforms


def exec_transform(
    machine: VectorEngine,
    ops: tuple[TransformOp, ...],
    src: list[int],
    dst: list[int],
) -> None:
    """Execute one 1D transform application on live registers.

    ``src`` and ``dst`` must be disjoint register windows (the op
    sequence assumes sources stay valid until the end).
    """
    for op in ops:
        d = dst[op.dst]
        s = src[op.src]
        if op.kind == "mov":
            machine.vmv_v_v(d, s)
        elif op.kind == "mul":
            machine.vfmul_vf(d, s, op.coef)
        elif op.kind == "add":
            machine.vfadd_vv(d, d, s)
        elif op.kind == "sub":
            machine.vfsub_vv(d, d, s)
        else:  # fma
            machine.vfmacc_vf(d, op.coef, s)


def input_transform(
    machine: VectorEngine,
    geom: WinogradGeometry,
    bufs: WinogradBuffers,
    transforms: WinogradTransforms | None = None,
) -> None:
    """Transform every 8x8 input tile of every channel: X -> V.

    Loop structure (mirrored exactly by
    :func:`repro.model.winograd_model.input_transform_nests`):

    for each channel block cb (vl = channels in block):
      for each tile t:
        column pass: 8x (8 strided loads over channels, BT application,
                         8 unit scratch stores)
        row pass:    8x (8 unit scratch loads, BT application,
                         8 strided stores into V)
    """
    tf = transforms if transforms is not None else f6x3_transforms()
    bt = tf.BT(np.float32)
    ops = transform_ops(bt)
    ch_stride = geom.hp * geom.wp * 4  # bytes between channels in X
    v_ch_stride = TILES_PER_BLOCK * 4  # bytes between channels in V
    for cb in range(geom.channel_blocks):
        c0 = cb * geom.vlen_elems
        nc = min(geom.vlen_elems, geom.c_in - c0)
        for t in range(geom.num_tiles):
            y0, x0 = geom.tile_origin(t)
            tb, it = divmod(t, TILES_PER_BLOCK)
            machine.setvl(nc)
            with machine.alloc.scoped(16) as regs:
                src, dst = regs[:8], regs[8:]
                for j in range(8):  # column pass
                    for i in range(8):
                        addr = bufs.x + 4 * geom.x_offset(c0, y0 + i, x0 + j)
                        machine.vlse32(src[i], addr, ch_stride)
                    exec_transform(machine, ops, src, dst)
                    for i in range(8):
                        machine.vse32(
                            dst[i], bufs.scratch + 4 * geom.scratch_offset(j, i)
                        )
                for i in range(8):  # row pass
                    for j in range(8):
                        machine.vle32(
                            src[j], bufs.scratch + 4 * geom.scratch_offset(j, i)
                        )
                    exec_transform(machine, ops, src, dst)
                    for j in range(8):
                        p = i * 8 + j
                        machine.vsse32(
                            dst[j],
                            bufs.v + 4 * geom.v_offset(p, tb, c0, it),
                            v_ch_stride,
                        )


def filter_transform(
    machine: VectorEngine,
    geom: WinogradGeometry,
    bufs: WinogradBuffers,
    transforms: WinogradTransforms | None = None,
) -> None:
    """Transform the filters: weights -> U (compact [p][c][k] layout).

    Vectorized over output channels (vl = channels of one k-panel
    quarter); transformed values store unit-stride per (p, c), one
    value per output channel — the plain filter-matrix layout the
    paper's Algorithm 1 B loads read.

    Mirrored by :func:`repro.model.winograd_model.filter_transform_model`.
    """
    tf = transforms if transforms is not None else f6x3_transforms()
    g_mat = tf.G(np.float32)
    ops = transform_ops(g_mat)
    nk_full = geom.k_panel_lanes // QUAD
    w_k_stride = geom.c_in * 9 * 4  # bytes between output channels
    for kp in range(geom.k_panels):
        k0 = kp * (geom.vlen_elems // QUAD)
        nk = min(nk_full, geom.c_out - k0)
        for c in range(geom.c_in):
            machine.setvl(nk)
            with machine.alloc.scoped(17) as regs:
                src, dst = regs[:9], regs[9:]
                # Load the 3x3 filter taps across nk output channels.
                for ki in range(3):
                    for kj in range(3):
                        addr = bufs.weights + 4 * (
                            (k0 * geom.c_in + c) * 9 + ki * 3 + kj
                        )
                        machine.vlse32(src[ki * 3 + kj], addr, w_k_stride)
                # Column pass: A1[:, kj] = G @ g[:, kj]  (3 columns).
                for kj in range(3):
                    col = [src[ki * 3 + kj] for ki in range(3)]
                    exec_transform(machine, ops, col, dst)
                    for i in range(8):
                        machine.vse32(
                            dst[i], bufs.scratch + 4 * geom.scratch_offset(kj, i)
                        )
                # Row pass: U8[i, :] = G @ A1[i, :]^T  (8 rows).
                for i in range(8):
                    for kj in range(3):
                        machine.vle32(
                            src[kj], bufs.scratch + 4 * geom.scratch_offset(kj, i)
                        )
                    exec_transform(machine, ops, src[:3], dst)
                    for jj in range(8):
                        p = i * 8 + jj
                        machine.vse32(dst[jj], bufs.u + 4 * geom.u_offset(p, c, k0))


def output_transform(
    machine: VectorEngine,
    geom: WinogradGeometry,
    bufs: WinogradBuffers,
    transforms: WinogradTransforms | None = None,
) -> None:
    """Inverse-transform the tuple products: M -> Y.

    Vectorized over output channels.  Reading one tile's tuple values
    across the k-panel out of the quad-interleaved M layout is a
    stride-16 (four-float) load — the exact access pattern of the
    paper's strided-transpose workaround (Algorithm 4).  Final results
    scatter into the CHW output with channel-strided stores.

    Mirrored by :func:`repro.model.winograd_model.output_transform_nests`.
    """
    tf = transforms if transforms is not None else f6x3_transforms()
    at = tf.AT(np.float32)
    ops = transform_ops(at)
    nk_full = geom.k_panel_lanes // QUAD
    y_k_stride = geom.yp_h * geom.yp_w * 4
    for kp in range(geom.k_panels):
        k0 = kp * (geom.vlen_elems // QUAD)
        nk = min(nk_full, geom.c_out - k0)
        for t in range(geom.num_tiles):
            tb, it = divmod(t, TILES_PER_BLOCK)
            q, e = divmod(it, QUAD)
            ty, tx = divmod(t, geom.grid.tiles_w)
            y0, x0 = ty * 6, tx * 6
            machine.setvl(nk)
            with machine.alloc.scoped(16) as regs:
                src, dst = regs[:8], regs[8:]
                for j in range(8):  # column pass over the 8x8 p grid
                    for i in range(8):
                        p = i * 8 + j
                        base = bufs.m + 4 * (geom.m_offset(p, kp, tb, q) + e)
                        machine.vlse32(src[i], base, QUAD * 4)
                    exec_transform(machine, ops, src, dst)
                    for a in range(6):
                        machine.vse32(
                            dst[a], bufs.scratch + 4 * geom.scratch_offset(j, a)
                        )
                for a in range(6):  # row pass
                    for j in range(8):
                        machine.vle32(
                            src[j], bufs.scratch + 4 * geom.scratch_offset(j, a)
                        )
                    exec_transform(machine, ops, src, dst)
                    for b in range(6):
                        addr = bufs.y + 4 * geom.y_offset(k0, y0 + a, x0 + b)
                        machine.vsse32(dst[b], addr, y_k_stride)
