"""Vectorized direct convolution for 1x1 kernels.

The paper's Section 2 notes that direct convolution "is mainly used for
1x1 kernel size" (citing recent SIMD/long-vector direct-convolution
work), yet its own evaluation routes 1x1 layers through im2col+GEMM —
where the im2col step degenerates to copying the input into the column
matrix.  This kernel skips that copy: a 1x1 convolution is a GEMM whose
B matrix *is* the input feature map, so the microkernel streams the
input planes directly:

    Y[k, :] = sum_c W[k, c] * X[c, ::stride]

Same accumulator structure as :mod:`repro.kernels.gemm` (``mr`` output
channels per pass, ``vl`` pixels per vector); stride-2 layers use
strided loads.  The ablation bench ``bench_ablation_direct_1x1.py``
quantifies the saved traffic against the paper's im2col+GEMM choice on
YOLOv3's six 1x1 layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.kernels.common import ceil_div
from repro.rvv.machine import VectorEngine


@dataclass(frozen=True)
class Direct1x1Geometry:
    """Geometry of a 1x1 convolution run directly on the feature map."""

    c_in: int
    h: int
    w: int
    c_out: int
    stride: int
    vlen_elems: int
    mr: int = 8

    def __post_init__(self) -> None:
        if min(self.c_in, self.h, self.w, self.c_out, self.stride) < 1:
            raise ConfigError(f"bad 1x1 geometry: {self}")

    @property
    def h_out(self) -> int:
        return (self.h - 1) // self.stride + 1

    @property
    def w_out(self) -> int:
        return (self.w - 1) // self.stride + 1

    @property
    def n_pixels(self) -> int:
        return self.h_out * self.w_out

    @property
    def k_blocks(self) -> int:
        return ceil_div(self.c_out, self.mr)

    @property
    def x_size(self) -> int:
        return self.c_in * self.h * self.w

    @property
    def w_size(self) -> int:
        return self.c_out * self.c_in

    @property
    def y_size(self) -> int:
        return self.c_out * self.n_pixels

    def x_offset(self, c: int, y: int, x: int) -> int:
        return (c * self.h + y) * self.w + x

    def y_offset(self, k: int, oy: int, ox: int) -> int:
        return (k * self.h_out + oy) * self.w_out + ox


@dataclass(frozen=True)
class Direct1x1Buffers:
    """Byte base addresses for the direct 1x1 kernel."""

    x: int
    weights: int
    y: int

    @classmethod
    def allocate(cls, machine: VectorEngine, geom: Direct1x1Geometry):
        mem = machine.memory
        return cls(
            x=mem.alloc_f32(geom.x_size, label="direct.x"),
            weights=mem.alloc_f32(geom.w_size, label="direct.weights"),
            y=mem.alloc_f32(geom.y_size, label="direct.y"),
        )


def direct1x1_kernel(
    machine: VectorEngine,
    geom: Direct1x1Geometry,
    bufs: Direct1x1Buffers,
) -> None:
    """Direct 1x1 convolution over CHW feature maps.

    Loop structure (mirrored exactly by
    :func:`repro.model.direct_model.direct1x1_model`); the pixel strip
    is *outermost* so the just-loaded input strip is re-read across the
    output-channel blocks at a tiny reuse distance (C x strip bytes),
    and stride-1 layers strip-mine the whole contiguous plane rather
    than row by row:

    for each pixel strip (whole plane at stride 1, per row otherwise):
      for each output-channel block (mr channels):
        mr x accumulator init
        for c in input channels:
          1x (unit | strided) load of the input strip
          mr x (scalar weight load + vfmacc.vf)
        mr x unit store
    """
    s = geom.stride
    w_view = machine.memory.view(bufs.weights, geom.w_size)

    def strips():
        """Yield (x element offset within plane, y offset, length)."""
        if s == 1:
            n = geom.h * geom.w  # h_out*w_out == plane for stride 1
            done = 0
            while done < n:
                ln = min(geom.vlen_elems, n - done)
                yield done, done, ln
                done += ln
        else:
            for oy in range(geom.h_out):
                done = 0
                while done < geom.w_out:
                    ln = min(geom.vlen_elems, geom.w_out - done)
                    yield (oy * s) * geom.w + done * s, oy * geom.w_out + done, ln
                    done += ln

    with machine.alloc.scoped(geom.mr + 1) as regs:
        acc, xv = regs[: geom.mr], regs[geom.mr]
        for x_off, y_off, ln in strips():
            machine.setvl(ln)
            for kb in range(geom.k_blocks):
                k0 = kb * geom.mr
                rows = min(geom.mr, geom.c_out - k0)
                for r in range(rows):
                    machine.vfmv_v_f(acc[r], 0.0)
                for c in range(geom.c_in):
                    src = bufs.x + 4 * (c * geom.h * geom.w + x_off)
                    if s == 1:
                        machine.vle32(xv, src)
                    else:
                        machine.vlse32(xv, src, 4 * s)
                    for r in range(rows):
                        wv = float(w_view[(k0 + r) * geom.c_in + c])
                        machine.scalar_ops(1)  # the scalar weight load
                        machine.vfmacc_vf(acc[r], wv, xv)
                for r in range(rows):
                    machine.vse32(
                        acc[r],
                        bufs.y + 4 * ((k0 + r) * geom.n_pixels + y_off),
                    )


def direct_conv1x1_sim(
    machine: VectorEngine,
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
) -> np.ndarray:
    """End-to-end driver: run a 1x1 convolution on the vector machine."""
    if weights.ndim != 4 or weights.shape[2:] != (1, 1):
        raise ConfigError("direct_conv1x1_sim expects (K, C, 1, 1) filters")
    c, h, w = x.shape
    k = weights.shape[0]
    if weights.shape[1] != c:
        raise ConfigError(f"channel mismatch: {c} vs {weights.shape[1]}")
    geom = Direct1x1Geometry(
        c_in=c, h=h, w=w, c_out=k, stride=stride,
        vlen_elems=machine.vlen_bits // 32,
    )
    bufs = Direct1x1Buffers.allocate(machine, geom)
    machine.memory.write_f32(bufs.x, np.ascontiguousarray(x, dtype=np.float32))
    machine.memory.write_f32(
        bufs.weights, np.ascontiguousarray(weights, dtype=np.float32).reshape(k, c)
    )
    direct1x1_kernel(machine, geom, bufs)
    return (
        machine.memory.read_f32(bufs.y, geom.y_size)
        .reshape(k, geom.h_out, geom.w_out)
        .copy()
    )
