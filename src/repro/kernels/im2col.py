"""VLA im2col kernel — Darknet's input unfolding, vectorized.

Each row of the column matrix corresponds to one (channel, filter-row,
filter-column) triple; filling it copies one shifted/strided view of
the input plane.  Stride-1 layers copy with unit-stride loads; strided
layers use strided loads (element stride = ``stride * 4`` bytes), one
output row at a time, strip-mined over the output width.
"""

from __future__ import annotations

from repro.kernels.buffers import Im2colBuffers
from repro.kernels.common import Im2colGeometry
from repro.rvv.machine import VectorEngine


def im2col_kernel(
    machine: VectorEngine,
    geom: Im2colGeometry,
    bufs: Im2colBuffers,
) -> None:
    """Unfold the padded input into the Darknet column matrix.

    Loop structure (mirrored exactly by
    :func:`repro.model.im2col_model.im2col_nests`):

    for each row (c, ki, kj) of the column matrix:
      for each output row oy:
        strip-mine output columns: (unit or strided) load + unit store
    """
    s = geom.stride
    with machine.alloc.scoped(1) as (v,):
        for c in range(geom.c_in):
            for ki in range(geom.ksize):
                for kj in range(geom.ksize):
                    row = (c * geom.ksize + ki) * geom.ksize + kj
                    for oy in range(geom.h_out):
                        iy = oy * s + ki
                        done = 0
                        while done < geom.w_out:
                            vl = machine.setvl(geom.w_out - done)
                            src = bufs.x + 4 * geom.x_offset(
                                c, iy, (done * s) + kj
                            )
                            if s == 1:
                                machine.vle32(v, src)
                            else:
                                machine.vlse32(v, src, 4 * s)
                            dst = bufs.cols + 4 * (
                                row * geom.cols + oy * geom.w_out + done
                            )
                            machine.vse32(v, dst)
                            done += vl
