"""Tuple multiplication — the paper's Algorithm 1 and Algorithm 2.

The Winograd tuple multiplication contracts the transformed input
``V_p[c][t]`` with the transformed filters ``U_p[c][k]`` over the input
channels, independently for each of the 64 tuple positions ``p``:

    M_p[t, k] = sum_c V_p[c, t] * U_p[c, k]

The microkernel covers one *tile block* of 64 tiles with 16 quad
accumulators and one *k-panel* of ``vl/4`` output channels per vector:
accumulator lane ``l = 4*(k - k0) + e`` of quad ``q`` holds
``M_p[64*tb + 4q + e, k]``.  Per input channel the kernel issues **one
unit-stride load of the compact filter panel** (the plain filter matrix
of the paper's Algorithm 1) followed by one ``vrgather`` spreading each
value across its quad's four lanes, and, per quad, **one replication of
a four-element block of V** followed by a ``vfmacc`` — the instruction
shape of the paper's pseudocode.

The quad replication is where the paper's two variants differ:

- :data:`INDEXED` (Algorithm 1): an indexed (gather) load with the
  periodic byte-offset pattern 0,4,8,12, 0,4,8,12, ... materialized in
  an index register once per kernel invocation.
- :data:`SLIDEUP` (Algorithm 2): a unit-stride load of the quad, then
  ``vslideup`` steps (with the register copies RVV 1.0's no-overlap
  rule forces) replicating it across the vector.  ``SLIDEUP`` uses the
  paper's linear slide amounts 4, 8, ..., vl/2; :data:`SLIDEUP_LOG`
  is the doubling-amount refinement (an ablation in DESIGN.md).

The paper measures the slideup variant ~2.3x faster because indexed
loads cost one memory access per element; benchmark K1 reproduces that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.kernels.buffers import WinogradBuffers
from repro.kernels.common import QUAD, TILES_PER_BLOCK, WinogradGeometry
from repro.rvv.machine import VectorEngine

#: Variant names.
INDEXED = "indexed"
SLIDEUP = "slideup"
SLIDEUP_LOG = "slideup_log"
#: Uses the proposed ``vrep4`` instruction (requires
#: :class:`repro.rvv.proposed.RvvPlusMachine`): one register permute
#: replaces the whole slide chain — the paper's "opportunity".
NATIVE = "native"

VARIANTS = (INDEXED, SLIDEUP, SLIDEUP_LOG, NATIVE)

#: Quads per tile block: 16 accumulators.
QUADS_PER_BLOCK = TILES_PER_BLOCK // QUAD


def quad_index_pattern(vl: int) -> np.ndarray:
    """The Algorithm 1 index pattern: byte offsets 0,4,8,12 repeated."""
    return np.tile(np.arange(QUAD, dtype=np.uint32) * 4, -(-vl // QUAD))[:vl]


def expand_index_pattern(vl: int) -> np.ndarray:
    """``vrgather`` lane indices expanding a compact filter panel.

    Lane ``4m + e`` reads source lane ``m``, spreading each loaded
    filter value across the four tile rows of a quad.
    """
    return (np.arange(vl, dtype=np.uint32) // QUAD).astype(np.uint32)


def slide_amounts(vl: int, log2: bool = False) -> list[int]:
    """Slide offsets replicating a leading quad across ``vl`` lanes.

    Linear (the paper's Algorithm 2 loop): amounts 4, 8, 12, ... — the
    correctly-replicated prefix grows by the slide amount each step
    (4 -> 8 -> 16 -> 28 -> 44 -> ...), so the loop stops once the
    prefix covers ``vl`` (at amount ~vl/2 for power-of-two lengths,
    matching the paper's ``4*ind <= gvl/2`` bound).
    Doubling: amounts 4, 8, 16, ... (prefix doubles per step).
    """
    if vl <= QUAD:
        return []
    out: list[int] = []
    prefix = QUAD
    if log2:
        while prefix < vl:
            out.append(prefix)
            prefix *= 2
        return out
    amt = QUAD
    while prefix < vl:
        out.append(amt)
        prefix += amt
        amt += QUAD
    return out


def _replicate_quad_slideup(
    machine: VectorEngine, a: int, b: int, amounts: list[int]
) -> int:
    """Replicate the quad in ``a``'s leading lanes using slide-ups.

    RVV 1.0 reserves overlapping source/destination for ``vslideup``
    (a strict :class:`~repro.rvv.machine.RvvMachine` raises
    :class:`~repro.errors.VectorStateError` on it, and the ``overlap``
    verifier pass in :mod:`repro.analysis` flags it in any trace), and
    the destination's lanes below the offset are preserved, so each
    step is a register copy plus a slide, ping-ponging between ``a``
    and ``b``.  Returns the register holding the replicated quad.
    """
    cur, other = a, b
    for amt in amounts:
        machine.vmv_v_v(other, cur)
        machine.vslideup_vx(other, cur, amt)
        cur, other = other, cur
    return cur


#: Loop orders (see the docstring below and EXPERIMENTS.md).
FILTER_STATIONARY = "filter_stationary"
TILE_STATIONARY = "tile_stationary"

LOOP_ORDERS = (FILTER_STATIONARY, TILE_STATIONARY)


def tuple_multiplication(
    machine: VectorEngine,
    geom: WinogradGeometry,
    bufs: WinogradBuffers,
    variant: str = SLIDEUP,
    loop_order: str = FILTER_STATIONARY,
) -> None:
    """Compute M = V (*) U for all tuple positions.

    Loop structure (mirrored exactly by
    :func:`repro.model.winograd_model.tuple_mult_model`); the loop
    order is filter-stationary — per (tuple position, k-panel) the
    compact filter slab stays cache-hot while the tile blocks stream —
    so the transformed filters are read essentially once per layer.
    The transformed input V is re-read once per k-panel at a reuse
    distance of roughly its per-tuple-position plane, and the tuple
    products M are re-read by the output transform an entire tensor
    later: those two distances (MBs to tens of MBs for the deep
    layers) are the working sets whose capture drives the L2-size
    scaling of the paper's Figures 3 and 4.

    for p in 64 tuple positions:
      for kp in k-panels (vl = panel lanes):
        1x expansion-index load (+ quad-index load for INDEXED)
        for tb in tile blocks:
          16x accumulator init
          for c in input channels:
            1x unit load of the compact filter panel U[p][c][k0..]
            1x vrgather expanding it four-fold across quad lanes
            for q in 16 quads:
              quad replication of V[p][tb][c][4q..4q+3]  (variant)
              1x vfmacc
          16x unit store into M

    The alternative ``tile_stationary`` order swaps the loops to
    (tile block, k-panel, p, c): the filter tensor is then re-streamed
    once per tile block — worse at small caches but with the higher,
    paper-like L2 miss rates; ablation A9 quantifies the trade-off.
    """
    if variant not in VARIANTS:
        raise ConfigError(f"unknown tuple-multiplication variant {variant!r}")
    if loop_order not in LOOP_ORDERS:
        raise ConfigError(f"unknown loop order {loop_order!r}")
    if variant == NATIVE and not getattr(
        machine, "HAS_PROPOSED_EXTENSIONS", False
    ):
        raise ConfigError(
            "the 'native' variant needs the proposed vrep4 instruction "
            "(run on RvvPlusMachine)"
        )
    idx_reg = machine.alloc.alloc()
    exp_reg = machine.alloc.alloc()
    acc = machine.alloc.alloc_many(QUADS_PER_BLOCK)
    b_reg = machine.alloc.alloc()
    bx_reg = machine.alloc.alloc()
    a_reg = machine.alloc.alloc()
    a2_reg = machine.alloc.alloc()
    def schedule():
        """(p, kp, new_panel, tb) in the selected loop order.

        ``new_panel`` marks (p, kp) transitions, where the kernel must
        re-issue vsetvl and reload its index vectors.
        """
        if loop_order == FILTER_STATIONARY:
            for p_ in range(64):
                for kp_ in range(geom.k_panels):
                    for i, tb_ in enumerate(range(geom.tile_blocks)):
                        yield p_, kp_, i == 0, tb_
        else:  # TILE_STATIONARY: the tile block is outermost
            for tb_ in range(geom.tile_blocks):
                for kp_ in range(geom.k_panels):
                    for i, p_ in enumerate(range(64)):
                        yield p_, kp_, i == 0, tb_

    try:
        for p, kp, new_panel, tb in schedule():
            if new_panel:
                vl = min(
                    geom.vlen_elems,
                    QUAD * geom.c_out - kp * geom.vlen_elems,
                )
                k0 = kp * (geom.vlen_elems // QUAD)
                machine.setvl(vl)
                machine.load_index_u32(exp_reg, expand_index_pattern(vl))
                if variant == INDEXED:
                    # Algorithm 1 lines 5-12: build and load the
                    # index vector (per panel: vl can change).
                    machine.load_index_u32(idx_reg, quad_index_pattern(vl))
                    amounts = []
                elif variant == NATIVE:
                    amounts = []
                else:
                    amounts = slide_amounts(
                        vl, log2=(variant == SLIDEUP_LOG)
                    )
            for q in range(QUADS_PER_BLOCK):
                machine.vfmv_v_f(acc[q], 0.0)
            for c in range(geom.c_in):
                machine.vle32(b_reg, bufs.u + 4 * geom.u_offset(p, c, k0))
                machine.vrgather_vv(bx_reg, b_reg, exp_reg)
                for q in range(QUADS_PER_BLOCK):
                    a_addr = bufs.v + 4 * geom.v_offset(p, tb, c, QUAD * q)
                    if variant == INDEXED:
                        machine.vluxei32(a_reg, a_addr, idx_reg)
                        rep = a_reg
                    elif variant == NATIVE:
                        machine.vle32(a_reg, a_addr)
                        machine.vrep4_vi(a2_reg, a_reg, 0)
                        rep = a2_reg
                    else:
                        machine.vle32(a_reg, a_addr)
                        rep = _replicate_quad_slideup(
                            machine, a_reg, a2_reg, amounts
                        )
                    machine.vfmacc_vv(acc[q], rep, bx_reg)
            for q in range(QUADS_PER_BLOCK):
                machine.vse32(
                    acc[q], bufs.m + 4 * geom.m_offset(p, kp, tb, q)
                )
    finally:
        machine.alloc.free(idx_reg)
        machine.alloc.free(exp_reg)
        for r in acc:
            machine.alloc.free(r)
        machine.alloc.free(b_reg)
        machine.alloc.free(bx_reg)
        machine.alloc.free(a_reg)
        machine.alloc.free(a2_reg)
