"""The paper's vectorized kernels, single-source across RVV and SVE.

- :mod:`repro.kernels.transforms` — Winograd input/filter/output
  transforms (channel-vectorized, inter-tile parallelism);
- :mod:`repro.kernels.tuple_mult` — tuple multiplication, Algorithm 1
  (indexed) and Algorithm 2 (slideup) variants;
- :mod:`repro.kernels.transpose` — the 4-vector transpose workarounds,
  Algorithm 3 (indexed) and Algorithm 4 (strided);
- :mod:`repro.kernels.im2col` / :mod:`repro.kernels.gemm` — the
  im2col+GEMM path;
- :mod:`repro.kernels.drivers` — end-to-end convolution drivers;
- :mod:`repro.kernels.common` — geometry/layout shared with the
  analytical models (the trace-validation contract).
"""

from repro.kernels.buffers import (
    GemmBuffers,
    Im2colBuffers,
    WinogradBuffers,
)
from repro.kernels.common import (
    GemmGeometry,
    Im2colGeometry,
    TransformOp,
    WinogradGeometry,
    transform_op_class_counts,
    transform_ops,
)
from repro.kernels.direct import (
    Direct1x1Buffers,
    Direct1x1Geometry,
    direct1x1_kernel,
    direct_conv1x1_sim,
)
from repro.kernels.drivers import im2col_gemm_conv2d_sim, winograd_conv2d_sim
from repro.kernels.gemm import gemm_kernel
from repro.kernels.im2col import im2col_kernel
from repro.kernels.streaming import axpy_kernel, dot_kernel, memcpy_kernel
from repro.kernels.transforms import (
    exec_transform,
    filter_transform,
    input_transform,
    output_transform,
)
from repro.kernels.transpose import (
    interleave4_reference,
    transpose4_indexed,
    transpose4_native,
    transpose4_strided,
)
from repro.kernels.tuple_mult import (
    FILTER_STATIONARY,
    INDEXED,
    LOOP_ORDERS,
    NATIVE,
    SLIDEUP,
    SLIDEUP_LOG,
    TILE_STATIONARY,
    VARIANTS,
    quad_index_pattern,
    slide_amounts,
    tuple_multiplication,
)

__all__ = [
    "WinogradGeometry",
    "GemmGeometry",
    "Im2colGeometry",
    "WinogradBuffers",
    "GemmBuffers",
    "Im2colBuffers",
    "transform_ops",
    "transform_op_class_counts",
    "TransformOp",
    "exec_transform",
    "input_transform",
    "filter_transform",
    "output_transform",
    "tuple_multiplication",
    "INDEXED",
    "NATIVE",
    "SLIDEUP",
    "SLIDEUP_LOG",
    "VARIANTS",
    "FILTER_STATIONARY",
    "TILE_STATIONARY",
    "LOOP_ORDERS",
    "quad_index_pattern",
    "slide_amounts",
    "transpose4_indexed",
    "transpose4_strided",
    "transpose4_native",
    "interleave4_reference",
    "gemm_kernel",
    "im2col_kernel",
    "winograd_conv2d_sim",
    "im2col_gemm_conv2d_sim",
    "Direct1x1Geometry",
    "Direct1x1Buffers",
    "direct1x1_kernel",
    "direct_conv1x1_sim",
    "memcpy_kernel",
    "axpy_kernel",
    "dot_kernel",
]
