"""VLA GEMM kernel — the workhorse of the im2col+GEMM convolution path.

The vector-length-agnostic outer-product microkernel from the authors'
prior work (IPDPS'23), as used by Darknet's convolution when Winograd
does not apply: accumulators hold ``mr`` rows of a ``vl``-column C
panel; per reduction step the kernel unit-loads one B row panel and
broadcasts ``mr`` scalars of A with ``vfmacc.vf``.

The B panel is re-streamed for every M block — a reuse distance of
``Kd * vl * 4`` bytes that grows with the vector length.  This is the
mechanism behind the paper's Table 1: YOLOv3's (GEMM-heavy) L2 miss
rate rises from 39% to 52% as VLEN grows from 512 to 4096 bits, and
behind its L2-size scaling (bigger L2 re-captures the B panel).
"""

from __future__ import annotations

from repro.kernels.buffers import GemmBuffers
from repro.kernels.common import GemmGeometry
from repro.rvv.machine import VectorEngine


def gemm_kernel(
    machine: VectorEngine,
    geom: GemmGeometry,
    bufs: GemmBuffers,
) -> None:
    """C = A @ B with the blocked VLA microkernel.

    Loop structure (mirrored exactly by
    :func:`repro.model.gemm_model.gemm_nests`):

    for each N panel (vl = columns in panel):
      for each M block (mr rows):
        mr x accumulator init
        for k in reduction dim:
          1x unit load of B[k, panel]
          mr x (scalar A load + vfmacc.vf)
        mr x unit store of C rows
    """
    for pn in range(geom.n_panels):
        j0 = pn * geom.vlen_elems
        vl = min(geom.vlen_elems, geom.n - j0)
        for mb in range(geom.m_blocks):
            i0 = mb * geom.mr
            rows = min(geom.mr, geom.m - i0)
            machine.setvl(vl)
            with machine.alloc.scoped(rows + 1) as regs:
                acc, b_reg = regs[:rows], regs[rows]
                for r in range(rows):
                    machine.vfmv_v_f(acc[r], 0.0)
                a_view = machine.memory.view(
                    bufs.a, geom.a_size
                )  # scalar reads of A (modeled as scalar loads)
                for k in range(geom.kd):
                    machine.vle32(b_reg, bufs.b + 4 * geom.b_offset(k, j0))
                    for r in range(rows):
                        a_val = float(a_view[geom.a_offset(i0 + r, k)])
                        machine.scalar_ops(1)  # the scalar load of A[i, k]
                        machine.vfmacc_vf(acc[r], a_val, b_reg)
                for r in range(rows):
                    machine.vse32(
                        acc[r], bufs.c + 4 * geom.c_offset(i0 + r, j0)
                    )
