"""Shared pieces of the vectorized kernels and their analytical models.

The trace-validation contract of DESIGN.md requires the analytical
stream generators of :mod:`repro.model` to reproduce the functional
kernels' instruction streams *exactly*.  The pieces both sides must
agree on live here:

- :func:`transform_ops` — the scalar-coefficient operation sequence that
  applies one 1D Winograd transform matrix to a set of live vector
  registers (what the open-coded "approximately 30 instructions" of the
  paper's Section 3 do).  The kernel executes it; the model counts it.
- :class:`WinogradGeometry` — every derived size and buffer layout of
  the blocked Winograd pipeline (tile grid, channel/output panels, the
  quad-replicated filter layout, buffer strides).
- :class:`GemmGeometry` / :class:`Im2colGeometry` — the same for the
  im2col+GEMM path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigError
from repro.winograd.tiles import TileGrid

#: Tuple positions per 2D F(6x6, 3x3) tile.
TUPLE_POSITIONS = 64

#: Tiles per tile-block in the tuple-multiplication microkernel: one
#: block of 64 tiles is covered by 16 quad accumulators.
TILES_PER_BLOCK = 64

#: Quad size: the microkernel replicates 4 consecutive tile values.
QUAD = 4

#: Per-tuple-position plane skew, in fp32 elements (one cache line).
#: The V/U/M tensors hold 64 parallel planes (one per tuple position)
#: whose natural stride is a large power of two for power-of-two layer
#: dimensions — which would alias every plane onto the same cache sets.
#: Skewing each plane by one line keeps the plane stride odd in lines
#: (coprime with any power-of-two set count) while preserving the
#: 64-byte alignment of every block the kernels address.
PLANE_SKEW = 16


@dataclass(frozen=True)
class TransformOp:
    """One vector instruction of a 1D transform application.

    ``kind`` is one of ``mov`` (copy), ``mul`` (vfmul.vf), ``add``
    (vfadd.vv), ``sub`` (vfsub.vv), ``fma`` (vfmacc.vf/vfnmsac.vf).
    ``dst``/``src`` index the destination and source registers within
    the transform's register window; ``coef`` is the scalar coefficient.
    """

    kind: str
    dst: int
    src: int
    coef: float = 0.0


def transform_ops(mat: np.ndarray) -> tuple[TransformOp, ...]:
    """Operation sequence computing ``out_i = sum_k mat[i, k] * in_k``.

    Zero coefficients are skipped and +/-1 coefficients use cheaper
    add/sub/copy instructions — exactly how hand-written intrinsics code
    (and the paper's ~30-instruction sequences) exploits the transform
    matrices' structure.

    The sequence touches each destination register exactly once as its
    first write, so destinations may alias unused sources only after
    all reads of that source are done; the kernels avoid the issue by
    using disjoint source/destination windows.
    """
    ops: list[TransformOp] = []
    rows, cols = mat.shape
    for i in range(rows):
        first = True
        for k in range(cols):
            c = float(mat[i, k])
            if c == 0.0:
                continue
            if first:
                if c == 1.0:
                    ops.append(TransformOp("mov", i, k))
                else:
                    ops.append(TransformOp("mul", i, k, c))
                first = False
            else:
                if c == 1.0:
                    ops.append(TransformOp("add", i, k))
                elif c == -1.0:
                    ops.append(TransformOp("sub", i, k))
                else:
                    ops.append(TransformOp("fma", i, k, c))
        if first:
            # An all-zero matrix row still must define its output.
            ops.append(TransformOp("mul", i, 0, 0.0))
    return tuple(ops)


def transform_op_class_counts(mat: np.ndarray) -> dict[str, int]:
    """Instruction-class counts of one application of ``mat``.

    Returns counts keyed by the opclass value each kind maps to:
    ``mov -> vmove``, ``mul/add/sub -> vfarith``, ``fma -> vfma``.
    """
    kinds = {"vmove": 0, "vfarith": 0, "vfma": 0}
    for op in transform_ops(mat):
        if op.kind == "mov":
            kinds["vmove"] += 1
        elif op.kind == "fma":
            kinds["vfma"] += 1
        else:
            kinds["vfarith"] += 1
    return kinds


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


#: Legal RVV 1.0 register-group multipliers (integer LMUL).
LMUL_CHOICES: tuple[int, ...] = (1, 2, 4, 8)


def validate_lmul(lmul: int) -> None:
    """Reject register-group multipliers RVV 1.0 does not define.

    Shared by the streaming micro-kernels and the schedule DSL so both
    agree on what a legal grouping is (fractional LMUL is out of scope:
    the kernels are fp32/SEW=32 throughout).
    """
    if lmul not in LMUL_CHOICES:
        raise ConfigError(f"LMUL must be 1, 2, 4 or 8, got {lmul}")


@dataclass(frozen=True)
class WinogradGeometry:
    """All derived sizes and layouts of the blocked Winograd pipeline.

    The pipeline and its buffer layouts (addresses are element offsets
    into one contiguous fp32 arena; byte addresses are 4x):

    1. **Padded input** ``X[c][y][x]`` — CHW with the convolution
       padding plus an 8-element safety margin baked in, so border
       tiles load uniformly (no per-edge masking; see DESIGN.md).
    2. **Transformed input** ``V[p][tb][c][i]`` — tuple position p,
       tile-block tb (64 tiles), channel c, tile-within-block i.  The
       innermost 64-float runs are what the tuple-multiplication quad
       replication reads.
    3. **Transformed filters** ``U[p][c][k]`` — compact (one value per
       output channel, as the plain filter matrix of the paper's
       Algorithm 1); the tuple-multiplication kernel expands each
       loaded panel four-fold in-register with one ``vrgather`` so that
       lane ``4m + e`` carries the value for output channel ``k0 + m``.
    4. **Tuple products** ``M[p][kp][tb][q][l]`` — per tuple position,
       k-panel, tile-block and quad, one vector of lanes
       ``l = 4*(k - k0) + e`` holding ``M_p[tile 4q+e, k]``.
    5. **Padded output** ``Y[k][yy][xx]`` — tiles_h*6 x tiles_w*6,
       cropped to (h_out, w_out) by the driver.
    """

    c_in: int
    h: int
    w: int
    c_out: int
    pad: int
    vlen_elems: int

    def __post_init__(self) -> None:
        if self.vlen_elems < 16 or self.vlen_elems % 4:
            raise ConfigError(
                f"Winograd kernels need vlen >= 16 fp32 lanes in multiples "
                f"of 4, got {self.vlen_elems}"
            )
        if self.pad not in (0, 1):
            raise ConfigError(f"3x3 Winograd uses pad 0 or 1, got {self.pad}")

    # -- tile grid ------------------------------------------------------
    @cached_property
    def grid(self) -> TileGrid:
        return TileGrid(h_in=self.h, w_in=self.w, pad=self.pad, m=6, n=8)

    @property
    def num_tiles(self) -> int:
        return self.grid.num_tiles

    @property
    def tile_blocks(self) -> int:
        return ceil_div(self.num_tiles, TILES_PER_BLOCK)

    # -- vector panels ---------------------------------------------------
    @property
    def k_panel_lanes(self) -> int:
        """Lanes of one output-channel panel (vl of tuple mult)."""
        return min(self.vlen_elems, QUAD * self.c_out)

    @property
    def k_panels(self) -> int:
        return ceil_div(QUAD * self.c_out, self.vlen_elems)

    @property
    def k_panels_per_block(self) -> int:
        """k-panels per tuple-multiplication block (fixed blocking).

        The tuple-multiplication kernel processes output channels in
        blocks of ~32 (128 lanes' worth), a fixed register/cache
        blocking constant: the filter slab revisited per tile block
        stays bounded without tuning for any particular cache size.
        """
        return max(1, ceil_div(128, self.vlen_elems))

    @property
    def k_panel_blocks(self) -> int:
        return ceil_div(self.k_panels, self.k_panels_per_block)

    @property
    def channel_block_lanes(self) -> int:
        """Lanes of one channel block (vl of the input transform)."""
        return min(self.vlen_elems, self.c_in)

    @property
    def channel_blocks(self) -> int:
        return ceil_div(self.c_in, self.vlen_elems)

    # -- padded input buffer ---------------------------------------------
    @property
    def hp(self) -> int:
        """Padded input height: pad + data + tile overrun margin."""
        return self.grid.tiles_h * 6 + 8

    @property
    def wp(self) -> int:
        return self.grid.tiles_w * 6 + 8

    @property
    def x_size(self) -> int:
        return self.c_in * self.hp * self.wp

    def x_offset(self, c: int, y: int, x: int) -> int:
        """Element offset of padded-space coordinates (pad included)."""
        return (c * self.hp + y) * self.wp + x

    # -- transformed input V[p][tb][c][i] (plane-skewed) -------------------
    @property
    def v_plane(self) -> int:
        """Elements per tuple-position plane of V, including the skew."""
        return self.tile_blocks * self.c_in * TILES_PER_BLOCK + PLANE_SKEW

    @property
    def v_size(self) -> int:
        # Safety margin of one vector so the slideup variant's full-width
        # quad loads never run off the end.
        return TUPLE_POSITIONS * self.v_plane + self.vlen_elems

    def v_offset(self, p: int, tb: int, c: int, i: int = 0) -> int:
        return p * self.v_plane + (tb * self.c_in + c) * TILES_PER_BLOCK + i

    # -- transformed filters U[p][c][k] (compact) ---------------------------
    @property
    def u_row(self) -> int:
        """Compact filter row length: one value per output channel."""
        return self.c_out

    @property
    def u_plane(self) -> int:
        """Elements per tuple-position plane of U, including the skew."""
        return self.c_in * self.u_row + PLANE_SKEW

    @property
    def u_size(self) -> int:
        # A trailing vector margin keeps the tuple-mult panel loads
        # (which read a full vl lanes, spilling into the next row's
        # values) in bounds at the end of the tensor.
        return TUPLE_POSITIONS * self.u_plane + self.vlen_elems

    def u_offset(self, p: int, c: int, k: int = 0) -> int:
        return p * self.u_plane + c * self.u_row + k

    # -- tuple products M[p][kp][tb][q][l] ---------------------------------
    @property
    def m_quad_stride(self) -> int:
        return self.k_panel_lanes

    @property
    def m_plane(self) -> int:
        """Elements per tuple-position plane of M, including the skew."""
        return (
            self.k_panels
            * self.tile_blocks
            * (TILES_PER_BLOCK // QUAD)
            * self.k_panel_lanes
            + PLANE_SKEW
        )

    @property
    def m_size(self) -> int:
        return TUPLE_POSITIONS * self.m_plane

    def m_offset(self, p: int, kp: int, tb: int, q: int, lane: int = 0) -> int:
        return p * self.m_plane + (
            (kp * self.tile_blocks + tb) * (TILES_PER_BLOCK // QUAD) + q
        ) * self.k_panel_lanes + lane

    # -- padded output Y[k][yy][xx] ----------------------------------------
    @property
    def yp_h(self) -> int:
        return self.grid.tiles_h * 6

    @property
    def yp_w(self) -> int:
        return self.grid.tiles_w * 6

    @property
    def y_size(self) -> int:
        return self.c_out * self.yp_h * self.yp_w

    def y_offset(self, k: int, yy: int, xx: int) -> int:
        return (k * self.yp_h + yy) * self.yp_w + xx

    # -- scratch (per-tile transform intermediate, [col j][row i][lane]) ---
    @property
    def scratch_size(self) -> int:
        return 8 * 8 * self.vlen_elems

    def scratch_offset(self, j: int, i: int, lane: int = 0) -> int:
        return (j * 8 + i) * self.vlen_elems + lane

    def tile_origin(self, t: int) -> tuple[int, int]:
        """Padded-space (y, x) of tile t's top-left corner."""
        th, tw = divmod(t, self.grid.tiles_w)
        return th * 6, tw * 6


@dataclass(frozen=True)
class GemmGeometry:
    """Blocked VLA GEMM: C[M, N] = A[M, Kd] x B[Kd, N].

    The kernel holds ``mr`` accumulator rows, streams B panels of
    ``vlen_elems`` columns, and broadcasts A scalars (vfmacc.vf) — the
    standard outer-product microkernel shape the authors' prior work
    (IPDPS'23) uses for long-vector GEMM.
    """

    m: int
    kd: int
    n: int
    vlen_elems: int
    mr: int = 8

    def __post_init__(self) -> None:
        if min(self.m, self.kd, self.n) < 1:
            raise ConfigError(f"empty GEMM: {self.m}x{self.kd}x{self.n}")
        if self.mr < 1:
            raise ConfigError("mr must be positive")

    @property
    def n_panels(self) -> int:
        return ceil_div(self.n, self.vlen_elems)

    @property
    def m_blocks(self) -> int:
        return ceil_div(self.m, self.mr)

    @property
    def a_size(self) -> int:
        return self.m * self.kd

    @property
    def b_size(self) -> int:
        return self.kd * self.n

    @property
    def c_size(self) -> int:
        return self.m * self.n

    def a_offset(self, i: int, k: int) -> int:
        return i * self.kd + k

    def b_offset(self, k: int, j: int) -> int:
        return k * self.n + j

    def c_offset(self, i: int, j: int) -> int:
        return i * self.n + j


@dataclass(frozen=True)
class Im2colGeometry:
    """The Darknet im2col unfold for one layer."""

    c_in: int
    h: int
    w: int
    ksize: int
    stride: int
    pad: int

    @property
    def h_out(self) -> int:
        return (self.h + 2 * self.pad - self.ksize) // self.stride + 1

    @property
    def w_out(self) -> int:
        return (self.w + 2 * self.pad - self.ksize) // self.stride + 1

    @property
    def rows(self) -> int:
        return self.c_in * self.ksize * self.ksize

    @property
    def cols(self) -> int:
        return self.h_out * self.w_out

    @property
    def hp(self) -> int:
        """Padded input height (+ksize margin for uniform edge loads)."""
        return self.h + 2 * self.pad + self.ksize

    @property
    def wp(self) -> int:
        return self.w + 2 * self.pad + self.ksize

    @property
    def x_size(self) -> int:
        return self.c_in * self.hp * self.wp

    def x_offset(self, c: int, y: int, x: int) -> int:
        return (c * self.hp + y) * self.wp + x

    @property
    def cols_size(self) -> int:
        return self.rows * self.cols
