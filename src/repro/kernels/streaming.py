"""Streaming micro-kernels: memcpy/axpy/dot with LMUL register grouping.

The paper's introduction motivates long vectors by the front-end energy
and instruction-count savings ("reducing the number of instructions
required to complete a task, thereby reducing the energy consumed by
the processor's front end").  RVV offers a second lever for the same
effect: **LMUL register grouping**, which gangs 2/4/8 architectural
registers into one operand so a fixed-VLEN machine executes
strip-mined loops with proportionally fewer dynamic instructions.

These micro-kernels make that lever measurable: each is a canonical
strip-mined loop parameterized by LMUL, exercised in
``bench_ablation_lmul.py`` and validated functionally in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.kernels.common import validate_lmul
from repro.rvv.machine import VectorEngine


def _check_lmul(machine: VectorEngine, lmul: int) -> None:
    validate_lmul(lmul)


def memcpy_kernel(
    machine: VectorEngine, dst: int, src: int, n: int, lmul: int = 1
) -> None:
    """Copy ``n`` fp32 elements with LMUL-grouped vectors."""
    _check_lmul(machine, lmul)
    with machine.alloc.scoped(1, lmul=lmul) as (v,):
        done = 0
        while done < n:
            vl = machine.setvl(n - done, lmul=lmul)
            machine.vle32(v, src + 4 * done)
            machine.vse32(v, dst + 4 * done)
            done += vl


def axpy_kernel(
    machine: VectorEngine, alpha: float, x: int, y: int, n: int, lmul: int = 1
) -> None:
    """``y += alpha * x`` over ``n`` fp32 elements."""
    _check_lmul(machine, lmul)
    with machine.alloc.scoped(2, lmul=lmul) as (vx, vy):
        done = 0
        while done < n:
            vl = machine.setvl(n - done, lmul=lmul)
            machine.vle32(vx, x + 4 * done)
            machine.vle32(vy, y + 4 * done)
            machine.vfmacc_vf(vy, alpha, vx)
            machine.vse32(vy, y + 4 * done)
            done += vl


def dot_kernel(
    machine: VectorEngine, x: int, y: int, n: int, lmul: int = 1
) -> float:
    """Dot product of two fp32 vectors (per-strip reductions summed)."""
    _check_lmul(machine, lmul)
    total = 0.0
    with machine.alloc.scoped(3, lmul=lmul) as (vx, vy, vp):
        done = 0
        while done < n:
            vl = machine.setvl(n - done, lmul=lmul)
            machine.vle32(vx, x + 4 * done)
            machine.vle32(vy, y + 4 * done)
            machine.vfmul_vv(vp, vx, vy)
            total += machine.vfredusum(vp)
            done += vl
    return total


def run_streaming(
    kernel: str,
    machine: VectorEngine,
    n: int,
    lmul: int = 1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Allocate, run and read back one of the streaming kernels.

    Returns ``(result, expected)`` NumPy arrays for validation; for
    ``dot`` both are length-1 arrays.
    """
    rng = np.random.default_rng(seed)
    xv = rng.standard_normal(n).astype(np.float32)
    yv = rng.standard_normal(n).astype(np.float32)
    x = machine.memory.alloc_f32(n, label="streaming.x")
    y = machine.memory.alloc_f32(n, label="streaming.y")
    machine.memory.write_f32(x, xv)
    machine.memory.write_f32(y, yv)
    if kernel == "memcpy":
        memcpy_kernel(machine, y, x, n, lmul=lmul)
        return machine.memory.read_f32(y, n), xv
    if kernel == "axpy":
        axpy_kernel(machine, 2.5, x, y, n, lmul=lmul)
        return (
            machine.memory.read_f32(y, n),
            yv + np.float32(2.5) * xv,
        )
    if kernel == "dot":
        got = dot_kernel(machine, x, y, n, lmul=lmul)
        return (
            np.array([got], dtype=np.float64),
            np.array([np.dot(xv.astype(np.float64), yv.astype(np.float64))]),
        )
    raise ConfigError(f"unknown streaming kernel {kernel!r}")
