"""The 4-vector transpose workarounds — the paper's Algorithms 3 and 4.

RVV 1.0 has no vector transpose instruction (the EPI toolchain ships
custom ones, but they are not in the standard "V" extension), so
transposing data held in four vector registers — needed when the
Winograd transforms interleave channel groups — must bounce through
memory.  The paper evaluates two implementations with small code
snippets and finds them equal in performance, "as they both cannot
avoid memory accesses".

Semantics.  Figure 2 of the paper shows the 4x4 case: registers
V0..V3 become registers holding [V0[e], V1[e], V2[e], V3[e]].  The
vector-length-agnostic generalization implemented here is the 4-way
element interleave, the operation channel-group interleaving actually
needs on long vectors:

    out_g[4m + r] = V_r[g * vl/4 + m],   g, r in 0..3,  m in 0..vl/4

which for vl = 4 degenerates exactly to Figure 2's transpose.

- **Algorithm 3 (indexed)**: four contiguous stores dump V0..V3 into a
  buffer; for each output an index vector is built/loaded and an
  indexed (gather) load assembles the interleaved lanes.
- **Algorithm 4 (strided)**: four strided stores (stride 16 bytes =
  4 floats, base offset 4r) write the buffer *already interleaved*, so
  each output is one contiguous load.

Instruction shapes per call (the quantities benchmark K2 compares):
Algorithm 3: 4 unit stores + 4 index loads + 4 indexed loads;
Algorithm 4: 4 strided stores + 4 unit loads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.kernels.common import QUAD
from repro.rvv.machine import VectorEngine


def interleave4_reference(vecs: np.ndarray) -> np.ndarray:
    """NumPy reference of the 4-way interleave.

    Args:
        vecs: array (4, vl), vl a multiple of 4.

    Returns:
        Array (4, vl): out[g, 4m + r] = vecs[r, g*vl/4 + m].
    """
    if vecs.ndim != 2 or vecs.shape[0] != QUAD or vecs.shape[1] % QUAD:
        raise ConfigError(f"expected (4, 4n) array, got {vecs.shape}")
    vl = vecs.shape[1]
    # (r, g, m) -> (g, m, r)
    return (
        vecs.reshape(QUAD, QUAD, vl // QUAD)
        .transpose(1, 2, 0)
        .reshape(QUAD, vl)
        .copy()
    )


def transpose4_indexed(
    machine: VectorEngine,
    regs: list[int],
    out_regs: list[int],
    buffer_addr: int,
    idx_reg: int,
) -> None:
    """Algorithm 3: contiguous stores, index build, gather loads.

    ``buffer_addr`` must hold at least ``4 * vl`` floats.  ``idx_reg``
    is clobbered.  ``regs`` and ``out_regs`` must not overlap.
    """
    vl = machine.vl
    if vl % QUAD:
        raise ConfigError(f"transpose needs vl divisible by 4, got {vl}")
    if set(regs) & set(out_regs):
        raise ConfigError("transpose source and destination registers overlap")
    # Dump: buffer[r*vl + i] = V_r[i].
    for r in range(QUAD):
        machine.vse32(regs[r], buffer_addr + 4 * vl * r)
    # Gather: out_g lane (4m + r) <- buffer[r*vl + g*vl/4 + m].
    lanes = np.arange(vl, dtype=np.uint32)
    m_idx = lanes // QUAD
    r_idx = lanes % QUAD
    for g in range(QUAD):
        offsets = 4 * (r_idx * vl + g * (vl // QUAD) + m_idx)
        machine.load_index_u32(idx_reg, offsets)
        machine.vluxei32(out_regs[g], buffer_addr, idx_reg)


def transpose4_native(
    machine: VectorEngine,
    regs: list[int],
    out_regs: list[int],
) -> None:
    """The paper's proposed vector-transpose instruction, used natively.

    Requires :class:`repro.rvv.proposed.RvvPlusMachine`: one ``vtrn4``
    (four register permutes) replaces both memory-workaround variants —
    "eliminating the need for memory operations", as the paper puts it.
    """
    if not getattr(machine, "HAS_PROPOSED_EXTENSIONS", False):
        raise ConfigError(
            "transpose4_native needs the proposed vtrn4 instruction "
            "(run on RvvPlusMachine)"
        )
    if set(regs) & set(out_regs):
        raise ConfigError("transpose source and destination registers overlap")
    machine.vtrn4_vv(tuple(out_regs), tuple(regs))


def transpose4_strided(
    machine: VectorEngine,
    regs: list[int],
    out_regs: list[int],
    buffer_addr: int,
) -> None:
    """Algorithm 4: stride-16 stores, contiguous loads.

    Register r stores with an element stride of 16 bytes starting at
    byte offset 4r, laying the buffer out pre-interleaved:
    ``buffer[4i + r] = V_r[i]``.  Output g then unit-loads from element
    offset ``g * vl``.  Same preconditions as the indexed variant.
    """
    vl = machine.vl
    if vl % QUAD:
        raise ConfigError(f"transpose needs vl divisible by 4, got {vl}")
    if set(regs) & set(out_regs):
        raise ConfigError("transpose source and destination registers overlap")
    for r in range(QUAD):
        machine.vsse32(regs[r], buffer_addr + 4 * r, QUAD * 4)
    for g in range(QUAD):
        machine.vle32(out_regs[g], buffer_addr + 4 * vl * g)
