"""Roofline analysis (the paper's Section 6).

The paper builds a roofline for the first 10 convolutional layers of
VGG16 — once implemented with Winograd (Figure 5: all layers
memory-bound) and once with im2col+GEMM (Figure 6: only 3 of 10
memory-bound) — on the 512-bit / 1 MB configuration with a peak of
64 GFLOP/s and 13 GB/s of DRAM bandwidth, computing arithmetic
intensity "based on the DRAM bytes".

:func:`roofline_points` reproduces exactly that: each layer is run
through the analytical simulator; AI = executed FLOPs / simulated DRAM
bytes, achieved GFLOP/s = executed FLOPs / simulated runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.conv.layer import ConvAlgorithm, ConvLayerSpec, choose_algorithm
from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import simulate_layer
from repro.obs.attribution import MeasuredRooflinePoint, attribute_trace
from repro.obs.trace import Span
from repro.sim.system import SystemConfig


@dataclass(frozen=True)
class RooflineCeilings:
    """The two ceilings of the roofline plot."""

    peak_gflops: float
    dram_gbs: float

    @property
    def ridge_ai(self) -> float:
        """Arithmetic intensity at which the ceilings intersect."""
        return self.peak_gflops / self.dram_gbs

    def attainable(self, ai: float) -> float:
        """Attainable GFLOP/s at a given arithmetic intensity."""
        if ai < 0:
            raise ConfigError(f"arithmetic intensity must be >= 0, got {ai}")
        return min(self.peak_gflops, ai * self.dram_gbs)


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position on the roofline plot."""

    name: str
    ai: float  # FLOPs per DRAM byte
    gflops: float  # achieved
    flops: int
    dram_bytes: int
    ceilings: RooflineCeilings

    @property
    def memory_bound(self) -> bool:
        """Left of the ridge: the memory ceiling caps this layer."""
        return self.ai < self.ceilings.ridge_ai

    @property
    def attainable_gflops(self) -> float:
        return self.ceilings.attainable(self.ai)

    @property
    def efficiency(self) -> float:
        """Achieved / attainable — the paper notes its kernels sit well
        below the ceilings ("scope for further improvement")."""
        att = self.attainable_gflops
        return self.gflops / att if att else 0.0


def ceilings_for(config: SystemConfig) -> RooflineCeilings:
    return RooflineCeilings(
        peak_gflops=config.peak_gflops, dram_gbs=config.dram_gbs
    )


def roofline_points(
    layers: list[ConvLayerSpec],
    config: SystemConfig,
    algorithm: ConvAlgorithm | None,
    variant: str = SLIDEUP,
    hybrid: bool = True,
) -> list[RooflinePoint]:
    """Roofline points for a list of convolutional layers.

    Args:
        layers: convolutional layer specs (e.g. the first 10 VGG16
            convolutions).
        config: simulated system (the paper uses the 512-bit / 1 MB
            base configuration).
        algorithm: WINOGRAD or IM2COL_GEMM — the figure being drawn —
            or ``None`` to let the per-layer policy choose, matching
            what an instrumented inference actually runs (the
            attribution pass reconciles against this form).
        hybrid: the policy used when ``algorithm`` is ``None``.
    """
    ceil = ceilings_for(config)
    points = []
    for spec in layers:
        algo = (
            algorithm if algorithm is not None
            else choose_algorithm(spec, hybrid=hybrid)
        )
        stats = simulate_layer(spec, config, algorithm=algo, variant=variant)
        points.append(
            RooflinePoint(
                name=spec.name,
                ai=stats.arithmetic_intensity,
                gflops=stats.gflops,
                flops=stats.flops,
                dram_bytes=stats.dram_bytes,
                ceilings=ceil,
            )
        )
    return points


def measured_roofline(
    root: Span,
    config: SystemConfig,
    algorithms: Iterable[str] | None = None,
) -> list[MeasuredRooflinePoint]:
    """Measured roofline points of a trace under ``config``'s ceilings.

    The glue between the observability layer (which knows spans but not
    the simulator) and the roofline model: derives the ceilings from
    the system configuration and classifies every layer span of the
    trace from its recorded counters via
    :func:`repro.obs.attribution.attribute_trace`.
    """
    ceil = ceilings_for(config)
    return attribute_trace(
        root, ceil.peak_gflops, ceil.dram_gbs, algorithms=algorithms
    )


def render_roofline(points: list[RooflinePoint], title: str = "") -> str:
    """Text rendering of a roofline plot (for examples and benches)."""
    if not points:
        return "(no points)"
    ceil = points[0].ceilings
    rows = [
        f"Roofline{': ' + title if title else ''}  "
        f"(peak {ceil.peak_gflops:.0f} GFLOP/s, {ceil.dram_gbs:.0f} GB/s, "
        f"ridge AI {ceil.ridge_ai:.2f})",
        f"{'layer':<16}{'AI':>8}{'GFLOP/s':>10}{'attain':>9}{'eff':>7}  bound",
    ]
    for p in points:
        rows.append(
            f"{p.name:<16}{p.ai:>8.3f}{p.gflops:>10.2f}"
            f"{p.attainable_gflops:>9.2f}{100 * p.efficiency:>6.1f}%  "
            f"{'memory' if p.memory_bound else 'compute'}"
        )
    mem = sum(1 for p in points if p.memory_bound)
    rows.append(f"memory-bound: {mem}/{len(points)} layers")
    return "\n".join(rows)
