"""Roofline analysis (Figures 5 and 6 of the paper)."""

from repro.roofline.model import (
    RooflineCeilings,
    RooflinePoint,
    ceilings_for,
    measured_roofline,
    render_roofline,
    roofline_points,
)

__all__ = [
    "RooflineCeilings",
    "RooflinePoint",
    "ceilings_for",
    "measured_roofline",
    "roofline_points",
    "render_roofline",
]
