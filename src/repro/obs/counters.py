"""Process-safe named counters (the gem5 ``stats`` registry role).

A :class:`CounterRegistry` is a flat map from dotted counter names
(``"cache.l1.accesses"``) to numeric totals.  Increments are cheap and
thread-safe, so hot paths (the cache hierarchy, the sweep executor)
bump counters unconditionally; reading happens at report time.

"Process-safe" here means *safe across the sweep's worker processes*,
which never share memory: each process owns its registry, a worker
captures the delta its task produced (:meth:`CounterRegistry.capture`),
the delta travels back with the task's result (it is a plain dict, so
it pickles), and the parent folds it in with
:meth:`CounterRegistry.merge`.  Totals are therefore exact whether a
sweep ran serially, pooled, or degraded mid-run.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping


class CounterRegistry:
    """A flat, thread-safe map of named numeric counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, float] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def merge(self, delta: Mapping[str, float]) -> None:
        """Fold another registry's snapshot/delta into this one."""
        with self._lock:
            for k, v in delta.items():
                self._counts[k] = self._counts.get(k, 0) + v

    def reset(self) -> None:
        """Zero the registry (tests and fresh runs)."""
        with self._lock:
            self._counts.clear()

    def capture(self) -> "CounterCapture":
        """Context manager measuring the increments made inside it.

        The worker-side half of cross-process counting::

            with COUNTERS.capture() as cap:
                ...                      # work that bumps counters
            return result, cap.delta()   # picklable dict, merged by
                                         # the parent
        """
        return CounterCapture(self)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self.snapshot().items()))


class CounterCapture:
    """Delta of a registry between ``__enter__`` and read time."""

    def __init__(self, registry: CounterRegistry) -> None:
        self._registry = registry
        self._baseline: dict[str, float] = {}

    def __enter__(self) -> "CounterCapture":
        self._baseline = self._registry.snapshot()
        return self

    def __exit__(self, *exc) -> None:
        pass

    def delta(self) -> dict[str, float]:
        """Counter increments since ``__enter__`` (zeros omitted)."""
        now = self._registry.snapshot()
        base = self._baseline
        return {
            k: v - base.get(k, 0)
            for k, v in now.items()
            if v != base.get(k, 0)
        }


#: The process-global registry every instrumented component bumps.
COUNTERS = CounterRegistry()
