"""Structured events and sinks (the run's machine-readable log).

Every noteworthy moment of a run — a sweep point finishing, a corrupt
checkpoint being dropped, a process pool degrading to serial — is one
:func:`event`: a flat JSON-able dict with an ``event`` kind, a
``level`` (``info``/``warning``) and a monotonically increasing ``seq``
per sink.  Producers emit to an :class:`EventSink`; the provided sinks
cover the needs of the CLI and tests:

- :class:`MemorySink` — collects events in a list (tests, adapters);
- :class:`JsonlSink` — appends one JSON line per event to a file,
  flushed per event so a killed run keeps everything emitted
  (:func:`read_jsonl` is its inverse);
- :class:`CallbackSink` — forwards each event to a callable;
- :class:`TeeSink` — fans one stream out to several sinks.

Events are observation-only and append-only; nothing in the simulator
reads them back.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ObsError

LEVEL_INFO = "info"
LEVEL_WARNING = "warning"


def event(kind: str, level: str = LEVEL_INFO, **payload: Any) -> dict:
    """Build one structured event (flat, JSON-serializable)."""
    return {"event": kind, "level": level, **payload}


class EventSink:
    """Receiver of a run's event stream."""

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, ev: dict) -> None:
        """Stamp the per-sink sequence number and deliver the event."""
        ev = dict(ev)
        ev["seq"] = self._seq
        self._seq += 1
        self._deliver(ev)

    def _deliver(self, ev: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (file handles); idempotent."""


class MemorySink(EventSink):
    """Events collected in memory, for tests and adapters."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[dict] = []

    def _deliver(self, ev: dict) -> None:
        self.events.append(ev)

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["event"] == kind]


class CallbackSink(EventSink):
    """Forwards every event to one callable."""

    def __init__(self, fn: Callable[[dict], None]) -> None:
        super().__init__()
        self._fn = fn

    def _deliver(self, ev: dict) -> None:
        self._fn(ev)


class JsonlSink(EventSink):
    """One JSON object per line, appended and flushed per event.

    The flush-per-event policy makes the file a reliable flight
    recorder: a sweep killed mid-run leaves every event it emitted on
    disk, ready for :func:`read_jsonl`.

    :meth:`close` is idempotent; emitting to a closed sink raises
    :class:`~repro.errors.ObsError` — a producer still holding the sink
    after its owner closed it is a lifecycle bug, and the builtin
    ``ValueError: I/O operation on closed file`` it would otherwise hit
    does not say whose file was closed or why.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _deliver(self, ev: dict) -> None:
        if self._fh.closed:
            raise ObsError(
                f"emit to closed JsonlSink {self.path} (event "
                f"{ev.get('event')!r}); the sink was closed before this "
                f"producer finished"
            )
        self._fh.write(json.dumps(ev) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ScopedSink(EventSink):
    """Stamps fixed fields onto every event before forwarding.

    The serve layer's client-scoped sink: one shared producer (the
    service, the executor) emits unscoped events, and each client's
    ``ScopedSink(inner, query_id=..., client=...)`` tags its copy so an
    interleaved NDJSON stream — or a flight recorder shared by many
    concurrent queries — stays attributable.  Scope fields never
    overwrite a field the event already carries (an event's own
    ``event``/``level``/payload is the ground truth; the scope is
    context).
    """

    def __init__(self, inner: EventSink, **scope: Any) -> None:
        super().__init__()
        self.inner = inner
        self.scope = dict(scope)

    def _deliver(self, ev: dict) -> None:
        out = dict(ev)
        out.pop("seq", None)  # the inner sink keeps its own numbering
        for k, v in self.scope.items():
            out.setdefault(k, v)
        self.inner.emit(out)

    def close(self) -> None:
        """Closing a scope does *not* close the shared inner sink —
        many scopes may be writing through it."""


class TeeSink(EventSink):
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        super().__init__()
        self.sinks = tuple(sinks)

    def _deliver(self, ev: dict) -> None:
        for s in self.sinks:
            # Re-emit so each sink keeps its own seq numbering.
            inner = dict(ev)
            inner.pop("seq", None)
            s.emit(inner)

    def close(self) -> None:
        for s in self.sinks:
            s.close()


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a :class:`JsonlSink` file back into a list of events.

    A trailing torn line (the run was killed mid-write) is dropped
    rather than raised, matching the checkpoint loader's treatment of
    torn files.
    """
    out: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            out.append(json.loads(line))
        except ValueError:
            break
    return out


def warnings_in(events: Iterable[dict]) -> Iterator[dict]:
    """The warning-level events of a stream."""
    return (e for e in events if e.get("level") == LEVEL_WARNING)
