"""Typed service metrics: counters, gauges, and latency histograms.

:mod:`repro.obs.counters` gives the sweep a flat bag of process-safe
totals; a *service* needs more shape than that.  This module is the
serve path's metrics substrate:

- :class:`Counter` — monotonic totals (queries served, store hits).
  Negative increments are a bug in the instrumentation, so they raise.
- :class:`Gauge` — instantaneous levels (open queries, busy workers,
  resident store bytes).  Gauges go up and down and are excluded from
  cross-process deltas, which only make sense for monotone series.
- :class:`Histogram` — fixed-bucket latency/size distributions in the
  Prometheus cumulative-``le`` style, plus a bounded raw-sample
  reservoir so p50/p95/p99 readouts are *exact* until the reservoir
  cap (``REPRO_METRICS_SAMPLE_CAP``) is hit, after which they degrade
  to bucket interpolation and say so (``"exact": False``).

All three are registered in a :class:`MetricsRegistry` (process-global
instance: :data:`METRICS`).  Hot paths bump metrics unconditionally;
:meth:`MetricsRegistry.disable` turns every mutation into a no-op so
the overhead benches can measure instrumented-vs-not on the same code.

The registry renders to Prometheus text exposition format 0.0.4
(:func:`render_prometheus`, served by ``GET /metrics``) and this module
also carries the matching :func:`parse_exposition` /
:func:`percentile_from_buckets` consumers so ``repro loadtest`` and the
smoke tests read the service the same way a real scrape pipeline would.

Like :class:`~repro.obs.counters.CounterRegistry`, the registry is
process-safe by *delta shipping*, not shared memory: a worker captures
(:meth:`MetricsRegistry.capture`), the plain-dict delta pickles home,
and the parent folds it in (:meth:`MetricsRegistry.merge`).  Raw
histogram samples do not travel — merged observations count toward the
``dropped`` tally so percentile exactness stays honest.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.envknobs import env_int
from repro.errors import ObsError

#: Latency bucket upper bounds in seconds: 50us .. 30s, roughly
#: logarithmic.  Fine enough at the bottom to resolve store hits
#: (~100us) and at the top to resolve exact-mode sweep columns.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Bucket bounds for small integer sizes (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Default cap on raw samples retained per histogram for exact
#: percentiles (override with ``REPRO_METRICS_SAMPLE_CAP``).
DEFAULT_SAMPLE_CAP = 65536


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, value: float = 1) -> None:
        """Add ``value`` (must be >= 0) to the total."""
        if value < 0:
            raise ObsError(
                f"counter {self.name!r} incremented by {value}; "
                "counters are monotonic — use a gauge for levels"
            )
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """An instantaneous level that can move in both directions."""

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, value: float = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += value

    def dec(self, value: float = 1) -> None:
        self.inc(-value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """A fixed-bucket distribution with exact-until-capped percentiles.

    Buckets are cumulative upper bounds in the Prometheus ``le`` style;
    an implicit ``+Inf`` bucket catches everything above the last
    bound.  Alongside the bucket counts, up to ``sample_cap`` raw
    observations are retained so :meth:`percentile` is *exact*
    (nearest-rank) for bounded runs; once observations outnumber the
    cap, later samples are dropped from the reservoir (counts and sum
    stay complete) and percentiles fall back to linear interpolation
    within the bucket — :meth:`summary` reports which regime applies.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        sample_cap: int | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObsError(f"histogram {name!r} needs >= 1 bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ObsError(
                f"histogram {name!r} bucket bounds must be strictly "
                f"increasing, got {bounds}"
            )
        if not all(math.isfinite(b) for b in bounds):
            raise ObsError(
                f"histogram {name!r} bucket bounds must be finite "
                "(+Inf is implicit)"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._registry = registry
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._samples: list[float] = []
        self._dropped = 0
        if sample_cap is None:
            sample_cap = env_int(
                "REPRO_METRICS_SAMPLE_CAP", DEFAULT_SAMPLE_CAP, minimum=0
            )
        self._sample_cap = sample_cap

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self._registry.enabled:
            return
        v = float(value)
        idx = bisect.bisect_left(self.buckets, v)
        with self._lock:
            self._counts[idx] += 1
            self._sum += v
            self._count += 1
            if len(self._samples) < self._sample_cap:
                self._samples.append(v)
            else:
                self._dropped += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> list[int]:
        """Cumulative bucket counts, one per bound plus ``+Inf``."""
        with self._lock:
            out: list[int] = []
            acc = 0
            for c in self._counts:
                acc += c
                out.append(acc)
            return out

    def percentile(self, q: float) -> float:
        """The ``q`` quantile (``0 < q <= 1``) of the distribution.

        Exact (nearest-rank over retained samples) while nothing has
        been dropped; bucket-interpolated after that.  Returns 0.0 for
        an empty histogram.
        """
        if not 0 < q <= 1:
            raise ObsError(f"percentile fraction must be in (0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if self._dropped == 0:
                ordered = sorted(self._samples)
                rank = max(0, math.ceil(q * len(ordered)) - 1)
                return ordered[rank]
            cum: list[float] = []
            acc = 0
            for c in self._counts:
                acc += c
                cum.append(float(acc))
        return percentile_from_buckets(self.buckets, cum, q)

    def summary(self) -> dict[str, float | int | bool]:
        """Count, sum, and p50/p95/p99 with an exactness flag."""
        with self._lock:
            count = self._count
            total = self._sum
            exact = self._dropped == 0
        out: dict[str, float | int | bool] = {
            "count": count,
            "sum": round(total, 9),
            "exact": exact,
        }
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            out[label] = round(self.percentile(q), 9) if count else 0.0
        return out

    def _state(self) -> dict[str, object]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "dropped": self._dropped,
            }

    def _merge_state(self, state: Mapping[str, object]) -> None:
        buckets = [float(b) for b in _as_float_list(state.get("buckets"))]
        if tuple(buckets) != self.buckets:
            raise ObsError(
                f"histogram {self.name!r} merge with mismatched buckets: "
                f"{tuple(buckets)} != {self.buckets}"
            )
        counts = [int(c) for c in _as_float_list(state.get("counts"))]
        if len(counts) != len(self._counts):
            raise ObsError(
                f"histogram {self.name!r} merge with {len(counts)} bucket "
                f"counts, expected {len(self._counts)}"
            )
        delta_sum = float(_as_float(state.get("sum")))
        delta_count = int(_as_float(state.get("count")))
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += delta_sum
            self._count += delta_count
            # Raw samples do not travel with a delta: the merged
            # observations are unrecoverable for exact percentiles.
            self._dropped += delta_count
        _ = state.get("dropped")

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self._counts)
            self._sum = 0.0
            self._count = 0
            self._samples = []
            self._dropped = 0


def _as_float(value: object) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    raise ObsError(f"expected a number in metrics delta, got {value!r}")


def _as_float_list(value: object) -> list[float]:
    if not isinstance(value, (list, tuple)):
        raise ObsError(f"expected a list in metrics delta, got {value!r}")
    return [_as_float(v) for v in value]


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A typed, thread-safe registry of named metrics.

    Metric constructors are get-or-create: asking twice for the same
    name returns the same object, asking for the same name with a
    different kind (or different histogram buckets) raises
    :class:`ObsError` — a name collision is an instrumentation bug, not
    something to paper over.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        #: When False every mutation is a no-op.  Plain attribute read
        #: on the hot path; flipped only by tests and overhead benches.
        self.enabled = True

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Counter):
                    raise ObsError(
                        f"metric {name!r} is a {existing.kind}, not a counter"
                    )
                return existing
            metric = Counter(name, help, self)
            self._metrics[name] = metric
            return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Gauge):
                    raise ObsError(
                        f"metric {name!r} is a {existing.kind}, not a gauge"
                    )
                return existing
            metric = Gauge(name, help, self)
            self._metrics[name] = metric
            return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ObsError(
                        f"metric {name!r} is a {existing.kind}, not a histogram"
                    )
                if existing.buckets != tuple(float(b) for b in buckets):
                    raise ObsError(
                        f"histogram {name!r} re-registered with different "
                        f"buckets ({tuple(buckets)} != {existing.buckets})"
                    )
                return existing
            metric = Histogram(name, help, self, buckets=buckets)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Metric | None:
        """The registered metric named ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        """All registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def disable(self) -> None:
        """Turn every metric mutation into a no-op (overhead benches)."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        """Zero every metric *in place*.

        Module-level metric handles stay valid across a reset — the
        registry never forgets a registration, it only clears values.
        """
        for metric in self.metrics():
            metric._reset()

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Point-in-time copy of every metric's state, keyed by name."""
        out: dict[str, dict[str, object]] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = {"kind": metric.kind, **metric._state()}
            else:
                out[metric.name] = {"kind": metric.kind, "value": metric.value}
        return out

    def capture(self) -> "MetricsCapture":
        """Context manager measuring mutations made inside it.

        The worker-side half of cross-process metrics, mirroring
        :meth:`CounterRegistry.capture`: the returned delta is a plain
        dict (picklable) that the parent folds in with :meth:`merge`.
        Gauges are levels, not totals, so they are excluded.
        """
        return MetricsCapture(self)

    def merge(self, delta: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a :class:`MetricsCapture` delta into this registry."""
        for name, state in delta.items():
            kind = state.get("kind")
            if kind == "counter":
                self.counter(name).inc(_as_float(state.get("value")))
            elif kind == "histogram":
                buckets = _as_float_list(state.get("buckets"))
                self.histogram(name, buckets=buckets)._merge_state(state)
            elif kind == "gauge":
                continue  # levels do not sum across processes
            else:
                raise ObsError(f"metrics delta for {name!r} has kind {kind!r}")

    def summary(self) -> dict[str, object]:
        """A JSON-friendly digest: values plus histogram percentiles."""
        out: dict[str, object] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = metric.summary()
            else:
                out[metric.name] = metric.value
        return out


class MetricsCapture:
    """Delta of a registry between ``__enter__`` and read time."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._baseline: dict[str, dict[str, object]] = {}

    def __enter__(self) -> "MetricsCapture":
        self._baseline = self._registry.snapshot()
        return self

    def __exit__(self, *exc: object) -> None:
        pass

    def delta(self) -> dict[str, dict[str, object]]:
        """Monotone increments since ``__enter__`` (picklable)."""
        now = self._registry.snapshot()
        base = self._baseline
        out: dict[str, dict[str, object]] = {}
        for name, state in now.items():
            kind = state.get("kind")
            prior = base.get(name)
            if kind == "counter":
                before = _as_float(prior.get("value")) if prior else 0.0
                diff = _as_float(state.get("value")) - before
                if diff:
                    out[name] = {"kind": "counter", "value": diff}
            elif kind == "histogram":
                counts = [int(c) for c in _as_float_list(state.get("counts"))]
                before_counts = (
                    [int(c) for c in _as_float_list(prior.get("counts"))]
                    if prior
                    else [0] * len(counts)
                )
                dcounts = [a - b for a, b in zip(counts, before_counts)]
                if any(dcounts):
                    out[name] = {
                        "kind": "histogram",
                        "buckets": state.get("buckets"),
                        "counts": dcounts,
                        "sum": _as_float(state.get("sum"))
                        - (_as_float(prior.get("sum")) if prior else 0.0),
                        "count": sum(dcounts),
                        "dropped": 0,
                    }
        return out


#: The process-global registry the serve path instruments.
METRICS = MetricsRegistry()


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4): render and parse.
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"')


def prometheus_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    return "repro_" + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in Prometheus text exposition format 0.0.4."""
    reg = METRICS if registry is None else registry
    lines: list[str] = []
    for metric in reg.metrics():
        base = prometheus_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {base} {metric.help}")
        lines.append(f"# TYPE {base} {metric.kind}")
        if isinstance(metric, Counter):
            lines.append(f"{base}_total {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"{base} {_fmt(metric.value)}")
        else:
            cum = metric.cumulative_counts()
            bounds = [*metric.buckets, math.inf]
            for bound, count in zip(bounds, cum):
                lines.append(f'{base}_bucket{{le="{_fmt(bound)}"}} {count}')
            lines.append(f"{base}_sum {_fmt(metric.sum)}")
            lines.append(f"{base}_count {cum[-1]}")
    return "\n".join(lines) + "\n"


@dataclass
class MetricSample:
    """One sample line of a scraped exposition."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class MetricFamily:
    """All samples sharing one base metric name in a scrape."""

    name: str
    kind: str = "untyped"
    samples: list[MetricSample] = field(default_factory=list)

    def value(self, suffix: str = "", **labels: str) -> float:
        """The single sample value matching ``name+suffix`` and labels.

        Raises :class:`ObsError` when no sample (or more than one)
        matches — a scrape consumer guessing at missing series is how
        dashboards silently flatline.
        """
        want = self.name + suffix
        hits = [
            s
            for s in self.samples
            if s.name == want
            and all(s.labels.get(k) == v for k, v in labels.items())
        ]
        if len(hits) != 1:
            raise ObsError(
                f"expected exactly one sample for {want!r} {labels!r}, "
                f"found {len(hits)}"
            )
        return hits[0].value

    def histogram_cumulative(self) -> tuple[list[float], list[float]]:
        """``(upper_bounds, cumulative_counts)`` incl. the +Inf bucket."""
        pairs: list[tuple[float, float]] = []
        for s in self.samples:
            if not s.name.endswith("_bucket") or "le" not in s.labels:
                continue
            le = s.labels["le"]
            bound = math.inf if le in ("+Inf", "inf") else float(le)
            pairs.append((bound, s.value))
        pairs.sort(key=lambda p: p[0])
        if not pairs or pairs[-1][0] != math.inf:
            raise ObsError(
                f"scraped histogram {self.name!r} has no +Inf bucket"
            )
        return [p[0] for p in pairs], [p[1] for p in pairs]


def parse_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse Prometheus text exposition into families keyed by name.

    Handles the subset of format 0.0.4 that :func:`render_prometheus`
    emits (plus ordinary labelled samples).  Malformed sample lines
    raise :class:`ObsError` — a scrape that half-parses is worse than
    one that fails.
    """
    families: dict[str, MetricFamily] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                fam = families.setdefault(parts[2], MetricFamily(parts[2]))
                fam.kind = parts[3].strip()
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ObsError(f"malformed exposition sample line: {line!r}")
        name = m.group("name")
        labels: dict[str, str] = {}
        if m.group("labels"):
            for lm in _LABEL_RE.finditer(m.group("labels")):
                labels[lm.group("key")] = lm.group("val")
        try:
            value = float(m.group("value").replace("+Inf", "inf"))
        except ValueError as exc:
            raise ObsError(
                f"malformed exposition value in line: {line!r}"
            ) from exc
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        fam = families.setdefault(base, MetricFamily(base))
        fam.samples.append(MetricSample(name, labels, value))
    return families


def percentile_from_buckets(
    upper_bounds: Sequence[float],
    cumulative_counts: Sequence[float],
    q: float,
) -> float:
    """Prometheus-style ``histogram_quantile`` over cumulative buckets.

    ``upper_bounds`` are the finite bucket bounds (the +Inf bucket may
    be included as a trailing ``inf`` or implied by an extra trailing
    count).  Linear interpolation within the chosen bucket; values in
    the +Inf bucket report the highest finite bound, which is the
    honest answer a fixed-bucket histogram can give.
    """
    if not 0 < q <= 1:
        raise ObsError(f"percentile fraction must be in (0, 1], got {q}")
    bounds = [float(b) for b in upper_bounds]
    cum = [float(c) for c in cumulative_counts]
    if bounds and bounds[-1] == math.inf:
        bounds = bounds[:-1]
    if len(cum) not in (len(bounds), len(bounds) + 1):
        raise ObsError(
            f"bucket shape mismatch: {len(bounds)} bounds vs "
            f"{len(cum)} cumulative counts"
        )
    total = cum[-1] if cum else 0.0
    if total <= 0:
        return 0.0
    rank = q * total
    for i, upper in enumerate(bounds):
        if cum[i] >= rank:
            prev_cum = cum[i - 1] if i > 0 else 0.0
            in_bucket = cum[i] - prev_cum
            lower = bounds[i - 1] if i > 0 else 0.0
            if in_bucket <= 0:
                return upper
            frac = (rank - prev_cum) / in_bucket
            return lower + (upper - lower) * frac
    return bounds[-1] if bounds else 0.0


def read_percentiles(
    family: MetricFamily,
    fractions: Iterable[float] = (0.50, 0.95, 0.99),
) -> dict[str, float]:
    """p-labelled percentiles from a scraped histogram family."""
    bounds, cum = family.histogram_cumulative()
    return {
        f"p{int(q * 100)}": percentile_from_buckets(bounds, cum, q)
        for q in fractions
    }
