"""Roofline attribution from *measured* span counters.

The paper's rooflines (Figures 5/6) are drawn from the analytical
layer model.  This module draws the same classification from the other
direction — the counters a traced run actually recorded on its layer
spans (FLOPs, bytes moved to DRAM through ``cache.l2``, cycle
components plus the clock on the span's root path) — and reconciles
the two.  When the measured and modeled classifications agree, the
roofline claim stops being prose about a figure and becomes a
machine-checked assertion over a run that really happened; when they
disagree, the layer is flagged, because one of the two accountings is
wrong.

This module is deliberately simulator-free (``obs`` imports nothing
from the simulator): it consumes spans plus two ceiling numbers
(peak GFLOP/s, DRAM GB/s).  The glue that derives those ceilings from
a :class:`~repro.sim.system.SystemConfig` and runs the analytical
model lives in :mod:`repro.roofline.model`
(:func:`~repro.roofline.model.measured_roofline`), surfaced as
``repro profile --roofline``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, Sequence

from repro.errors import ObsError
from repro.obs.render import span_cycles, span_frequency
from repro.obs.trace import Span

#: Span name the instrumented inference drivers give per-layer spans.
LAYER_SPAN_NAME = "layer"


def parse_layer_label(label: str) -> tuple[str, str | None]:
    """Split ``"vgg.conv1[winograd]"`` into name and algorithm."""
    if label.endswith("]") and "[" in label:
        name, _, algo = label[:-1].rpartition("[")
        return name, algo
    return label, None


@dataclass(frozen=True)
class MeasuredRooflinePoint:
    """One layer's roofline position, from its recorded span counters."""

    layer: str
    algorithm: str | None
    flops: float
    dram_bytes: float
    cycles: float | None
    seconds: float | None
    peak_gflops: float
    dram_gbs: float

    @property
    def ridge_ai(self) -> float:
        return self.peak_gflops / self.dram_gbs

    @property
    def ai(self) -> float:
        """FLOPs per DRAM byte (the paper's Section 6 definition)."""
        return (
            self.flops / self.dram_bytes if self.dram_bytes
            else float("inf")
        )

    @property
    def gflops(self) -> float | None:
        """Achieved GFLOP/s; ``None`` without a clocked cycle count."""
        if self.seconds is None or self.seconds == 0:
            return None
        return self.flops / self.seconds / 1e9

    @property
    def memory_bound(self) -> bool:
        """Left of the ridge: bandwidth caps this layer."""
        return self.ai < self.ridge_ai

    def to_dict(self) -> dict[str, Any]:
        return {
            "layer": self.layer,
            "algorithm": self.algorithm,
            "flops": self.flops,
            "dram_bytes": self.dram_bytes,
            "cycles": self.cycles,
            "ai": None if self.dram_bytes == 0 else self.ai,
            "gflops": self.gflops,
            "memory_bound": self.memory_bound,
            "bound": "memory" if self.memory_bound else "compute",
        }


def attribute_trace(
    root: Span,
    peak_gflops: float,
    dram_gbs: float,
    algorithms: Iterable[str] | None = None,
) -> list[MeasuredRooflinePoint]:
    """Classify every layer span of a trace from its measured counters.

    Args:
        root: the trace root (``simulate_inference`` or any subtree).
        peak_gflops / dram_gbs: the configuration's roofline ceilings.
        algorithms: restrict to these algorithm tags (e.g.
            ``("winograd",)``); default, every layer span carrying a
            ``flops`` counter (pools and shortcuts report flops too,
            and they have a roofline position like any kernel).

    Raises :class:`ObsError` when the trace has no layer spans at all —
    an untraced payload fed to the attribution pass is operator error,
    not an empty result.
    """
    if peak_gflops <= 0 or dram_gbs <= 0:
        raise ObsError(
            f"roofline ceilings must be positive, got peak "
            f"{peak_gflops} GFLOP/s / {dram_gbs} GB/s"
        )
    wanted = set(algorithms) if algorithms is not None else None
    points: list[MeasuredRooflinePoint] = []
    stack: list[tuple[Span, tuple[Span, ...]]] = [(root, ())]
    saw_layer = False
    while stack:
        span, ancestors = stack.pop()
        sub = (*ancestors, span)
        # Depth-first, children in order (stack is LIFO: push reversed).
        stack.extend((c, sub) for c in reversed(span.children))
        if span.name != LAYER_SPAN_NAME:
            continue
        saw_layer = True
        layer, algo = parse_layer_label(
            str(span.attrs.get("label", span.name))
        )
        if wanted is not None and algo not in wanted:
            continue
        if "flops" not in span.counters:
            continue
        cycles = span_cycles(span, ancestors)
        freq = span_frequency(span, ancestors)
        seconds = (
            cycles / (freq * 1e9)
            if cycles is not None and freq else None
        )
        points.append(MeasuredRooflinePoint(
            layer=layer,
            algorithm=algo,
            flops=float(span.counters["flops"]),
            dram_bytes=float(span.counters.get("dram_bytes", 0.0)),
            cycles=cycles,
            seconds=seconds,
            peak_gflops=peak_gflops,
            dram_gbs=dram_gbs,
        ))
    if not saw_layer:
        raise ObsError(
            "trace contains no layer spans; was it recorded by "
            "`repro profile` (or a traced simulate_inference)?"
        )
    return points


# ----------------------------------------------------------------------
# Reconciliation against the analytical model.
# ----------------------------------------------------------------------
class ModeledPoint(Protocol):
    """What reconciliation needs from an analytical roofline point
    (satisfied by :class:`repro.roofline.model.RooflinePoint`)."""

    @property
    def name(self) -> str: ...
    @property
    def ai(self) -> float: ...
    @property
    def gflops(self) -> float: ...
    @property
    def memory_bound(self) -> bool: ...


@dataclass(frozen=True)
class Reconciliation:
    """Measured vs modeled roofline position of one layer."""

    layer: str
    algorithm: str | None
    measured_bound: str
    modeled_bound: str
    ai_measured: float
    ai_modeled: float
    gflops_measured: float | None
    gflops_modeled: float

    @property
    def agrees(self) -> bool:
        """Boundedness classifications match (the headline check)."""
        return self.measured_bound == self.modeled_bound

    @property
    def ai_delta(self) -> float:
        return self.ai_measured - self.ai_modeled

    def to_dict(self) -> dict[str, Any]:
        return {
            "layer": self.layer,
            "algorithm": self.algorithm,
            "measured": self.measured_bound,
            "modeled": self.modeled_bound,
            "agrees": self.agrees,
            "ai_measured": self.ai_measured,
            "ai_modeled": self.ai_modeled,
            "gflops_measured": self.gflops_measured,
            "gflops_modeled": self.gflops_modeled,
        }


def _bound_word(memory_bound: bool) -> str:
    return "memory" if memory_bound else "compute"


def reconcile(
    measured: Sequence[MeasuredRooflinePoint],
    modeled: Sequence[ModeledPoint],
) -> list[Reconciliation]:
    """Pair measured and modeled points by layer name.

    Only layers present on both sides are reconciled (the modeled side
    covers convolutions; a trace also carries pool/shortcut spans), but
    a modeled point with *no* measured counterpart is an error — the
    trace that was supposed to check the model did not cover it.
    """
    by_layer = {m.layer: m for m in measured}
    out: list[Reconciliation] = []
    missing: list[str] = []
    for point in modeled:
        m = by_layer.get(point.name)
        if m is None:
            missing.append(point.name)
            continue
        out.append(Reconciliation(
            layer=point.name,
            algorithm=m.algorithm,
            measured_bound=_bound_word(m.memory_bound),
            modeled_bound=_bound_word(point.memory_bound),
            ai_measured=m.ai,
            ai_modeled=point.ai,
            gflops_measured=m.gflops,
            gflops_modeled=point.gflops,
        ))
    if missing:
        raise ObsError(
            f"modeled roofline layers absent from the trace: "
            f"{', '.join(missing)} (was the profile truncated with "
            f"--layers?)"
        )
    return out


def disagreements(recs: Sequence[Reconciliation]) -> list[Reconciliation]:
    return [r for r in recs if not r.agrees]


def render_attribution(
    points: Sequence[MeasuredRooflinePoint],
    recs: Sequence[Reconciliation] = (),
    title: str = "",
) -> str:
    """The ``repro profile --roofline`` table.

    One row per measured layer; when a reconciliation is supplied, the
    ``model`` column shows the analytical classification and trailing
    lines call out any disagreement.
    """
    if not points:
        return "(no measured roofline points)"
    ridge = points[0].ridge_ai
    rows = [
        (f"measured roofline{': ' + title if title else ''}  "
         f"(peak {points[0].peak_gflops:.0f} GFLOP/s, "
         f"{points[0].dram_gbs:.0f} GB/s, ridge AI {ridge:.2f})"),
        f"{'layer':<16}{'algo':<13}{'AI':>9}{'GFLOP/s':>10}  "
        f"{'bound':<8}{'model':<8}",
    ]
    rec_by_layer = {r.layer: r for r in recs}
    for p in points:
        rec = rec_by_layer.get(p.layer)
        model = "—" if rec is None else rec.modeled_bound
        flag = "" if rec is None or rec.agrees else "  << disagrees"
        gf = "—" if p.gflops is None else f"{p.gflops:.2f}"
        ai = "inf" if p.dram_bytes == 0 else f"{p.ai:.3f}"
        rows.append(
            f"{p.layer:<16}{p.algorithm or '—':<13}{ai:>9}{gf:>10}  "
            f"{_bound_word(p.memory_bound):<8}{model:<8}{flag}"
        )
    mem = sum(1 for p in points if p.memory_bound)
    rows.append(f"memory-bound: {mem}/{len(points)} measured layers")
    bad = disagreements(list(recs))
    if recs:
        if bad:
            rows.append(
                f"RECONCILIATION FAILED: {len(bad)} layer(s) where "
                f"measured and modeled boundedness disagree: "
                + ", ".join(r.layer for r in bad)
            )
        else:
            rows.append(
                f"reconciliation: measured classification matches the "
                f"analytical model on all {len(recs)} layers"
            )
    return "\n".join(rows)
