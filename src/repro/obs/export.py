"""Trace exporters: Chrome trace-event JSON and folded stacks.

Two lossy-but-standard projections of a span tree, so traces recorded
by ``repro profile --trace`` can be inspected with off-the-shelf
viewers instead of this repo's text renderer:

- :func:`chrome_trace` — the Chrome trace-event format (complete
  ``"X"`` events with microsecond timestamps), loadable in
  ``chrome://tracing`` / Perfetto.  Spans record durations, not start
  timestamps, so starts are *reconstructed*: each span begins where
  its previous sibling ended, at its parent's start for the first
  child.  That preserves nesting and relative weight, which is what
  the viewers are for.
- :func:`folded_stacks` — one ``a;b;c weight`` line per span with its
  *self* weight (total minus children), the flamegraph.pl /
  speedscope input format.  Weights are integer cycles by default
  (wall microseconds with ``metric="wall"``).

Both are exports only; nothing reads them back, and the round-trip
format for traces remains the payload JSON handled by
:mod:`repro.obs.analytics`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ObsError
from repro.obs.render import span_cycles
from repro.obs.trace import Span

#: Chrome trace-event "complete event" phase.
PHASE_COMPLETE = "X"

CHROME_FORMAT = "chrome"
FOLDED_FORMAT = "folded"
EXPORT_FORMATS = (CHROME_FORMAT, FOLDED_FORMAT)

_CYCLES = "cycles"
_WALL = "wall"


def _frame_name(span: Span) -> str:
    """Viewer-facing frame name: the label when one is set."""
    label = span.attrs.get("label")
    return str(label) if label is not None else span.name


def chrome_trace(root: Span, pid: int = 1, tid: int = 1) -> dict[str, Any]:
    """Project a span tree onto Chrome trace-event JSON.

    Returns the ``{"traceEvents": [...]}`` object form; serialize with
    ``json.dumps``.  Events appear in depth-first pre-order, so a
    span's event always precedes its children's.
    """
    events: list[dict[str, Any]] = []

    def visit(span: Span, start_us: float) -> float:
        dur_us = span.wall_seconds * 1e6
        args: dict[str, Any] = {
            k: v for k, v in span.attrs.items() if k != "label"
        }
        args.update(span.counters)
        events.append({
            "name": _frame_name(span),
            "cat": span.name,
            "ph": PHASE_COMPLETE,
            "ts": start_us,
            "dur": dur_us,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        # Children start where the previous sibling ended; spans only
        # record durations, so this sequential layout is the
        # reconstruction (children of one span never overlap here).
        child_start = start_us
        for child in span.children:
            child_start = visit(child, child_start)
        return start_us + dur_us

    visit(root, 0.0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_trace(root: Span, indent: int | None = None) -> str:
    return json.dumps(chrome_trace(root), indent=indent)


def folded_stacks(root: Span, metric: str = _CYCLES) -> str:
    """Project a span tree onto folded-stack lines.

    One line per span carrying weight: semicolon-joined frame names
    from the root, then the span's integer *self* weight.  Zero-weight
    frames are omitted (flamegraph.pl treats them as noise), but their
    children are still visited with the full stack prefix.

    Args:
        metric: ``"cycles"`` (derived cycles; spans without a clocked
            cycle count weigh 0) or ``"wall"`` (microseconds).
    """
    if metric not in (_CYCLES, _WALL):
        raise ObsError(
            f"unknown folded-stack metric {metric!r}; "
            f"expected '{_CYCLES}' or '{_WALL}'"
        )
    lines: list[str] = []

    def weight(span: Span, ancestors: tuple[Span, ...]) -> float:
        if metric == _WALL:
            return span.wall_seconds * 1e6
        return span_cycles(span, ancestors) or 0.0

    def visit(span: Span, stack: tuple[str, ...],
              ancestors: tuple[Span, ...]) -> None:
        frame = _frame_name(span).replace(";", ",")
        stack = (*stack, frame)
        sub = (*ancestors, span)
        total = weight(span, ancestors)
        self_weight = total - sum(weight(c, sub) for c in span.children)
        count = int(round(max(self_weight, 0.0)))
        if count > 0:
            lines.append(f"{';'.join(stack)} {count}")
        for child in span.children:
            visit(child, stack, sub)

    visit(root, (), ())
    return "\n".join(lines) + ("\n" if lines else "")


def export_trace(root: Span, fmt: str) -> str:
    """Dispatch for ``repro trace export --format``."""
    if fmt == CHROME_FORMAT:
        return render_chrome_trace(root, indent=2)
    if fmt == FOLDED_FORMAT:
        return folded_stacks(root)
    raise ObsError(
        f"unknown export format {fmt!r}; expected one of "
        f"{', '.join(EXPORT_FORMATS)}"
    )
