"""Trace analytics: load, align, and compare span-tree payloads.

PR 4 made runs *recordable* (``repro profile --json`` / ``--trace``
directories); this module makes them *comparable* — the half of the
measure→attribute→compare loop that turns a trace from a pretty tree
into evidence:

- :func:`load_trace` reads any trace artifact this repo writes — a
  ``--trace`` directory, its ``trace.json``, or a single
  ``repro profile --json`` capture — into one :class:`TracePayload`
  (span tree + manifest + any unknown keys, preserved verbatim).
- :func:`diff_traces` aligns two span trees *structurally* (by span
  name and label, in order of occurrence, so two traces of the same
  run align layer-for-layer even though wall times differ) and reports
  per-span deltas of wall time, derived cycles, and every primitive
  counter.  Two traces of the same simulated run must show all-zero
  counter deltas — the simulator is deterministic, and a non-zero
  delta is a real behaviour change, not noise.
- :func:`critical_path` extracts the heaviest root-to-leaf chain by
  derived cycles (wall time when a span has no clocked counters).
- :func:`top_spans` ranks spans by *self* cycles — what the span cost
  excluding its children — the flamegraph question asked of a tree.

Surfaced as ``repro trace diff A B [--json]`` and ``repro trace top``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.errors import ObsError
from repro.obs.manifest import RUN_MANIFEST_NAME
from repro.obs.render import span_cycles
from repro.obs.trace import Span

#: File name of the span tree inside a ``--trace`` directory.
TRACE_FILE_NAME = "trace.json"


@dataclass
class TracePayload:
    """One loaded trace artifact: span tree, manifest, unknown keys."""

    span: Span
    manifest: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    source: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Round-trip form — unknown top-level keys ride along."""
        payload: dict[str, Any] = dict(self.extra)
        payload["trace"] = self.span.to_dict()
        if self.manifest is not None:
            payload["manifest"] = dict(self.manifest)
        return payload


def load_trace(path: str | Path) -> TracePayload:
    """Load any trace artifact the repo writes.

    Accepts a ``--trace`` directory (reads its ``trace.json``, falling
    back to the sibling ``manifest.json`` when the payload embeds no
    manifest), a payload file (``{"trace": ..., "manifest": ...}``, the
    ``repro profile --json`` document), or a bare span-tree JSON file.
    """
    p = Path(path)
    sibling_manifest: dict[str, Any] | None = None
    if p.is_dir():
        trace_file = p / TRACE_FILE_NAME
        if not trace_file.exists():
            raise ObsError(
                f"{p} has no {TRACE_FILE_NAME}; a trace directory is "
                f"written by `repro profile --trace DIR`"
            )
        mpath = p / RUN_MANIFEST_NAME
        if mpath.exists():
            sibling_manifest = json.loads(mpath.read_text(encoding="utf-8"))
        p = trace_file
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, ValueError) as e:
        raise ObsError(f"unreadable trace {p}: {e}") from None
    if not isinstance(doc, dict):
        raise ObsError(f"trace {p} is not a JSON object")
    if "trace" in doc:
        span = Span.from_dict(doc["trace"])
        manifest = doc.get("manifest")
        extra = {
            k: v for k, v in doc.items() if k not in ("trace", "manifest")
        }
    elif "name" in doc:
        # A bare span tree (e.g. a worker subtree saved by tooling).
        span, manifest, extra = Span.from_dict(doc), None, {}
    else:
        raise ObsError(
            f"trace {p} has neither a 'trace' payload key nor a span "
            f"'name' key"
        )
    if manifest is None and sibling_manifest is not None:
        manifest = sibling_manifest
    return TracePayload(span=span, manifest=manifest, extra=extra,
                        source=str(path))


# ----------------------------------------------------------------------
# Structural alignment and diff.
# ----------------------------------------------------------------------
#: Alignment outcomes for one node of the diff tree.
MATCHED = "matched"
ONLY_A = "only_a"
ONLY_B = "only_b"


def _span_key(span: Span) -> tuple[str, str]:
    """Identity used for alignment: name plus label attribute."""
    return span.name, str(span.attrs.get("label", ""))


@dataclass
class SpanDiff:
    """One aligned node of a trace diff.

    ``counters`` maps every counter present on either side to its
    ``(a, b)`` pair (0.0 standing in for an absent counter), so "every
    primitive counter" is reported, not just the ones that moved.
    """

    name: str
    label: str
    status: str
    wall_a: float = 0.0
    wall_b: float = 0.0
    cycles_a: float | None = None
    cycles_b: float | None = None
    counters: dict[str, tuple[float, float]] = field(default_factory=dict)
    children: list["SpanDiff"] = field(default_factory=list)

    @property
    def wall_delta(self) -> float:
        return self.wall_b - self.wall_a

    @property
    def cycles_delta(self) -> float | None:
        if self.cycles_a is None or self.cycles_b is None:
            return None
        return self.cycles_b - self.cycles_a

    def counter_deltas(self) -> dict[str, float]:
        """b - a per counter (zeros included: the full report)."""
        return {k: b - a for k, (a, b) in self.counters.items()}

    def walk(self) -> Iterator["SpanDiff"]:
        yield self
        for c in self.children:
            yield from c.walk()

    @property
    def max_abs_counter_delta(self) -> float:
        """The headline bit-stability number over the whole subtree."""
        return max(
            (abs(d) for n in self.walk() for d in n.counter_deltas().values()),
            default=0.0,
        )

    @property
    def structurally_identical(self) -> bool:
        return all(n.status == MATCHED for n in self.walk())

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "label": self.label,
            "status": self.status,
            "wall_a": self.wall_a,
            "wall_b": self.wall_b,
            "wall_delta": self.wall_delta,
            "cycles_a": self.cycles_a,
            "cycles_b": self.cycles_b,
            "cycles_delta": self.cycles_delta,
            "counters": {
                k: {"a": a, "b": b, "delta": b - a}
                for k, (a, b) in sorted(self.counters.items())
            },
            "children": [c.to_dict() for c in self.children],
        }


def _diff_node(
    a: Span | None,
    b: Span | None,
    path_a: Sequence[Span],
    path_b: Sequence[Span],
) -> SpanDiff:
    """Diff one aligned pair (either side may be absent)."""
    present = a if a is not None else b
    assert present is not None
    name, label = _span_key(present)
    status = MATCHED if a is not None and b is not None else (
        ONLY_A if b is None else ONLY_B)
    node = SpanDiff(name=name, label=label or name, status=status)
    if a is not None:
        node.wall_a = a.wall_seconds
        node.cycles_a = span_cycles(a, path_a)
    if b is not None:
        node.wall_b = b.wall_seconds
        node.cycles_b = span_cycles(b, path_b)
    keys = sorted(
        set(a.counters if a else ()) | set(b.counters if b else ())
    )
    node.counters = {
        k: (
            float(a.counters.get(k, 0.0)) if a is not None else 0.0,
            float(b.counters.get(k, 0.0)) if b is not None else 0.0,
        )
        for k in keys
    }
    # Align children by (name, label) occurrence order: the i-th child
    # with a given key on side A pairs with the i-th on side B.  That
    # keeps repeated spans (every layer span is named "layer") aligned
    # positionally per label while tolerating insertions elsewhere.
    sub_a = (*path_a, a) if a is not None else path_a
    sub_b = (*path_b, b) if b is not None else path_b
    b_buckets: dict[tuple[str, str], list[Span]] = {}
    for child in (b.children if b is not None else []):
        b_buckets.setdefault(_span_key(child), []).append(child)
    consumed: set[int] = set()
    for child in (a.children if a is not None else []):
        bucket = b_buckets.get(_span_key(child), [])
        match = bucket.pop(0) if bucket else None
        if match is not None:
            consumed.add(id(match))
        node.children.append(_diff_node(child, match, sub_a, sub_b))
    for child in (b.children if b is not None else []):
        if id(child) not in consumed:
            node.children.append(_diff_node(None, child, sub_a, sub_b))
    return node


def diff_traces(a: Span, b: Span) -> SpanDiff:
    """Structurally align two span trees and report per-span deltas."""
    return _diff_node(a, b, (), ())


def diff_payload(
    a: TracePayload, b: TracePayload
) -> dict[str, Any]:
    """The ``repro trace diff --json`` document."""
    root = diff_traces(a.span, b.span)
    return {
        "a": a.source,
        "b": b.source,
        "structurally_identical": root.structurally_identical,
        "max_abs_counter_delta": root.max_abs_counter_delta,
        "diff": root.to_dict(),
    }


def _fmt_delta(v: float) -> str:
    return f"{v:+.6g}" if v else "±0"


def render_diff_text(root: SpanDiff, indent: int = 0) -> str:
    """Indented diff tree: wall and cycle deltas per span, plus the
    counters that actually moved (all-zero counters are summarized, not
    listed — the full per-counter report is the ``--json`` form)."""
    pad = "  " * indent
    if root.status == ONLY_A:
        line = f"{pad}- {root.label}  (only in A)"
    elif root.status == ONLY_B:
        line = f"{pad}+ {root.label}  (only in B)"
    else:
        parts = [
            f"wall {root.wall_a * 1e3:.2f}→{root.wall_b * 1e3:.2f} ms"
        ]
        if root.cycles_delta is not None:
            parts.append(f"cycles {_fmt_delta(root.cycles_delta)}")
        moved = {k: d for k, d in root.counter_deltas().items() if d}
        if moved:
            parts.append(", ".join(
                f"{k} {_fmt_delta(d)}" for k, d in sorted(moved.items())
            ))
        elif root.counters:
            parts.append(f"{len(root.counters)} counters ±0")
        line = f"{pad}{root.label}  [{'  '.join(parts)}]"
    lines = [line]
    lines.extend(render_diff_text(c, indent + 1) for c in root.children)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Critical path and hot spans.
# ----------------------------------------------------------------------
def _span_weight(span: Span, ancestors: Sequence[Span]) -> float:
    """Ranking weight: derived cycles when clocked, else wall time."""
    cycles = span_cycles(span, ancestors)
    return cycles if cycles is not None else span.wall_seconds


def critical_path(root: Span) -> list[Span]:
    """The heaviest root-to-leaf chain by cycles (wall as fallback).

    At every node the walk descends into the heaviest child, so the
    returned chain is the sequence of spans an optimizer should look at
    first — the trace-tree analogue of a critical path.
    """
    path = [root]
    ancestors: list[Span] = []
    node = root
    while node.children:
        ancestors.append(node)
        node = max(
            node.children, key=lambda c: _span_weight(c, ancestors)
        )
        path.append(node)
    return path


@dataclass(frozen=True)
class HotSpan:
    """One row of the top-N table."""

    label: str
    path: str
    total_cycles: float | None
    self_cycles: float | None
    wall_seconds: float
    depth: int

    @property
    def rank_weight(self) -> float:
        if self.self_cycles is not None:
            return self.self_cycles
        return self.wall_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "path": self.path,
            "total_cycles": self.total_cycles,
            "self_cycles": self.self_cycles,
            "wall_seconds": self.wall_seconds,
        }


def _collect_hot(
    span: Span, ancestors: tuple[Span, ...], prefix: str,
    out: list[HotSpan],
) -> None:
    label = str(span.attrs.get("label", span.name))
    path = f"{prefix}/{label}" if prefix else label
    total = span_cycles(span, ancestors)
    sub = (*ancestors, span)
    child_cycles = [span_cycles(c, sub) for c in span.children]
    self_cycles: float | None = None
    if total is not None:
        self_cycles = total - sum(c for c in child_cycles if c is not None)
        # Timer/accounting noise never goes negative on real traces —
        # but clamp anyway so a hand-built tree cannot rank below zero.
        self_cycles = max(self_cycles, 0.0)
    out.append(HotSpan(
        label=label, path=path, total_cycles=total,
        self_cycles=self_cycles, wall_seconds=span.wall_seconds,
        depth=len(ancestors),
    ))
    for child in span.children:
        _collect_hot(child, sub, path, out)


def top_spans(root: Span, n: int = 10) -> list[HotSpan]:
    """The ``n`` heaviest spans by self cycles (wall as fallback).

    *Self* cycles — the span's derived cycles minus its children's —
    so an aggregating root does not shadow the layers underneath it.
    """
    rows: list[HotSpan] = []
    _collect_hot(root, (), "", rows)
    rows.sort(key=lambda r: r.rank_weight, reverse=True)
    return rows[:n]


def render_top_text(rows: Sequence[HotSpan], total: float | None) -> str:
    """The ``repro trace top`` table."""
    out = [
        f"{'#':>3} {'span':<42}{'self cycles':>14}{'total':>14}"
        f"{'share':>8}{'wall ms':>10}"
    ]
    for i, r in enumerate(rows, 1):
        self_c = "—" if r.self_cycles is None else f"{r.self_cycles:,.0f}"
        total_c = "—" if r.total_cycles is None else f"{r.total_cycles:,.0f}"
        share = (
            f"{100 * r.self_cycles / total:.1f}%"
            if r.self_cycles is not None and total
            else "—"
        )
        label = r.label if len(r.label) <= 41 else r.label[:38] + "..."
        out.append(
            f"{i:>3} {label:<42}{self_c:>14}{total_c:>14}"
            f"{share:>8}{r.wall_seconds * 1e3:>10.2f}"
        )
    return "\n".join(out)


def render_critical_path(path: Sequence[Span]) -> str:
    """One line per hop of the heaviest root-to-leaf chain."""
    out = ["critical path (heaviest root-to-leaf chain):"]
    for depth, node in enumerate(path):
        label = str(node.attrs.get("label", node.name))
        cycles = span_cycles(node, tuple(path[:depth]))
        c = "—" if cycles is None else f"{cycles:,.0f} cycles"
        out.append(
            f"  {'  ' * depth}{label}  ({c}, "
            f"{node.wall_seconds * 1e3:.2f} ms)"
        )
    return "\n".join(out)
