"""Versioned performance baselines (the regression observatory).

``repro bench record`` runs a small co-design sweep and freezes the
result into ``BENCH_<rev>.json`` — one file per git revision, committed
alongside the code it measured, so the repo carries its own performance
trajectory.  ``repro bench compare`` re-runs the same sweep and diffs
against a stored baseline, exiting non-zero on regression.

Two kinds of number, two kinds of comparison:

- **Simulated cycles are exact.**  The analytical simulator is
  deterministic; any cycle delta at all is a modeling change and must
  be acknowledged by recording a new baseline, never absorbed by a
  tolerance.
- **Wall time is noisy.**  Each baseline stores the mean and standard
  deviation over repeated runs, and the comparison tolerance is built
  from that recorded noise (``max(abs_floor, sigmas·std,
  rel_floor·mean)``) — generous by design, because the observatory's
  wall check exists to catch "the sweep got 5× slower", not scheduler
  jitter on a loaded CI box.

This module is the store and the comparison; it is simulator-free
(``obs`` layering).  The glue that runs sweeps and fills a
:class:`BenchRecorder` lives in the CLI and
:mod:`repro.codesign.executor`.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ObsError

BASELINE_SCHEMA = 1
BENCH_FILE_PREFIX = "BENCH_"
#: Default directory (relative to the repo root) for baseline files.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"

_REV_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def bench_key(network: str, vlen_bits: int, l2_mb: float) -> str:
    """Canonical bench name of one sweep point: ``vgg16/512b/1.0MB``."""
    return f"{network}/{vlen_bits}b/{l2_mb:g}MB"


def _mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs)


def _std(xs: Sequence[float]) -> float:
    if len(xs) < 2:
        return 0.0
    m = _mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))


class BenchRecorder:
    """Accumulates one run's bench measurements before freezing.

    ``add`` is called once per (bench, repeat): cycles must agree
    across repeats — the simulator is deterministic, so a cycle count
    that moves between repeats of the *same* code is a bug worth
    stopping the recording for — while wall times accumulate into the
    noise estimate.
    """

    def __init__(self) -> None:
        self._cycles: dict[str, float] = {}
        self._walls: dict[str, list[float]] = {}

    def add(self, name: str, cycles: float,
            wall_seconds: float | None = None) -> None:
        known = self._cycles.get(name)
        if known is not None and known != cycles:
            raise ObsError(
                f"bench {name!r} is nondeterministic: cycles {known} on "
                f"one repeat, {cycles} on another"
            )
        self._cycles[name] = cycles
        if wall_seconds is not None:
            self._walls.setdefault(name, []).append(wall_seconds)

    def __len__(self) -> int:
        return len(self._cycles)

    def benches(self) -> dict[str, dict[str, Any]]:
        """The ``benches`` payload section."""
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self._cycles):
            walls = self._walls.get(name, [])
            out[name] = {
                "cycles": self._cycles[name],
                "wall_mean": _mean(walls) if walls else None,
                "wall_std": _std(walls),
                "runs": len(walls),
            }
        return out


def baseline_payload(
    rev: str,
    recorder: BenchRecorder,
    config: Mapping[str, Any],
    manifest: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one ``BENCH_<rev>.json`` payload."""
    if not len(recorder):
        raise ObsError("refusing to record an empty baseline")
    return {
        "schema": BASELINE_SCHEMA,
        "rev": rev,
        "config": dict(config),
        "manifest": dict(manifest) if manifest is not None else None,
        "benches": recorder.benches(),
    }


# ----------------------------------------------------------------------
# The store: BENCH_<rev>.json files in one directory.
# ----------------------------------------------------------------------
class BaselineStore:
    """Directory of ``BENCH_<rev>.json`` baseline files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, rev: str) -> Path:
        if not _REV_RE.match(rev):
            raise ObsError(f"malformed baseline revision {rev!r}")
        return self.root / f"{BENCH_FILE_PREFIX}{rev}.json"

    def revs(self) -> list[str]:
        """Known revisions, oldest first by file modification time."""
        if not self.root.is_dir():
            return []
        files = sorted(
            self.root.glob(f"{BENCH_FILE_PREFIX}*.json"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        return [p.stem[len(BENCH_FILE_PREFIX):] for p in files]

    def save(self, payload: Mapping[str, Any]) -> Path:
        path = self.path_for(str(payload["rev"]))
        self.root.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def load(self, rev: str) -> dict[str, Any]:
        path = self.path_for(rev)
        if not path.is_file():
            known = ", ".join(self.revs()) or "none recorded"
            raise ObsError(
                f"no baseline for revision {rev!r} in {self.root} "
                f"(known: {known})"
            )
        payload = json.loads(path.read_text(encoding="utf-8"))
        schema = payload.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ObsError(
                f"baseline {path} has schema {schema!r}; this code "
                f"reads schema {BASELINE_SCHEMA}"
            )
        return payload

    def resolve(self, against: str | None = None) -> dict[str, Any]:
        """Load ``against``, or the most recently recorded baseline."""
        if against is not None:
            return self.load(against)
        revs = self.revs()
        if not revs:
            raise ObsError(
                f"no baselines recorded in {self.root}; run "
                f"`repro bench record` first"
            )
        return self.load(revs[-1])


# ----------------------------------------------------------------------
# Comparison.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One bench that moved outside its comparison contract."""

    bench: str
    kind: str  # "cycles" | "wall" | "missing"
    detail: str
    base: float | None = None
    current: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench, "kind": self.kind,
            "detail": self.detail, "base": self.base,
            "current": self.current,
        }


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing a run against a stored baseline."""

    base_rev: str
    current_rev: str | None
    compared: int
    regressions: tuple[Regression, ...]
    added: tuple[str, ...] = ()
    notes: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "base_rev": self.base_rev,
            "current_rev": self.current_rev,
            "compared": self.compared,
            "ok": self.ok,
            "regressions": [r.to_dict() for r in self.regressions],
            "added": list(self.added),
            "notes": list(self.notes),
        }


def wall_tolerance(
    mean: float,
    std: float,
    sigmas: float = 3.0,
    rel_floor: float = 0.5,
    abs_floor: float = 0.1,
) -> float:
    """Allowed wall-time increase over the baseline mean (seconds)."""
    return max(abs_floor, sigmas * std, rel_floor * mean)


def compare_payloads(
    base: Mapping[str, Any],
    current: Mapping[str, Any],
    sigmas: float = 3.0,
    rel_floor: float = 0.5,
    abs_floor: float = 0.1,
    walls: bool = True,
) -> BenchComparison:
    """Compare two baseline payloads (base vs the fresh run).

    Pure function of the two payloads, so the comparison policy is
    testable without running any sweep: cycles exact, wall within
    :func:`wall_tolerance` of the baseline mean, and a bench present in
    the baseline but absent from the current run is itself a
    regression (coverage loss).  Benches only the current run has are
    reported as ``added`` but do not fail the comparison.

    ``walls=False`` skips the wall-time comparison entirely (cycles
    only) — for loaded or shared machines where wall noise exceeds any
    sane tolerance; the skip is recorded in the notes, never silent.
    """
    base_benches: Mapping[str, Any] = base.get("benches", {})
    cur_benches: Mapping[str, Any] = current.get("benches", {})
    regressions: list[Regression] = []
    notes: list[str] = []
    compared = 0
    for name in sorted(base_benches):
        b = base_benches[name]
        c = cur_benches.get(name)
        if c is None:
            regressions.append(Regression(
                bench=name, kind="missing",
                detail="present in baseline, absent from this run",
            ))
            continue
        compared += 1
        if c["cycles"] != b["cycles"]:
            rel = (
                (c["cycles"] - b["cycles"]) / b["cycles"]
                if b["cycles"] else float("inf")
            )
            regressions.append(Regression(
                bench=name, kind="cycles",
                detail=(
                    f"simulated cycles changed by {rel:+.4%} "
                    f"({b['cycles']:.0f} -> {c['cycles']:.0f}); cycle "
                    f"counts are exact — record a new baseline if this "
                    f"change is intended"
                ),
                base=float(b["cycles"]), current=float(c["cycles"]),
            ))
        if not walls:
            continue
        b_wall, c_wall = b.get("wall_mean"), c.get("wall_mean")
        if b_wall is None or c_wall is None:
            notes.append(f"{name}: wall time not compared (not recorded)")
            continue
        tol = wall_tolerance(
            b_wall, float(b.get("wall_std") or 0.0),
            sigmas=sigmas, rel_floor=rel_floor, abs_floor=abs_floor,
        )
        if c_wall > b_wall + tol:
            regressions.append(Regression(
                bench=name, kind="wall",
                detail=(
                    f"wall time {c_wall:.3f}s exceeds baseline "
                    f"{b_wall:.3f}s + tolerance {tol:.3f}s"
                ),
                base=b_wall, current=c_wall,
            ))
    if not walls:
        notes.append("wall times not compared (cycles only)")
    added = tuple(sorted(set(cur_benches) - set(base_benches)))
    return BenchComparison(
        base_rev=str(base.get("rev")),
        current_rev=(
            None if current.get("rev") is None else str(current["rev"])
        ),
        compared=compared,
        regressions=tuple(regressions),
        added=added,
        notes=tuple(notes),
    )


def render_comparison(cmp: BenchComparison) -> str:
    head = (
        f"bench compare: {cmp.compared} bench(es) vs baseline "
        f"{cmp.base_rev}"
        + (f" (current {cmp.current_rev})" if cmp.current_rev else "")
    )
    rows = [head]
    for r in cmp.regressions:
        rows.append(f"  REGRESSION [{r.kind}] {r.bench}: {r.detail}")
    for name in cmp.added:
        rows.append(f"  added (not in baseline): {name}")
    rows.extend(f"  note: {n}" for n in cmp.notes)
    rows.append("OK" if cmp.ok
                else f"FAILED: {len(cmp.regressions)} regression(s)")
    return "\n".join(rows)
