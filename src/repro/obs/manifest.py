"""Run manifests: the identity block written next to every trace.

A manifest pins what produced a trace directory — the command, the
simulated configuration, the backend, the git revision of the code,
interpreter/platform versions, and the RNG seed state — so a JSONL
event file found weeks later can be tied back to an exact setup.  It is
the observability twin of the sweep checkpoint manifest (which pins
*result* identity for resume); this one pins *provenance* and is never
compared, only recorded.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import random
import subprocess
import sys
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping

#: Manifest schema version.
MANIFEST_SCHEMA = 1

#: File name used by the CLI's ``--trace`` directories.
RUN_MANIFEST_NAME = "manifest.json"


@lru_cache(maxsize=8)
def git_rev(cwd: str | Path | None = None) -> str | None:
    """The current git revision, or None outside a checkout (or when
    git itself is unavailable) — provenance must never fail a run.

    Cached per process: the serve layer stamps a manifest onto every
    query, and a subprocess per query would dominate the hot
    (store-bound) path."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def seed_state(seed: int | None = None) -> dict:
    """The RNG state block: the explicit seed (when the command took
    one) plus a digest of the stdlib RNG state and ``PYTHONHASHSEED``,
    enough to notice two "identical" runs that actually diverged."""
    digest = hashlib.sha256(
        repr(random.getstate()).encode()
    ).hexdigest()[:16]
    return {
        "seed": seed,
        "random_state_digest": digest,
        "pythonhashseed": os.environ.get("PYTHONHASHSEED"),
    }


def run_manifest(
    command: str,
    config: Mapping[str, Any] | None = None,
    backend: str | None = None,
    seed: int | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble the manifest for one run.

    Args:
        command: the logical command ("profile", "sweep", ...).
        config: the simulated system configuration as a dict
            (``dataclasses.asdict(SystemConfig)``).
        backend: sweep backend when applicable.
        seed: explicit RNG seed when the command took one.
        extra: command-specific fields merged in verbatim.
    """
    try:
        import numpy
        numpy_version: str | None = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "tool": "repro",
        "command": command,
        "argv": list(sys.argv),
        "started_unix": time.time(),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy_version,
        "seed_state": seed_state(seed),
        "backend": backend,
        "config": dict(config) if config is not None else None,
    }
    if extra:
        manifest.update(dict(extra))
    return manifest


def query_manifest(
    query_id: str,
    identity: Mapping[str, Any],
    config: Mapping[str, Any] | None = None,
    backend: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble the manifest for one served co-design query.

    The serve twin of :func:`run_manifest`: in addition to the usual
    provenance block it pins the query's *content address* — the
    ``identity`` mapping (network hash, policy, grid) that keys the
    result store — so a streamed result can always be tied back to the
    exact cache entries that answered it.
    """
    merged: dict[str, Any] = {"query_id": query_id,
                              "identity": dict(identity)}
    if extra:
        merged.update(dict(extra))
    return run_manifest(
        "serve-query", config=config, backend=backend, extra=merged,
    )


def write_manifest(directory: str | Path, manifest: Mapping[str, Any]) -> Path:
    """Write ``manifest.json`` into a trace directory; returns its path."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    path = d / RUN_MANIFEST_NAME
    path.write_text(json.dumps(dict(manifest), indent=2) + "\n",
                    encoding="utf-8")
    return path
