"""Hierarchical spans: where wall time and counters go per phase.

A :class:`Span` records one timed region — name, attributes, wall
seconds, attached counters — and its child spans, forming the trace
tree of a run (``simulate_inference`` at the root, one child per
layer).  A :class:`Tracer` owns a tree under construction; the ambient
helpers (:func:`tracing` / :func:`span`) let hot paths open spans
without threading a tracer through every signature — when no tracer is
installed, :func:`span` yields a shared no-op span, so instrumentation
costs one context-variable read on the untraced path.

Spans serialize to plain dicts (:meth:`Span.to_dict` /
:meth:`Span.from_dict`), which is how worker processes ship their
subtrees back to the sweep's parent trace (:meth:`Tracer.attach`).

Instrumentation is observation-only by contract: spans never feed back
into the simulation, so traced and untraced runs produce bit-identical
statistics (the ``repro profile`` acceptance test pins this).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator


class Span:
    """One timed region of a run, with counters and child spans."""

    __slots__ = ("name", "attrs", "counters", "children", "wall_seconds",
                 "extra", "_t0")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.counters: dict[str, float] = {}
        self.children: list["Span"] = []
        self.wall_seconds: float = 0.0
        #: Unknown keys found by :meth:`from_dict` — a trace written by
        #: a newer schema round-trips through this one untouched.
        self.extra: dict[str, Any] = {}
        self._t0: float | None = None

    # ------------------------------------------------------------------
    def add_counters(self, **counters: float) -> None:
        """Accumulate named counters onto this span."""
        for k, v in counters.items():
            self.counters[k] = self.counters.get(k, 0) + v

    def set_attrs(self, **attrs: Any) -> None:
        """Attach or update descriptive attributes."""
        self.attrs.update(attrs)

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree."""
        return [s for s in self.walk() if s.name == name]

    def sum_counter(self, name: str) -> float:
        """Sum of ``name`` over the direct children (the per-layer
        totals the acceptance criteria compare against the untraced
        run)."""
        return sum(c.counters.get(name, 0) for c in self.children)

    # ------------------------------------------------------------------
    #: Keys :meth:`to_dict` owns; everything else a loaded dict carries
    #: is preserved verbatim in :attr:`extra` (forward compatibility
    #: with traces written by newer schemas).
    _KNOWN_KEYS = frozenset(
        {"name", "wall_seconds", "attrs", "counters", "children"}
    )

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` round-trips it,
        including any unknown keys a newer writer added."""
        d = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }
        for k, v in self.extra.items():
            d.setdefault(k, v)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Inverse of :meth:`to_dict` (worker-span merging).

        Unknown keys are kept in :attr:`extra` rather than dropped, so
        a trace produced by a newer schema survives a load/save cycle
        through this code untouched.
        """
        s = cls(str(d["name"]), d.get("attrs") or {})
        s.wall_seconds = float(d.get("wall_seconds", 0.0))
        s.counters = {
            str(k): v for k, v in (d.get("counters") or {}).items()
        }
        s.children = [cls.from_dict(c) for c in d.get("children") or []]
        s.extra = {k: v for k, v in d.items() if k not in cls._KNOWN_KEYS}
        return s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.wall_seconds * 1e3:.2f} ms, "
                f"{len(self.children)} children)")


class _NullSpan(Span):
    """The shared do-nothing span yielded when tracing is off."""

    def add_counters(self, **counters: float) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan("<untraced>")


class Tracer:
    """Owner of one trace tree under construction."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    @property
    def root(self) -> Span:
        """The first top-level span (most traces have exactly one)."""
        if not self.spans:
            raise LookupError("tracer recorded no spans")
        return self.spans[0]

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a root)."""
        s = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(s)
        else:
            self.spans.append(s)
        self._stack.append(s)
        s._t0 = time.perf_counter()
        try:
            yield s
        finally:
            s.wall_seconds = time.perf_counter() - (s._t0 or 0.0)
            self._stack.pop()

    def attach(self, span: Span) -> None:
        """Graft a finished span (e.g. deserialized from a worker)
        under the innermost open span, or as a new root."""
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)


# ----------------------------------------------------------------------
# Ambient tracer: hot paths call span() without signature changes.
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer",
                                               default=None)


def current_tracer() -> Tracer | None:
    """The tracer installed by the innermost :func:`tracing`, if any."""
    return _ACTIVE.get()


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) as the ambient tracer."""
    t = tracer if tracer is not None else Tracer()
    token = _ACTIVE.set(t)
    try:
        yield t
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Open a span on the ambient tracer; no-op when none installed."""
    t = _ACTIVE.get()
    if t is None:
        yield NULL_SPAN
    else:
        with t.span(name, **attrs) as s:
            yield s


def counters_from_stats(stats: Any) -> dict[str, float]:
    """The standard counter set lifted off a ``SimStats``-shaped object.

    Duck-typed (``obs`` stays import-free of the simulator): anything
    with the ``SimStats`` counter properties works.  These are the
    counters per-layer spans carry; summed over a trace's layer spans
    they equal the untraced network totals exactly, because
    ``SimStats.merge`` adds the same fields in the same order.  Only
    *primitive* counters are carried — derived quantities like total
    ``cycles`` are computed at render time from the components, because
    a per-layer derived sum would re-associate the float additions and
    drift from the merged total by an ulp.
    """
    return {
        "issue_cycles": stats.issue_cycles,
        "l2_stall_cycles": stats.l2_stall_cycles,
        "dram_stall_cycles": stats.dram_stall_cycles,
        "instrs": stats.total_instrs,
        "elems": sum(stats.elems.values()),
        "flops": stats.flops,
        "l1_accesses": stats.hierarchy.l1.accesses,
        "l1_misses": stats.hierarchy.l1.misses,
        "l2_accesses": stats.hierarchy.l2.accesses,
        "l2_misses": stats.hierarchy.l2.misses,
        "l2_writebacks": stats.hierarchy.l2.writebacks,
        "dram_bytes": stats.dram_bytes,
    }
