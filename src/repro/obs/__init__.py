"""Structured observability: spans, counters, events, run manifests.

The measurement substrate under every performance claim in this repo:

- :mod:`repro.obs.trace` — hierarchical :class:`Span` trees recorded by
  an ambient :class:`Tracer` (``with span("simulate_inference"): ...``),
  with per-span wall time and ``SimStats`` counters; spans serialize,
  so worker processes ship their subtrees back to the parent trace.
- :mod:`repro.obs.counters` — the process-global
  :class:`CounterRegistry` (:data:`COUNTERS`) hot paths bump; worker
  deltas travel back with results and merge exactly.
- :mod:`repro.obs.events` — structured events and sinks (JSONL flight
  recorder, in-memory, callback, tee); the sweep executor's progress,
  ETA and degradation warnings all flow through this layer.
- :mod:`repro.obs.manifest` — run manifests (command, config, backend,
  git revision, seed state) written next to every ``--trace``.
- :mod:`repro.obs.render` — text/JSON renderers for traces and
  counter snapshots (``repro profile``).

Everything here is observation-only: instrumented and uninstrumented
runs produce bit-identical statistics, and ``obs`` imports nothing from
the simulator (the simulator imports ``obs``, never the reverse).
"""

from repro.obs.counters import COUNTERS, CounterCapture, CounterRegistry
from repro.obs.events import (
    LEVEL_INFO,
    LEVEL_WARNING,
    CallbackSink,
    EventSink,
    JsonlSink,
    MemorySink,
    TeeSink,
    event,
    read_jsonl,
    warnings_in,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RUN_MANIFEST_NAME,
    git_rev,
    run_manifest,
    seed_state,
    write_manifest,
)
from repro.obs.render import (
    render_counters,
    render_trace_json,
    render_trace_text,
    span_cycles,
    trace_payload,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    counters_from_stats,
    current_tracer,
    span,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "tracing",
    "current_tracer",
    "counters_from_stats",
    "COUNTERS",
    "CounterRegistry",
    "CounterCapture",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "CallbackSink",
    "TeeSink",
    "event",
    "read_jsonl",
    "warnings_in",
    "LEVEL_INFO",
    "LEVEL_WARNING",
    "run_manifest",
    "write_manifest",
    "seed_state",
    "git_rev",
    "MANIFEST_SCHEMA",
    "RUN_MANIFEST_NAME",
    "render_trace_text",
    "render_trace_json",
    "render_counters",
    "span_cycles",
    "trace_payload",
]
