"""Structured observability: spans, counters, events, run manifests.

The measurement substrate under every performance claim in this repo:

- :mod:`repro.obs.trace` — hierarchical :class:`Span` trees recorded by
  an ambient :class:`Tracer` (``with span("simulate_inference"): ...``),
  with per-span wall time and ``SimStats`` counters; spans serialize,
  so worker processes ship their subtrees back to the parent trace.
- :mod:`repro.obs.counters` — the process-global
  :class:`CounterRegistry` (:data:`COUNTERS`) hot paths bump; worker
  deltas travel back with results and merge exactly.
- :mod:`repro.obs.metrics` — the typed service metrics registry
  (:data:`METRICS`): monotonic counters, gauges, and fixed-bucket
  latency histograms with exact-until-capped percentiles, rendered as
  Prometheus text exposition for ``GET /metrics`` and parsed back by
  ``repro loadtest``.
- :mod:`repro.obs.events` — structured events and sinks (JSONL flight
  recorder, in-memory, callback, tee); the sweep executor's progress,
  ETA and degradation warnings all flow through this layer.
- :mod:`repro.obs.manifest` — run manifests (command, config, backend,
  git revision, seed state) written next to every ``--trace``.
- :mod:`repro.obs.render` — text/JSON renderers for traces and
  counter snapshots (``repro profile``).
- :mod:`repro.obs.analytics` — trace loading, structural diff,
  critical path, hot-span ranking (``repro trace diff`` / ``top``).
- :mod:`repro.obs.attribution` — measured roofline classification of
  layer spans and reconciliation against the analytical model
  (``repro profile --roofline``).
- :mod:`repro.obs.baseline` — versioned ``BENCH_<rev>.json``
  performance baselines and the regression comparison
  (``repro bench record`` / ``compare``).
- :mod:`repro.obs.export` — Chrome trace-event and folded-stack
  exporters (``repro trace export``).

Everything here is observation-only: instrumented and uninstrumented
runs produce bit-identical statistics, and ``obs`` imports nothing from
the simulator (the simulator imports ``obs``, never the reverse).
"""

from repro.obs.analytics import (
    HotSpan,
    SpanDiff,
    TracePayload,
    critical_path,
    diff_payload,
    diff_traces,
    load_trace,
    render_critical_path,
    render_diff_text,
    render_top_text,
    top_spans,
)
from repro.obs.attribution import (
    MeasuredRooflinePoint,
    Reconciliation,
    attribute_trace,
    disagreements,
    reconcile,
    render_attribution,
)
from repro.obs.baseline import (
    BaselineStore,
    BenchComparison,
    BenchRecorder,
    Regression,
    baseline_payload,
    bench_key,
    compare_payloads,
    render_comparison,
)
from repro.obs.counters import COUNTERS, CounterCapture, CounterRegistry
from repro.obs.export import (
    EXPORT_FORMATS,
    chrome_trace,
    export_trace,
    folded_stacks,
)
from repro.obs.events import (
    LEVEL_INFO,
    LEVEL_WARNING,
    CallbackSink,
    EventSink,
    JsonlSink,
    MemorySink,
    ScopedSink,
    TeeSink,
    event,
    read_jsonl,
    warnings_in,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricSample,
    MetricsCapture,
    MetricsRegistry,
    parse_exposition,
    percentile_from_buckets,
    prometheus_name,
    read_percentiles,
    render_prometheus,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RUN_MANIFEST_NAME,
    git_rev,
    query_manifest,
    run_manifest,
    seed_state,
    write_manifest,
)
from repro.obs.render import (
    render_counters,
    render_trace_json,
    render_trace_text,
    span_cycles,
    trace_payload,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    counters_from_stats,
    current_tracer,
    span,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "span",
    "tracing",
    "current_tracer",
    "counters_from_stats",
    "COUNTERS",
    "CounterRegistry",
    "CounterCapture",
    "METRICS",
    "MetricsRegistry",
    "MetricsCapture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricSample",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "prometheus_name",
    "render_prometheus",
    "parse_exposition",
    "percentile_from_buckets",
    "read_percentiles",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "CallbackSink",
    "ScopedSink",
    "TeeSink",
    "event",
    "read_jsonl",
    "warnings_in",
    "LEVEL_INFO",
    "LEVEL_WARNING",
    "run_manifest",
    "query_manifest",
    "write_manifest",
    "seed_state",
    "git_rev",
    "MANIFEST_SCHEMA",
    "RUN_MANIFEST_NAME",
    "render_trace_text",
    "render_trace_json",
    "render_counters",
    "span_cycles",
    "trace_payload",
    "TracePayload",
    "SpanDiff",
    "HotSpan",
    "load_trace",
    "diff_traces",
    "diff_payload",
    "render_diff_text",
    "critical_path",
    "render_critical_path",
    "top_spans",
    "render_top_text",
    "MeasuredRooflinePoint",
    "Reconciliation",
    "attribute_trace",
    "reconcile",
    "disagreements",
    "render_attribution",
    "BaselineStore",
    "BenchRecorder",
    "BenchComparison",
    "Regression",
    "bench_key",
    "baseline_payload",
    "compare_payloads",
    "render_comparison",
    "EXPORT_FORMATS",
    "chrome_trace",
    "folded_stacks",
    "export_trace",
]
