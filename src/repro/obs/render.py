"""Human- and machine-readable views of traces and counters.

``repro profile`` prints :func:`render_trace_text` (an indented span
tree with wall time and the headline counters) or, with ``--json``,
:func:`trace_payload` — the span tree plus its manifest in one
document.  :func:`render_counters` tabulates a counter-registry
snapshot the same way for any command.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.obs.trace import Span

#: Schema version of the trace payload (the ``--json`` document and
#: the ``trace.json`` written into ``--trace`` directories).  Loaders
#: preserve unknown keys, so bumps are additive.
TRACE_PAYLOAD_SCHEMA = 1

#: Counters shown inline per span in the text rendering (the rest are
#: in the JSON form); chosen to match the paper's per-phase analysis —
#: where the cycles go and what memory traffic drove them.
_HEADLINE = ("instrs", "flops", "dram_bytes")

#: Spans carry only primitive cycle components (see
#: :func:`repro.obs.trace.counters_from_stats`); total cycles is
#: derived here for display.
_CYCLE_PARTS = ("issue_cycles", "l2_stall_cycles", "dram_stall_cycles")

#: The span attribute naming the clock the cycle counters ticked under
#: (set by the instrumented simulation entry points).
FREQ_ATTR = "freq_ghz"


def span_frequency(
    span: Span, ancestors: Sequence[Span] = ()
) -> float | None:
    """The clock (GHz) governing a span's cycle counters.

    Looked up on the span itself first, then outward along its root
    path — the instrumentation sets it once on the simulation root, so
    layer spans inherit it.  ``None`` when no span on the path declares
    a clock: cycle counters without a clock cannot be converted to time
    and should not be presented as if a default clock applied.
    """
    if FREQ_ATTR in span.attrs:
        return float(span.attrs[FREQ_ATTR])
    for anc in reversed(list(ancestors)):
        if FREQ_ATTR in anc.attrs:
            return float(anc.attrs[FREQ_ATTR])
    return None


def span_cycles(
    span: Span, ancestors: Sequence[Span] = ()
) -> float | None:
    """Total cycles of a span, derived from its components.

    ``None`` when the span carries no cycle counters — or when it does
    but no span on its root path declares a ``freq_ghz`` attribute
    (``ancestors``, outermost first).  A cycle count is only meaningful
    relative to a known clock; silently assuming the default clock
    would mislabel traces recorded on a retuned configuration, so such
    spans render as ``—`` instead.
    """
    if not any(p in span.counters for p in _CYCLE_PARTS):
        return None
    if span_frequency(span, ancestors) is None:
        return None
    return sum(span.counters.get(p, 0) for p in _CYCLE_PARTS)


def _fmt_count(v: float) -> str:
    """Compact engineering format for large counters."""
    if v != int(v):
        return f"{v:.3g}"
    v = int(v)
    if abs(v) >= 10_000_000:
        return f"{v / 1e6:.1f}M"
    if abs(v) >= 10_000:
        return f"{v / 1e3:.1f}k"
    return str(v)


def render_trace_text(
    span: Span, indent: int = 0, ancestors: Sequence[Span] = ()
) -> str:
    """Indented tree: one line per span with wall time and counters.

    A span with cycle counters but no clock anywhere on its root path
    renders ``cycles=—`` rather than a number derived from an assumed
    default frequency.
    """
    pad = "  " * indent
    parts = []
    cycles = span_cycles(span, ancestors)
    if cycles is not None:
        parts.append(f"cycles={_fmt_count(cycles)}")
    elif any(p in span.counters for p in _CYCLE_PARTS):
        parts.append("cycles=—")
    parts.extend(
        f"{k}={_fmt_count(span.counters[k])}"
        for k in _HEADLINE if k in span.counters
    )
    counters = "  ".join(parts)
    attrs = "".join(
        f" {k}={v}" for k, v in span.attrs.items() if k != "label"
    )
    label = span.attrs.get("label", span.name)
    line = f"{pad}{label}{attrs}  {span.wall_seconds * 1e3:.2f} ms"
    if counters:
        line += f"  [{counters}]"
    lines = [line]
    path = (*ancestors, span)
    lines.extend(
        render_trace_text(c, indent + 1, path) for c in span.children
    )
    return "\n".join(lines)


def trace_payload(span: Span, manifest: Mapping | None = None) -> dict:
    """The ``--json`` document: manifest (if any) plus the span tree.

    One self-identifying file: the embedded manifest uses the same
    schema as the ``manifest.json`` written into ``--trace``
    directories, so a single ``repro profile --json`` capture can be
    tied back to an exact setup without its directory.
    """
    payload: dict = {
        "schema": TRACE_PAYLOAD_SCHEMA,
        "trace": span.to_dict(),
    }
    if manifest is not None:
        payload["manifest"] = dict(manifest)
    return payload


def render_trace_json(span: Span, manifest: Mapping | None = None) -> str:
    return json.dumps(trace_payload(span, manifest), indent=2)


def render_counters(snapshot: Mapping[str, float], title: str = "") -> str:
    """Tabulate a counter-registry snapshot, widest column first."""
    rows = [title] if title else []
    if not snapshot:
        rows.append("(no counters recorded)")
        return "\n".join(rows)
    width = max(len(k) for k in snapshot)
    for k in sorted(snapshot):
        rows.append(f"{k:<{width}}  {_fmt_count(snapshot[k]):>12}")
    return "\n".join(rows)
