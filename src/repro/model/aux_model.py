"""Cost models for the non-convolutional layers (shortcut, maxpool).

Both are single-pass streaming operations; their cost matters only in
that the paper's 20-layer YOLOv3 prefix includes five shortcuts, and
omitting them entirely would overstate the convolution share.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa import OpClass
from repro.kernels.common import ceil_div
from repro.model.traffic import COLD, PhaseModel

if TYPE_CHECKING:  # avoid a runtime cycle with repro.nets
    from repro.nets.layers import MaxPoolSpec, ShortcutSpec


def shortcut_model(spec: "ShortcutSpec", vlen_elems: int) -> PhaseModel:
    """Residual add: stream two tensors in, one out, one vfadd per strip."""
    ph = PhaseModel(f"shortcut[{spec.name}]")
    n = spec.elems
    strips = ceil_div(n, vlen_elems)
    mean_vl = n / strips
    ph.add_instr(OpClass.VSETVL, strips, int(mean_vl))
    ph.add_instr(OpClass.VLOAD_UNIT, 2 * strips, int(mean_vl))
    ph.add_instr(OpClass.VFARITH, strips, int(mean_vl))
    ph.add_instr(OpClass.VSTORE_UNIT, strips, int(mean_vl))
    plane_lines = n * 4.0 / 64
    # Inputs were produced two layers ago (> any L1) and the skip input
    # an entire residual block ago; both stream for realistic sizes.
    ph.add_traffic("shortcut in", 2 * plane_lines, 3 * plane_lines * 64)
    ph.add_traffic("shortcut out", plane_lines, COLD, is_store=True,
                   region=n * 4.0)
    return ph


def maxpool_model(spec: "MaxPoolSpec", vlen_elems: int) -> PhaseModel:
    """Darknet maxpool: size*size strided reads per output, one store.

    Vectorized across the output row; each of the size^2 window taps is
    one strided load per output strip.
    """
    ph = PhaseModel(f"maxpool[{spec.name}]")
    taps = spec.size * spec.size
    out_row = spec.w_out
    strips = ceil_div(out_row, vlen_elems)
    mean_vl = out_row / strips
    rows = spec.c * spec.h_out
    ph.add_instr(OpClass.VSETVL, rows * strips, int(mean_vl))
    ph.add_instr(OpClass.VLOAD_STRIDED, rows * strips * taps, int(mean_vl))
    ph.add_instr(OpClass.VFARITH, rows * strips * (taps - 1), int(mean_vl))  # max
    ph.add_instr(OpClass.VSTORE_UNIT, rows * strips, int(mean_vl))
    in_lines = spec.c * spec.h * spec.w * 4.0 / 64
    out_lines = spec.out_elems * 4.0 / 64
    ph.add_traffic("maxpool in", in_lines, COLD)
    # Window taps re-touch the same input lines within the row burst.
    extra = rows * strips * taps * max(
        1.0, mean_vl * 4.0 * spec.stride / 64
    ) - in_lines
    if extra > 0:
        ph.add_traffic("maxpool re-touch", extra, out_row * 4.0 * 8)
    ph.add_traffic("maxpool out", out_lines, COLD, is_store=True,
                   region=spec.out_elems * 4.0)
    return ph
