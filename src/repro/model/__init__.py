"""Analytical instruction-stream and cache-traffic models.

Scales the validated kernels of :mod:`repro.kernels` to full network
layers: exact closed-form instruction counts (diffed against functional
traces in the test suite) plus stack-distance traffic classes evaluated
in O(1) per configuration (see :mod:`repro.model.traffic`).
"""

from repro.model.direct_model import direct1x1_model
from repro.model.gemm_model import gemm_model, im2col_model_for
from repro.model.layer_model import (
    NetworkResult,
    layer_phases,
    simulate_layer,
    simulate_network,
)
from repro.model.traffic import (
    COLD,
    PhaseModel,
    TrafficClass,
    evaluate_hierarchy,
    stats_from_model,
)
from repro.model.winograd_model import (
    filter_transform_model,
    input_transform_model,
    output_transform_model,
    tuple_mult_model,
    winograd_layer_model,
)

__all__ = [
    "PhaseModel",
    "TrafficClass",
    "COLD",
    "evaluate_hierarchy",
    "stats_from_model",
    "winograd_layer_model",
    "input_transform_model",
    "filter_transform_model",
    "tuple_mult_model",
    "output_transform_model",
    "gemm_model",
    "im2col_model_for",
    "direct1x1_model",
    "layer_phases",
    "simulate_layer",
    "simulate_network",
    "NetworkResult",
]
