"""Closed-form model of the direct 1x1 convolution kernel."""

from __future__ import annotations

from repro.isa import OpClass
from repro.kernels.direct import Direct1x1Geometry
from repro.model.traffic import COLD, PhaseModel


def direct1x1_model(geom: Direct1x1Geometry) -> PhaseModel:
    """Mirrors :func:`repro.kernels.direct.direct1x1_kernel` exactly.

    The pixel loop is outermost: per strip, one setvl, then per
    output-channel block mr accumulator inits, C loads, C*rows scalar
    weight loads + vfmaccs and mr stores.  The X strip is re-read per
    k-block at distance ~C * strip bytes (an L1 hit); X and Y otherwise
    stream cold.
    """
    ph = PhaseModel("direct1x1")
    s = geom.stride
    vlen = geom.vlen_elems

    # Strip census, matching the kernel's strips() generator.
    if s == 1:
        n = geom.h * geom.w
        full, tail = divmod(n, vlen)
        strip_widths = [(vlen, full)] + ([(tail, 1)] if tail else [])
        load_class = OpClass.VLOAD_UNIT
    else:
        full, tail = divmod(geom.w_out, vlen)
        strip_widths = [(vlen, full * geom.h_out)]
        if tail:
            strip_widths.append((tail, geom.h_out))
        strip_widths = [(w_, c_) for (w_, c_) in strip_widths if c_]
        load_class = OpClass.VLOAD_STRIDED

    rows_per_block = [
        min(geom.mr, geom.c_out - kb * geom.mr) for kb in range(geom.k_blocks)
    ]
    total_rows = sum(rows_per_block)

    for width, count in strip_widths:
        ph.add_instr(OpClass.VSETVL, count, width)
        ph.add_instr(OpClass.VMOVE, total_rows * count, width)
        ph.add_instr(load_class, geom.k_blocks * geom.c_in * count, width)
        ph.add_instr(OpClass.SCALAR, geom.c_in * total_rows * count, 1)
        ph.add_instr(OpClass.VFMA, geom.c_in * total_rows * count, width)
        ph.add_instr(OpClass.VSTORE_UNIT, total_rows * count, width)

        # Traffic per strip instance.
        if s == 1:
            x_lines = max(1.0, width * 4 / 64.0)
        else:
            x_lines = max(1.0, width * 4 * min(s, 16) / 64.0)
        y_lines = max(1.0, width * 4 / 64.0)
        d_kb = geom.c_in * (x_lines * 64.0)  # one k-block's X re-read
        ph.add_traffic("X cold", geom.c_in * x_lines * count, COLD)
        ph.add_traffic(
            "X kb reuse",
            (geom.k_blocks - 1) * geom.c_in * x_lines * count,
            d_kb,
        )
        ph.add_traffic(
            "Y cold st", total_rows * y_lines * count, COLD, is_store=True,
            region=geom.y_size * 4.0,
        )
    return ph
