"""Per-layer and per-network simulation via the analytical models.

This is the experiment driver equivalent of running a layer (or a whole
network inference) through gem5: it picks the algorithm per layer (the
paper's hybrid policy), builds the phase models, and evaluates them on
a :class:`~repro.sim.SystemConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conv.layer import ConvAlgorithm, ConvLayerSpec, choose_algorithm
from repro.errors import ConfigError
from repro.kernels.common import GemmGeometry, Im2colGeometry, WinogradGeometry
from repro.kernels.direct import Direct1x1Geometry
from repro.model.direct_model import direct1x1_model
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.gemm_model import gemm_model, im2col_model_for
from repro.model.traffic import PhaseModel, stats_from_model
from repro.model.winograd_model import winograd_layer_model
from repro.obs import counters_from_stats, span
from repro.sim.stats import SimStats
from repro.sim.system import SystemConfig


def layer_phases(
    spec: ConvLayerSpec,
    config: SystemConfig,
    algorithm: ConvAlgorithm | None = None,
    variant: str = SLIDEUP,
) -> list[PhaseModel]:
    """Phase models for one convolutional layer on one configuration."""
    algo = algorithm if algorithm is not None else choose_algorithm(spec)
    lanes = config.lanes
    if algo is ConvAlgorithm.WINOGRAD:
        geom = WinogradGeometry(
            c_in=spec.c_in, h=spec.h_in, w=spec.w_in, c_out=spec.c_out,
            pad=spec.pad, vlen_elems=lanes,
        )
        return winograd_layer_model(geom, variant=variant)
    if algo is ConvAlgorithm.IM2COL_GEMM:
        ig = Im2colGeometry(
            c_in=spec.c_in, h=spec.h_in, w=spec.w_in,
            ksize=spec.ksize, stride=spec.stride, pad=spec.pad,
        )
        gg = GemmGeometry(
            m=spec.c_out, kd=ig.rows, n=ig.cols, vlen_elems=lanes,
        )
        cols_bytes = ig.cols_size * 4.0
        return [
            im2col_model_for(ig, lanes),
            gemm_model(gg, cols_distance=cols_bytes),
        ]
    if algo is ConvAlgorithm.DIRECT:
        if spec.ksize != 1:
            raise ConfigError(
                f"the direct kernel handles 1x1 layers only, got "
                f"{spec.ksize}x{spec.ksize} in {spec.name}"
            )
        dg = Direct1x1Geometry(
            c_in=spec.c_in, h=spec.h_in, w=spec.w_in, c_out=spec.c_out,
            stride=spec.stride, vlen_elems=lanes,
        )
        return [direct1x1_model(dg)]
    raise ConfigError(f"no analytical model for algorithm {algo}")


def simulate_layer(
    spec: ConvLayerSpec,
    config: SystemConfig,
    algorithm: ConvAlgorithm | None = None,
    variant: str = SLIDEUP,
) -> SimStats:
    """Simulate one layer; label records layer name and algorithm."""
    algo = algorithm if algorithm is not None else choose_algorithm(spec)
    label = f"{spec.name}[{algo.value}]"
    with span("layer", label=label,
              freq_ghz=config.freq_ghz) as layer_span:
        phases = layer_phases(spec, config, algo, variant)
        stats = stats_from_model(phases, config, label=label)
        layer_span.add_counters(**counters_from_stats(stats))
    return stats


@dataclass(frozen=True)
class NetworkResult:
    """Per-layer and total statistics of one network inference."""

    name: str
    per_layer: tuple[SimStats, ...]
    total: SimStats

    @property
    def seconds(self) -> float:
        return self.total.seconds

    @property
    def cycles(self) -> float:
        return self.total.cycles

    def to_dict(self) -> dict:
        """JSON-serializable form (sweep checkpoints, tooling)."""
        return {
            "name": self.name,
            "per_layer": [s.to_dict() for s in self.per_layer],
            "total": self.total.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "NetworkResult":
        """Inverse of :meth:`to_dict` (sweep checkpoint resume)."""
        return cls(
            name=str(d["name"]),
            per_layer=tuple(
                SimStats.from_dict(s) for s in d.get("per_layer", [])
            ),
            total=SimStats.from_dict(d["total"]),
        )


def simulate_network(
    name: str,
    specs: list[ConvLayerSpec],
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> NetworkResult:
    """Simulate a sequence of convolutional layers.

    Args:
        hybrid: when True, the paper's hybrid policy picks Winograd for
            eligible layers; when False, every layer runs im2col+GEMM
            (the paper's baseline).
    """
    per_layer: list[SimStats] = []
    total = SimStats(freq_ghz=config.freq_ghz, label=f"{name} total")
    with span("simulate_network", network=name,
              vlen_bits=config.vlen_bits, l2_mb=config.l2_mb,
              freq_ghz=config.freq_ghz) as net_span:
        for spec in specs:
            algo = choose_algorithm(spec, hybrid=hybrid)
            stats = simulate_layer(spec, config, algorithm=algo,
                                   variant=variant)
            per_layer.append(stats)
            total.merge(stats)
        net_span.add_counters(**counters_from_stats(total))
    return NetworkResult(name=name, per_layer=tuple(per_layer), total=total)
