"""Closed-form cache-traffic modeling for full network layers.

A full convolutional layer executes on the order of 1e8-1e9 dynamic
vector instructions — far beyond what even a sampled line-by-line cache
simulation can enumerate per sweep point.  The analytical models in
this package therefore describe each kernel phase as

- **exact instruction counts** per opcode class (closed forms mirroring
  the kernel loop structure, validated instruction-for-instruction
  against functional traces in the test suite), and
- a set of :class:`TrafficClass` records: groups of cache-line touches
  that share a *reuse distance* — the number of distinct bytes touched
  between consecutive uses of a line, derived from the kernel's loop
  volumes.

The classical stack-distance criterion (Mattson et al.; the same one
:mod:`repro.sim.stackdist` measures empirically) then decides, for any
cache capacity, which classes hit: an access whose reuse distance
exceeds the capacity misses.  This is what turns the paper's co-design
sweep (vector length x L2 size) into an O(1) evaluation per point while
preserving the effects that drive its findings — filter-panel reuse
outgrowing the L2 as VLEN grows (Table 1), transformed-tensor streaming
(Table 2), and the V-plane/filter-slab reuse that saturates at 64 MB
for VGG16 and 256 MB for YOLOv3 (Figures 3/4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.isa import FLOPS_PER_ELEM, OpClass
from repro.sim.cache import CacheStats, HierarchyStats
from repro.sim.stats import SimStats
from repro.sim.system import SystemConfig

#: Cache line size used throughout the models.
LINE = 64

#: Reuse distance markers.
COLD = math.inf  # compulsory miss: never hits


@dataclass(frozen=True)
class TrafficClass:
    """A group of cache-line touches sharing one reuse distance.

    Attributes:
        name: array/role label for reports (e.g. "V plane re-read").
        accesses: line touches in the group (one vector memory
            instruction touches each line at most once).
        distance: reuse distance in bytes at the moment of the touch;
            ``COLD`` for first touches.
        is_store: whether the touches are writes (writeback modeling).
        region: total size in bytes of the array region the class
            belongs to.  A dirty line is written back only if its
            region does not stay resident in the L2 (streaming stores);
            the default (infinite) means "always written back on miss".
        dilution: set-conflict factor for power-of-two strided access
            patterns: a stride of ``s`` lines concentrates the class
            into ``1/s`` of a set-indexed cache's sets, shrinking the
            effective capacity by ``s`` (validated against the exact
            set-associative simulator in the test suite).
    """

    name: str
    accesses: float
    distance: float
    is_store: bool = False
    region: float = math.inf
    dilution: float = 1.0

    def __post_init__(self) -> None:
        if self.accesses < 0:
            raise ConfigError(f"negative accesses in traffic class {self.name}")
        if self.distance < 0:
            raise ConfigError(f"negative distance in traffic class {self.name}")


@dataclass
class PhaseModel:
    """One kernel phase: exact instruction counts plus traffic classes."""

    name: str
    instrs: dict[OpClass, int] = field(default_factory=dict)
    elems: dict[OpClass, int] = field(default_factory=dict)
    traffic: list[TrafficClass] = field(default_factory=list)

    def add_instr(self, opclass: OpClass, count: int, elems_per: int) -> None:
        if count < 0 or elems_per < 0:
            raise ConfigError(f"negative instruction count in phase {self.name}")
        self.instrs[opclass] = self.instrs.get(opclass, 0) + count
        self.elems[opclass] = self.elems.get(opclass, 0) + count * elems_per

    def add_traffic(
        self,
        name: str,
        accesses: float,
        distance: float,
        is_store: bool = False,
        region: float = math.inf,
        dilution: float = 1.0,
    ) -> None:
        if accesses > 0:
            self.traffic.append(
                TrafficClass(name, accesses, distance, is_store, region, dilution)
            )

    @property
    def flops(self) -> int:
        return sum(
            FLOPS_PER_ELEM.get(c, 0) * e for c, e in self.elems.items()
        )

    @property
    def total_line_accesses(self) -> float:
        return sum(t.accesses for t in self.traffic)


#: Effective-capacity derating for the stack-distance criterion.
#: A fully-associative LRU stack distance understates misses in a real
#: set-associative cache where several tensors co-reside and conflict;
#: the classical correction is to compare distances against a fraction
#: of the nominal capacity.  Calibrated against the exact
#: set-associative simulator on the validation layers (test suite).
CAPACITY_FACTOR = 1.0

#: Sharpness of the smooth hit/miss transition.  A hard threshold at
#: the effective capacity makes parameter sweeps jump discontinuously
#: when one traffic class crosses it; a real set-associative LRU cache
#: transitions gradually (lines start conflicting before the working
#: set reaches the nominal capacity).  The hit probability used is
#: ``1 / (1 + (distance / capacity)^SHARPNESS)``.
SHARPNESS = 3.0


def _hit_probability(distance: float, capacity: float, sharpness: float) -> float:
    """Smooth stack-distance hit criterion (1 at d<<C, 0 at d>>C)."""
    if distance == 0.0:
        return 1.0
    if math.isinf(distance):
        return 0.0
    ratio = distance / capacity
    return 1.0 / (1.0 + ratio**sharpness)


def evaluate_hierarchy(
    phases: list[PhaseModel],
    l1_bytes: int,
    l2_bytes: int,
    line_bytes: int = LINE,
    capacity_factor: float = CAPACITY_FACTOR,
    sharpness: float = SHARPNESS,
) -> HierarchyStats:
    """Apply the (smoothed) stack-distance criterion to all traffic.

    An access hits L1 with the probability its reuse distance fits the
    L1's effective capacity, hits L2 likewise, and misses to DRAM
    otherwise (cold accesses always miss).  Writebacks are modeled as
    one per distinct dirty line that leaves the L2, i.e. the miss
    portion of store traffic whose region does not stay resident.
    """
    l1_eff = l1_bytes * capacity_factor
    l2_eff = l2_bytes * capacity_factor
    l1 = CacheStats()
    l2 = CacheStats()
    wb = 0.0
    l1_acc = l1_miss = l2_acc = l2_miss = 0.0
    for ph in phases:
        for t in ph.traffic:
            eff = t.distance * t.dilution
            p1 = _hit_probability(eff, l1_eff, sharpness)
            p2 = _hit_probability(eff, l2_eff, sharpness)
            l1_acc += t.accesses
            to_l2 = t.accesses * (1.0 - p1)
            l1_miss += to_l2
            l2_acc += to_l2
            missed = to_l2 * (1.0 - p2)
            l2_miss += missed
            if t.is_store and t.region > l2_eff:
                wb += missed
    l1.accesses = int(round(l1_acc))
    l1.misses = int(round(l1_miss))
    l2.accesses = int(round(l2_acc))
    l2.misses = int(round(l2_miss))
    l2.writebacks = int(round(wb))
    return HierarchyStats(l1=l1, l2=l2, line_bytes=line_bytes)


def _ordered_sum(values: np.ndarray) -> float:
    """Sum in array order with sequential accumulation.

    ``np.cumsum`` accumulates left-to-right, matching a reference
    ``+=`` loop bit-for-bit; ``np.sum`` pairwise-sums and may round
    differently.  Bit-identity to :func:`evaluate_hierarchy` depends on
    this.
    """
    return float(values.cumsum()[-1]) if values.size else 0.0


@dataclass(frozen=True)
class CondensedTraffic:
    """Array form of a phase list's traffic, replaying
    :func:`evaluate_hierarchy` bit-identically.

    One row per traffic class, in the exact order the reference loop
    visits them (phase order, then class order within the phase).  Two
    properties make the vectorized :meth:`evaluate` produce the same
    bits as the scalar reference:

    - The hit-probability power is the one operation whose NumPy SIMD
      code path does *not* round like scalar ``**``; effective
      distances are therefore deduplicated (network layers share a few
      hundred distinct reuse distances across hundreds of thousands of
      classes) and :func:`_hit_probability` runs as scalar math once
      per unique distance, gathered back through the inverse index.
    - Accumulations run through :func:`_ordered_sum`, which preserves
      the reference loop's left-to-right addition order.

    Elementwise ``+ - * /`` are single IEEE-754 operations and match
    their scalar counterparts exactly.
    """

    accesses: np.ndarray
    eff_unique: np.ndarray
    eff_index: np.ndarray
    store_mask: np.ndarray
    region: np.ndarray

    @classmethod
    def from_phases(cls, phases: list[PhaseModel]) -> "CondensedTraffic":
        classes = [t for ph in phases for t in ph.traffic]
        n = len(classes)
        accesses = np.empty(n, dtype=np.float64)
        eff = np.empty(n, dtype=np.float64)
        store_mask = np.zeros(n, dtype=bool)
        region = np.empty(n, dtype=np.float64)
        for i, t in enumerate(classes):
            accesses[i] = t.accesses
            eff[i] = t.distance * t.dilution
            store_mask[i] = t.is_store
            region[i] = t.region
        eff_unique, eff_index = np.unique(eff, return_inverse=True)
        for arr in (accesses, eff_unique, eff_index, store_mask, region):
            arr.setflags(write=False)
        return cls(
            accesses=accesses, eff_unique=eff_unique, eff_index=eff_index,
            store_mask=store_mask, region=region,
        )

    @property
    def n_classes(self) -> int:
        return int(self.accesses.size)

    def evaluate(
        self,
        l1_bytes: int,
        l2_bytes: int,
        line_bytes: int = LINE,
        capacity_factor: float = CAPACITY_FACTOR,
        sharpness: float = SHARPNESS,
    ) -> HierarchyStats:
        """:func:`evaluate_hierarchy` on the condensed classes —
        bit-identical output, O(unique distances) scalar work."""
        l1_eff = l1_bytes * capacity_factor
        l2_eff = l2_bytes * capacity_factor
        uniq = self.eff_unique.tolist()
        p1 = np.array(
            [_hit_probability(d, l1_eff, sharpness) for d in uniq],
            dtype=np.float64,
        )[self.eff_index]
        p2 = np.array(
            [_hit_probability(d, l2_eff, sharpness) for d in uniq],
            dtype=np.float64,
        )[self.eff_index]
        to_l2 = self.accesses * (1.0 - p1)
        missed = to_l2 * (1.0 - p2)
        # The reference accumulates l1_miss and l2_acc from the same
        # addends in the same order, so one sum serves both.
        l1_miss = _ordered_sum(to_l2)
        l1 = CacheStats()
        l2 = CacheStats()
        l1.accesses = int(round(_ordered_sum(self.accesses)))
        l1.misses = int(round(l1_miss))
        l2.accesses = int(round(l1_miss))
        l2.misses = int(round(_ordered_sum(missed)))
        l2.writebacks = int(round(
            _ordered_sum(missed[self.store_mask & (self.region > l2_eff)])
        ))
        return HierarchyStats(l1=l1, l2=l2, line_bytes=line_bytes)


def stats_from_model(
    phases: list[PhaseModel],
    config: SystemConfig,
    label: str = "",
) -> SimStats:
    """Assemble :class:`SimStats` from phase models and a configuration.

    Uses the same latency and stall models as the trace-driven
    simulator, so model-based and trace-based results are directly
    comparable (the validation tests rely on this).
    """
    lat = config.latency_model()
    mem = config.memory_timings()
    hstats = evaluate_hierarchy(
        phases,
        config.l1_kb * 1024,
        config.l2_mb * 1024 * 1024,
        config.line_bytes,
    )
    instr_counts: dict[OpClass, int] = {}
    elem_counts: dict[OpClass, int] = {}
    flops = 0
    for ph in phases:
        for c, n in ph.instrs.items():
            instr_counts[c] = instr_counts.get(c, 0) + n
        for c, n in ph.elems.items():
            elem_counts[c] = elem_counts.get(c, 0) + n
        flops += ph.flops
    issue = 0.0
    for c, n in instr_counts.items():
        issue += lat.batch_issue_cycles(c, n, elem_counts.get(c, 0))
    l2_stall, dram_stall = mem.stall_cycles(
        hstats.l1.misses, hstats.l2.misses, hstats.l2.writebacks
    )
    return SimStats(
        freq_ghz=config.freq_ghz,
        issue_cycles=issue,
        l2_stall_cycles=l2_stall,
        dram_stall_cycles=dram_stall,
        instrs={c.value: n for c, n in instr_counts.items()},
        elems={c.value: n for c, n in elem_counts.items()},
        flops=flops,
        hierarchy=hstats,
        label=label or config.describe(),
    )


def lines_of(nbytes: float, line_bytes: int = LINE) -> float:
    """Expected distinct cache lines covering ``nbytes`` of data."""
    return nbytes / line_bytes


def lines_per_access(elems: int, stride_bytes: int, line_bytes: int = LINE) -> float:
    """Expected lines touched by one vector access of ``elems`` elements.

    Unit-stride accesses touch ``ceil`` of their span; accesses whose
    element stride reaches a full line touch one line per element.
    """
    if elems <= 0:
        return 0.0
    if stride_bytes >= line_bytes:
        return float(elems)
    span = (elems - 1) * stride_bytes + 4
    return max(1.0, span / line_bytes)
