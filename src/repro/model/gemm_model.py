"""Closed-form instruction/traffic models of the im2col+GEMM path."""

from __future__ import annotations

from repro.isa import OpClass
from repro.kernels.common import GemmGeometry, Im2colGeometry
from repro.model.traffic import COLD, PhaseModel, lines_per_access


def gemm_model(geom: GemmGeometry, cols_distance: float | None = None) -> PhaseModel:
    """The blocked VLA GEMM kernel (mirrors :func:`repro.kernels.gemm`).

    Args:
        geom: GEMM dimensions and vector length.
        cols_distance: reuse distance of the B matrix's first read —
            when GEMM consumes a column matrix the im2col kernel just
            wrote, the distance is the column-matrix volume; ``None``
            means B arrives cold (standalone GEMM).

    The central cache effect: the B panel of one N-panel pass is
    ``Kd * vl * 4`` bytes and is re-streamed for every M block — the
    reuse distance that grows linearly with the vector length and
    drives the paper's Table 1 (YOLOv3 L2 miss rate rising with VLEN)
    and its L2-size scaling.
    """
    ph = PhaseModel("gemm")
    for pn in range(geom.n_panels):
        j0 = pn * geom.vlen_elems
        vl = min(geom.vlen_elems, geom.n - j0)
        b_lines = lines_per_access(vl, 4)
        # Instruction counts for the whole M loop of this panel, batched:
        # the blocks tile M exactly (sum of rows over blocks == m), so
        # the per-block counts collapse to closed forms with identical
        # totals.
        ph.add_instr(OpClass.VSETVL, geom.m_blocks, vl)
        ph.add_instr(OpClass.VMOVE, geom.m, vl)  # accumulator init
        ph.add_instr(OpClass.VLOAD_UNIT, geom.kd * geom.m_blocks, vl)  # B
        ph.add_instr(OpClass.SCALAR, geom.kd * geom.m, 1)  # A loads
        ph.add_instr(OpClass.VFMA, geom.kd * geom.m, vl)
        ph.add_instr(OpClass.VSTORE_UNIT, geom.m, vl)  # C rows
        for mb in range(geom.m_blocks):
            rows = min(geom.mr, geom.m - mb * geom.mr)
            # Traffic volumes.
            d_mb = geom.kd * (vl * 4 + rows * 4.0 / 16) + rows * vl * 4
            b_acc = geom.kd * b_lines
            if mb == 0:
                dist = cols_distance if cols_distance is not None else COLD
                ph.add_traffic("B first read", b_acc, dist)
            else:
                ph.add_traffic("B panel reuse", b_acc, d_mb)
            # A scalar loads are issued as SCALAR instructions and the
            # weight block stays cache-resident between uses (it is tiny
            # next to the column matrix), so — exactly like the
            # functional kernel, which accounts them as scalar ops — no
            # vector-memory traffic is attributed to A.
            ph.add_traffic(
                "C cold st", rows * b_lines, COLD, is_store=True
            )
    return ph


def im2col_model_for(geom: Im2colGeometry, vlen_elems: int) -> PhaseModel:
    """The VLA im2col kernel at a given vector length."""
    ph = PhaseModel("im2col")
    s = geom.stride
    w_out = geom.w_out
    strips_full, tail = divmod(w_out, vlen_elems)
    strips = strips_full + (1 if tail else 0)
    rows = geom.rows
    n_oy = geom.h_out
    per_row = n_oy * strips
    ph.add_instr(OpClass.VSETVL, rows * per_row, min(vlen_elems, w_out))
    load_class = OpClass.VLOAD_UNIT if s == 1 else OpClass.VLOAD_STRIDED
    # Element accounting: strips move w_out elements per output row.
    full_loads = rows * n_oy * strips_full
    tail_loads = rows * n_oy * (1 if tail else 0)
    if full_loads:
        ph.add_instr(load_class, full_loads, vlen_elems)
        ph.add_instr(OpClass.VSTORE_UNIT, full_loads, vlen_elems)
    if tail_loads:
        ph.add_instr(load_class, tail_loads, tail)
        ph.add_instr(OpClass.VSTORE_UNIT, tail_loads, tail)

    # Traffic.  One (c, ki, kj) pass reads a shifted copy of the input
    # plane (h_out rows of w_out elements at stride s) and writes one
    # cols row: pass volume D_pass.  The plane's lines are cold at
    # (ki, kj) = (0, 0) and re-read at D_pass (kj steps) or ~3 D_pass
    # (ki steps) after.  Strip accesses land at arbitrary 4-byte
    # alignments (the kj/oy offsets), so a strip of span b bytes
    # touches (b + 56)/64 lines in expectation.
    def _strip_lines(elems: int, elem_stride: int) -> float:
        if elem_stride >= 64:
            return float(elems)
        span = (elems - 1) * elem_stride + 4
        return (span + 56) / 64.0

    strip_widths = [vlen_elems] * strips_full + ([tail] if tail else [])
    # Touched lines per output row (per-strip, with alignment) vs the
    # distinct lines of the row treated as one contiguous region —
    # adjacent strips share their boundary lines, and those re-touches
    # hit at a tiny distance.
    x_touch_per_oy = sum(_strip_lines(wd, 4 * s) for wd in strip_widths)
    x_row_lines = _strip_lines(w_out, 4 * s)
    cols_touch_per_oy = sum(_strip_lines(wd, 4) for wd in strip_widths)
    cols_row_lines = _strip_lines(w_out, 4)
    d_pass = (x_row_lines + cols_row_lines) * 64.0 * n_oy
    k2 = geom.ksize * geom.ksize
    c_in = geom.c_in
    # X: cold on the (ki, kj) = (0, 0) pass; every later pass re-reads
    # the plane it shifted over one pass ago, at distance D_pass.
    ph.add_traffic("X cold", c_in * x_row_lines * n_oy, COLD)
    ph.add_traffic(
        "X pass reuse",
        c_in * (k2 - 1) * x_row_lines * n_oy,
        d_pass,
    )
    ph.add_traffic(
        "X strip re-touch",
        c_in * k2 * (x_touch_per_oy - x_row_lines) * n_oy,
        (x_row_lines + cols_row_lines) * 64.0,
    )
    # Each cols row is one contiguous region (consecutive oy segments
    # share their boundary lines), so the distinct line count is exactly
    # the region size; every other touch is a near-distance re-touch.
    cols_region = geom.cols_size * 4.0
    cols_cold = cols_region / 64.0
    cols_touched = rows * cols_touch_per_oy * n_oy
    ph.add_traffic("cols cold st", cols_cold, COLD, is_store=True,
                   region=cols_region)
    ph.add_traffic(
        "cols re-touch st",
        max(cols_touched - cols_cold, 0.0),
        (x_row_lines + cols_row_lines) * 64.0,
        is_store=True,
        region=cols_region,
    )
    return ph
