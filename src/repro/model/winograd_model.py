"""Closed-form instruction/traffic model of the Winograd pipeline.

Each function mirrors the loop structure of the corresponding kernel in
:mod:`repro.kernels` *exactly* for instruction accounting (the test
suite diffs these counts against functional traces), and derives cache
traffic classes from the kernel's loop volumes as described in
:mod:`repro.model.traffic`.

Reuse-distance derivations (per phase) are documented inline; the key
volumes:

- ``D_it``   — working set of one input-transform tile iteration;
- ``D_c``    — tuple-mult per-channel inner volume;
- ``D_tb``   — tuple-mult per-tile-block volume (filter-panel reuse);
- ``D_kp``   — tuple-mult per-k-panel volume (V-plane reuse: this is
  the distance whose capture by a multi-MB L2 produces the paper's
  Figure 3/4 cache scaling);
- ``D_ot``   — output-transform tile working set.
"""

from __future__ import annotations

import numpy as np

from repro.isa import OpClass
from repro.kernels.common import (
    QUAD,
    TILES_PER_BLOCK,
    WinogradGeometry,
    transform_op_class_counts,
)
from repro.kernels.tuple_mult import (
    INDEXED,
    NATIVE,
    SLIDEUP,
    SLIDEUP_LOG,
    slide_amounts,
)
from repro.model.traffic import COLD, PhaseModel, lines_per_access
from repro.winograd.cook_toom import WinogradTransforms, f6x3_transforms

_OPCLASS_OF = {
    "vmove": OpClass.VMOVE,
    "vfarith": OpClass.VFARITH,
    "vfma": OpClass.VFMA,
}


def _add_transform_apps(
    ph: PhaseModel, mat_counts: dict[str, int], apps: int, elems: int
) -> None:
    """Account ``apps`` applications of a 1D transform at ``elems`` lanes."""
    for kind, n in mat_counts.items():
        if n:
            ph.add_instr(_OPCLASS_OF[kind], n * apps, elems)


def _totals(geom: WinogradGeometry) -> dict[str, float]:
    """Whole-tensor byte sizes (reuse distances of cross-phase touches)."""
    return {
        "x": geom.x_size * 4.0,
        "v": geom.v_size * 4.0,
        "u": geom.u_size * 4.0,
        "m": geom.m_size * 4.0,
        "y": geom.y_size * 4.0,
    }


# ----------------------------------------------------------------------
# Phase 1: filter transform
# ----------------------------------------------------------------------
def filter_transform_model(
    geom: WinogradGeometry, tf: WinogradTransforms | None = None
) -> PhaseModel:
    tf = tf if tf is not None else f6x3_transforms()
    g_counts = transform_op_class_counts(tf.G(np.float32))
    ph = PhaseModel("filter_transform")
    nk_full = geom.k_panel_lanes // QUAD
    for kp in range(geom.k_panels):
        k0 = kp * (geom.vlen_elems // QUAD)
        nk = min(nk_full, geom.c_out - k0)
        per = geom.c_in  # iterations of the c loop
        ph.add_instr(OpClass.VSETVL, per, nk)
        ph.add_instr(OpClass.VLOAD_STRIDED, 9 * per, nk)
        _add_transform_apps(ph, g_counts, 11 * per, nk)  # 3 col + 8 row
        ph.add_instr(OpClass.VSTORE_UNIT, 24 * per, nk)  # col-pass scratch
        ph.add_instr(OpClass.VLOAD_UNIT, 24 * per, nk)  # row-pass scratch
        ph.add_instr(OpClass.VSTORE_UNIT, 64 * per, nk)  # compact U stores

        # Traffic.  One (kp, c) iteration touches: 9 strided weight loads
        # (36 B per output channel -> ~1 line per channel, re-touched 9x),
        # a 24-vector scratch, and 64 unit stores into the compact U.
        w_lines = nk * 1.0
        scr_lines = 24 * lines_per_access(nk, 4)
        u_st_lines = 64 * lines_per_access(nk, 4)
        d_iter = (w_lines + 2 * scr_lines + u_st_lines) * 64
        ph.add_traffic("W cold", w_lines * 1.0 * per, COLD)
        ph.add_traffic("W re-touch", (9 * nk - w_lines) * per, d_iter)
        ph.add_traffic("FT scratch st", scr_lines * per, d_iter, is_store=True,
                       region=64.0 * geom.vlen_elems * 4)
        ph.add_traffic("FT scratch ld", scr_lines * per, d_iter)
        u_region = geom.u_size * 4.0
        # Each store writes nk*4 bytes; stores of neighbouring tuple
        # positions share lines, so the distinct (cold) portion is the
        # payload volume and the rest re-touches within the iteration.
        u_cold = 64 * nk * 4.0 / 64.0
        ph.add_traffic("U cold st", u_cold * per, COLD, is_store=True,
                       region=u_region)
        ph.add_traffic("U st re-touch", max(u_st_lines - u_cold, 0.0) * per,
                       d_iter, is_store=True, region=u_region)
    return ph


# ----------------------------------------------------------------------
# Phase 2: input transform
# ----------------------------------------------------------------------
def input_transform_model(
    geom: WinogradGeometry, tf: WinogradTransforms | None = None
) -> PhaseModel:
    tf = tf if tf is not None else f6x3_transforms()
    bt_counts = transform_op_class_counts(tf.BT(np.float32))
    ph = PhaseModel("input_transform")
    t_count = geom.num_tiles
    for cb in range(geom.channel_blocks):
        c0 = cb * geom.vlen_elems
        nc = min(geom.vlen_elems, geom.c_in - c0)
        ph.add_instr(OpClass.VSETVL, t_count, nc)
        ph.add_instr(OpClass.VLOAD_STRIDED, 64 * t_count, nc)  # X loads
        _add_transform_apps(ph, bt_counts, 16 * t_count, nc)  # 8 col + 8 row
        ph.add_instr(OpClass.VSTORE_UNIT, 64 * t_count, nc)  # scratch
        ph.add_instr(OpClass.VLOAD_UNIT, 64 * t_count, nc)  # scratch
        ph.add_instr(OpClass.VSTORE_STRIDED, 64 * t_count, nc)  # V stores

        # Traffic.  Per (tile, channel): 8 rows x 32 B ~= 8 line-touches
        # of distinct X lines (the 64 strided loads re-touch each ~8x
        # within the tile burst); the 6-element horizontal tile advance
        # makes ~3 lines/channel new, ~3 shared with the previous tile
        # and ~2 rows shared with the previous tile row.  The dominant
        # per-iteration working set is the V store side: the 64 p-plane
        # stores touch 64*nc distinct lines per tile (each line is
        # finished over 16 consecutive tiles), so one tile iteration
        # touches ~(8 + 8 + 64)*nc lines — which overflows a 64 kB L1
        # once nc grows past ~13 channels: the long-VL L1 thrashing the
        # co-design study observes.
        totals = _totals(geom)
        d_intra = (8 + 8) * nc * 64.0  # X burst + scratch
        d_iter = (8 + 8 + 64) * nc * 64.0  # one full tile iteration
        x_acc = 64.0 * nc * t_count
        x_new = 3.0 * nc * t_count
        x_horiz = 3.0 * nc * t_count
        x_vert = 2.0 * nc * t_count
        ph.add_traffic("X cold", x_new, COLD)
        ph.add_traffic("X horiz reuse", x_horiz, d_iter)
        ph.add_traffic("X vert reuse", x_vert, geom.grid.tiles_w * d_iter)
        ph.add_traffic("X intra re-touch", x_acc - x_new - x_horiz - x_vert, d_intra)
        scr = 64 * lines_per_access(nc, 4) * t_count  # = 4 nc per tile
        scr_region = 64.0 * geom.vlen_elems * 4
        ph.add_traffic("IT scratch st", scr, d_intra, is_store=True, region=scr_region)
        ph.add_traffic("IT scratch ld", scr, d_intra)
        # V: 64 strided stores x nc lines; each 64-B line holds 16
        # consecutive tile slots -> 1/16 of touches open a new line,
        # the rest re-touch at the full iteration distance.
        v_acc = 64.0 * nc * t_count
        ph.add_traffic("V cold st", v_acc / 16, COLD, is_store=True,
                       region=totals["v"])
        ph.add_traffic("V re-touch st", 15 * v_acc / 16, d_iter, is_store=True,
                       region=totals["v"])
    return ph


# ----------------------------------------------------------------------
# Phase 3: tuple multiplication
# ----------------------------------------------------------------------
def tuple_mult_model(
    geom: WinogradGeometry, variant: str = SLIDEUP
) -> PhaseModel:
    ph = PhaseModel(f"tuple_mult[{variant}]")
    totals = _totals(geom)
    tb_count = geom.tile_blocks
    c = geom.c_in
    quads = TILES_PER_BLOCK // QUAD  # 16

    # Loop order (p, kp, tb, c): filter-stationary — see the kernel's
    # docstring.  Key reuse distances:
    #   D_c  — one channel iteration (compact B panel + V block);
    #   D_tb — one tile-block iteration (the filter slab's reuse);
    #   D_kp — one k-panel pass = TB * D_tb: the V plane of tuple
    #          position p is re-read at this distance on every k-panel
    #          after the first — the multi-MB working set an L2 in the
    #          paper's 16-256 MB sweep range captures.
    for kp in range(geom.k_panels):
        vl = min(geom.vlen_elems, QUAD * geom.c_out - kp * geom.vlen_elems)
        n_pk = 1  # per (p, kp); 64 p values
        ph.add_instr(OpClass.VSETVL, 64 * n_pk, vl)
        ph.add_instr(OpClass.VLOAD_UNIT, 64 * n_pk, vl)  # expansion index
        if variant == INDEXED:
            ph.add_instr(OpClass.VLOAD_UNIT, 64 * n_pk, vl)  # quad index
        n_tb = 64 * tb_count  # (p, kp, tb) triples for this kp
        ph.add_instr(OpClass.VMOVE, quads * n_tb, vl)  # accumulator init
        ph.add_instr(OpClass.VLOAD_UNIT, c * n_tb, vl)  # B panel loads
        ph.add_instr(OpClass.VPERMUTE, c * n_tb, vl)  # vrgather expansion
        n_inner = quads * c * n_tb
        if variant == INDEXED:
            ph.add_instr(OpClass.VLOAD_INDEXED, n_inner, vl)
        elif variant == NATIVE:
            ph.add_instr(OpClass.VLOAD_UNIT, n_inner, vl)
            ph.add_instr(OpClass.VPERMUTE, n_inner, vl)  # vrep4
        else:
            amounts = slide_amounts(vl, log2=(variant == SLIDEUP_LOG))
            ph.add_instr(OpClass.VLOAD_UNIT, n_inner, vl)
            ph.add_instr(OpClass.VMOVE, len(amounts) * n_inner, vl)
            ph.add_instr(OpClass.VSLIDE, len(amounts) * n_inner, vl)
        ph.add_instr(OpClass.VFMA, n_inner, vl)
        ph.add_instr(OpClass.VSTORE_UNIT, quads * n_tb, vl)  # M stores

        # Traffic volumes (bytes).
        b_lines = lines_per_access(vl, 4)  # panel-load line touches
        b_new_lines = vl * 4 / 4.0 / 64.0  # fresh compact values per load
        d_c = vl * 4 / 4.0 + TILES_PER_BLOCK * 4  # compact B + V block
        d_tb = c * d_c + quads * vl * 4  # one tile block (+ M stores)
        d_kp = tb_count * d_tb  # one k-panel pass (V-plane reuse)

        # U (B panel) reads: cold on the first tile block of its
        # (p, kp) — the filter transform wrote it an input-transform
        # ago — then re-read every tile block at the small distance
        # D_tb (the filter-stationary payoff: these hit).  Each load
        # touches vl lanes but only vl/4 fresh values; the overlap
        # re-touches the following channels' rows at a tiny distance.
        u_first = c * b_new_lines * 64.0
        ph.add_traffic("U first read", u_first, totals["u"] + totals["v"])
        ph.add_traffic(
            "U tb reuse", (tb_count - 1) * c * b_new_lines * 64.0, d_tb
        )
        ph.add_traffic(
            "U load overlap",
            tb_count * c * max(b_lines - b_new_lines, 0.0) * 64.0,
            d_c * 8,
        )

        # V reads: 4 distinct lines per (tb, p, c) block; first touched
        # at k-panel 0 (distance ~ the whole V tensor since the input
        # transform wrote it), re-read on every later k-panel at D_kp.
        v_first_dist = totals["v"] if kp == 0 else d_kp
        v_first = 4.0 * c * n_tb
        if variant == INDEXED:
            # Each gather touches the one line holding its 16-B quad.
            v_acc = float(quads) * c * n_tb
        else:
            # Each slideup-variant load reads a full vl-lane vector from
            # the quad's (16q mod 64)-aligned offset: vl*4/64 lines plus
            # an extra line for the three in four unaligned offsets.
            aload_lines = (
                vl * 4 / 64.0 + 0.75 if vl >= 16 else 1.0
            )
            v_acc = float(quads) * aload_lines * c * n_tb
        ph.add_traffic("V first read", v_first, v_first_dist)
        ph.add_traffic("V re-touch", max(v_acc - v_first, 0.0), d_c)

        # M stores: streaming, cold.
        ph.add_traffic(
            "M cold st", quads * b_lines * n_tb, COLD, is_store=True,
            region=totals["m"],
        )
        if variant == INDEXED:
            ph.add_traffic("index vec ld", 64.0 * n_pk, d_kp)
    return ph


# ----------------------------------------------------------------------
# Phase 4: output transform
# ----------------------------------------------------------------------
def output_transform_model(
    geom: WinogradGeometry, tf: WinogradTransforms | None = None
) -> PhaseModel:
    tf = tf if tf is not None else f6x3_transforms()
    at_counts = transform_op_class_counts(tf.AT(np.float32))
    ph = PhaseModel("output_transform")
    totals = _totals(geom)
    t_count = geom.num_tiles
    nk_full = geom.k_panel_lanes // QUAD
    for kp in range(geom.k_panels):
        k0 = kp * (geom.vlen_elems // QUAD)
        nk = min(nk_full, geom.c_out - k0)
        ph.add_instr(OpClass.VSETVL, t_count, nk)
        ph.add_instr(OpClass.VLOAD_STRIDED, 64 * t_count, nk)  # M loads
        _add_transform_apps(ph, at_counts, 14 * t_count, nk)  # 8 col + 6 row
        ph.add_instr(OpClass.VSTORE_UNIT, 48 * t_count, nk)  # scratch
        ph.add_instr(OpClass.VLOAD_UNIT, 48 * t_count, nk)  # scratch
        ph.add_instr(OpClass.VSTORE_STRIDED, 36 * t_count, nk)  # Y stores

        # Traffic.  M loads: stride-16 over nk lanes -> nk/4 lines per
        # load; four consecutive tiles share one quad's M lines.
        d_ot = (16 * nk + 48 + 6 * nk) * 64.0  # M + scratch + Y lines
        m_acc = 64 * lines_per_access(nk, 16) * t_count
        m_first = 4.0 * nk * t_count
        ph.add_traffic("M first read", m_first, totals["m"])
        ph.add_traffic("M re-touch", max(m_acc - m_first, 0.0), 4 * d_ot)
        scr = 48 * lines_per_access(nk, 4) * t_count
        scr_region = 64.0 * geom.vlen_elems * 4
        ph.add_traffic("OT scratch st", scr, d_ot, is_store=True,
                       region=scr_region)
        ph.add_traffic("OT scratch ld", scr, d_ot)
        # Y: 36 strided stores x nk lines; a 6x6 fp32 tile is 144 new
        # bytes (2.25 lines) per output channel, the rest shared with
        # the horizontally previous tile or re-touches.
        y_acc = 36.0 * nk * t_count
        y_new = 2.25 * nk * t_count
        ph.add_traffic("Y cold st", y_new, COLD, is_store=True,
                       region=totals["y"])
        ph.add_traffic("Y re-touch st", y_acc - y_new, d_ot, is_store=True,
                       region=totals["y"])
    return ph


# ----------------------------------------------------------------------
def winograd_layer_model(
    geom: WinogradGeometry,
    variant: str = SLIDEUP,
    tf: WinogradTransforms | None = None,
) -> list[PhaseModel]:
    """The full four-phase Winograd pipeline model for one layer."""
    return [
        filter_transform_model(geom, tf),
        input_transform_model(geom, tf),
        tuple_mult_model(geom, variant),
        output_transform_model(geom, tf),
    ]
