"""ISA-level definitions shared by the functional and timing simulators.

This package holds everything that is a property of the *instruction set*
rather than of a particular machine implementation:

- :mod:`repro.isa.encoding` — SEW/LMUL/`vtype` encoding and the
  ``vsetvl`` vector-length computation of RVV 1.0.
- :mod:`repro.isa.opcodes` — the opcode classification used for
  instruction accounting by the tracer and the timing model.
"""

from repro.isa.encoding import (
    SEW_BITS,
    VLEN_CHOICES,
    VType,
    vlmax,
    vsetvl,
)
from repro.isa.opcodes import (
    FLOPS_PER_ELEM,
    IS_LOAD,
    IS_MEM,
    IS_STORE,
    IS_VECTOR,
    OpClass,
)

__all__ = [
    "SEW_BITS",
    "VLEN_CHOICES",
    "VType",
    "vlmax",
    "vsetvl",
    "OpClass",
    "IS_MEM",
    "IS_LOAD",
    "IS_STORE",
    "IS_VECTOR",
    "FLOPS_PER_ELEM",
]
