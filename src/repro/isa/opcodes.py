"""Opcode classification for instruction accounting.

The tracer on the functional simulator and the analytical stream models
both describe dynamic instructions by *opcode class* rather than by exact
mnemonic: the timing model (like the gem5 fork the paper uses, which
"models a constant latency for all the vector instructions") assigns
costs at this granularity, and the paper's findings are phrased at this
granularity too (indexed loads vs unit-stride loads vs slides).

Every intrinsic of :class:`repro.rvv.RvvMachine` and every SVE operation
of :class:`repro.sve.SveMachine` maps to exactly one class.
"""

from __future__ import annotations

from enum import Enum, unique


@unique
class OpClass(str, Enum):
    """Dynamic instruction classes.

    The string values appear in reports, so they are short and stable.
    """

    # Configuration.
    VSETVL = "vsetvl"

    # Vector memory.
    VLOAD_UNIT = "vload_unit"
    VLOAD_STRIDED = "vload_strided"
    VLOAD_INDEXED = "vload_indexed"  # gather
    VSTORE_UNIT = "vstore_unit"
    VSTORE_STRIDED = "vstore_strided"
    VSTORE_INDEXED = "vstore_indexed"  # scatter

    # Vector arithmetic.
    VFMA = "vfma"  # fused multiply-add family (vfmacc/vfmadd/...)
    VFARITH = "vfarith"  # single-op fp arithmetic (vfadd/vfsub/vfmul/...)
    VIARITH = "viarith"  # integer vector arithmetic (index generation)
    VREDUCE = "vreduce"  # reductions (vfredusum/...)

    # Vector data movement within registers.
    VSLIDE = "vslide"  # vslideup/vslidedown
    VPERMUTE = "vpermute"  # vrgather / SVE TBL
    VMOVE = "vmove"  # splats, register copies, vid

    # Mask manipulation.
    VMASK = "vmask"

    # Scalar bookkeeping (address arithmetic, loop control, branches).
    SCALAR = "scalar"


#: Classes that reference memory.
IS_MEM = frozenset(
    {
        OpClass.VLOAD_UNIT,
        OpClass.VLOAD_STRIDED,
        OpClass.VLOAD_INDEXED,
        OpClass.VSTORE_UNIT,
        OpClass.VSTORE_STRIDED,
        OpClass.VSTORE_INDEXED,
    }
)

#: Classes that read memory.
IS_LOAD = frozenset(
    {OpClass.VLOAD_UNIT, OpClass.VLOAD_STRIDED, OpClass.VLOAD_INDEXED}
)

#: Classes that write memory.
IS_STORE = frozenset(
    {OpClass.VSTORE_UNIT, OpClass.VSTORE_STRIDED, OpClass.VSTORE_INDEXED}
)

#: Classes that are vector (as opposed to scalar) instructions.
IS_VECTOR = frozenset(c for c in OpClass if c is not OpClass.SCALAR)

#: Floating-point operations contributed per *active element* by each class.
#: Used to compute achieved GFLOPS and roofline arithmetic intensity.
FLOPS_PER_ELEM = {
    OpClass.VFMA: 2,
    OpClass.VFARITH: 1,
    OpClass.VREDUCE: 1,
}
