"""RVV 1.0 `vtype` encoding and the ``vsetvl`` vector-length rule.

The RISC-V "V" extension v1.0 configures vector execution through the
``vtype`` CSR, which carries the selected element width (SEW) and the
register-group multiplier (LMUL), and through the ``vl`` CSR, set by the
``vsetvl`` family of instructions from the application vector length
(AVL).  This module implements those rules exactly as the specification
defines them for the subset the paper's kernels exercise:

- SEW in {8, 16, 32, 64} bits (the convolutions use fp32, SEW=32);
- integer LMUL in {1, 2, 4, 8} (fractional LMUL is not needed by any of
  the kernels and is rejected explicitly);
- ``VLMAX = VLEN * LMUL / SEW`` and ``vl = min(AVL, VLMAX)``.

The paper evaluates hardware vector lengths (VLEN) of 512 to 4096 bits
on gem5 and up to 16384 bits on other tools; we accept any power of two
from 128 to 16384.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, VectorStateError

#: Element widths implemented by the simulated machine, in bits.
SEW_BITS = (8, 16, 32, 64)

#: Hardware vector lengths accepted by the simulated machine, in bits.
#: RVV requires VLEN to be a power of two; the paper's tools span
#: 512 (a typical first implementation) to 16384 (Vehave's maximum).
VLEN_CHOICES = tuple(128 << i for i in range(8))  # 128 .. 16384

#: Register-group multipliers implemented (integer LMUL only).
LMUL_CHOICES = (1, 2, 4, 8)


@dataclass(frozen=True)
class VType:
    """The dynamic vector-type state selected by ``vsetvl``.

    Attributes:
        sew: selected element width in bits.
        lmul: register group multiplier.
    """

    sew: int = 32
    lmul: int = 1

    def __post_init__(self) -> None:
        if self.sew not in SEW_BITS:
            raise VectorStateError(
                f"SEW={self.sew} is not implemented; choose one of {SEW_BITS}"
            )
        if self.lmul not in LMUL_CHOICES:
            raise VectorStateError(
                f"LMUL={self.lmul} is not implemented; choose one of {LMUL_CHOICES}"
            )

    @property
    def sew_bytes(self) -> int:
        """Element width in bytes."""
        return self.sew // 8


def validate_vlen(vlen_bits: int) -> int:
    """Check that a hardware vector length is one the machine supports.

    Returns the value unchanged so it can be used inline in constructors.
    """
    if vlen_bits not in VLEN_CHOICES:
        raise ConfigError(
            f"VLEN={vlen_bits} bits is not supported; choose one of {VLEN_CHOICES}"
        )
    return vlen_bits


def vlmax(vlen_bits: int, sew: int, lmul: int = 1) -> int:
    """``VLMAX`` — the architectural maximum vector length in elements.

    ``VLMAX = VLEN * LMUL / SEW`` per the RVV 1.0 specification.
    """
    vt = VType(sew=sew, lmul=lmul)
    validate_vlen(vlen_bits)
    return (vlen_bits * vt.lmul) // vt.sew


def vsetvl(avl: int, vlen_bits: int, sew: int, lmul: int = 1) -> int:
    """Compute the granted vector length for an application vector length.

    Implements the mandatory ``vl`` setting rule of RVV 1.0:
    ``vl = min(AVL, VLMAX)``.  (The spec permits implementations to grant
    ``ceil(AVL/2) <= vl < AVL`` when ``AVL < 2*VLMAX`` to balance loop
    tails, but all tools the paper uses grant the simple minimum, and so
    do we.)

    Args:
        avl: application vector length requested by the strip-mined loop.
        vlen_bits: hardware vector length of the machine.
        sew: selected element width in bits.
        lmul: register-group multiplier.

    Returns:
        The granted vector length ``vl`` in elements.

    Raises:
        VectorStateError: if ``avl`` is negative or sew/lmul are invalid.
    """
    if avl < 0:
        raise VectorStateError(f"AVL must be non-negative, got {avl}")
    return min(avl, vlmax(vlen_bits, sew, lmul))
