"""im2col + GEMM convolution (NumPy reference semantics).

The generically-applicable convolution algorithm the paper uses for
every layer Winograd cannot handle (kernel size != 3x3 or stride > 1),
taken from the Darknet framework: ``im2col`` unfolds input patches into
a column matrix, then a single GEMM with the flattened filter bank
produces the output.

The column-matrix layout matches Darknet's ``im2col_cpu``: the matrix is
``(C*kh*kw) x (h_out*w_out)``, rows ordered channel-major then filter
row/column, columns ordered output row-major.  The vectorized kernels of
:mod:`repro.kernels.im2col` and :mod:`repro.kernels.gemm` produce and
consume exactly this layout, which is what makes trace validation
byte-exact.
"""

from __future__ import annotations

import numpy as np

from repro.conv.reference import conv_out_size, pad_input
from repro.errors import ConfigError


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Unfold (C, H, W) into the Darknet column matrix.

    Returns:
        Array of shape (C*kh*kw, h_out*w_out).
    """
    if x.ndim != 3:
        raise ConfigError("im2col expects a (C,H,W) tensor")
    c, h, w = x.shape
    h_out = conv_out_size(h, kh, stride, pad)
    w_out = conv_out_size(w, kw, stride, pad)
    xp = pad_input(x, pad)
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kh, kw), axis=(1, 2))
    windows = windows[:, ::stride, ::stride][:, :h_out, :w_out]
    # (C, h_out, w_out, kh, kw) -> (C, kh, kw, h_out*w_out) -> rows
    cols = windows.transpose(0, 3, 4, 1, 2).reshape(c * kh * kw, h_out * w_out)
    return np.ascontiguousarray(cols)


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain reference GEMM, C = A @ B.

    Kept as a named function so the algorithm-level code reads like the
    Darknet call chain (``im2col`` then ``gemm``) and so tests can patch
    or instrument the GEMM stage in isolation.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigError(f"GEMM shape mismatch: {a.shape} x {b.shape}")
    return a @ b


def im2col_gemm_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Full im2col+GEMM convolution of (C,H,W) with (K,C,kh,kw)."""
    k, c, kh, kw = weights.shape
    if x.shape[0] != c:
        raise ConfigError(f"channel mismatch: input {x.shape[0]} vs filters {c}")
    h_out = conv_out_size(x.shape[1], kh, stride, pad)
    w_out = conv_out_size(x.shape[2], kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad)
    a = weights.reshape(k, c * kh * kw)
    out = gemm(a, cols)
    return out.reshape(k, h_out, w_out)
