"""Convolution layer specification and the paper's algorithm policy.

The paper's *hybrid approach* (Section 5): use the optimized Winograd
implementation for convolutional layers with 3x3 kernels and stride 1,
and the optimized im2col+GEMM implementation everywhere else (1x1
kernels, strided layers, and the 3-channel first layer, which cannot
fill a vector with inter-tile channel parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.conv.im2col_gemm import im2col_gemm_conv2d
from repro.conv.reference import conv_out_size, direct_conv2d
from repro.errors import ConfigError
from repro.winograd.tiles import WinogradConv2d


class ConvAlgorithm(str, Enum):
    """Which implementation executes a convolutional layer."""

    WINOGRAD = "winograd"
    IM2COL_GEMM = "im2col_gemm"
    DIRECT = "direct"


@dataclass(frozen=True)
class ConvLayerSpec:
    """Geometry of one convolutional layer.

    Attributes mirror a Darknet ``[convolutional]`` section: input
    (C, H, W), output channels K, square kernel of size ``ksize``,
    stride and symmetric padding.
    """

    name: str
    c_in: int
    h_in: int
    w_in: int
    c_out: int
    ksize: int
    stride: int = 1
    pad: int = 0

    def __post_init__(self) -> None:
        if min(self.c_in, self.h_in, self.w_in, self.c_out, self.ksize) < 1:
            raise ConfigError(f"non-positive dimension in layer {self.name}: {self}")
        if self.stride < 1 or self.pad < 0:
            raise ConfigError(f"bad stride/pad in layer {self.name}: {self}")

    @property
    def h_out(self) -> int:
        return conv_out_size(self.h_in, self.ksize, self.stride, self.pad)

    @property
    def w_out(self) -> int:
        return conv_out_size(self.w_in, self.ksize, self.stride, self.pad)

    @property
    def flops(self) -> int:
        """Direct-algorithm FLOPs (2 per MAC), the paper's normalization."""
        return (
            2 * self.c_out * self.h_out * self.w_out
            * self.c_in * self.ksize * self.ksize
        )

    @property
    def weight_count(self) -> int:
        return self.c_out * self.c_in * self.ksize * self.ksize

    @property
    def winograd_eligible(self) -> bool:
        """The paper's rule: 3x3 kernel, stride 1, enough channels.

        YOLOv3's first layer runs only 3 input channels, which the paper
        excludes because inter-tile parallelization cannot fill even a
        512-bit vector (4 channels) with it.
        """
        return self.ksize == 3 and self.stride == 1 and self.c_in >= 4


def choose_algorithm(
    spec: ConvLayerSpec, hybrid: bool = True, direct_1x1: bool = False
) -> ConvAlgorithm:
    """The paper's layer-to-algorithm policy.

    Args:
        spec: layer geometry.
        hybrid: when True (the paper's hybrid approach), Winograd-eligible
            layers use Winograd; when False, every layer uses
            im2col+GEMM (the paper's baseline configuration).
        direct_1x1: extension beyond the paper — route 1x1 layers to the
            direct kernel (skipping the im2col copy) instead of
            im2col+GEMM; see ``bench_ablation_direct_1x1.py``.
    """
    if hybrid and spec.winograd_eligible:
        return ConvAlgorithm.WINOGRAD
    if direct_1x1 and spec.ksize == 1 and spec.pad == 0:
        return ConvAlgorithm.DIRECT
    return ConvAlgorithm.IM2COL_GEMM


def run_layer(
    spec: ConvLayerSpec,
    x: np.ndarray,
    weights: np.ndarray,
    algorithm: ConvAlgorithm | None = None,
) -> np.ndarray:
    """Execute one layer with the chosen (or policy-selected) algorithm.

    This is the NumPy reference path used for validation; the simulated
    performance path lives in :mod:`repro.model` / :mod:`repro.nets`.
    """
    if x.shape != (spec.c_in, spec.h_in, spec.w_in):
        raise ConfigError(
            f"layer {spec.name}: input shape {x.shape} does not match spec "
            f"{(spec.c_in, spec.h_in, spec.w_in)}"
        )
    if weights.shape != (spec.c_out, spec.c_in, spec.ksize, spec.ksize):
        raise ConfigError(
            f"layer {spec.name}: weight shape {weights.shape} does not match spec"
        )
    algo = algorithm if algorithm is not None else choose_algorithm(spec)
    if algo is ConvAlgorithm.WINOGRAD:
        if not (spec.ksize == 3 and spec.stride == 1):
            raise ConfigError(
                f"layer {spec.name}: Winograd requires 3x3 stride-1, got "
                f"{spec.ksize}x{spec.ksize} stride {spec.stride}"
            )
        return WinogradConv2d()(x, weights, pad=spec.pad)
    if algo is ConvAlgorithm.IM2COL_GEMM:
        return im2col_gemm_conv2d(x, weights, stride=spec.stride, pad=spec.pad)
    return direct_conv2d(x, weights, stride=spec.stride, pad=spec.pad)
