"""Direct convolution — the numerical ground truth.

Darknet convolutional layers compute cross-correlation with optional
zero padding and stride.  :func:`direct_conv2d` implements exactly that
over (C, H, W) tensors and is what every other algorithm in the package
(im2col+GEMM, Winograd, and the vectorized kernels) is validated
against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def conv_out_size(size: int, k: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution dimension (Darknet rule)."""
    out = (size + 2 * pad - k) // stride + 1
    if out <= 0:
        raise ConfigError(
            f"non-positive output size for input={size}, k={k}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of a (C, H, W) tensor."""
    if pad == 0:
        return x
    if pad < 0:
        raise ConfigError(f"padding must be non-negative, got {pad}")
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)))


def direct_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Cross-correlation of (C, H, W) input with (K, C, kh, kw) filters.

    Args:
        x: input tensor, shape (C, H, W).
        weights: filter bank, shape (K, C, kh, kw).
        stride: spatial stride (same in both dimensions, as Darknet).
        pad: symmetric zero padding.

    Returns:
        Output tensor of shape (K, h_out, w_out) in the input dtype's
        promoted precision.
    """
    if x.ndim != 3 or weights.ndim != 4:
        raise ConfigError("expected x as (C,H,W) and weights as (K,C,kh,kw)")
    c, h, w = x.shape
    k, cw, kh, kw = weights.shape
    if c != cw:
        raise ConfigError(f"channel mismatch: input {c} vs filters {cw}")
    if stride < 1:
        raise ConfigError(f"stride must be >= 1, got {stride}")
    xp = pad_input(x, pad)
    h_out = conv_out_size(h, kh, stride, pad)
    w_out = conv_out_size(w, kw, stride, pad)
    # windows: (C, h_out, w_out, kh, kw) strided view — no copies.
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kh, kw), axis=(1, 2))
    windows = windows[:, ::stride, ::stride][:, :h_out, :w_out]
    return np.einsum("chwij,kcij->khw", windows, weights, optimize=True)


def gemm_fp32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C = A @ B with the vector machine's exact fp32 rounding.

    The RVV/SVE ``vfmacc.vf`` model computes, per lane and reduction
    step, ``acc = fp32(acc + fp32(a_ik * b_kj))`` with ``k`` strictly
    increasing.  Every schedule the DSL can express preserves that
    per-element accumulation order (the reduction axis may be blocked
    but never reordered or vectorized), so this k-ordered fp32
    reference is *bit-identical* to any generated or hand-written
    GEMM kernel — the comparison the differential campaign relies on.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigError(f"GEMM shape mismatch: {a.shape} x {b.shape}")
    a32 = np.ascontiguousarray(a, dtype=np.float32)
    b32 = np.ascontiguousarray(b, dtype=np.float32)
    out = np.zeros((a32.shape[0], b32.shape[1]), dtype=np.float32)
    for k in range(a32.shape[1]):
        out += a32[:, k : k + 1] * b32[k]
    return out


def im2col_gemm_conv2d_fp32(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """im2col + GEMM convolution with machine-exact fp32 accumulation.

    The im2col stage only copies values (exact in any precision); the
    GEMM stage uses :func:`gemm_fp32`, so the result matches the
    vectorized kernels bit for bit.
    """
    from repro.conv.im2col_gemm import im2col

    k, c, kh, kw = weights.shape
    if x.shape[0] != c:
        raise ConfigError(f"channel mismatch: input {x.shape[0]} vs filters {c}")
    h_out = conv_out_size(x.shape[1], kh, stride, pad)
    w_out = conv_out_size(x.shape[2], kw, stride, pad)
    cols = im2col(np.ascontiguousarray(x, dtype=np.float32), kh, kw, stride, pad)
    out = gemm_fp32(weights.reshape(k, c * kh * kw), cols)
    return out.reshape(k, h_out, w_out)
