"""Direct convolution — the numerical ground truth.

Darknet convolutional layers compute cross-correlation with optional
zero padding and stride.  :func:`direct_conv2d` implements exactly that
over (C, H, W) tensors and is what every other algorithm in the package
(im2col+GEMM, Winograd, and the vectorized kernels) is validated
against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def conv_out_size(size: int, k: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution dimension (Darknet rule)."""
    out = (size + 2 * pad - k) // stride + 1
    if out <= 0:
        raise ConfigError(
            f"non-positive output size for input={size}, k={k}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def pad_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of a (C, H, W) tensor."""
    if pad == 0:
        return x
    if pad < 0:
        raise ConfigError(f"padding must be non-negative, got {pad}")
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)))


def direct_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Cross-correlation of (C, H, W) input with (K, C, kh, kw) filters.

    Args:
        x: input tensor, shape (C, H, W).
        weights: filter bank, shape (K, C, kh, kw).
        stride: spatial stride (same in both dimensions, as Darknet).
        pad: symmetric zero padding.

    Returns:
        Output tensor of shape (K, h_out, w_out) in the input dtype's
        promoted precision.
    """
    if x.ndim != 3 or weights.ndim != 4:
        raise ConfigError("expected x as (C,H,W) and weights as (K,C,kh,kw)")
    c, h, w = x.shape
    k, cw, kh, kw = weights.shape
    if c != cw:
        raise ConfigError(f"channel mismatch: input {c} vs filters {cw}")
    if stride < 1:
        raise ConfigError(f"stride must be >= 1, got {stride}")
    xp = pad_input(x, pad)
    h_out = conv_out_size(h, kh, stride, pad)
    w_out = conv_out_size(w, kw, stride, pad)
    # windows: (C, h_out, w_out, kh, kw) strided view — no copies.
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kh, kw), axis=(1, 2))
    windows = windows[:, ::stride, ::stride][:, :h_out, :w_out]
    return np.einsum("chwij,kcij->khw", windows, weights, optimize=True)
