"""Reference convolution algorithms and the layer-level policy.

- :func:`direct_conv2d` — ground-truth cross-correlation;
- :func:`im2col` / :func:`im2col_gemm_conv2d` — the Darknet-style
  generic algorithm;
- :class:`~repro.winograd.tiles.WinogradConv2d` (re-exported) — the
  NNPACK-style F(6x6, 3x3) pipeline;
- :class:`ConvLayerSpec` / :func:`choose_algorithm` / :func:`run_layer`
  — layer geometry and the paper's hybrid algorithm policy.
"""

from repro.conv.im2col_gemm import gemm, im2col, im2col_gemm_conv2d
from repro.conv.layer import (
    ConvAlgorithm,
    ConvLayerSpec,
    choose_algorithm,
    run_layer,
)
from repro.conv.reference import (
    conv_out_size,
    direct_conv2d,
    gemm_fp32,
    im2col_gemm_conv2d_fp32,
    pad_input,
)
from repro.winograd.tiles import WinogradConv2d

__all__ = [
    "direct_conv2d",
    "conv_out_size",
    "pad_input",
    "im2col",
    "gemm",
    "im2col_gemm_conv2d",
    "gemm_fp32",
    "im2col_gemm_conv2d_fp32",
    "WinogradConv2d",
    "ConvAlgorithm",
    "ConvLayerSpec",
    "choose_algorithm",
    "run_layer",
]
