"""The serve wire protocol: query schema, content addresses, NDJSON.

A *query* asks the service for a network over a (VLEN x L2) sub-grid
under one backend mode — exactly the contract of
:func:`repro.codesign.codesign_sweep`, lifted into JSON so any client
can submit it:

.. code-block:: json

    {"network": "vgg16", "vlens": [512, 1024], "l2_mbs": [1, 16],
     "mode": "exact"}

or, for a custom topology, darknet cfg text in place of the name:

.. code-block:: json

    {"cfg": "[net]\\nheight=64\\n...", "name": "my-net",
     "vlens": [512], "l2_mbs": [1], "mode": "fast"}

Content addressing
------------------
Every result the service holds is keyed by *what* it answers, never by
who asked: the :func:`network_hash` digests the resolved layer
geometry, the algorithm policy (hybrid/variant) and the base system
configuration — so two users submitting byte-different cfg files that
resolve to the same network share cache entries — and
:func:`point_key` appends the backend and the grid point.  The grid
axes themselves (``vlen_bits``/``l2_mb``) are excluded from the hashed
configuration: they are the query's coordinates, not its identity, and
a config override naming them is rejected rather than silently folded
in.

The event stream is NDJSON — one :func:`repro.obs.event` dict per
line, the same framing the JSONL flight recorder uses — so a client is
a ten-line loop over :func:`iter_ndjson`.
"""

from __future__ import annotations

import hashlib
import http.client
import json
from dataclasses import asdict, dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.codesign.sweep import BACKEND_EXACT, BACKENDS
from repro.conv.layer import ConvLayerSpec
from repro.errors import ConfigError, ObsError
from repro.kernels.tuple_mult import SLIDEUP, VARIANTS
from repro.nets import build_layers, vgg16_layers, yolov3_layers
from repro.nets.layers import LayerSpec, MaxPoolSpec, ShortcutSpec
from repro.sim.system import SystemConfig

#: Version of the query/event wire schema.
PROTOCOL_VERSION = 1

#: Named networks a query may reference instead of shipping cfg text.
NAMED_NETWORKS = {
    "vgg16": vgg16_layers,
    "yolov3": yolov3_layers,
}

#: Config fields a query must not override — they are the grid axes.
_AXIS_FIELDS = ("vlen_bits", "l2_mb")


@dataclass(frozen=True)
class Query:
    """One validated co-design query (the service's unit of work)."""

    network: str
    layers: tuple[LayerSpec, ...]
    vlens: tuple[int, ...]
    l2_mbs: tuple[int, ...]
    mode: str = BACKEND_EXACT
    hybrid: bool = True
    variant: str = SLIDEUP
    config: SystemConfig = SystemConfig()

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigError("query resolves to an empty network")
        if not self.vlens or not self.l2_mbs:
            raise ConfigError("query grids must be non-empty")
        if self.mode not in BACKENDS:
            raise ConfigError(
                f"unknown query mode {self.mode!r} "
                f"(expected one of {BACKENDS})"
            )
        if self.variant not in VARIANTS:
            raise ConfigError(
                f"unknown tuple-mult variant {self.variant!r} "
                f"(expected one of {VARIANTS})"
            )
        object.__setattr__(
            self, "vlens", tuple(sorted(set(int(v) for v in self.vlens)))
        )
        object.__setattr__(
            self, "l2_mbs", tuple(sorted(set(int(l) for l in self.l2_mbs)))
        )

    @property
    def points(self) -> tuple[tuple[int, int], ...]:
        """Every (vlen, l2_mb) point of the query grid, row-major."""
        return tuple((v, l) for v in self.vlens for l in self.l2_mbs)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Query":
        """Validate and resolve a JSON query payload.

        Raises :class:`~repro.errors.ConfigError` on any malformed
        field — the service maps that to a 400, never a traceback.
        """
        if not isinstance(payload, Mapping):
            raise ConfigError("query payload must be a JSON object")
        unknown = set(payload) - {
            "network", "cfg", "name", "max_layers", "height", "width",
            "channels", "vlens", "l2_mbs", "mode", "hybrid", "variant",
            "config",
        }
        if unknown:
            raise ConfigError(
                f"unknown query field(s): {', '.join(sorted(unknown))}"
            )
        name, layers = _resolve_network(payload)
        vlens = _int_list(payload, "vlens")
        l2_mbs = _int_list(payload, "l2_mbs")
        config = _resolve_config(payload.get("config"))
        return cls(
            network=name,
            layers=tuple(layers),
            vlens=vlens,
            l2_mbs=l2_mbs,
            mode=str(payload.get("mode", BACKEND_EXACT)),
            hybrid=bool(payload.get("hybrid", True)),
            variant=str(payload.get("variant", SLIDEUP)),
            config=config,
        )


def _resolve_network(
    payload: Mapping[str, Any]
) -> tuple[str, list[LayerSpec]]:
    cfg_text = payload.get("cfg")
    named = payload.get("network")
    if (cfg_text is None) == (named is None):
        raise ConfigError(
            "query must carry exactly one of 'network' (a named net) "
            "or 'cfg' (darknet cfg text)"
        )
    max_layers = payload.get("max_layers")
    if named is not None:
        if named not in NAMED_NETWORKS:
            raise ConfigError(
                f"unknown network {named!r} (available: "
                f"{', '.join(sorted(NAMED_NETWORKS))}; submit custom "
                f"topologies as 'cfg' text)"
            )
        cfg_only = [f for f in ("height", "width", "channels")
                    if payload.get(f) is not None]
        if cfg_only:
            raise ConfigError(
                f"{', '.join(cfg_only)} only apply to 'cfg' queries; "
                f"named networks fix their input geometry"
            )
        layers = NAMED_NETWORKS[str(named)]()
        if max_layers is not None:
            layers = layers[: int(max_layers)]
        return str(named), layers
    layers = build_layers(
        str(cfg_text),
        height=_opt_int(payload, "height"),
        width=_opt_int(payload, "width"),
        channels=_opt_int(payload, "channels"),
        max_layers=int(max_layers) if max_layers is not None else None,
    )
    return str(payload.get("name", "custom")), layers


def _resolve_config(overrides: Any) -> SystemConfig:
    if overrides is None:
        return SystemConfig()
    if not isinstance(overrides, Mapping):
        raise ConfigError("query 'config' must be a JSON object")
    bad_axes = [f for f in _AXIS_FIELDS if f in overrides]
    if bad_axes:
        raise ConfigError(
            f"query config must not set {', '.join(bad_axes)}: the grid "
            f"axes are given by 'vlens'/'l2_mbs'"
        )
    valid = set(asdict(SystemConfig()))
    unknown = set(map(str, overrides)) - valid
    if unknown:
        raise ConfigError(
            f"unknown config field(s): {', '.join(sorted(unknown))}"
        )
    return SystemConfig(**{str(k): v for k, v in overrides.items()})


def _int_list(payload: Mapping[str, Any], field: str) -> tuple[int, ...]:
    raw = payload.get(field)
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ConfigError(f"query {field!r} must be a non-empty list")
    try:
        return tuple(int(v) for v in raw)
    except (TypeError, ValueError):
        raise ConfigError(f"query {field!r} must contain integers") from None


def _opt_int(payload: Mapping[str, Any], field: str) -> int | None:
    raw = payload.get(field)
    return int(raw) if raw is not None else None


# ----------------------------------------------------------------------
# Content addressing.
# ----------------------------------------------------------------------
def _layer_dict(layer: LayerSpec) -> dict[str, Any]:
    """Type-tagged canonical dict of one layer spec."""
    kind = {
        ConvLayerSpec: "conv", MaxPoolSpec: "maxpool",
        ShortcutSpec: "shortcut",
    }[type(layer)]
    d = asdict(layer)
    d.pop("name", None)  # labels are presentation, not identity
    return {"kind": kind, **d}


def query_identity(query: Query) -> dict[str, Any]:
    """The JSON-able identity block a query's results are keyed by.

    Everything that determines a point's *value* — resolved layer
    geometry, algorithm policy, base configuration — and nothing that
    does not (network labels, the grid extents, who asked).  The grid
    axes (``vlen_bits``/``l2_mb``) are stripped from the configuration:
    :func:`point_key` carries the coordinates.
    """
    config = asdict(query.config)
    for axis in _AXIS_FIELDS:
        config.pop(axis)
    return {
        "schema": PROTOCOL_VERSION,
        "layers": [_layer_dict(layer) for layer in query.layers],
        "hybrid": query.hybrid,
        "variant": query.variant,
        "config": config,
    }


def network_hash(query: Query) -> str:
    """Content address of the query's network x policy x base config."""
    canonical = json.dumps(query_identity(query), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def point_key(query: Query, vlen: int, l2_mb: int) -> str:
    """The store key of one grid point: network hash x backend x point."""
    return f"{network_hash(query)}:{query.mode}:v{int(vlen)}:l2mb{int(l2_mb)}"


# ----------------------------------------------------------------------
# NDJSON framing and the blocking client.
# ----------------------------------------------------------------------
def encode_event(ev: Mapping[str, Any]) -> bytes:
    """One event as an NDJSON line (the wire framing)."""
    return (json.dumps(dict(ev)) + "\n").encode("utf-8")


def iter_ndjson(stream: Iterable[bytes]) -> Iterator[dict[str, Any]]:
    """Decode an NDJSON byte stream into event dicts.

    A *trailing* torn line (the connection died mid-write) is dropped
    rather than raised, matching :func:`repro.obs.read_jsonl`.  A torn
    line *followed by more data* is stream corruption, not a dropped
    connection, and raises :class:`~repro.errors.ObsError` — a consumer
    must never silently skip frames of a live stream and present the
    remainder as a complete answer.
    """
    torn: str | None = None
    for line in stream:
        text = line.decode("utf-8", errors="replace").strip()
        if torn is not None:
            raise ObsError(
                f"torn NDJSON frame mid-stream: {torn[:120]!r}"
            )
        if not text:
            continue
        try:
            ev = json.loads(text)
        except ValueError:
            torn = text
            continue
        if isinstance(ev, dict):
            yield ev


def stream_query(
    host: str,
    port: int,
    payload: Mapping[str, Any],
    timeout: float | None = None,
) -> Iterator[dict[str, Any]]:
    """Submit a query and yield its event stream (the ``repro query``
    client).

    Blocking and stdlib-only (:mod:`http.client`); yields every event
    the service streams, ending with ``query_result`` (carrying the
    full :class:`~repro.codesign.SweepResult` dict) or ``query_error``.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(dict(payload)).encode("utf-8")
        conn.request(
            "POST", "/v1/query", body=body,
            headers={"Content-Type": "application/json",
                     "Content-Length": str(len(body))},
        )
        resp = conn.getresponse()
        yield from iter_ndjson(resp)
    finally:
        conn.close()
