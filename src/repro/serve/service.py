"""The asyncio serving loop: queries in, NDJSON event streams out.

:class:`CodesignService` is the engine — transport-free, so tests can
drive it in-process — and :class:`ServeServer` is the stdlib HTTP/1.1
front-end ``repro serve`` runs.  The design:

- **store first** — every grid point is looked up in the
  content-addressed :class:`~repro.serve.store.ResultStore` before any
  work is scheduled; hot queries never touch the worker pool (the
  ``bench_serve_load`` benchmark pins this under a millisecond).
- **column batching** — cold points are grouped by VLEN and each group
  becomes one :func:`~repro.codesign.executor.evaluate_column` call, so
  the service amortizes the per-VLEN pass (exact recording / fast
  profiling) exactly like the sweep executor does.
- **cross-client coalescing** — each cold point registers an
  :class:`asyncio.Future` in an in-flight map; a second query wanting
  the same point (same content address) awaits that future instead of
  scheduling the work again.  N concurrent clients asking for one cold
  grid compute it exactly once.
- **bounded workers** — columns run in a
  :class:`~concurrent.futures.ThreadPoolExecutor` gated by an
  :class:`asyncio.Semaphore`, so at most ``workers`` simulations run
  at a time while the event loop keeps streaming progress.
- **graceful drain** — :meth:`CodesignService.shutdown` refuses new
  queries, lets scheduled columns finish (their points land in the
  store and, when configured, its durable directory — the in-flight
  checkpoint), then releases the pool.

Every event carries the client's ``query_id`` (stamped by a
:class:`~repro.obs.events.ScopedSink`), and the stream opens with a
:func:`~repro.obs.manifest.query_manifest` pinning the query's content
address, so any answer can be tied back to the cache entries that
produced it.

Telemetry (all observation-only):

- typed ``serve.*`` / ``http.*`` metrics on :data:`repro.obs.METRICS`
  (counters, pool gauges, latency histograms), rendered by
  ``GET /metrics`` in Prometheus text exposition format;
- an optional JSONL access log (``access_sink``): one ``access`` event
  per query with its id, content address, point mix, wall time and
  status;
- optional per-query trace trees (``trace_dir``): each query writes a
  ``query_<id>/`` trace directory whose ``sweep_worker`` subtrees carry
  the ``query_id``, consumable by ``repro trace diff/top/export``
  unchanged.
"""

from __future__ import annotations

import asyncio
import json
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.codesign.executor import CHECKPOINT_VERSION, evaluate_column
from repro.codesign.sweep import SweepResult
from repro.errors import ConfigError, ReproError
from repro.model.layer_model import NetworkResult
from repro.nets.layers import LayerSpec
from repro.obs.counters import COUNTERS
from repro.obs.events import (
    LEVEL_WARNING,
    CallbackSink,
    EventSink,
    ScopedSink,
    event,
)
from repro.obs.manifest import query_manifest, write_manifest
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, METRICS, render_prometheus
from repro.obs.render import trace_payload
from repro.obs.trace import Span, Tracer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Query,
    encode_event,
    network_hash,
    point_key,
    query_identity,
)
from repro.serve.store import (
    SOURCE_COALESCED,
    SOURCE_COMPUTED,
    SOURCE_STORE,
    ResultStore,
)

#: What a resolved in-flight point future carries.
_PointValue = tuple[dict[str, Any], float]

# Typed serve-path metrics (see repro.obs.metrics).  Module-level
# handles: creation is get-or-create on the process registry, and
# METRICS.reset() zeroes values in place, so these stay valid.
_M_QUERIES = METRICS.counter("serve.queries", "queries accepted")
_M_QUERIES_FAILED = METRICS.counter("serve.queries_failed", "queries that raised")
_M_REFUSED = METRICS.counter("serve.refused", "queries refused while draining")
_M_POINTS_STORE = METRICS.counter("serve.points.store", "points answered from the store")
_M_POINTS_COMPUTED = METRICS.counter("serve.points.computed", "points computed by this service")
_M_POINTS_COALESCED = METRICS.counter(
    "serve.points.coalesced", "points shared with another query's in-flight compute"
)
_G_OPEN = METRICS.gauge("serve.open_queries", "queries currently being answered")
_G_INFLIGHT = METRICS.gauge("serve.inflight_points", "cold points currently being computed")
_G_BUSY = METRICS.gauge("serve.workers.busy", "worker threads evaluating a column right now")
_H_QUERY = METRICS.histogram("serve.query.seconds", "end-to-end query wall time")
_H_POINT = METRICS.histogram(
    "serve.point.seconds", "per-point service time (store lookup or compute share)"
)
_H_QUEUE = METRICS.histogram("serve.queue.seconds", "column wait for a worker slot")
_H_BATCH = METRICS.histogram(
    "serve.column.points", "points batched into one VLEN column",
    buckets=DEFAULT_SIZE_BUCKETS,
)
_M_HTTP = {
    2: METRICS.counter("http.responses.2xx", "HTTP responses with a 2xx status"),
    4: METRICS.counter("http.responses.4xx", "HTTP responses with a 4xx status"),
    5: METRICS.counter("http.responses.5xx", "HTTP responses with a 5xx status"),
}


def _count_status(status: int) -> None:
    counter = _M_HTTP.get(status // 100)
    if counter is not None:
        counter.inc()


def _column_worker(
    query: Query,
    vlen: int,
    l2_mbs: tuple[int, ...],
    collect: bool = False,
    query_id: str | None = None,
) -> tuple[list[tuple[int, NetworkResult, float]], dict[str, Any]]:
    """Evaluate one VLEN column (runs on a worker thread).

    With ``collect`` the column's ``sweep_worker`` span subtree comes
    back in ``extras`` — stamped with the ``query_id``, because ambient
    contextvars do not cross ``run_in_executor`` — so the service can
    graft it into the query's trace tree.
    """
    layers: list[LayerSpec] = list(query.layers)
    column, extras = evaluate_column(
        query.network, layers, vlen, l2_mbs,
        hybrid=query.hybrid, variant=query.variant,
        base_config=query.config, mode=query.mode,
        collect=collect,
        span_attrs={"query_id": query_id} if query_id is not None else None,
    )
    return column, extras


def _point_payload(
    query: Query, vlen: int, l2_mb: int, result: NetworkResult
) -> dict[str, Any]:
    """One computed point in the checkpoint point schema (what the
    store holds and what ``--checkpoint-dir`` would have written)."""
    return {
        "version": CHECKPOINT_VERSION,
        "backend": query.mode,
        "vlen": int(vlen),
        "l2_mb": int(l2_mb),
        "result": result.to_dict(),
    }


class CodesignService:
    """The transport-free serving engine (one per process).

    Args:
        store: the content-addressed result store answering hot points.
        workers: bound on concurrently evaluating columns.
        trace_dir: when set, every query writes a ``query_<id>/`` trace
            directory (span tree + manifest) under it, loadable by
            ``repro trace diff/top/export`` unchanged.
        access_sink: when set, one structured ``access`` event is
            emitted per query (the JSONL access log when the caller
            hands in a :class:`~repro.obs.events.JsonlSink`).
    """

    def __init__(self, store: ResultStore | None = None,
                 workers: int = 2,
                 trace_dir: str | Path | None = None,
                 access_sink: EventSink | None = None) -> None:
        self.store = store if store is not None else ResultStore()
        self.workers = max(1, int(workers))
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        self._access = access_sink
        self._pool: ThreadPoolExecutor | None = None
        self._sem = asyncio.Semaphore(self.workers)
        self._inflight: dict[str, "asyncio.Future[_PointValue]"] = {}
        self._tasks: set["asyncio.Task[None]"] = set()
        self._draining = False
        self.open_queries = 0
        self.queries_served = 0

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`shutdown` started; new queries are refused."""
        return self._draining

    def stats(self) -> dict[str, Any]:
        """The ``GET /v1/stats`` payload.

        The store sub-dict is one atomic
        :meth:`~repro.serve.store.ResultStore.snapshot` — occupancy and
        hit counters copied under a single lock, so the fields of one
        response are mutually consistent under concurrent load.
        """
        _G_OPEN.set(self.open_queries)
        _G_INFLIGHT.set(len(self._inflight))
        return {
            "workers": self.workers,
            "draining": self._draining,
            "open_queries": self.open_queries,
            "queries_served": self.queries_served,
            "inflight_points": len(self._inflight),
            "store": self.store.snapshot(),
            "latency": {
                "query_seconds": _H_QUERY.summary(),
                "point_seconds": _H_POINT.summary(),
                "queue_seconds": _H_QUEUE.summary(),
            },
            "pool": {"size": self.workers, "busy": _G_BUSY.value},
        }

    def render_metrics(self) -> str:
        """The ``GET /metrics`` body (Prometheus text exposition).

        Level gauges (store occupancy, open queries, in-flight points)
        are refreshed at scrape time so the exposition reflects the
        instant of the scrape, not the last mutation.
        """
        self.store.snapshot()  # refreshes store.entries / store.bytes
        _G_OPEN.set(self.open_queries)
        _G_INFLIGHT.set(len(self._inflight))
        return render_prometheus(METRICS)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="serve-worker",
            )
        return self._pool

    # ------------------------------------------------------------------
    async def handle_query(
        self,
        query: Query,
        sink: EventSink,
        query_id: str | None = None,
    ) -> SweepResult:
        """Answer one query, streaming progress events into ``sink``.

        Store hits are answered immediately; cold points are batched by
        VLEN column onto the worker pool (or coalesced onto another
        query's in-flight computation).  Returns the assembled
        :class:`~repro.codesign.SweepResult`, bit-identical to a direct
        :func:`~repro.codesign.codesign_sweep` over the same grid.
        """
        if self._draining:
            _M_REFUSED.inc()
            raise ConfigError("service is draining (shutdown in progress)")
        qid = query_id if query_id else uuid.uuid4().hex[:12]
        scoped = ScopedSink(sink, query_id=qid)
        COUNTERS.inc("serve.queries")
        _M_QUERIES.inc()
        self.open_queries += 1
        _G_OPEN.set(self.open_queries)
        started = time.perf_counter()
        nh = network_hash(query)
        served = {SOURCE_STORE: 0, SOURCE_COMPUTED: 0, SOURCE_COALESCED: 0}
        tracer = Tracer() if self.trace_dir is not None else None
        status = "ok"
        try:
            if tracer is not None:
                with tracer.span(
                    "serve_query", query_id=qid, network=query.network,
                    network_hash=nh, backend=query.mode,
                ):
                    return await self._answer(
                        query, scoped, qid, started, nh, served, tracer)
            return await self._answer(
                query, scoped, qid, started, nh, served, None)
        except BaseException:
            status = "error"
            _M_QUERIES_FAILED.inc()
            raise
        finally:
            wall = time.perf_counter() - started
            _H_QUERY.observe(wall)
            self.open_queries -= 1
            _G_OPEN.set(self.open_queries)
            if self._access is not None:
                self._access.emit(event(
                    "access", query_id=qid, network=query.network,
                    network_hash=nh, mode=query.mode,
                    points=len(query.points),
                    store_hits=served[SOURCE_STORE],
                    computed=served[SOURCE_COMPUTED],
                    coalesced=served[SOURCE_COALESCED],
                    wall=round(wall, 6), status=status,
                ))
            if tracer is not None:
                self._write_query_trace(tracer, query, qid)

    def _write_query_trace(
        self, tracer: Tracer, query: Query, qid: str
    ) -> None:
        """Persist one query's span tree as a ``--trace`` directory.

        ``trace_dir/query_<id>/`` gets the same ``trace.json`` +
        ``manifest.json`` pair ``repro profile --trace`` writes, so
        ``repro trace diff/top/export`` consume it unchanged.
        """
        assert self.trace_dir is not None
        qdir = self.trace_dir / f"query_{qid}"
        qdir.mkdir(parents=True, exist_ok=True)
        manifest = query_manifest(
            qid, query_identity(query),
            config=asdict(query.config), backend=query.mode,
        )
        write_manifest(qdir, manifest)
        (qdir / "trace.json").write_text(
            json.dumps(trace_payload(tracer.root, manifest)) + "\n",
            encoding="utf-8",
        )

    async def _answer(
        self,
        query: Query,
        sink: ScopedSink,
        qid: str,
        started: float,
        nh: str,
        served: dict[str, int],
        tracer: Tracer | None,
    ) -> SweepResult:
        total = len(query.points)
        sink.emit(event(
            "query_start", protocol=PROTOCOL_VERSION, network=query.network,
            backend=query.mode, network_hash=nh,
            vlens=list(query.vlens), l2_mbs=list(query.l2_mbs), points=total,
        ))
        sink.emit(event("query_manifest", manifest=query_manifest(
            qid, query_identity(query),
            config=asdict(query.config), backend=query.mode,
        )))

        results: dict[tuple[int, int], NetworkResult] = {}
        waits: list[
            tuple[int, int, "asyncio.Future[_PointValue]", str]
        ] = []
        cold: dict[int, list[int]] = {}
        for vlen, l2_mb in query.points:
            key = point_key(query, vlen, l2_mb)
            t0 = time.perf_counter()
            payload = self.store.get(key)
            if payload is not None:
                lookup = time.perf_counter() - t0
                results[(vlen, l2_mb)] = NetworkResult.from_dict(
                    payload["result"])
                served[SOURCE_STORE] += 1
                COUNTERS.inc("serve.points_hit")
                _M_POINTS_STORE.inc()
                _H_POINT.observe(lookup)
                sink.emit(event(
                    "point", vlen=vlen, l2_mb=l2_mb, source=SOURCE_STORE,
                    seconds=round(lookup, 6), done=len(results), total=total,
                ))
                continue
            inflight = self._inflight.get(key)
            if inflight is not None:
                waits.append((vlen, l2_mb, inflight, SOURCE_COALESCED))
            else:
                cold.setdefault(vlen, []).append(l2_mb)

        loop = asyncio.get_running_loop()
        for vlen, l2s in sorted(cold.items()):
            futs: dict[int, "asyncio.Future[_PointValue]"] = {}
            for l2_mb in l2s:
                fut: "asyncio.Future[_PointValue]" = loop.create_future()
                self._inflight[point_key(query, vlen, l2_mb)] = fut
                futs[l2_mb] = fut
                waits.append((vlen, l2_mb, fut, SOURCE_COMPUTED))
            _H_BATCH.observe(len(l2s))
            task = asyncio.create_task(
                self._compute_column(query, vlen, tuple(l2s), futs,
                                     tracer=tracer, query_id=qid))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        if cold:
            _G_INFLIGHT.set(len(self._inflight))

        # Shield every await: the in-flight futures may be shared with
        # other queries, so one client vanishing must not cancel the
        # computation under everyone else.  gather-with-exceptions so a
        # failing column leaves no "exception never retrieved" noise.
        outcomes = await asyncio.gather(
            *(asyncio.shield(fut) for _, _, fut, _ in waits),
            return_exceptions=True,
        )
        failure: BaseException | None = None
        for (vlen, l2_mb, _fut, source), outcome in zip(waits, outcomes):
            if isinstance(outcome, BaseException):
                if failure is None:
                    failure = outcome
                continue
            payload, seconds = outcome
            results[(vlen, l2_mb)] = NetworkResult.from_dict(
                payload["result"])
            served[source] += 1
            if source == SOURCE_COALESCED:
                COUNTERS.inc("serve.points_coalesced")
                _M_POINTS_COALESCED.inc()
            _H_POINT.observe(seconds)
            sink.emit(event(
                "point", vlen=vlen, l2_mb=l2_mb, source=source,
                seconds=round(seconds, 6), done=len(results), total=total,
            ))
        if failure is not None:
            raise failure

        sweep = SweepResult(
            name=query.network, vlens=query.vlens, l2_mbs=query.l2_mbs,
            results=results, backend=query.mode,
        )
        sink.emit(event(
            "query_end", seconds=round(time.perf_counter() - started, 6),
            served=dict(served),
        ))
        sink.emit(event("query_result", sweep=sweep.to_dict()))
        self.queries_served += 1
        return sweep

    async def _compute_column(
        self,
        query: Query,
        vlen: int,
        l2_mbs: tuple[int, ...],
        futs: dict[int, "asyncio.Future[_PointValue]"],
        tracer: Tracer | None = None,
        query_id: str | None = None,
    ) -> None:
        """Run one VLEN column on the pool and resolve its point futures."""
        loop = asyncio.get_running_loop()
        keys = {l2: point_key(query, vlen, l2) for l2 in l2_mbs}
        try:
            enqueued = time.perf_counter()
            async with self._sem:
                _H_QUEUE.observe(time.perf_counter() - enqueued)
                _G_BUSY.inc()
                try:
                    column, extras = await loop.run_in_executor(
                        self._ensure_pool(), _column_worker, query, vlen,
                        l2_mbs, tracer is not None, query_id,
                    )
                finally:
                    _G_BUSY.dec()
            if tracer is not None and extras.get("span"):
                # Ambient contextvars do not cross run_in_executor, so
                # the worker recorded into a local tracer; graft its
                # query_id-stamped subtree under the open serve_query
                # span (the scheduling query's root is still open: it
                # is awaiting these very futures).
                tracer.attach(Span.from_dict(extras["span"]))
            for l2_mb, result, seconds in column:
                payload = _point_payload(query, vlen, l2_mb, result)
                self.store.put(keys[l2_mb], payload)
                COUNTERS.inc("serve.points_computed")
                _M_POINTS_COMPUTED.inc()
                self._inflight.pop(keys[l2_mb], None)
                fut = futs[l2_mb]
                if not fut.done():
                    fut.set_result((payload, seconds))
            _G_INFLIGHT.set(len(self._inflight))
        except BaseException as e:
            for l2_mb, fut in futs.items():
                self._inflight.pop(keys[l2_mb], None)
                if not fut.done():
                    fut.set_exception(e)
            _G_INFLIGHT.set(len(self._inflight))
            if isinstance(e, asyncio.CancelledError):
                raise

    # ------------------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: refuse new queries, finish in-flight columns
        (their points land in the store — and its durable directory when
        configured, the service's checkpoint), release the pool."""
        self._draining = True
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        while self.open_queries:
            await asyncio.sleep(0.01)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# The stdlib HTTP front-end.
# ----------------------------------------------------------------------
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    413: "Payload Too Large", 503: "Service Unavailable",
}

#: Largest request body the server will read.  A topology payload for
#: the deepest supported networks is well under a megabyte; anything
#: bigger is a broken client, answered 413 instead of buffered.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Prometheus text exposition content type (format 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _write_json(
    writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
) -> None:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    _write_body(writer, status, "application/json", body)


def _write_text(
    writer: asyncio.StreamWriter, status: int, text: str,
    content_type: str = METRICS_CONTENT_TYPE,
) -> None:
    _write_body(writer, status, content_type, text.encode("utf-8"))


def _write_body(
    writer: asyncio.StreamWriter, status: int, content_type: str,
    body: bytes,
) -> None:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, '')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    _count_status(status)


class _BadRequest(Exception):
    """A request the server refuses to read further, with its status."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """Parse one HTTP/1.1 request (request line, headers, sized body).

    Oversized request/header lines (the stream reader's 64 KiB line
    limit) and bodies beyond :data:`MAX_BODY_BYTES` raise
    :class:`_BadRequest`, which the handler answers with a one-line
    JSON error — never a hang, never a truncated read treated as a
    whole request.
    """
    try:
        line = await reader.readline()
    except ValueError:
        raise _BadRequest(400, "request line too long") from None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, target = parts[0].upper(), parts[1]
    length = 0
    while True:
        try:
            header = await reader.readline()
        except ValueError:
            raise _BadRequest(400, "request header line too long") from None
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    if length > MAX_BODY_BYTES:
        raise _BadRequest(
            413, f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte cap")
    body = await reader.readexactly(length) if length > 0 else b""
    return method, target, body


class ServeServer:
    """``repro serve``: the asyncio HTTP wrapper around a service.

    Routes: ``GET /v1/healthz``, ``GET /v1/stats``, ``GET /metrics``
    (Prometheus text exposition), and ``POST /v1/query`` → a
    ``Connection: close`` NDJSON event stream.  Malformed queries
    answer 400 with a one-line JSON error — never a traceback — a
    too-large body answers 413, and a draining service answers 503.
    """

    def __init__(self, service: CodesignService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> None:
        """Bind and start accepting (resolves ``port=0`` to the real
        ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        for sock in self._server.sockets or []:
            self.port = int(sock.getsockname()[1])
            break

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, then drain the service (graceful shutdown)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
            except _BadRequest as bad:
                _write_json(writer, bad.status, {"error": bad.reason})
                await writer.drain()
                return
            if request is not None:
                method, target, body = request
                await self._route(writer, method, target, body)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away mid-request; nothing left to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, target: str,
        body: bytes,
    ) -> None:
        if method == "GET" and target in ("/healthz", "/v1/healthz"):
            _write_json(writer, 200, {
                "ok": True, "draining": self.service.draining,
            })
        elif method == "GET" and target in ("/stats", "/v1/stats"):
            _write_json(writer, 200, self.service.stats())
        elif method == "GET" and target in ("/metrics", "/v1/metrics"):
            _write_text(writer, 200, self.service.render_metrics())
        elif method == "POST" and target == "/v1/query":
            await self._query(writer, body)
        else:
            _write_json(writer, 404, {
                "error": f"no route for {method} {target}",
            })

    async def _query(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        if self.service.draining:
            _write_json(writer, 503, {"error": "service is draining"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
            query = Query.from_payload(payload)
        except (ValueError, ReproError) as e:
            _write_json(writer, 400, {"error": str(e)})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        _count_status(200)

        # Events are emitted from the event-loop thread only, so the
        # synchronous write into the stream writer is safe; NDJSON lines
        # flush with the final drain (and on backpressure).  Once the
        # client disconnects mid-stream the events are dropped instead
        # of buffered onto a dead transport — the computation itself
        # keeps running (its futures may be shared with other queries)
        # and its points still land in the store.
        def _emit(ev: dict[str, Any]) -> None:
            if not writer.is_closing():
                writer.write(encode_event(ev))

        sink = CallbackSink(_emit)
        try:
            await self.service.handle_query(query, sink)
        except ReproError as e:
            sink.emit(event("query_error", level=LEVEL_WARNING,
                            reason=str(e)))
