"""The content-addressed result store behind ``repro serve``.

One entry per answered grid point, keyed by
:func:`repro.serve.protocol.point_key` (network hash x backend x grid
point) and holding the *checkpoint point schema verbatim* —
``{"version", "backend", "vlen", "l2_mb", "result"}``, exactly what
:mod:`repro.codesign.executor` writes under ``--checkpoint-dir`` — so
a sweep's checkpoint directory can be ingested as a warm cache
(:meth:`ResultStore.ingest_checkpoint_dir`) and a stored point restores
through the same validation path as a resume.

Consistency guarantees:

- **exactly-once compute** — :meth:`ResultStore.get_or_compute`
  coalesces concurrent callers of one key: the first runs the compute
  in its own thread, the rest block on its future and share the
  result; a failed compute propagates to every waiter and leaves the
  key absent (the next caller retries).
- **bounded memory** — entries are LRU-evicted once the resident
  payloads exceed ``max_bytes`` (sized by their canonical JSON text,
  the same bytes persistence writes).  An entry larger than the whole
  budget is stored nowhere and served pass-through.
- **durable tier** — with ``directory`` set, every ``put`` also
  persists the entry atomically (unique temp + fsync + rename, the
  checkpoint writer's discipline), eviction drops only the memory
  copy, and a ``get`` miss falls back to disk; a service killed
  mid-run therefore restarts warm, losing at most the point that was
  in flight.

Observability: ``serve.store.{hits,misses,coalesced,evictions}`` on
the process-global :data:`repro.obs.COUNTERS`, mirrored as typed
``store.*`` counters on :data:`repro.obs.METRICS` for ``GET /metrics``.
Readers use :meth:`ResultStore.stats` / :meth:`ResultStore.snapshot`,
both of which copy every field under one lock acquisition so the
returned counters are mutually consistent (hits + misses really is the
number of lookups, ``bytes`` matches ``entries``) even while other
threads mutate the store.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.codesign.executor import (
    CHECKPOINT_VERSION,
    MANIFEST_NAME,
    _load_point,
    _manifest_identity,
    _write_json_atomic,
)
from repro.errors import ConfigError
from repro.obs.counters import COUNTERS
from repro.obs.metrics import METRICS
from repro.serve.protocol import Query, point_key

#: Default in-memory budget in MB.
DEFAULT_STORE_BUDGET_MB = 64

#: How a get-or-compute was answered (also the wire-visible source tag).
SOURCE_STORE = "store"
SOURCE_COMPUTED = "computed"
SOURCE_COALESCED = "coalesced"

# Typed mirrors of the serve.store.* counters (same increments, richer
# consumers: /metrics exposition, loadtest hit-rate trajectories).
_M_HITS = METRICS.counter("store.hits", "store lookups answered from memory or disk")
_M_MISSES = METRICS.counter("store.misses", "store lookups that required a compute")
_M_COALESCED = METRICS.counter(
    "store.coalesced", "callers that waited on another caller's in-flight compute"
)
_M_EVICTIONS = METRICS.counter("store.evictions", "entries LRU-evicted over the byte budget")
_M_DISK_HITS = METRICS.counter("store.disk_hits", "hits served by reading the durable tier")
_G_ENTRIES = METRICS.gauge("store.entries", "resident store entries")
_G_BYTES = METRICS.gauge("store.bytes", "resident store payload bytes")


@dataclass
class StoreStats:
    """Effectiveness counters of one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0
    bytes: int = 0
    disk_hits: int = 0

    def to_dict(self) -> dict[str, int]:
        return dict(
            hits=self.hits, misses=self.misses, coalesced=self.coalesced,
            evictions=self.evictions, bytes=self.bytes,
            disk_hits=self.disk_hits,
        )


@dataclass
class _Entry:
    payload: dict[str, Any]
    nbytes: int = field(default=0)


def _payload_bytes(payload: dict[str, Any]) -> int:
    return len(json.dumps(payload).encode("utf-8"))


def _validate_point_payload(payload: Any) -> dict[str, Any]:
    """Schema-check one stored point (the checkpoint point schema)."""
    if not isinstance(payload, dict):
        raise ConfigError("store payload is not a JSON object")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigError(
            f"store payload schema v{version!r} (this store speaks "
            f"v{CHECKPOINT_VERSION})"
        )
    for required in ("backend", "vlen", "l2_mb", "result"):
        if required not in payload:
            raise ConfigError(f"store payload missing {required!r}")
    return payload


class ResultStore:
    """Thread-safe, byte-budgeted, content-addressed result cache."""

    def __init__(
        self,
        max_bytes: int | None = None,
        directory: str | Path | None = None,
    ) -> None:
        self.max_bytes = (
            DEFAULT_STORE_BUDGET_MB * 1024 * 1024
            if max_bytes is None else max(0, int(max_bytes))
        )
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._inflight: dict[str, Future[dict[str, Any]]] = {}
        self._stats = StoreStats()

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """A mutually consistent copy of the effectiveness counters.

        Copied under one lock acquisition, so the fields of the
        returned value agree with each other — unlike reading a live
        stats object field by field while other threads mutate it.
        """
        with self._lock:
            return StoreStats(**self._stats.to_dict())

    def snapshot(self) -> dict[str, int]:
        """Atomic ``/stats`` view: occupancy + counters, one lock.

        Also refreshes the ``store.entries`` / ``store.bytes`` gauges,
        so a ``/metrics`` scrape that follows a ``/stats`` read cannot
        disagree with it about occupancy.
        """
        with self._lock:
            out = {
                "entries": len(self._entries),
                "max_bytes": self.max_bytes,
                **self._stats.to_dict(),
            }
        _G_ENTRIES.set(out["entries"])
        _G_BYTES.set(out["bytes"])
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                COUNTERS.inc("serve.store.hits")
                _M_HITS.inc()
                return entry.payload
        payload = self._disk_get(key)
        if payload is not None:
            with self._lock:
                self._admit_locked(key, payload)
                self._stats.hits += 1
                self._stats.disk_hits += 1
            COUNTERS.inc("serve.store.hits")
            _M_HITS.inc()
            _M_DISK_HITS.inc()
            return payload
        with self._lock:
            self._stats.misses += 1
        COUNTERS.inc("serve.store.misses")
        _M_MISSES.inc()
        return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Insert (or refresh) one point payload under its key."""
        _validate_point_payload(payload)
        with self._lock:
            self._admit_locked(key, payload)
        self._disk_put(key, payload)

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], dict[str, Any]],
    ) -> tuple[dict[str, Any], str]:
        """Answer ``key`` from the store, or compute it exactly once.

        Returns ``(payload, source)`` where ``source`` is
        :data:`SOURCE_STORE` (cache hit), :data:`SOURCE_COMPUTED` (this
        caller ran ``compute``), or :data:`SOURCE_COALESCED` (another
        caller was already computing it; this one waited and shares the
        result).  N concurrent callers of one cold key run ``compute``
        exactly once.
        """
        owner = False
        fut: Future[dict[str, Any]]
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                COUNTERS.inc("serve.store.hits")
                _M_HITS.inc()
                return entry.payload, SOURCE_STORE
            existing = self._inflight.get(key)
            if existing is None:
                fut = Future()
                self._inflight[key] = fut
                owner = True
            else:
                fut = existing
                self._stats.coalesced += 1
                COUNTERS.inc("serve.store.coalesced")
                _M_COALESCED.inc()
        if not owner:
            return fut.result(), SOURCE_COALESCED
        # Disk fallback happens under the in-flight claim so concurrent
        # readers coalesce onto one disk read too.
        disk = self._disk_get(key)
        if disk is not None:
            with self._lock:
                self._admit_locked(key, disk)
                self._stats.hits += 1
                self._stats.disk_hits += 1
                self._inflight.pop(key, None)
            COUNTERS.inc("serve.store.hits")
            _M_HITS.inc()
            _M_DISK_HITS.inc()
            fut.set_result(disk)
            return disk, SOURCE_STORE
        try:
            payload = _validate_point_payload(compute())
        except BaseException as e:
            with self._lock:
                self._inflight.pop(key, None)
            fut.set_exception(e)
            raise
        with self._lock:
            self._stats.misses += 1
            self._admit_locked(key, payload)
            self._inflight.pop(key, None)
        COUNTERS.inc("serve.store.misses")
        _M_MISSES.inc()
        self._disk_put(key, payload)
        fut.set_result(payload)
        return payload, SOURCE_COMPUTED

    # ------------------------------------------------------------------
    def _admit_locked(self, key: str, payload: dict[str, Any]) -> None:
        """Insert under the held lock, LRU-evicting to the byte budget."""
        nbytes = _payload_bytes(payload)
        old = self._entries.pop(key, None)
        if old is not None:
            self._stats.bytes -= old.nbytes
        if nbytes > self.max_bytes:
            return  # larger than the whole budget: serve pass-through
        while self._stats.bytes + nbytes > self.max_bytes and self._entries:
            _, dropped = self._entries.popitem(last=False)
            self._stats.bytes -= dropped.nbytes
            self._stats.evictions += 1
            COUNTERS.inc("serve.store.evictions")
            _M_EVICTIONS.inc()
        self._entries[key] = _Entry(payload, nbytes)
        self._stats.bytes += nbytes

    # ------------------------------------------------------------------
    # Durable tier.
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]
        return self.directory / f"entry_{digest}.json"

    def _disk_get(self, key: str) -> dict[str, Any] | None:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            wrapped = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # absent or torn: recompute, never trust
        if not isinstance(wrapped, dict) or wrapped.get("key") != key:
            return None
        try:
            return _validate_point_payload(wrapped.get("point"))
        except ConfigError:
            return None

    def _disk_put(self, key: str, payload: dict[str, Any]) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        _write_json_atomic(path, {"key": key, "point": payload})

    # ------------------------------------------------------------------
    # Checkpoint-directory ingestion (sweep -> serve round trip).
    # ------------------------------------------------------------------
    def ingest_checkpoint_dir(
        self, directory: str | Path, query: Query
    ) -> int:
        """Warm the store from a ``repro sweep --checkpoint-dir``.

        The directory's manifest must match the query's identity the
        same way a resume would check it (name, backend, policy, base
        config); every readable point file then lands under its
        content-addressed key.  Returns the number of points ingested;
        torn or cross-backend files are skipped exactly as a resume
        would drop them.
        """
        directory = Path(directory)
        mpath = directory / MANIFEST_NAME
        try:
            manifest = json.loads(mpath.read_text(encoding="utf-8"))
        except (OSError, ValueError) as e:
            raise ConfigError(
                f"unreadable sweep manifest {mpath}: {e}"
            ) from None
        identity = _manifest_identity(manifest)
        mismatches = [
            f"{field_}: checkpoint {identity.get(field_)!r} vs query "
            f"{expected!r}"
            for field_, expected in (
                ("version", CHECKPOINT_VERSION),
                ("name", query.network),
                ("backend", query.mode),
                ("hybrid", query.hybrid),
                ("variant", query.variant),
                ("config", asdict(query.config)),
            )
            if identity.get(field_) != expected
        ]
        if mismatches:
            raise ConfigError(
                f"checkpoint directory {directory} does not match the "
                f"query: " + "; ".join(mismatches)
            )
        ingested = 0
        for path in sorted(directory.glob("point_v*_l2mb*.json")):
            result, reason = _load_point(path, query.mode)
            if result is None or reason is not None:
                continue
            payload = json.loads(path.read_text(encoding="utf-8"))
            vlen = int(payload["vlen"])
            l2_mb = int(payload["l2_mb"])
            self.put(point_key(query, vlen, l2_mb), payload)
            ingested += 1
        return ingested
