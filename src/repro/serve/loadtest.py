"""``repro loadtest``: concurrent clients against a live ``repro serve``.

The ROADMAP's serve item calls for "a proper load-test harness driving
thousands of concurrent clients"; this module is that harness, built
from the same stdlib asyncio primitives as the server so the only
dependency is a reachable host:port.

Two driving disciplines:

- **closed loop** (default): ``clients`` coroutines each issue
  ``requests_per_client`` queries back to back — offered load tracks
  service capacity, the classic saturation probe.
- **open loop**: the total request count is fired on a fixed schedule
  (``rate`` requests/second) regardless of completions — offered load
  is independent of the service, exposing queueing delay that a closed
  loop hides (coordinated omission).

Measurement comes from *both* sides of the wire and the report keeps
them separate:

- client-side wall latency per request (exact percentiles over every
  sample), and
- server-side latency percentiles computed from the delta of the
  ``/metrics`` histogram buckets between a pre- and post-run scrape —
  the same numbers a Prometheus ``histogram_quantile`` would give.

The report also verifies the service's core consistency claim under
concurrency: every cold grid point must be **computed exactly once**
across all clients.  The per-event ``source`` tags give the client-side
view; the ``serve.points.computed`` counter delta gives the server-side
view; the run fails verification if any point was computed twice or
the two views disagree (the harness assumes it is the only traffic
during the run).

:func:`run_saturation` repeats the closed-loop run over a ladder of
client counts and summarizes throughput/latency per level, which is
how you find the knee.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.envknobs import env_float
from repro.errors import ConfigError, ObsError, ReproError
from repro.obs.metrics import (
    MetricFamily,
    parse_exposition,
    percentile_from_buckets,
)
from repro.serve.protocol import iter_ndjson

#: Default per-request timeout in seconds (``REPRO_LOADTEST_TIMEOUT``).
DEFAULT_TIMEOUT = env_float("REPRO_LOADTEST_TIMEOUT", 300.0, minimum=1.0)

#: Prometheus-side series the report reads (post-rename, pre-suffix).
_SERVER_HIST = "repro_serve_query_seconds"
_SERVER_COMPUTED = "repro_serve_points_computed"

_REPORT_SCHEMA = 1


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client (Connection: close, read-to-EOF).
# ----------------------------------------------------------------------
async def _http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    body: bytes = b"",
    timeout: float = DEFAULT_TIMEOUT,
) -> tuple[int, bytes]:
    """One HTTP/1.1 exchange; returns ``(status, body_bytes)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    sep = raw.find(b"\r\n\r\n")
    if sep < 0:
        raise ConfigError(
            f"malformed HTTP response from {host}:{port} "
            f"({len(raw)} bytes, no header terminator)"
        )
    status_line = raw[:sep].split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConfigError(f"malformed HTTP status line: {status_line!r}")
    return int(parts[1]), raw[sep + 4:]


async def fetch_metrics(
    host: str, port: int, timeout: float = DEFAULT_TIMEOUT
) -> dict[str, MetricFamily]:
    """Scrape and parse ``GET /metrics``."""
    status, body = await _http_request(
        host, port, "GET", "/metrics", timeout=timeout)
    if status != 200:
        raise ConfigError(f"GET /metrics answered {status}")
    return parse_exposition(body.decode("utf-8"))


async def fetch_stats(
    host: str, port: int, timeout: float = DEFAULT_TIMEOUT
) -> dict[str, Any]:
    """Fetch and decode ``GET /v1/stats``."""
    status, body = await _http_request(
        host, port, "GET", "/v1/stats", timeout=timeout)
    if status != 200:
        raise ConfigError(f"GET /v1/stats answered {status}")
    doc = json.loads(body.decode("utf-8"))
    if not isinstance(doc, dict):
        raise ConfigError("/v1/stats did not return a JSON object")
    return doc


# ----------------------------------------------------------------------
# One query from one client.
# ----------------------------------------------------------------------
@dataclass
class RequestOutcome:
    """What one client observed for one query."""

    status: int = 0
    seconds: float = 0.0
    events: list[dict[str, Any]] = field(default_factory=list)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _iter_lines(raw: bytes) -> Iterator[bytes]:
    yield from raw.split(b"\n")


async def _run_query(
    host: str, port: int, body: bytes, timeout: float
) -> RequestOutcome:
    out = RequestOutcome()
    t0 = time.perf_counter()
    try:
        status, raw = await _http_request(
            host, port, "POST", "/v1/query", body, timeout)
        out.status = status
        out.events = list(iter_ndjson(_iter_lines(raw)))
    except (ReproError, OSError, asyncio.TimeoutError, ValueError) as e:
        out.error = f"{type(e).__name__}: {e}"
        out.seconds = time.perf_counter() - t0
        return out
    out.seconds = time.perf_counter() - t0
    if status != 200:
        out.error = f"HTTP {status}"
    elif not out.events or out.events[-1].get("event") != "query_result":
        tail = out.events[-1].get("event") if out.events else None
        reason = out.events[-1].get("reason") if out.events else None
        out.error = f"stream ended with {tail!r} ({reason})"
    return out


# ----------------------------------------------------------------------
# Percentile helpers.
# ----------------------------------------------------------------------
def _exact_percentiles(samples: Sequence[float]) -> dict[str, float]:
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(samples)
    out: dict[str, float] = {}
    for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        rank = min(max(0, math.ceil(q * len(ordered)) - 1),
                   len(ordered) - 1)
        out[label] = round(ordered[rank], 6)
    out["max"] = round(ordered[-1], 6)
    return out


def _histogram_delta(
    before: dict[str, MetricFamily],
    after: dict[str, MetricFamily],
    name: str,
) -> tuple[list[float], list[float]]:
    """Per-bucket cumulative-count delta of one histogram family."""
    fam_after = after.get(name)
    if fam_after is None:
        raise ObsError(f"scrape has no histogram family {name!r}")
    bounds, cum_after = fam_after.histogram_cumulative()
    fam_before = before.get(name)
    if fam_before is None:
        return bounds, cum_after
    bounds_b, cum_before = fam_before.histogram_cumulative()
    if bounds_b != bounds:
        raise ObsError(f"histogram {name!r} changed buckets mid-run")
    return bounds, [a - b for a, b in zip(cum_after, cum_before)]


def _counter_delta(
    before: dict[str, MetricFamily],
    after: dict[str, MetricFamily],
    name: str,
) -> float:
    fam_after = after.get(name)
    if fam_after is None:
        raise ObsError(f"scrape has no counter family {name!r}")
    value_after = fam_after.value("_total")
    fam_before = before.get(name)
    if fam_before is None:
        return value_after
    return value_after - fam_before.value("_total")


# ----------------------------------------------------------------------
# The run.
# ----------------------------------------------------------------------
async def run_loadtest(
    host: str,
    port: int,
    payload: Mapping[str, Any],
    clients: int = 32,
    requests_per_client: int = 1,
    loop_mode: str = "closed",
    rate: float | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    sample_interval: float = 0.25,
) -> dict[str, Any]:
    """Drive one load test and return the JSON report dict.

    Args:
        host, port: a live ``repro serve``.
        payload: the ``POST /v1/query`` body (one query; every client
            sends the same one, which is exactly the regime that
            exercises store hits and cross-client coalescing).
        clients: concurrent client count (closed loop) or the
            concurrency label recorded in the report (open loop).
        requests_per_client: queries each client issues back to back.
        loop_mode: ``"closed"`` or ``"open"``.
        rate: open-loop arrival rate in requests/second (required for
            ``loop_mode="open"``).
        timeout: per-request timeout in seconds.
        sample_interval: period of the ``/v1/stats`` hit-rate sampler.
    """
    if clients < 1:
        raise ConfigError(f"loadtest needs >= 1 client, got {clients}")
    if requests_per_client < 1:
        raise ConfigError(
            f"loadtest needs >= 1 request per client, got "
            f"{requests_per_client}")
    if loop_mode not in ("closed", "open"):
        raise ConfigError(
            f"unknown loop mode {loop_mode!r} (expected 'closed' or 'open')")
    if loop_mode == "open" and (rate is None or rate <= 0):
        raise ConfigError("open-loop mode needs a positive --rate")

    status, _ = await _http_request(
        host, port, "GET", "/v1/healthz", timeout=timeout)
    if status != 200:
        raise ConfigError(
            f"no healthy service at {host}:{port} (healthz: {status})")

    body = json.dumps(dict(payload)).encode("utf-8")
    before = await fetch_metrics(host, port, timeout)

    trajectory: list[dict[str, float]] = []
    stop_sampling = asyncio.Event()

    async def _sampler(t0: float) -> None:
        while not stop_sampling.is_set():
            try:
                stats = await fetch_stats(host, port, timeout)
            except (ReproError, OSError, ValueError, asyncio.TimeoutError):
                break  # the run's own requests still tell the story
            store = stats.get("store", {})
            hits = float(store.get("hits", 0))
            misses = float(store.get("misses", 0))
            lookups = hits + misses
            trajectory.append({
                "t": round(time.perf_counter() - t0, 3),
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            })
            try:
                await asyncio.wait_for(
                    stop_sampling.wait(), sample_interval)
            except asyncio.TimeoutError:
                pass

    outcomes: list[RequestOutcome] = []

    async def _closed_client() -> None:
        for _ in range(requests_per_client):
            outcomes.append(await _run_query(host, port, body, timeout))

    async def _open_shot(when: float, t0: float) -> None:
        delay = when - (time.perf_counter() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        outcomes.append(await _run_query(host, port, body, timeout))

    t0 = time.perf_counter()
    sampler = asyncio.create_task(_sampler(t0))
    if loop_mode == "closed":
        await asyncio.gather(*(_closed_client() for _ in range(clients)))
    else:
        assert rate is not None
        total = clients * requests_per_client
        await asyncio.gather(
            *(_open_shot(i / rate, t0) for i in range(total)))
    wall = time.perf_counter() - t0
    stop_sampling.set()
    await sampler

    after = await fetch_metrics(host, port, timeout)
    return _build_report(
        host=host, port=port, clients=clients,
        requests_per_client=requests_per_client, loop_mode=loop_mode,
        rate=rate, wall=wall, outcomes=outcomes,
        before=before, after=after, trajectory=trajectory,
    )


def _build_report(
    host: str,
    port: int,
    clients: int,
    requests_per_client: int,
    loop_mode: str,
    rate: float | None,
    wall: float,
    outcomes: list[RequestOutcome],
    before: dict[str, MetricFamily],
    after: dict[str, MetricFamily],
    trajectory: list[dict[str, float]],
) -> dict[str, Any]:
    ok = [o for o in outcomes if o.ok]
    errors = [o.error for o in outcomes if o.error is not None]

    # Server-side latency: /metrics histogram bucket deltas, the same
    # arithmetic Prometheus histogram_quantile() runs on a scrape pair.
    bounds, cum_delta = _histogram_delta(before, after, _SERVER_HIST)
    server_latency = {
        label: round(percentile_from_buckets(bounds, cum_delta, q), 6)
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
    }
    server_latency["count"] = cum_delta[-1] if cum_delta else 0.0

    # Point mix and exactly-once verification from the event streams.
    served = {"store": 0, "computed": 0, "coalesced": 0}
    computed_per_point: dict[tuple[int, int], int] = {}
    for outcome in ok:
        for ev in outcome.events:
            if ev.get("event") != "point":
                continue
            source = str(ev.get("source"))
            if source in served:
                served[source] += 1
            point = (int(ev.get("vlen", 0)), int(ev.get("l2_mb", 0)))
            if source == "computed":
                computed_per_point[point] = (
                    computed_per_point.get(point, 0) + 1)
    violations = sorted(
        pt for pt, n in computed_per_point.items() if n > 1)
    client_computed = sum(computed_per_point.values())
    server_computed = _counter_delta(before, after, _SERVER_COMPUTED)
    exactly_once = {
        "ok": not violations and client_computed == server_computed,
        "client_computed": client_computed,
        "server_computed": server_computed,
        "violations": [list(pt) for pt in violations],
    }

    final_hit_rate = trajectory[-1]["hit_rate"] if trajectory else None
    return {
        "schema": _REPORT_SCHEMA,
        "config": {
            "host": host, "port": port, "clients": clients,
            "requests_per_client": requests_per_client,
            "loop": loop_mode, "rate": rate,
        },
        "wall_seconds": round(wall, 6),
        "requests": {
            "total": len(outcomes),
            "ok": len(ok),
            "failed": len(outcomes) - len(ok),
            "throughput_per_s": round(len(ok) / wall, 3) if wall else 0.0,
            "errors": errors[:10],
        },
        "latency": {
            "server_query_seconds": server_latency,
            "client_seconds": _exact_percentiles(
                [o.seconds for o in ok]),
        },
        "points": {**served, "exactly_once": exactly_once},
        "hit_rate": {
            "final": final_hit_rate,
            "trajectory": trajectory,
        },
    }


# ----------------------------------------------------------------------
# Saturation sweep.
# ----------------------------------------------------------------------
async def run_saturation(
    host: str,
    port: int,
    payload: Mapping[str, Any],
    levels: Sequence[int],
    requests_per_client: int = 1,
    timeout: float = DEFAULT_TIMEOUT,
) -> dict[str, Any]:
    """Closed-loop runs over a ladder of client counts.

    Returns ``{"levels": [per-level summaries], "reports": [...]}``;
    the knee is where throughput flattens while p99 keeps climbing.
    """
    if not levels:
        raise ConfigError("saturation sweep needs >= 1 client level")
    reports: list[dict[str, Any]] = []
    summaries: list[dict[str, Any]] = []
    for level in levels:
        report = await run_loadtest(
            host, port, payload, clients=int(level),
            requests_per_client=requests_per_client, timeout=timeout,
        )
        reports.append(report)
        latency = report["latency"]
        summaries.append({
            "clients": int(level),
            "throughput_per_s": report["requests"]["throughput_per_s"],
            "failed": report["requests"]["failed"],
            "server_p50": latency["server_query_seconds"]["p50"],
            "server_p99": latency["server_query_seconds"]["p99"],
            "client_p99": latency["client_seconds"]["p99"],
        })
    return {"schema": _REPORT_SCHEMA, "levels": summaries,
            "reports": reports}


def render_report_text(report: dict[str, Any]) -> str:
    """A terminal-friendly digest of one loadtest report."""
    cfg = report["config"]
    req = report["requests"]
    lat = report["latency"]
    pts = report["points"]
    once = pts["exactly_once"]
    lines = [
        f"loadtest {cfg['clients']} clients x "
        f"{cfg['requests_per_client']} requests ({cfg['loop']} loop) "
        f"against {cfg['host']}:{cfg['port']}",
        f"  requests   {req['ok']}/{req['total']} ok, "
        f"{req['throughput_per_s']}/s over {report['wall_seconds']}s",
        f"  server     p50 {lat['server_query_seconds']['p50']}s  "
        f"p95 {lat['server_query_seconds']['p95']}s  "
        f"p99 {lat['server_query_seconds']['p99']}s (from /metrics)",
        f"  client     p50 {lat['client_seconds']['p50']}s  "
        f"p99 {lat['client_seconds']['p99']}s  "
        f"max {lat['client_seconds']['max']}s",
        f"  points     store {pts['store']}  computed {pts['computed']}  "
        f"coalesced {pts['coalesced']}",
        f"  exactly-once {'OK' if once['ok'] else 'VIOLATED'} "
        f"(client {once['client_computed']} / "
        f"server {once['server_computed']:.0f})",
    ]
    if report["hit_rate"]["final"] is not None:
        lines.append(f"  hit rate   {report['hit_rate']['final']}")
    if req["errors"]:
        lines.append(f"  errors     {req['errors'][:3]}")
    return "\n".join(lines)
