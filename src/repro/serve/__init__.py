"""Co-design-as-a-service: the async query front-end over the sweep.

The paper's study answers one (network x VLEN x L2) grid for one user;
the production framing is many concurrent clients submitting custom
darknet ``.cfg`` queries, with hot configurations answered from cache
and cold ones scheduled.  This package provides that serving loop,
stdlib-only:

- :mod:`repro.serve.protocol` — the query schema (named network or
  darknet cfg text, VLEN/L2 grid, backend mode), the content address
  that keys results (network hash x backend x grid point), NDJSON
  framing, and the blocking client used by ``repro query``;
- :mod:`repro.serve.store` — the content-addressed result store: a
  thread-safe LRU with a byte budget, exactly-once get-or-compute
  coalescing, optional disk persistence, and ingestion of
  ``repro sweep --checkpoint-dir`` directories (the store speaks the
  checkpoint JSON schema verbatim);
- :mod:`repro.serve.service` — the asyncio service: per-query NDJSON
  event streams (:mod:`repro.obs` events are the wire format),
  in-flight point coalescing across clients, a bounded worker pool
  driving :func:`repro.codesign.executor.evaluate_column`, the HTTP
  front-end (``repro serve``) with ``GET /metrics`` Prometheus
  exposition, per-query trace trees and a JSONL access log, and
  graceful drain-on-shutdown;
- :mod:`repro.serve.loadtest` — the ``repro loadtest`` harness:
  closed/open-loop asyncio client fleets, JSON reports with
  server-side (``/metrics`` histogram) and client-side latency
  percentiles, hit-rate trajectories, exactly-once verification, and
  a saturation sweep over client counts.

Results served from the store are bit-identical to a direct
:func:`repro.codesign.codesign_sweep` call: points round-trip through
the same shortest-repr JSON as sweep checkpoints, which preserves every
float exactly.
"""

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Query,
    iter_ndjson,
    network_hash,
    point_key,
    query_identity,
    stream_query,
)
from repro.serve.loadtest import (
    RequestOutcome,
    fetch_metrics,
    fetch_stats,
    render_report_text,
    run_loadtest,
    run_saturation,
)
from repro.serve.service import CodesignService, ServeServer
from repro.serve.store import ResultStore, StoreStats

__all__ = [
    "PROTOCOL_VERSION",
    "Query",
    "query_identity",
    "network_hash",
    "point_key",
    "iter_ndjson",
    "stream_query",
    "ResultStore",
    "StoreStats",
    "CodesignService",
    "ServeServer",
    "RequestOutcome",
    "run_loadtest",
    "run_saturation",
    "render_report_text",
    "fetch_metrics",
    "fetch_stats",
]
