"""VGG16 network model (Darknet ``vgg-16.cfg`` convolutional trunk).

The paper runs VGG16 image-classification inference on a 768x576 input.
All 13 convolutions are 3x3 stride-1 pad-1, which is why VGG16 is the
pure-Winograd workload of the evaluation; five 2x2/2 max-pool layers
halve the resolution between stages.  (The cfg's trailing
fully-connected/softmax head is dropped — the paper's co-design study
concerns the convolutional layers.)
"""

from __future__ import annotations

from repro.conv.layer import ConvLayerSpec
from repro.nets.darknet_cfg import build_layers, conv_layers
from repro.nets.layers import LayerSpec

#: Darknet vgg-16.cfg, convolutional trunk.
VGG16_CFG = """
[net]
height=576
width=768
channels=3

[convolutional]
filters=64
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=64
size=3
stride=1
pad=1
activation=relu

[maxpool]
size=2
stride=2

[convolutional]
filters=128
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=128
size=3
stride=1
pad=1
activation=relu

[maxpool]
size=2
stride=2

[convolutional]
filters=256
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=256
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=256
size=3
stride=1
pad=1
activation=relu

[maxpool]
size=2
stride=2

[convolutional]
filters=512
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=512
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=512
size=3
stride=1
pad=1
activation=relu

[maxpool]
size=2
stride=2

[convolutional]
filters=512
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=512
size=3
stride=1
pad=1
activation=relu

[convolutional]
filters=512
size=3
stride=1
pad=1
activation=relu

[maxpool]
size=2
stride=2
"""


def vgg16_layers(height: int = 576, width: int = 768) -> list[LayerSpec]:
    """All VGG16 trunk layers (convolutions + pools) at the paper's input."""
    return build_layers(VGG16_CFG, height=height, width=width, name_prefix="vgg.")


def vgg16_conv_layers(height: int = 576, width: int = 768) -> list[ConvLayerSpec]:
    """The 13 convolutional layers."""
    return conv_layers(vgg16_layers(height, width))
