"""Non-convolutional layer specifications of the Darknet networks.

The paper simulates the first 20 layers of YOLOv3, of which 15 are
convolutional and 5 are residual shortcuts; VGG16's Darknet definition
interleaves max-pooling layers.  Shortcuts and pools are cheap
streaming operations, but they are part of the simulated network, so
they get honest (if simple) cost models in
:mod:`repro.model.aux_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conv.layer import ConvLayerSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class ShortcutSpec:
    """Residual addition of two equally-shaped activation tensors."""

    name: str
    c: int
    h: int
    w: int

    def __post_init__(self) -> None:
        if min(self.c, self.h, self.w) < 1:
            raise ConfigError(f"non-positive dimension in shortcut {self.name}")

    @property
    def elems(self) -> int:
        return self.c * self.h * self.w

    @property
    def flops(self) -> int:
        return self.elems  # one add per element


@dataclass(frozen=True)
class MaxPoolSpec:
    """Darknet max-pooling layer."""

    name: str
    c: int
    h: int
    w: int
    size: int = 2
    stride: int = 2

    def __post_init__(self) -> None:
        if min(self.c, self.h, self.w, self.size, self.stride) < 1:
            raise ConfigError(f"bad maxpool spec {self.name}")
        if self.h < self.stride or self.w < self.stride:
            # Mirrors conv_out_size: a pool whose window cannot take a
            # single step produces an empty output tensor.
            raise ConfigError(
                f"maxpool {self.name} pools {self.h}x{self.w} to nothing "
                f"(stride={self.stride})"
            )

    @property
    def h_out(self) -> int:
        return self.h // self.stride

    @property
    def w_out(self) -> int:
        return self.w // self.stride

    @property
    def out_elems(self) -> int:
        return self.c * self.h_out * self.w_out


#: Any layer the network simulator understands.
LayerSpec = ConvLayerSpec | ShortcutSpec | MaxPoolSpec
