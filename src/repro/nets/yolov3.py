"""YOLOv3 network model — the first 20 layers of Darknet ``yolov3.cfg``.

"To avoid extreme simulation times, and without loss of generality, we
simulate only the first 20 layers of the network model, out of which 15
are convolutional layers" (paper, Section 5).  The composition of those
20 layers is what makes YOLOv3 the *hybrid* workload:

- 3 convolutions have stride 2 (downsampling),
- 6 convolutions are 1x1 (bottlenecks),
- the first convolution has only 3 input channels (cannot fill even a
  512-bit vector with inter-tile channel parallelism),
- 5 layers are residual shortcuts (not convolutions),

leaving exactly **5** convolutions for Winograd; the rest run
im2col+GEMM.  The test suite asserts this census against the paper.
"""

from __future__ import annotations

from repro.conv.layer import ConvLayerSpec
from repro.nets.darknet_cfg import build_layers, conv_layers
from repro.nets.layers import LayerSpec

#: Darknet yolov3.cfg, first 20 layers.
YOLOV3_CFG_HEAD = """
[net]
height=576
width=768
channels=3

# Layer 0
[convolutional]
batch_normalize=1
filters=32
size=3
stride=1
pad=1
activation=leaky

# Layer 1 - downsample
[convolutional]
batch_normalize=1
filters=64
size=3
stride=2
pad=1
activation=leaky

# Layer 2
[convolutional]
batch_normalize=1
filters=32
size=1
stride=1
pad=1
activation=leaky

# Layer 3
[convolutional]
batch_normalize=1
filters=64
size=3
stride=1
pad=1
activation=leaky

# Layer 4
[shortcut]
from=-3
activation=linear

# Layer 5 - downsample
[convolutional]
batch_normalize=1
filters=128
size=3
stride=2
pad=1
activation=leaky

# Layer 6
[convolutional]
batch_normalize=1
filters=64
size=1
stride=1
pad=1
activation=leaky

# Layer 7
[convolutional]
batch_normalize=1
filters=128
size=3
stride=1
pad=1
activation=leaky

# Layer 8
[shortcut]
from=-3
activation=linear

# Layer 9
[convolutional]
batch_normalize=1
filters=64
size=1
stride=1
pad=1
activation=leaky

# Layer 10
[convolutional]
batch_normalize=1
filters=128
size=3
stride=1
pad=1
activation=leaky

# Layer 11
[shortcut]
from=-3
activation=linear

# Layer 12 - downsample
[convolutional]
batch_normalize=1
filters=256
size=3
stride=2
pad=1
activation=leaky

# Layer 13
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 14
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 15
[shortcut]
from=-3
activation=linear

# Layer 16
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 17
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 18
[shortcut]
from=-3
activation=linear

# Layer 19
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 20
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 21
[shortcut]
from=-3
activation=linear

# Layer 22
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 23
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 24
[shortcut]
from=-3
activation=linear

# Layer 25
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 26
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 27
[shortcut]
from=-3
activation=linear

# Layer 28
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 29
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 30
[shortcut]
from=-3
activation=linear

# Layer 31
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 32
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 33
[shortcut]
from=-3
activation=linear

# Layer 34
[convolutional]
batch_normalize=1
filters=128
size=1
stride=1
pad=1
activation=leaky

# Layer 35
[convolutional]
batch_normalize=1
filters=256
size=3
stride=1
pad=1
activation=leaky

# Layer 36
[shortcut]
from=-3
activation=linear
"""

#: Darknet's 1x1 layers set pad=1, but padding = size//2 = 0 — the
#: parser reproduces that quirk through the ``padding`` computation.

#: Layers available in the embedded cfg (the paper simulates 20; the
#: remainder of Darknet-53's 256-channel residual stage is included so
#: deeper prefixes can be explored beyond the paper).
MAX_EMBEDDED_LAYERS = 37


def yolov3_layers(
    height: int = 576, width: int = 768, max_layers: int = 20
) -> list[LayerSpec]:
    """The paper's simulated YOLOv3 prefix at 768x576.

    ``max_layers`` defaults to the paper's 20; anything up to
    :data:`MAX_EMBEDDED_LAYERS` is supported.
    """
    return build_layers(
        YOLOV3_CFG_HEAD, height=height, width=width,
        max_layers=max_layers, name_prefix="yolo.",
    )


def yolov3_conv_layers(height: int = 576, width: int = 768) -> list[ConvLayerSpec]:
    """The 15 convolutional layers of the 20-layer prefix."""
    return conv_layers(yolov3_layers(height, width))
