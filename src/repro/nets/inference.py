"""Network-level inference simulation (the paper's gem5 runs).

Composes the per-layer analytical models over a whole network prefix —
convolutions via the hybrid (or pure-GEMM baseline) policy, shortcuts
and pools via their streaming models — and reports per-layer plus
total statistics, like gem5's end-of-simulation stats dump.
"""

from __future__ import annotations

from repro.conv.layer import ConvAlgorithm, ConvLayerSpec, choose_algorithm
from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.aux_model import maxpool_model, shortcut_model
from repro.model.layer_model import NetworkResult, layer_phases
from repro.model.traffic import PhaseModel, stats_from_model
from repro.nets.layers import LayerSpec, MaxPoolSpec, ShortcutSpec
from repro.obs import counters_from_stats, span
from repro.sim.stats import SimStats
from repro.sim.system import SystemConfig


def layer_phase_models(
    layer: LayerSpec,
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> tuple[str, list[PhaseModel]]:
    """Label and phase models of one layer under the sweep's policy.

    The phase models depend on the configuration only through the
    vector length (``config.lanes``), never the cache sizes — the
    property the co-design sweep's fast backend exploits by building
    them once per VLEN and reusing them across the whole L2 axis.
    """
    if isinstance(layer, ConvLayerSpec):
        algo = choose_algorithm(layer, hybrid=hybrid)
        phases = layer_phases(layer, config, algorithm=algo, variant=variant)
        return f"{layer.name}[{algo.value}]", phases
    if isinstance(layer, ShortcutSpec):
        return f"{layer.name}[shortcut]", [shortcut_model(layer, config.lanes)]
    if isinstance(layer, MaxPoolSpec):
        return f"{layer.name}[maxpool]", [maxpool_model(layer, config.lanes)]
    raise ConfigError(f"unknown layer type {type(layer).__name__}")


def simulate_inference(
    name: str,
    layers: list[LayerSpec],
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> NetworkResult:
    """Simulate one inference pass over a network prefix.

    Args:
        name: report label (e.g. "yolov3-20L").
        layers: layer specs from :mod:`repro.nets`.
        config: the simulated system configuration.
        hybrid: the paper's hybrid policy (Winograd where eligible) vs
            the pure im2col+GEMM baseline.
        variant: tuple-multiplication variant for Winograd layers.

    Returns:
        A :class:`~repro.model.layer_model.NetworkResult`.
    """
    if not layers:
        raise ConfigError("network has no layers")
    per_layer: list[SimStats] = []
    total = SimStats(freq_ghz=config.freq_ghz, label=f"{name} total")
    with span("simulate_inference", network=name,
              vlen_bits=config.vlen_bits, l2_mb=config.l2_mb,
              freq_ghz=config.freq_ghz,
              hybrid=hybrid, variant=variant) as net_span:
        for layer in layers:
            with span("layer", label=layer.name) as layer_span:
                label, phases = layer_phase_models(
                    layer, config, hybrid=hybrid, variant=variant
                )
                stats = stats_from_model(phases, config, label=label)
                layer_span.set_attrs(label=label)
                layer_span.add_counters(**counters_from_stats(stats))
            per_layer.append(stats)
            total.merge(stats)
        net_span.add_counters(**counters_from_stats(total))
    return NetworkResult(name=name, per_layer=tuple(per_layer), total=total)


def winograd_layer_count(layers: list[LayerSpec]) -> int:
    """How many layers the hybrid policy sends to Winograd."""
    return sum(
        1
        for l in layers
        if isinstance(l, ConvLayerSpec)
        and choose_algorithm(l) is ConvAlgorithm.WINOGRAD
    )
