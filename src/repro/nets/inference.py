"""Network-level inference simulation (the paper's gem5 runs).

Composes the per-layer analytical models over a whole network prefix —
convolutions via the hybrid (or pure-GEMM baseline) policy, shortcuts
and pools via their streaming models — and reports per-layer plus
total statistics, like gem5's end-of-simulation stats dump.

Record/replay: building the phase models is the dominant cost of
:func:`simulate_inference` and depends on the configuration only
through the vector length.  :func:`record_inference` captures the
L2-independent state of every layer once; the resulting
:class:`NetworkRecording` then answers any L2 size with results
bit-identical to a fresh :func:`simulate_inference` call — the exact
sweep backend records one column and replays it across the L2 axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conv.layer import ConvAlgorithm, ConvLayerSpec, choose_algorithm
from repro.errors import ConfigError
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.aux_model import maxpool_model, shortcut_model
from repro.model.layer_model import NetworkResult, layer_phases
from repro.model.traffic import CondensedTraffic, PhaseModel, stats_from_model
from repro.nets.layers import LayerSpec, MaxPoolSpec, ShortcutSpec
from repro.obs import counters_from_stats, span
from repro.sim.stats import SimStats
from repro.sim.system import SystemConfig


def layer_phase_models(
    layer: LayerSpec,
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> tuple[str, list[PhaseModel]]:
    """Label and phase models of one layer under the sweep's policy.

    The phase models depend on the configuration only through the
    vector length (``config.lanes``), never the cache sizes — the
    property the co-design sweep's fast backend exploits by building
    them once per VLEN and reusing them across the whole L2 axis.
    """
    if isinstance(layer, ConvLayerSpec):
        algo = choose_algorithm(layer, hybrid=hybrid)
        phases = layer_phases(layer, config, algorithm=algo, variant=variant)
        return f"{layer.name}[{algo.value}]", phases
    if isinstance(layer, ShortcutSpec):
        return f"{layer.name}[shortcut]", [shortcut_model(layer, config.lanes)]
    if isinstance(layer, MaxPoolSpec):
        return f"{layer.name}[maxpool]", [maxpool_model(layer, config.lanes)]
    raise ConfigError(f"unknown layer type {type(layer).__name__}")


def simulate_inference(
    name: str,
    layers: list[LayerSpec],
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> NetworkResult:
    """Simulate one inference pass over a network prefix.

    Args:
        name: report label (e.g. "yolov3-20L").
        layers: layer specs from :mod:`repro.nets`.
        config: the simulated system configuration.
        hybrid: the paper's hybrid policy (Winograd where eligible) vs
            the pure im2col+GEMM baseline.
        variant: tuple-multiplication variant for Winograd layers.

    Returns:
        A :class:`~repro.model.layer_model.NetworkResult`.
    """
    if not layers:
        raise ConfigError("network has no layers")
    per_layer: list[SimStats] = []
    total = SimStats(freq_ghz=config.freq_ghz, label=f"{name} total")
    with span("simulate_inference", network=name,
              vlen_bits=config.vlen_bits, l2_mb=config.l2_mb,
              freq_ghz=config.freq_ghz,
              hybrid=hybrid, variant=variant) as net_span:
        for layer in layers:
            with span("layer", label=layer.name) as layer_span:
                label, phases = layer_phase_models(
                    layer, config, hybrid=hybrid, variant=variant
                )
                stats = stats_from_model(phases, config, label=label)
                layer_span.set_attrs(label=label)
                layer_span.add_counters(**counters_from_stats(stats))
            per_layer.append(stats)
            total.merge(stats)
        net_span.add_counters(**counters_from_stats(total))
    return NetworkResult(name=name, per_layer=tuple(per_layer), total=total)


@dataclass(frozen=True)
class LayerRecording:
    """One layer's L2-independent state.

    ``template`` holds everything a :class:`SimStats` needs that the L2
    size cannot change — issue cycles, instruction/element/flop counts,
    the label — captured by running :func:`~repro.model.traffic.stats_from_model`
    once at record time; ``traffic`` is the condensed traffic whose
    :meth:`~repro.model.traffic.CondensedTraffic.evaluate` reproduces
    the hierarchy stats bit-identically for any cache sizes.
    """

    template: SimStats
    traffic: CondensedTraffic

    def evaluate(self, config: SystemConfig) -> SimStats:
        """The layer's stats at ``config`` — bit-identical to
        ``stats_from_model(phases, config, label)`` on the recorded
        phases (``config`` may only differ from the record-time
        configuration in cache sizes)."""
        hstats = self.traffic.evaluate(
            config.l1_kb * 1024, config.l2_mb * 1024 * 1024,
            config.line_bytes,
        )
        l2_stall, dram_stall = config.memory_timings().stall_cycles(
            hstats.l1.misses, hstats.l2.misses, hstats.l2.writebacks
        )
        t = self.template
        return SimStats(
            freq_ghz=t.freq_ghz,
            issue_cycles=t.issue_cycles,
            l2_stall_cycles=l2_stall,
            dram_stall_cycles=dram_stall,
            instrs=dict(t.instrs),
            elems=dict(t.elems),
            flops=t.flops,
            hierarchy=hstats,
            label=t.label,
        )


@dataclass(frozen=True)
class NetworkRecording:
    """A network's L2-independent state, replayable across the L2 axis.

    ``config`` is the record-time configuration; :meth:`evaluate`
    overrides its ``l2_mb`` and emits the same ``simulate_inference`` /
    per-``layer`` span structure (with identical counters) as the live
    simulation, so traces of replayed and fresh runs are
    indistinguishable.
    """

    name: str
    config: SystemConfig
    hybrid: bool
    variant: str
    layers: tuple[LayerRecording, ...]

    def evaluate(self, l2_mb: int) -> NetworkResult:
        """Replay the recording at one L2 size — bit-identical to
        ``simulate_inference(name, layers, config.with_(l2_mb=l2_mb),
        ...)``."""
        cfg = self.config.with_(l2_mb=l2_mb)
        per_layer: list[SimStats] = []
        total = SimStats(freq_ghz=cfg.freq_ghz, label=f"{self.name} total")
        with span("simulate_inference", network=self.name,
                  vlen_bits=cfg.vlen_bits, l2_mb=cfg.l2_mb,
                  freq_ghz=cfg.freq_ghz,
                  hybrid=self.hybrid, variant=self.variant) as net_span:
            for rec in self.layers:
                with span("layer", label=rec.template.label) as layer_span:
                    stats = rec.evaluate(cfg)
                    layer_span.add_counters(**counters_from_stats(stats))
                per_layer.append(stats)
                total.merge(stats)
            net_span.add_counters(**counters_from_stats(total))
        return NetworkResult(
            name=self.name, per_layer=tuple(per_layer), total=total
        )


def record_inference(
    name: str,
    layers: list[LayerSpec],
    config: SystemConfig,
    hybrid: bool = True,
    variant: str = SLIDEUP,
) -> NetworkRecording:
    """Record a network's L2-independent state for replay.

    The phase models depend on the configuration only through the
    vector length (see :func:`layer_phase_models`), so a recording made
    at any L2 size evaluates bit-identically at every other:
    ``record_inference(name, layers, cfg).evaluate(l2)`` equals
    ``simulate_inference(name, layers, cfg.with_(l2_mb=l2))``.
    """
    if not layers:
        raise ConfigError("network has no layers")
    recs: list[LayerRecording] = []
    with span("record_inference", network=name,
              vlen_bits=config.vlen_bits, hybrid=hybrid, variant=variant):
        for layer in layers:
            label, phases = layer_phase_models(
                layer, config, hybrid=hybrid, variant=variant
            )
            recs.append(LayerRecording(
                template=stats_from_model(phases, config, label=label),
                traffic=CondensedTraffic.from_phases(phases),
            ))
    return NetworkRecording(
        name=name, config=config, hybrid=hybrid, variant=variant,
        layers=tuple(recs),
    )


def winograd_layer_count(layers: list[LayerSpec]) -> int:
    """How many layers the hybrid policy sends to Winograd."""
    return sum(
        1
        for l in layers
        if isinstance(l, ConvLayerSpec)
        and choose_algorithm(l) is ConvAlgorithm.WINOGRAD
    )
