"""Network models: Darknet cfg parsing, VGG16 and YOLOv3 geometry,
and the inference-simulation driver."""

from repro.nets.darknet_cfg import build_layers, conv_layers, parse_cfg
from repro.nets.inference import simulate_inference, winograd_layer_count
from repro.nets.layers import LayerSpec, MaxPoolSpec, ShortcutSpec
from repro.nets.vgg16 import VGG16_CFG, vgg16_conv_layers, vgg16_layers
from repro.nets.yolov3 import YOLOV3_CFG_HEAD, yolov3_conv_layers, yolov3_layers

__all__ = [
    "parse_cfg",
    "build_layers",
    "conv_layers",
    "LayerSpec",
    "ShortcutSpec",
    "MaxPoolSpec",
    "VGG16_CFG",
    "vgg16_layers",
    "vgg16_conv_layers",
    "YOLOV3_CFG_HEAD",
    "yolov3_layers",
    "yolov3_conv_layers",
    "simulate_inference",
    "winograd_layer_count",
]
