"""Darknet ``.cfg`` parsing and network-geometry construction.

The paper evaluates network models "from the Darknet framework"; this
module parses Darknet's INI-like configuration format and walks it into
the layer specifications the simulator consumes, tracking the
activation geometry through convolutions, pools, shortcuts and route
layers exactly as Darknet's ``parse_network_cfg`` does.
"""

from __future__ import annotations

from repro.conv.layer import ConvLayerSpec
from repro.errors import ConfigError
from repro.nets.layers import LayerSpec, MaxPoolSpec, ShortcutSpec


def parse_cfg(text: str) -> list[tuple[str, dict[str, str]]]:
    """Parse Darknet cfg text into (section_name, options) pairs.

    Supports comments (#, ;), repeated sections, and ``key=value``
    options; values stay strings (Darknet parses lazily too).
    """
    sections: list[tuple[str, dict[str, str]]] = []
    current: dict[str, str] | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("#", ";")):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ConfigError(f"malformed section header: {line!r}")
            sections.append((line[1:-1].strip().lower(), {}))
            current = sections[-1][1]
        else:
            if current is None:
                raise ConfigError(f"option outside any section: {line!r}")
            if "=" not in line:
                raise ConfigError(f"malformed option line: {line!r}")
            key, _, value = line.partition("=")
            current[key.strip()] = value.strip()
    if not sections:
        raise ConfigError("empty cfg")
    return sections


def build_layers(
    text: str,
    height: int | None = None,
    width: int | None = None,
    channels: int | None = None,
    max_layers: int | None = None,
    name_prefix: str = "",
) -> list[LayerSpec]:
    """Walk a cfg into layer specs, tracking activation geometry.

    Args:
        text: Darknet cfg contents (must start with a [net]/[network]
            section).
        height/width/channels: input geometry overrides (the paper runs
            768x576 RGB regardless of the cfg's defaults).
        max_layers: keep only the first N non-[net] layers (the paper
            simulates YOLOv3's first 20).
        name_prefix: prepended to generated layer names.

    Returns:
        Layer specs for every convolutional/maxpool/shortcut layer;
        geometry-only sections (route, yolo, ...) raise if encountered
        before ``max_layers`` is reached, since their semantics would
        change downstream shapes.
    """
    sections = parse_cfg(text)
    net_name, net_opts = sections[0]
    if net_name not in ("net", "network"):
        raise ConfigError(f"cfg must start with [net], got [{net_name}]")
    h = height if height is not None else int(net_opts.get("height", 0))
    w = width if width is not None else int(net_opts.get("width", 0))
    c = channels if channels is not None else int(net_opts.get("channels", 3))
    if min(h, w, c) < 1:
        raise ConfigError(f"invalid input geometry {c}x{h}x{w}")

    layers: list[LayerSpec] = []
    # Per-layer output geometry for shortcut resolution ((c, h, w)).
    out_geom: list[tuple[int, int, int]] = []
    idx = 0
    for sec_name, opts in sections[1:]:
        if max_layers is not None and idx >= max_layers:
            break
        if sec_name == "convolutional":
            ksize = int(opts.get("size", 1))
            stride = int(opts.get("stride", 1))
            pad_flag = int(opts.get("pad", 0))
            pad = int(opts.get("padding", ksize // 2 if pad_flag else 0))
            filters = int(opts.get("filters", 1))
            spec = ConvLayerSpec(
                name=f"{name_prefix}conv{idx}",
                c_in=c, h_in=h, w_in=w, c_out=filters,
                ksize=ksize, stride=stride, pad=pad,
            )
            layers.append(spec)
            c, h, w = filters, spec.h_out, spec.w_out
        elif sec_name == "maxpool":
            size = int(opts.get("size", 2))
            stride = int(opts.get("stride", size))
            spec = MaxPoolSpec(
                name=f"{name_prefix}pool{idx}", c=c, h=h, w=w,
                size=size, stride=stride,
            )
            layers.append(spec)
            h, w = spec.h_out, spec.w_out
        elif sec_name == "shortcut":
            frm = int(opts["from"])
            ref = out_geom[idx + frm if frm < 0 else frm]
            if ref != (c, h, w):
                raise ConfigError(
                    f"shortcut {idx} shape mismatch: {ref} vs {(c, h, w)}"
                )
            layers.append(
                ShortcutSpec(name=f"{name_prefix}short{idx}", c=c, h=h, w=w)
            )
        else:
            raise ConfigError(
                f"unsupported layer type [{sec_name}] at index {idx}; "
                f"truncate with max_layers before it"
            )
        out_geom.append((c, h, w))
        idx += 1
    return layers


def conv_layers(layers: list[LayerSpec]) -> list[ConvLayerSpec]:
    """Just the convolutional layers, in order."""
    return [l for l in layers if isinstance(l, ConvLayerSpec)]
