"""Kernel-generation DSL: algorithms, schedules, lowering and search.

Exo-style separation of concerns for the repo's convolution kernels: a
statement (:mod:`repro.schedule.algorithms`) says *what* is computed,
a :class:`Schedule` (:mod:`repro.schedule.ir`) says *how* its loop
nest is tiled/ordered/vectorized/unrolled, and the lowering
(:mod:`repro.schedule.lower`) emits the same RVV/SVE driver programs
the hand-written kernels produce — so the functional machines, audit
pipelines and cost model consume generated kernels unchanged.

``repro tune`` searches this space per layer
(:mod:`repro.schedule.space`, :mod:`repro.codesign.tuner`).
"""

from repro.errors import ScheduleError
from repro.schedule.algorithms import (
    CopyAlgorithm,
    CopyOperands,
    MatmulAlgorithm,
    MatmulOperands,
)
from repro.schedule.cost import SurrogateCost, copy_surrogate, matmul_surrogate
from repro.schedule.ir import (
    VL,
    Schedule,
    copy_schedule,
    default_copy_schedule,
    default_direct_schedule,
    default_matmul_schedule,
    matmul_schedule,
)
from repro.schedule.library import (
    SCHEDULED_VARIANTS,
    ScheduledVariant,
    scheduled_direct1x1,
    scheduled_gemm,
    scheduled_im2col,
    scheduled_im2col_gemm_conv2d_sim,
)
from repro.schedule.lower import GeneratedKernel, lower_copy, lower_matmul
from repro.schedule.space import copy_space, matmul_space, sample_space

__all__ = [
    "Schedule",
    "ScheduleError",
    "VL",
    "matmul_schedule",
    "copy_schedule",
    "default_matmul_schedule",
    "default_direct_schedule",
    "default_copy_schedule",
    "MatmulAlgorithm",
    "MatmulOperands",
    "CopyAlgorithm",
    "CopyOperands",
    "lower_matmul",
    "lower_copy",
    "GeneratedKernel",
    "scheduled_gemm",
    "scheduled_im2col",
    "scheduled_direct1x1",
    "scheduled_im2col_gemm_conv2d_sim",
    "SCHEDULED_VARIANTS",
    "ScheduledVariant",
    "matmul_space",
    "copy_space",
    "sample_space",
    "matmul_surrogate",
    "copy_surrogate",
    "SurrogateCost",
]
