"""Lowering: schedule x algorithm -> RVV/SVE driver program.

The lowering emits onto the same :class:`~repro.rvv.machine.VectorEngine`
API the hand-written kernels use, so everything downstream — the
functional machines, the trace-lifted and symbolic audit pipelines,
``Simulator.run_trace`` — consumes generated kernels unchanged.  Under
the default schedules the emission is *instruction-for-instruction*
identical to the hand-written GEMM / im2col / direct 1x1 kernels
(pinned by ``tests/test_schedule_equivalence.py``).

Strip-mining follows the machines' grant rule: the vector axis
advances by ``vl = min(AVL, LMUL * VLMAX)`` per strip.  An untiled
vector axis requests the whole remainder (the im2col convention); a
tiled one requests ``min(tile, remainder)`` (the GEMM convention) —
this also pins the AVL operand recorded in the trace, part of the
bit-identical equivalence contract.

fp32 semantics: every loop structure this lowering can produce keeps
the reduction ``k`` strictly increasing per C element.  When the
reduction is blocked (``tile("k", ...)`` + ``place("acc", "memory")``)
the partial C rows are stored and reloaded bit-exactly between blocks,
so *any* legal schedule is bit-identical to
:func:`repro.conv.reference.gemm_fp32`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.kernels.common import ceil_div
from repro.rvv.machine import VectorEngine
from repro.schedule.algorithms import (
    CopyAlgorithm,
    CopyOperands,
    MatmulAlgorithm,
    MatmulOperands,
)
from repro.schedule.ir import VL, Schedule


def _strips(
    extent: int, tile: int | str | None, vstep: int
) -> Iterator[tuple[int, int, int]]:
    """Strip-mine the vector axis: yields (start, avl_request, vl).

    ``vl`` mirrors the machines' grant rule ``min(AVL, LMUL * VLMAX)``
    so the loop advances exactly as the emitted ``vsetvl`` will grant.
    """
    done = 0
    while done < extent:
        rem = extent - done
        if tile is None:
            avl = rem
        elif tile == VL:
            avl = min(vstep, rem)
        else:
            assert isinstance(tile, int)
            avl = min(tile, rem)
        vl = min(avl, vstep)
        yield done, avl, vl
        done += vl


@dataclass(frozen=True)
class _Block:
    """One innermost matmul block: a (j strip, i block, k block) triple."""

    j0: int
    avl: int
    vl: int
    i0: int
    rows: int
    k0: int
    kn: int
    first_k: bool


def lower_matmul(
    machine: VectorEngine,
    alg: MatmulAlgorithm,
    sched: Schedule,
    ops: MatmulOperands,
) -> None:
    """Emit the scheduled matmul onto ``machine``.

    Validates the schedule first; an illegal schedule raises
    :class:`~repro.errors.ScheduleError` before any instruction is
    emitted.
    """
    sched.validate()
    lmul = sched.lmul
    lanes = machine.vlen_bits // 32
    vstep = lanes * lmul  # LMUL * VLMAX elements per grant
    mr = sched.mr
    jt = sched.tiles.get("j")
    kt = sched.tiles.get("k")

    i_blocks = [(i0, min(mr, alg.m - i0)) for i0 in range(0, alg.m, mr)]
    if isinstance(kt, int):
        k_blocks = [(k0, min(kt, alg.kd - k0))
                    for k0 in range(0, alg.kd, kt)]
    else:
        k_blocks = [(0, alg.kd)]

    # Loop order: the vector axis contributes its strip loop at its
    # position; the reduction only participates when tiled.
    order = [ax for ax in sched.order if ax != "k" or len(k_blocks) > 1]

    def body(b: _Block) -> None:
        if not sched.setvl_hoist:
            machine.setvl(b.avl, lmul=lmul)
        with machine.alloc.scoped(b.rows + 1, lmul=lmul) as regs:
            acc, b_reg = regs[: b.rows], regs[b.rows]
            if b.first_k:
                for r in range(b.rows):
                    machine.vfmv_v_f(acc[r], 0.0)
            else:
                # Reload the partial C rows stored by the previous
                # reduction block (bit-exact fp32 spill/reload).
                for r in range(b.rows):
                    machine.vle32(acc[r], ops.c + 4 * alg.c_off(b.i0 + r, b.j0))
            a_view = machine.memory.view(ops.a, alg.a_elems)
            for k in range(b.k0, b.k0 + b.kn):
                addr = ops.b + 4 * alg.b_off(k, b.j0)
                if alg.b_elem_stride == 1:
                    machine.vle32(b_reg, addr)
                else:
                    machine.vlse32(b_reg, addr, 4 * alg.b_elem_stride)
                for r in range(b.rows):
                    a_val = float(a_view[alg.a_off(b.i0 + r, k)])
                    machine.scalar_ops(1)  # the scalar load of A[i, k]
                    machine.vfmacc_vf(acc[r], a_val, b_reg)
            for r in range(b.rows):
                machine.vse32(acc[r], ops.c + 4 * alg.c_off(b.i0 + r, b.j0))

    def rec(level: int, ctx: dict[str, tuple[int, ...]]) -> None:
        if level == len(order):
            j0, avl, vl = ctx["j"]
            i0, rows = ctx["i"]
            k0, kn, kb = ctx.get("k", (0, alg.kd, 0))
            body(_Block(j0=j0, avl=avl, vl=vl, i0=i0, rows=rows,
                        k0=k0, kn=kn, first_k=kb == 0))
            return
        ax = order[level]
        if ax == "j":
            for j0, avl, vl in _strips(alg.n, jt, vstep):
                if sched.setvl_hoist:
                    machine.setvl(avl, lmul=lmul)
                rec(level + 1, {**ctx, "j": (j0, avl, vl)})
        elif ax == "i":
            for i0, rows in i_blocks:
                rec(level + 1, {**ctx, "i": (i0, rows)})
        else:
            for kb, (k0, kn) in enumerate(k_blocks):
                rec(level + 1, {**ctx, "k": (k0, kn, kb)})

    rec(0, {})


def lower_copy(
    machine: VectorEngine,
    alg: CopyAlgorithm,
    sched: Schedule,
    ops: CopyOperands,
) -> None:
    """Emit the scheduled im2col copy onto ``machine``."""
    sched.validate()
    lmul = sched.lmul
    lanes = machine.vlen_bits // 32
    vstep = lanes * lmul
    xt = sched.tiles.get("x")
    s = alg.stride

    with machine.alloc.scoped(1, lmul=lmul) as (v,):

        def body(r: int, y: int) -> None:
            for x0, avl, _vl in _strips(alg.w_out, xt, vstep):
                machine.setvl(avl, lmul=lmul)
                src = ops.src + 4 * alg.src_off(r, y, x0)
                if s == 1:
                    machine.vle32(v, src)
                else:
                    machine.vlse32(v, src, 4 * s)
                machine.vse32(v, ops.dst + 4 * alg.dst_off(r, y, x0))

        outer = [ax for ax in sched.order if ax != "x"]
        if outer == ["r", "y"]:
            for r in range(alg.rows):
                for y in range(alg.h_out):
                    body(r, y)
        else:
            for y in range(alg.h_out):
                for r in range(alg.rows):
                    body(r, y)


@dataclass(frozen=True)
class GeneratedKernel:
    """A lowered (algorithm, schedule) pair, callable like a kernel.

    ``emit(machine, operands)`` runs the generated program on any
    :class:`~repro.rvv.machine.VectorEngine` (concrete or abstract).
    """

    name: str
    algorithm: MatmulAlgorithm | CopyAlgorithm
    schedule: Schedule

    def __post_init__(self) -> None:
        self.schedule.validate()

    @property
    def emit(self) -> Callable[..., None]:
        if isinstance(self.algorithm, MatmulAlgorithm):
            return self._emit_matmul
        return self._emit_copy

    def _emit_matmul(
        self, machine: VectorEngine, ops: MatmulOperands
    ) -> None:
        assert isinstance(self.algorithm, MatmulAlgorithm)
        lower_matmul(machine, self.algorithm, self.schedule, ops)

    def _emit_copy(self, machine: VectorEngine, ops: CopyOperands) -> None:
        assert isinstance(self.algorithm, CopyAlgorithm)
        lower_copy(machine, self.algorithm, self.schedule, ops)

    def describe(self) -> dict[str, object]:
        alg = self.algorithm
        if isinstance(alg, MatmulAlgorithm):
            shape: dict[str, object] = {
                "statement": alg.name, "m": alg.m, "n": alg.n, "kd": alg.kd}
        else:
            g = alg.geom
            shape = {"statement": "im2col", "c_in": g.c_in, "h": g.h,
                     "w": g.w, "ksize": g.ksize, "stride": g.stride,
                     "pad": g.pad}
        return {"name": self.name, "algorithm": shape,
                "schedule": self.schedule.describe()}


def matmul_blocks(alg: MatmulAlgorithm, sched: Schedule,
                  vstep: int) -> tuple[int, int, int]:
    """(vector strips, i blocks, k blocks) of the lowered nest.

    Shared by the lowering's surrogate cost model so its closed-form
    counts agree with what :func:`lower_matmul` actually emits.
    """
    jt = sched.tiles.get("j")
    if jt is None or jt == VL:
        strips = ceil_div(alg.n, vstep)
    else:
        assert isinstance(jt, int)
        strips = ceil_div(alg.n, min(jt, vstep))
    kt = sched.tiles.get("k")
    kb = ceil_div(alg.kd, kt) if isinstance(kt, int) else 1
    return strips, ceil_div(alg.m, sched.mr), kb
