"""Algorithm statements the schedule DSL can lower.

An algorithm describes *what* is computed — extents and row-major
address arithmetic over flat fp32 operand buffers — and nothing about
loop structure.  The same two statements cover all three ported
hand-written kernels:

- :class:`MatmulAlgorithm` is the GEMM statement.  With
  :meth:`MatmulAlgorithm.from_gemm` it addresses the column matrix the
  im2col stage produced; with :meth:`MatmulAlgorithm.from_direct1x1`
  its B matrix *is* the input feature map (the direct 1x1 convolution
  of :mod:`repro.kernels.direct`).
- :class:`CopyAlgorithm` is the im2col unfolding statement.

Addresses are element offsets; the lowering multiplies by 4 (fp32).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.kernels.common import GemmGeometry, Im2colGeometry
from repro.kernels.direct import Direct1x1Geometry


@dataclass(frozen=True)
class MatmulAlgorithm:
    """C[i, j] += A[i, k] * B[k, j] over row-major operands.

    ``b_elem_stride`` is the element distance between consecutive
    ``j`` in B (1 -> unit-stride loads, otherwise strided loads); the
    A operand is read by the scalar unit (one broadcast per FMA), so
    only its extent matters for the memory view.
    """

    name: str
    m: int
    n: int
    kd: int
    a_row_stride: int
    b_row_stride: int
    c_row_stride: int
    b_elem_stride: int = 1
    a_elems: int = 0

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.kd) < 1:
            raise ConfigError(f"bad matmul extents: {self}")
        if self.b_elem_stride < 1:
            raise ConfigError(f"bad B element stride: {self.b_elem_stride}")
        if self.a_elems == 0:
            object.__setattr__(self, "a_elems",
                               (self.m - 1) * self.a_row_stride + self.kd)

    # -- element offsets -------------------------------------------------
    def a_off(self, i: int, k: int) -> int:
        return i * self.a_row_stride + k

    def b_off(self, k: int, j: int) -> int:
        return k * self.b_row_stride + j * self.b_elem_stride

    def c_off(self, i: int, j: int) -> int:
        return i * self.c_row_stride + j

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_gemm(cls, geom: GemmGeometry) -> "MatmulAlgorithm":
        """The GEMM statement of the im2col-GEMM path."""
        return cls(name="gemm", m=geom.m, n=geom.n, kd=geom.kd,
                   a_row_stride=geom.kd, b_row_stride=geom.n,
                   c_row_stride=geom.n, a_elems=geom.a_size)

    @classmethod
    def from_direct1x1(cls, geom: Direct1x1Geometry) -> "MatmulAlgorithm":
        """The direct 1x1 convolution as a matmul whose B is the input.

        Only stride-1 layers keep the pixel axis contiguous; strided
        1x1 layers would segment ``j`` per output row and are routed
        through im2col-GEMM instead.
        """
        if geom.stride != 1:
            raise ConfigError(
                "the scheduled direct 1x1 statement requires stride 1 "
                f"(got stride {geom.stride}); use the im2col-GEMM path")
        n = geom.h * geom.w  # == n_pixels at stride 1
        return cls(name="direct1x1", m=geom.c_out, n=n, kd=geom.c_in,
                   a_row_stride=geom.c_in, b_row_stride=n,
                   c_row_stride=n, a_elems=geom.w_size)


@dataclass(frozen=True)
class MatmulOperands:
    """Byte base addresses of the matmul operand buffers."""

    a: int
    b: int
    c: int


@dataclass(frozen=True)
class CopyAlgorithm:
    """The im2col unfolding statement over one layer geometry.

    dst[r, y, x] = src[c, y*s + ki, x*s + kj] for the (c, ki, kj)
    triple encoded by column-matrix row ``r``; ``src`` is the padded
    input plane the :class:`~repro.kernels.buffers.Im2colBuffers`
    staging wrote.
    """

    geom: Im2colGeometry

    @property
    def rows(self) -> int:
        return self.geom.rows

    @property
    def h_out(self) -> int:
        return self.geom.h_out

    @property
    def w_out(self) -> int:
        return self.geom.w_out

    @property
    def stride(self) -> int:
        return self.geom.stride

    def decode_row(self, r: int) -> tuple[int, int, int]:
        """Column-matrix row -> (channel, filter row, filter column)."""
        ks = self.geom.ksize
        return r // (ks * ks), (r // ks) % ks, r % ks

    def src_off(self, r: int, y: int, x0: int) -> int:
        c, ki, kj = self.decode_row(r)
        s = self.geom.stride
        return self.geom.x_offset(c, y * s + ki, x0 * s + kj)

    def dst_off(self, r: int, y: int, x0: int) -> int:
        return r * self.geom.cols + y * self.w_out + x0


@dataclass(frozen=True)
class CopyOperands:
    """Byte base addresses of the copy statement's buffers."""

    src: int
    dst: int
