"""Surrogate cost model for schedule search.

``repro tune`` ranks hundreds of candidate schedules before exactly
simulating only the top-k.  The surrogate here is cheap (no machine,
no trace) but principled on both axes of the timing model:

- **Issue cycles are exact.**  The per-opclass instruction/element
  counts are derived by walking the same strip/block decomposition the
  lowering emits (:func:`repro.schedule.lower._strips`), then priced
  with the configuration's own :class:`~repro.sim.core.LatencyModel`.
  For a given VLEN these counts equal the lifted trace's bit for bit.
- **Memory stalls are estimated** with a stack-distance-style capacity
  test, the same mechanism behind the co-design fast path
  (:mod:`repro.codesign.fastpath`): the streamed B panel's reuse
  distance per revisit is compared against the L1/L2 capacities to
  decide whether revisits hit or miss.  This captures the paper's
  central effect — the ``Kd * vl * 4``-byte B-panel reuse distance
  growing with VLEN and LMUL — without simulating a single access.

The error model is documented in EXPERIMENTS.md ("Schedule search"):
ranking error can only come from the stall estimate, so exact re-rank
of the top-k is required whenever candidates are close or a working
set straddles a capacity boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.schedule.algorithms import CopyAlgorithm, MatmulAlgorithm
from repro.schedule.ir import Schedule
from repro.schedule.lower import _strips
from repro.sim.system import SystemConfig

#: Cache line size assumed by the element->line conversion (fp32).
_ELEMS_PER_LINE = 16


def _lines(elems: int) -> int:
    """Upper-bound line count of one unit access of ``elems`` fp32.

    An unaligned run of ``e`` elements can straddle one extra line;
    the surrogate books the worst case (exactness lives in the issue
    counts, not here).
    """
    return -(-elems // _ELEMS_PER_LINE) + 1


@dataclass
class SurrogateCost:
    """Closed-form cost of one scheduled statement at one VLEN."""

    instrs: dict[str, int] = field(default_factory=dict)
    elems: dict[str, int] = field(default_factory=dict)
    issue_cycles: float = 0.0
    l2_stall_cycles: float = 0.0
    dram_stall_cycles: float = 0.0
    reuse_bytes: int = 0  # streamed-operand reuse distance per revisit

    @property
    def cycles(self) -> float:
        return self.issue_cycles + self.l2_stall_cycles + self.dram_stall_cycles

    def add(self, opclass: OpClass, instrs: int, elems: int) -> None:
        key = opclass.value
        self.instrs[key] = self.instrs.get(key, 0) + instrs
        self.elems[key] = self.elems.get(key, 0) + elems

    def merge(self, other: "SurrogateCost") -> "SurrogateCost":
        out = SurrogateCost(
            instrs=dict(self.instrs), elems=dict(self.elems),
            issue_cycles=self.issue_cycles + other.issue_cycles,
            l2_stall_cycles=self.l2_stall_cycles + other.l2_stall_cycles,
            dram_stall_cycles=self.dram_stall_cycles + other.dram_stall_cycles,
            reuse_bytes=max(self.reuse_bytes, other.reuse_bytes))
        for k, v in other.instrs.items():
            out.instrs[k] = out.instrs.get(k, 0) + v
        for k, v in other.elems.items():
            out.elems[k] = out.elems.get(k, 0) + v
        return out


def _price_issue(cost: SurrogateCost, config: SystemConfig) -> None:
    lat = config.latency_model()
    cost.issue_cycles = sum(
        lat.batch_issue_cycles(OpClass(key), n, cost.elems.get(key, 0))
        for key, n in cost.instrs.items())


def _stalls(cost: SurrogateCost, config: SystemConfig,
            l1_misses: float, l2_misses: float,
            writebacks: float = 0.0) -> None:
    l2, dram = config.memory_timings().stall_cycles(
        int(l1_misses), int(l2_misses), int(writebacks))
    cost.l2_stall_cycles = l2
    cost.dram_stall_cycles = dram


def matmul_surrogate(
    alg: MatmulAlgorithm, sched: Schedule, config: SystemConfig
) -> SurrogateCost:
    """Cost of one scheduled matmul at ``config.vlen_bits``."""
    sched.validate()
    lmul = sched.lmul
    vstep = (config.vlen_bits // 32) * lmul
    mr = sched.mr
    jt = sched.tiles.get("j")
    kt = sched.tiles.get("k")

    strips = list(_strips(alg.n, jt, vstep))
    i_blocks = [(i0, min(mr, alg.m - i0)) for i0 in range(0, alg.m, mr)]
    if isinstance(kt, int):
        k_blocks = [(k0, min(kt, alg.kd - k0)) for k0 in range(0, alg.kd, kt)]
    else:
        k_blocks = [(0, alg.kd)]
    order = [ax for ax in sched.order if ax != "k" or len(k_blocks) > 1]
    pre_j = 1
    for ax in order[: order.index("j")]:
        pre_j *= len(i_blocks) if ax == "i" else len(k_blocks)

    cost = SurrogateCost()
    b_load = (OpClass.VLOAD_UNIT if alg.b_elem_stride == 1
              else OpClass.VLOAD_STRIDED)
    if sched.setvl_hoist:
        cost.add(OpClass.VSETVL, len(strips) * pre_j,
                 sum(vl for _, _, vl in strips) * pre_j)
    total_rows = sum(rows for _, rows in i_blocks)  # == alg.m
    for _, _, vl in strips:
        for kb, (_, kn) in enumerate(k_blocks):
            if not sched.setvl_hoist:
                cost.add(OpClass.VSETVL, len(i_blocks), len(i_blocks) * vl)
            if kb == 0:
                cost.add(OpClass.VMOVE, total_rows, total_rows * vl)
            else:
                cost.add(OpClass.VLOAD_UNIT, total_rows, total_rows * vl)
            cost.add(b_load, len(i_blocks) * kn, len(i_blocks) * kn * vl)
            cost.add(OpClass.SCALAR, total_rows * kn, total_rows * kn)
            cost.add(OpClass.VFMA, total_rows * kn, total_rows * kn * vl)
            cost.add(OpClass.VSTORE_UNIT, total_rows, total_rows * vl)
    _price_issue(cost, config)

    # Stack-distance-style stall estimate: the streamed B panel block
    # is revisited once per i block; its reuse distance decides whether
    # the revisits hit in a given level.
    mean_vl = alg.n / max(len(strips), 1)
    mean_kn = alg.kd / len(k_blocks)
    i_outside_j = order.index("i") < order.index("j")
    span = alg.n if i_outside_j else mean_vl
    reuse = int(mean_kn * span * 4)
    cost.reuse_bytes = reuse
    l1_bytes = config.l1_kb * 1024
    l2_bytes = config.l2_mb * (1 << 20)

    def b_lines(per_visit_elems: float) -> float:
        if alg.b_elem_stride == 1:
            return per_visit_elems / _ELEMS_PER_LINE
        return per_visit_elems  # strided: one line touched per element

    cold_b = b_lines(alg.kd * alg.n)
    visits = len(i_blocks) * len(k_blocks) * len(strips)
    visit_elems = mean_kn * mean_vl
    all_b = b_lines(visits * visit_elems)
    # C traffic: one store pass per reduction block plus one reload
    # pass per block after the first.
    c_lines = (2 * len(k_blocks) - 1) * alg.m * alg.n / _ELEMS_PER_LINE
    l1_misses = (all_b if reuse > l1_bytes else cold_b) + c_lines
    l2_misses = (all_b if reuse > l2_bytes else cold_b) + (
        c_lines if alg.m * alg.n * 4 > l2_bytes else
        alg.m * alg.n / _ELEMS_PER_LINE)
    _stalls(cost, config, l1_misses, l2_misses)
    return cost


def copy_surrogate(
    alg: CopyAlgorithm, sched: Schedule, config: SystemConfig
) -> SurrogateCost:
    """Cost of one scheduled im2col copy at ``config.vlen_bits``."""
    sched.validate()
    lmul = sched.lmul
    vstep = (config.vlen_bits // 32) * lmul
    xt = sched.tiles.get("x")
    strips = list(_strips(alg.w_out, xt, vstep))
    n_loops = alg.rows * alg.h_out

    cost = SurrogateCost()
    load = OpClass.VLOAD_UNIT if alg.stride == 1 else OpClass.VLOAD_STRIDED
    elems = sum(vl for _, _, vl in strips) * n_loops
    cost.add(OpClass.VSETVL, len(strips) * n_loops, elems)
    cost.add(load, len(strips) * n_loops, elems)
    cost.add(OpClass.VSTORE_UNIT, len(strips) * n_loops, elems)
    _price_issue(cost, config)

    # The source plane is revisited ksize^2 times (once per (ki, kj));
    # the destination is streamed write-once.
    g = alg.geom
    src_bytes = g.x_size * 4
    dst_lines = g.rows * g.cols / _ELEMS_PER_LINE
    src_lines_once = g.x_size / _ELEMS_PER_LINE
    revisits = g.ksize * g.ksize
    if alg.stride != 1:
        src_lines_once = g.x_size  # strided: per-element line touches
    l1 = (src_lines_once * (revisits if src_bytes > config.l1_kb * 1024 else 1)
          + dst_lines)
    l2 = (src_lines_once * (revisits if src_bytes > config.l2_mb * (1 << 20)
                            else 1) + dst_lines)
    _stalls(cost, config, l1, l2)
    return cost
