"""The schedule IR: typed loop nests over algorithm statements.

Following Exo's split of a kernel into an *algorithm* (what is
computed) and a user-visible *schedule* (how its loop nest is tiled,
ordered, vectorized and unrolled), a :class:`Schedule` here is an
immutable value describing one point of the transformation space for
one statement kind:

- ``matmul`` — the C[i, j] += A[i, k] * B[k, j] statement behind both
  the im2col-GEMM microkernel and the direct 1x1 convolution (whose B
  matrix *is* the input feature map).  Axes: ``i`` (rows / output
  channels), ``j`` (columns / pixels — the only vectorizable axis),
  ``k`` (the reduction).
- ``copy`` — the im2col unfolding statement dst[r, y, x] = src[...].
  Axes: ``r`` (column-matrix row, i.e. one (channel, ki, kj) triple),
  ``y`` (output row), ``x`` (output column — the vectorizable axis).

Every primitive returns a new :class:`Schedule`; illegal compositions
raise :class:`~repro.errors.ScheduleError` *at schedule-construction
or validation time* — an illegal schedule never reaches the lowering
pass, so no partial driver program is ever emitted.

Schedules are vector-length-agnostic: ``vectorize`` fixes the LMUL
register grouping, but the vector length itself comes from the machine
at lowering time (the grant rule ``vl = min(AVL, VLMAX)`` strip-mines
the vector axis exactly like the hand-written kernels do).  The
special tile size ``"vl"`` means "one full vector grant" —
``LMUL * VLMAX`` elements, whatever VLEN turns out to be.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import ScheduleError
from repro.kernels.common import LMUL_CHOICES

#: Number of architectural vector registers (RVV 1.0 / SVE).
NUM_VREGS = 32

#: Tile-size sentinel: one full vector grant (LMUL * VLMAX elements).
VL = "vl"

#: Axes per statement kind, in canonical (default) loop order.
AXES: dict[str, tuple[str, ...]] = {
    "matmul": ("j", "i", "k"),
    "copy": ("r", "y", "x"),
}

#: The one vectorizable axis per statement kind.
VECTOR_AXES: dict[str, str] = {"matmul": "j", "copy": "x"}

#: The reduction axis per statement kind (None for pure copies).
REDUCTION_AXES: dict[str, str | None] = {"matmul": "k", "copy": None}

#: Accumulator placements (``place("acc", ...)``).
PLACEMENTS = ("register", "memory")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ScheduleError(message)


@dataclass(frozen=True)
class Schedule:
    """One point of the scheduling space for one statement kind.

    Use :func:`matmul_schedule` / :func:`copy_schedule` to obtain the
    canonical base schedule, then chain primitives::

        sched = (matmul_schedule()
                 .tile("j", VL).vectorize("j", lmul=1)
                 .tile("i", 8).unroll("i"))

    Attributes:
        kind: statement kind (``matmul`` or ``copy``).
        tiles: axis -> tile size (int elements, or :data:`VL`).
        order: loop order of the *outer* (block) loops, a permutation
            of the kind's axes.  The reduction axis' position only
            matters when it is tiled (untiled reductions always run
            innermost to preserve fp32 accumulation order).
        vector_axis: the vectorized axis, or None while unset.
        lmul: RVV register-group multiplier of the vector axis.
        unrolled: axis whose inner tile is fully unrolled into
            registers (matmul's ``i`` -> the microkernel's ``mr``).
        acc: accumulator placement — ``register`` keeps C rows live in
            vector registers across the whole reduction; ``memory``
            stores/reloads them per reduction block (required when the
            reduction axis is tiled).
        setvl_hoist: emit one ``vsetvl`` per vector strip (hoisted out
            of the inner block loops, like the direct 1x1 kernel) when
            True; one per innermost block (like the GEMM microkernel)
            when False.
    """

    kind: str
    tiles: Mapping[str, int | str] = field(default_factory=dict)
    order: tuple[str, ...] = ()
    vector_axis: str | None = None
    lmul: int = 1
    unrolled: str | None = None
    acc: str = "register"
    setvl_hoist: bool = False

    def __post_init__(self) -> None:
        _require(self.kind in AXES, f"unknown statement kind {self.kind!r}")
        if not self.order:
            object.__setattr__(self, "order", AXES[self.kind])

    # -- helpers ---------------------------------------------------------
    @property
    def axes(self) -> tuple[str, ...]:
        return AXES[self.kind]

    def _check_axis(self, axis: str) -> None:
        _require(axis in self.axes,
                 f"unknown axis {axis!r} for {self.kind} "
                 f"(axes: {', '.join(self.axes)})")

    # -- primitives ------------------------------------------------------
    def tile(self, axis: str, size: int | str) -> "Schedule":
        """Split ``axis`` into an outer block loop and an inner tile.

        ``size`` is the inner tile extent in elements, or :data:`VL`
        for one full vector grant (only meaningful on the vector
        axis).  Tails are handled by the lowering (the last tile may
        be partial), but the tile itself must be aligned: an integer
        tile of the vector axis must be a positive multiple of
        ``4 * LMUL`` lanes — the machine's VLMAX granularity — or the
        schedule is rejected as misaligned.
        """
        self._check_axis(axis)
        _require(axis not in self.tiles, f"axis {axis!r} is already tiled")
        if size == VL:
            _require(axis == VECTOR_AXES[self.kind],
                     f"tile size {VL!r} only applies to the vector axis "
                     f"{VECTOR_AXES[self.kind]!r}, not {axis!r}")
        else:
            _require(isinstance(size, int) and not isinstance(size, bool)
                     and size >= 1,
                     f"tile size must be a positive int or {VL!r}, "
                     f"got {size!r}")
        tiles = dict(self.tiles)
        tiles[axis] = size
        return replace(self, tiles=tiles)

    def reorder(self, *axes: str) -> "Schedule":
        """Set the nesting order of the outer block loops."""
        _require(sorted(axes) == sorted(self.axes),
                 f"reorder needs a permutation of {self.axes}, got {axes}")
        return replace(self, order=tuple(axes))

    def vectorize(self, axis: str, lmul: int = 1) -> "Schedule":
        """Map ``axis`` to the vector unit with register grouping ``lmul``.

        Only the statement's designated vector axis is legal: matmul's
        reduction must stay a scalar loop (vectorizing ``k`` would
        reorder the fp32 accumulation), and its row axis indexes the
        accumulator registers.
        """
        self._check_axis(axis)
        want = VECTOR_AXES[self.kind]
        if axis == REDUCTION_AXES[self.kind]:
            raise ScheduleError(
                f"cannot vectorize reduction axis {axis!r}: it would "
                f"reorder the fp32 accumulation")
        _require(axis == want,
                 f"only axis {want!r} of {self.kind} is vectorizable, "
                 f"not {axis!r}")
        _require(self.vector_axis is None, "statement is already vectorized")
        if lmul not in LMUL_CHOICES:
            raise ScheduleError(
                f"LMUL must be one of {LMUL_CHOICES}, got {lmul}")
        return replace(self, vector_axis=axis, lmul=lmul)

    def unroll(self, axis: str) -> "Schedule":
        """Fully unroll the inner tile of ``axis`` into registers.

        The axis must already be tiled with a constant (integer) size;
        for matmul this is the microkernel's ``mr`` — each unrolled
        row holds one live accumulator register group.
        """
        self._check_axis(axis)
        _require(axis != self.vector_axis, "cannot unroll the vector axis")
        _require(axis != REDUCTION_AXES[self.kind],
                 "cannot unroll the reduction axis")
        size = self.tiles.get(axis)
        _require(isinstance(size, int),
                 f"unroll({axis!r}) requires the axis to be tiled with a "
                 f"constant size first")
        _require(self.unrolled is None, "an axis is already unrolled")
        return replace(self, unrolled=axis)

    def place(self, buffer: str, where: str) -> "Schedule":
        """Choose the accumulator placement (``register`` or ``memory``)."""
        _require(buffer == "acc",
                 f"only the accumulator ('acc') is placeable, got {buffer!r}")
        _require(where in PLACEMENTS,
                 f"placement must be one of {PLACEMENTS}, got {where!r}")
        _require(self.kind == "matmul", "copy statements have no accumulator")
        return replace(self, acc=where)

    def hoist_setvl(self, hoist: bool = True) -> "Schedule":
        """Emit ``vsetvl`` once per vector strip instead of per block."""
        return replace(self, setvl_hoist=hoist)

    # -- validation ------------------------------------------------------
    @property
    def mr(self) -> int:
        """Unrolled-row count of a validated matmul schedule."""
        size = self.tiles.get("i")
        assert isinstance(size, int)
        return size

    def validate(self) -> "Schedule":
        """Check the composed schedule; returns self for chaining.

        Called by the lowering before anything is emitted.  Raises
        :class:`ScheduleError` for: a missing/misaligned vector axis,
        register-file overflow of the unrolled accumulators under the
        chosen LMUL, or a tiled reduction whose accumulators were left
        in registers.
        """
        want = VECTOR_AXES[self.kind]
        _require(self.vector_axis == want,
                 f"{self.kind} schedule must vectorize axis {want!r}")
        vt = self.tiles.get(want)
        if isinstance(vt, int):
            _require(vt % (4 * self.lmul) == 0,
                     f"misaligned vector tile: {vt} is not a multiple of "
                     f"4*LMUL = {4 * self.lmul} lanes")
        if self.kind == "matmul":
            _require(self.unrolled == "i" and isinstance(
                self.tiles.get("i"), int),
                "matmul lowering requires i tiled to a constant mr and "
                "unrolled (the accumulator rows)")
            groups = NUM_VREGS // self.lmul
            demand = self.mr + 1  # mr accumulators + one streamed operand
            _require(demand <= groups,
                     f"LMUL register overflow: mr={self.mr} needs "
                     f"{demand} register groups of LMUL={self.lmul}, but "
                     f"the file holds only {groups}")
            if "k" in self.tiles:
                _require(self.acc == "memory",
                         "a tiled reduction requires place('acc', "
                         "'memory'): accumulators cannot stay in "
                         "registers across reduction blocks")
        else:
            _require(not set(self.tiles) - {want},
                     f"copy statements only tile the vector axis {want!r}")
        return self

    # -- description -----------------------------------------------------
    def describe(self) -> dict[str, object]:
        """JSON-friendly descriptor (tuning reports, provenance)."""
        return {
            "kind": self.kind,
            "tiles": dict(self.tiles),
            "order": list(self.order),
            "vector_axis": self.vector_axis,
            "lmul": self.lmul,
            "unrolled": self.unrolled,
            "acc": self.acc,
            "setvl_hoist": self.setvl_hoist,
        }

    def label(self) -> str:
        """Compact human-readable schedule label."""
        parts = ["".join(self.order)]
        for ax in self.axes:
            if ax in self.tiles:
                parts.append(f"{ax}{self.tiles[ax]}")
        parts.append(f"m{self.lmul}")
        if self.acc != "register":
            parts.append(self.acc)
        if self.setvl_hoist:
            parts.append("hoist")
        return "-".join(parts)


def matmul_schedule() -> Schedule:
    """The untransformed matmul statement (no tiling, nothing vectorized)."""
    return Schedule(kind="matmul")


def copy_schedule() -> Schedule:
    """The untransformed copy statement."""
    return Schedule(kind="copy")


def default_matmul_schedule(mr: int = 8) -> Schedule:
    """The schedule of the shipped hand-written GEMM microkernel.

    Tile j by one vector grant, vectorize at LMUL=1, tile i by ``mr``
    and unroll it, panels outermost, ``vsetvl`` per block — lowering
    this reproduces :func:`repro.kernels.gemm.gemm_kernel`
    instruction for instruction.
    """
    return (matmul_schedule()
            .tile("j", VL).vectorize("j", lmul=1)
            .tile("i", mr).unroll("i")
            .reorder("j", "i", "k"))


def default_direct_schedule(mr: int = 8) -> Schedule:
    """The schedule of the shipped direct 1x1 kernel.

    Same microkernel as the GEMM default, but with ``vsetvl`` hoisted
    to the pixel strip (the hand-written kernel sets VL once per strip
    and reuses it across the output-channel blocks).
    """
    return default_matmul_schedule(mr).hoist_setvl()


def default_copy_schedule() -> Schedule:
    """The schedule of the shipped im2col kernel (rows outer, x streamed)."""
    return (copy_schedule()
            .vectorize("x", lmul=1)
            .reorder("r", "y", "x"))
