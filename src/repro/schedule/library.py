"""Ported (algorithm, schedule) pairs and the generated-kernel registry.

The shipped hand-written GEMM, im2col and direct 1x1 kernels are
reproduced here as (algorithm, schedule) pairs: lowering the default
schedules emits the same driver programs instruction for instruction
(``tests/test_schedule_equivalence.py`` pins this).  A few non-default
schedules are registered alongside so the audit pipelines continuously
cover generated code on paths no hand-written kernel exercises
(LMUL-grouped accumulators, reduction blocking with memory-placed
accumulators).

:func:`scheduled_variants` feeds the :class:`KernelSpec` registry in
:mod:`repro.analysis.audit` — expressed here as plain
(name, harness, machines) records to keep the import dependency
one-directional (analysis imports schedule, never the reverse).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.kernels.buffers import GemmBuffers, Im2colBuffers
from repro.kernels.common import GemmGeometry, Im2colGeometry
from repro.kernels.direct import Direct1x1Buffers, Direct1x1Geometry
from repro.rvv.machine import VectorEngine
from repro.schedule.algorithms import (
    CopyAlgorithm,
    CopyOperands,
    MatmulAlgorithm,
    MatmulOperands,
)
from repro.schedule.ir import (
    Schedule,
    copy_schedule,
    default_copy_schedule,
    default_direct_schedule,
    default_matmul_schedule,
    matmul_schedule,
)
from repro.schedule.lower import lower_copy, lower_matmul


# ----------------------------------------------------------------------
# Scheduled kernel drivers (drop-in peers of the hand-written ones).
# ----------------------------------------------------------------------
def scheduled_gemm(
    machine: VectorEngine,
    geom: GemmGeometry,
    bufs: GemmBuffers,
    sched: Schedule | None = None,
) -> None:
    """C = A @ B via the DSL; default schedule == ``gemm_kernel``."""
    alg = MatmulAlgorithm.from_gemm(geom)
    lower_matmul(machine, alg,
                 sched if sched is not None
                 else default_matmul_schedule(geom.mr),
                 MatmulOperands(a=bufs.a, b=bufs.b, c=bufs.c))


def scheduled_im2col(
    machine: VectorEngine,
    geom: Im2colGeometry,
    bufs: Im2colBuffers,
    sched: Schedule | None = None,
) -> None:
    """Column-matrix unfolding via the DSL; default == ``im2col_kernel``."""
    alg = CopyAlgorithm(geom)
    lower_copy(machine, alg,
               sched if sched is not None else default_copy_schedule(),
               CopyOperands(src=bufs.x, dst=bufs.cols))


def scheduled_direct1x1(
    machine: VectorEngine,
    geom: Direct1x1Geometry,
    bufs: Direct1x1Buffers,
    sched: Schedule | None = None,
) -> None:
    """Direct 1x1 convolution via the DSL; default == ``direct1x1_kernel``."""
    alg = MatmulAlgorithm.from_direct1x1(geom)
    lower_matmul(machine, alg,
                 sched if sched is not None
                 else default_direct_schedule(geom.mr),
                 MatmulOperands(a=bufs.weights, b=bufs.x, c=bufs.y))


def scheduled_im2col_gemm_conv2d_sim(
    machine: VectorEngine,
    x: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    gemm_sched: Schedule | None = None,
    copy_sched: Schedule | None = None,
) -> np.ndarray:
    """Full im2col+GEMM convolution from generated kernels.

    Mirrors :func:`repro.kernels.drivers.im2col_gemm_conv2d_sim`
    (same staging, buffers and layout; the GEMM reads the column
    matrix in place), with both stages' schedules swappable.
    """
    c, h, w = x.shape
    k = weights.shape[0]
    ig = Im2colGeometry(c_in=c, h=h, w=w, ksize=weights.shape[2],
                        stride=stride, pad=pad)
    ibufs = Im2colBuffers.allocate(machine, ig)
    ibufs.load_input(machine, ig, np.asarray(x, dtype=np.float32))
    scheduled_im2col(machine, ig, ibufs, copy_sched)

    gg = GemmGeometry(m=k, kd=ig.rows, n=ig.cols,
                      vlen_elems=machine.vlen_bits // 32)
    gbufs = GemmBuffers(
        a=machine.memory.alloc_f32(gg.a_size, label="gemm.a"),
        b=ibufs.cols,
        c=machine.memory.alloc_f32(gg.c_size, label="gemm.c"),
    )
    machine.memory.write_f32(
        gbufs.a, np.asarray(weights, dtype=np.float32).reshape(k, -1))
    scheduled_gemm(machine, gg, gbufs, gemm_sched)
    return gbufs.read_c(machine, gg).reshape(k, ig.h_out, ig.w_out)


# ----------------------------------------------------------------------
# Registry harnesses.  Shapes and seeds deliberately match the
# hand-written specs in repro.analysis.audit so the equivalence tests
# compare like with like (and the VLMAX-collision rules carry over).
# ----------------------------------------------------------------------
def _gemm_harness(sched: Schedule | None) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        rng = np.random.default_rng(19)
        geom = GemmGeometry(m=6, kd=9, n=40,
                            vlen_elems=machine.vlen_bits // 32)
        bufs = GemmBuffers.allocate(machine, geom)
        bufs.load(machine, geom,
                  rng.standard_normal((geom.m, geom.kd)).astype(np.float32),
                  rng.standard_normal((geom.kd, geom.n)).astype(np.float32))
        scheduled_gemm(machine, geom, bufs, sched)
    return run


def _im2col_harness(sched: Schedule | None) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        rng = np.random.default_rng(23)
        geom = Im2colGeometry(c_in=3, h=10, w=20, ksize=3, stride=1, pad=1)
        bufs = Im2colBuffers.allocate(machine, geom)
        bufs.load_input(machine, geom,
                        rng.standard_normal((geom.c_in, geom.h, geom.w))
                        .astype(np.float32))
        scheduled_im2col(machine, geom, bufs, sched)
    return run


def _direct1x1_harness(sched: Schedule | None) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        rng = np.random.default_rng(29)
        geom = Direct1x1Geometry(c_in=4, h=5, w=20, c_out=6, stride=1,
                                 vlen_elems=machine.vlen_bits // 32)
        bufs = Direct1x1Buffers.allocate(machine, geom)
        machine.memory.write_f32(
            bufs.x, rng.standard_normal(geom.x_size).astype(np.float32))
        machine.memory.write_f32(
            bufs.weights,
            rng.standard_normal(geom.w_size).astype(np.float32))
        scheduled_direct1x1(machine, geom, bufs, sched)
    return run


#: Non-default schedules registered for continuous audit coverage.
LMUL4_GEMM: Schedule = (matmul_schedule()
                        .tile("j", "vl").vectorize("j", lmul=4)
                        .tile("i", 4).unroll("i")
                        .reorder("i", "j", "k").hoist_setvl())

KTILE_GEMM: Schedule = (matmul_schedule()
                        .tile("j", "vl").vectorize("j", lmul=1)
                        .tile("i", 8).unroll("i")
                        .tile("k", 4).place("acc", "memory")
                        .reorder("k", "j", "i"))

XTILE_COPY: Schedule = (copy_schedule()
                        .tile("x", 8).vectorize("x", lmul=1)
                        .reorder("y", "r", "x"))


@dataclass(frozen=True)
class ScheduledVariant:
    """One generated kernel variant for the KernelSpec registry."""

    name: str
    run: Callable[[VectorEngine], None]
    machines: tuple[str, ...] = ("rvv", "sve")


#: LMUL > 1 groups are RVV-only: the SVE flavor implements fp32,
#: LMUL=1 kernels (its ``setvl`` rejects anything else), matching the
#: ``streaming/axpy@lmul2`` precedent.
SCHEDULED_VARIANTS: tuple[ScheduledVariant, ...] = (
    ScheduledVariant("sched/gemm@default", _gemm_harness(None)),
    ScheduledVariant("sched/gemm@ijk-lmul4", _gemm_harness(LMUL4_GEMM),
                     machines=("rvv",)),
    ScheduledVariant("sched/gemm@ktile", _gemm_harness(KTILE_GEMM)),
    ScheduledVariant("sched/im2col@default", _im2col_harness(None)),
    ScheduledVariant("sched/im2col@yrx-xtile", _im2col_harness(XTILE_COPY)),
    ScheduledVariant("sched/direct1x1@default", _direct1x1_harness(None)),
)
