"""Schedule-space enumeration for the tuner.

The space is the cross product of the DSL's legal primitive choices
for one statement, filtered by the same legality rules the primitives
enforce (so enumeration can never produce a :class:`ScheduleError`):

matmul: ``mr`` (unrolled accumulator rows) x LMUL x outer loop order
x optional reduction tile (with memory-placed accumulators) x vsetvl
placement.  copy: LMUL x loop order.

Enumeration order is deterministic; when a candidate budget is given,
a seeded :class:`numpy.random.Generator` subsamples *after* the
always-included default schedule — ``repro tune`` results are exactly
reproducible from (seed, budget).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.common import LMUL_CHOICES
from repro.schedule.ir import (
    NUM_VREGS,
    VL,
    Schedule,
    copy_schedule,
    default_copy_schedule,
    default_matmul_schedule,
    matmul_schedule,
)

#: Unrolled-row candidates (the microkernel's mr).
MR_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16)

#: Outer-order candidates for matmul (reduction position only takes
#: effect when the reduction is tiled).
MATMUL_ORDERS: tuple[tuple[str, str, str], ...] = (
    ("j", "i", "k"),
    ("i", "j", "k"),
    ("k", "j", "i"),
)

#: Reduction-tile candidates (None = unblocked reduction).
KTILE_CHOICES: tuple[int | None, ...] = (None, 8, 32)


def matmul_space(
    m: int,
    kd: int,
    mr_default: int = 8,
) -> list[Schedule]:
    """Every legal matmul schedule point; the default comes first."""
    out = [default_matmul_schedule(mr_default)]
    for lmul in LMUL_CHOICES:
        for mr in MR_CHOICES:
            if mr + 1 > NUM_VREGS // lmul:
                continue  # LMUL register overflow
            if mr > m:
                continue  # blocks beyond the row extent are pure tails
            for order in MATMUL_ORDERS:
                for kt in KTILE_CHOICES:
                    if kt is not None and kt >= kd:
                        continue
                    if kt is None and order[0] == "k":
                        continue  # untiled k never appears in the order
                    sched = (matmul_schedule()
                             .tile("j", VL).vectorize("j", lmul=lmul)
                             .tile("i", mr).unroll("i")
                             .reorder(*order))
                    if kt is not None:
                        sched = sched.tile("k", kt).place("acc", "memory")
                    sched = sched.hoist_setvl()
                    sched.validate()
                    if sched not in out:
                        out.append(sched)
    return out


def copy_space() -> list[Schedule]:
    """Every legal im2col-copy schedule point; the default comes first."""
    out = [default_copy_schedule()]
    for lmul in LMUL_CHOICES:
        for order in (("r", "y", "x"), ("y", "r", "x")):
            sched = (copy_schedule()
                     .vectorize("x", lmul=lmul)
                     .reorder(*order))
            if sched not in out:
                out.append(sched)
    return out


def sample_space(
    candidates: list[Schedule], budget: int | None, seed: int
) -> list[Schedule]:
    """Deterministically subsample to ``budget`` candidates.

    The first candidate (the default schedule) is always kept — the
    tuner's "never worse than the shipped kernel" guarantee rests on
    the default being in the exactly-simulated set.
    """
    if budget is None or budget >= len(candidates) or budget < 1:
        return list(candidates)
    rng = np.random.default_rng(seed)
    rest = candidates[1:]
    picks = rng.choice(len(rest), size=budget - 1, replace=False)
    return [candidates[0]] + [rest[int(i)] for i in sorted(picks)]
