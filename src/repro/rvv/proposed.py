"""Proposed RVV extensions — the paper's "Opportunities" quantified.

Section 3 of the paper advocates two additions to the standard "V"
extension after fighting their absence:

1. **Vector transpose instructions** ("we advocate for an extension of
   the RISC-VV with vector transpose instructions, that would eliminate
   the need for memory operations") — the EPI toolchain ships custom
   2-vector transposes, but the standard has none, forcing the
   Algorithm 3/4 memory workarounds.
2. Better support for the sub-vector manipulation that tuple
   multiplication needs (today: indexed loads or slide chains).

:class:`RvvPlusMachine` models a hypothetical RVV implementation with
both: ``vtrn4`` (a 4-register interleave, the native form of the
Figure 2 transpose) and ``vrep4`` (quad replication in one register
permute).  Both are single register-permute instructions — no memory
operations, no index vectors, no slide chains.  The ablation bench
``bench_ablation_rvv_extensions.py`` quantifies what the proposal buys.

Nothing outside this module depends on the extension: kernels accept
any machine and the native kernel variants check for the capability
explicitly, mirroring how real code would guard on a custom extension.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IllegalInstructionError
from repro.isa import OpClass
from repro.kernels.common import QUAD
from repro.rvv.machine import RvvMachine
from repro.rvv.tracer import Operands


class RvvPlusMachine(RvvMachine):
    """RVV 1.0 plus the paper's proposed data-movement instructions."""

    #: Capability flag kernels test for.
    HAS_PROPOSED_EXTENSIONS = True

    def vrep4_vi(self, vd: int, vs: int, q: int) -> None:
        """Proposed: replicate quad ``q`` of ``vs`` across all lanes.

        ``vd[i] = vs[4q + (i % 4)]`` — the operation Algorithms 1
        (indexed load) and 2 (slide chain) emulate.  One in-register
        permute; no memory access.
        """
        vl = self._require_vl()
        if vd == vs:
            raise IllegalInstructionError(
                "vrep4 destination cannot overlap its source"
            )
        if q < 0 or QUAD * q + QUAD > self.vlmax:
            raise IllegalInstructionError(
                f"vrep4 quad index {q} out of range for VLMAX={self.vlmax}"
            )
        s = self._f32(vs)
        quad = s[QUAD * q : QUAD * q + QUAD]
        self._f32(vd)[:vl] = np.tile(quad, -(-vl // QUAD))[:vl]
        self.tracer.record(OpClass.VPERMUTE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands("vrep4.vi", vd=vd, vs=(vs,), imm=q))

    def vtrn4_vv(
        self, vd: tuple[int, int, int, int], vs: tuple[int, int, int, int]
    ) -> None:
        """Proposed: 4-register interleave (the Figure 2 transpose).

        ``vd[g][4m + r] = vs[r][g * vl/4 + m]`` — what Algorithms 3/4
        emulate with buffer round-trips.  Issues four register-permute
        instructions (one per destination), zero memory operations.
        """
        vl = self._require_vl()
        if vl % QUAD:
            raise IllegalInstructionError(
                f"vtrn4 requires vl divisible by 4, got {vl}"
            )
        if set(vd) & set(vs) or len(set(vd)) != QUAD or len(set(vs)) != QUAD:
            raise IllegalInstructionError(
                "vtrn4 needs four distinct destinations disjoint from sources"
            )
        src = np.stack([self._f32(r)[:vl].copy() for r in vs])
        out = (
            src.reshape(QUAD, QUAD, vl // QUAD)
            .transpose(1, 2, 0)
            .reshape(QUAD, vl)
        )
        for g in range(QUAD):
            self._f32(vd[g])[:vl] = out[g]
            self.tracer.record(OpClass.VPERMUTE, vl, 32, lmul=self.vtype.lmul,
                               ops=Operands("vtrn4.vv", vd=vd[g], vs=vs))


def has_proposed_extensions(machine) -> bool:
    """Capability check for the proposed instructions."""
    return getattr(machine, "HAS_PROPOSED_EXTENSIONS", False)
