"""Flat byte-addressed memory for the functional simulators.

A single :class:`Memory` instance backs one simulated process: a NumPy
``uint8`` buffer with a bump allocator.  Kernels obtain buffers through
:meth:`Memory.alloc` (cache-line aligned by default, as the paper's C
code would get from NNPACK's aligned allocators) and the machine's
vector loads/stores read and write through typed views.

All accesses are bounds-checked; silent wraparound or out-of-allocation
writes in a simulator would invalidate every result built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError, AllocationError, MemoryError_

#: Default allocation alignment: one cache line.
LINE_BYTES = 64


@dataclass(frozen=True)
class Extent:
    """One allocation's declared footprint: ``[base, base + size)``.

    The memory-safety pass of :mod:`repro.analysis` proves every traced
    access against these extents — alignment gaps between allocations
    are deliberately *not* part of any extent, so a store running past a
    buffer's end is flagged even though the flat memory accepts it.
    """

    label: str | None
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.end


class Memory:
    """A flat simulated memory with a bump allocator.

    Args:
        size_bytes: total size of the simulated address space.
        base: address of the first allocatable byte.  A non-zero base
            catches accidental NULL-relative addressing in kernels.
    """

    def __init__(self, size_bytes: int = 1 << 26, base: int = 1 << 12) -> None:
        if size_bytes <= 0:
            raise AllocationError(f"memory size must be positive, got {size_bytes}")
        self.size = int(size_bytes)
        self.base = int(base)
        self._buf = np.zeros(self.size, dtype=np.uint8)
        self._brk = self.base
        self._allocations: list[tuple[int, int]] = []  # (addr, nbytes)
        self._labels: list[str | None] = []

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = LINE_BYTES,
              label: str | None = None) -> int:
        """Allocate ``nbytes`` and return the simulated address.

        Raises:
            AllocationError: when the request does not fit.
            AlignmentError: when ``align`` is not a positive power of two.
        """
        if nbytes < 0:
            raise AllocationError(f"allocation size must be non-negative, got {nbytes}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise AlignmentError(f"alignment must be a positive power of two, got {align}")
        addr = (self._brk + align - 1) & ~(align - 1)
        if addr + nbytes > self.base + self.size:
            raise AllocationError(
                f"out of simulated memory: need {nbytes} bytes at {addr:#x}, "
                f"heap ends at {self.base + self.size:#x}"
            )
        self._brk = addr + nbytes
        self._allocations.append((addr, nbytes))
        self._labels.append(label)
        return addr

    def alloc_f32(self, nelems: int, align: int = LINE_BYTES,
                  label: str | None = None) -> int:
        """Allocate space for ``nelems`` float32 values."""
        return self.alloc(4 * nelems, align, label=label)

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out so far (excluding alignment gaps)."""
        return sum(n for _, n in self._allocations)

    @property
    def allocations(self) -> tuple[Extent, ...]:
        """Every allocation made so far, as labeled extents."""
        return tuple(
            Extent(label, addr, nbytes)
            for (addr, nbytes), label in zip(self._allocations, self._labels)
        )

    # ------------------------------------------------------------------
    # Typed access
    # ------------------------------------------------------------------
    def _check(self, addr: int, nbytes: int) -> int:
        off = addr - self.base
        if off < 0 or off + nbytes > self.size:
            raise MemoryError_(
                f"access of {nbytes} bytes at {addr:#x} is outside simulated "
                f"memory [{self.base:#x}, {self.base + self.size:#x})"
            )
        return off

    def view(self, addr: int, count: int, dtype: np.dtype | type = np.float32) -> np.ndarray:
        """A zero-copy typed view of ``count`` elements at ``addr``.

        ``addr`` must be aligned to the element size (RVV requires
        element-aligned vector memory accesses).
        """
        dt = np.dtype(dtype)
        if addr % dt.itemsize:
            raise AlignmentError(
                f"address {addr:#x} is not aligned to element size {dt.itemsize}"
            )
        off = self._check(addr, count * dt.itemsize)
        return self._buf[off : off + count * dt.itemsize].view(dt)

    def read_f32(self, addr: int, count: int) -> np.ndarray:
        """Copy out ``count`` float32 elements starting at ``addr``."""
        return self.view(addr, count, np.float32).copy()

    def write_f32(self, addr: int, values: np.ndarray) -> None:
        """Write a float32 array to ``addr``."""
        arr = np.ascontiguousarray(values, dtype=np.float32).ravel()
        self.view(addr, arr.size, np.float32)[:] = arr

    def fill_noise(self, addr: int, nelems: int,
                   rng: np.random.Generator) -> None:
        """Fill ``nelems`` float32 values at ``addr`` with random data.

        Driver-side staging protocol shared with the abstract memory of
        the symbolic analyzer (where it is a no-op): harnesses that
        only need *some* data in a buffer stage it through this hook so
        the buffer size never has to be concretized.
        """
        self.view(addr, int(nelems), np.float32)[:] = (
            rng.standard_normal(int(nelems)).astype(np.float32))

    def gather_f32(self, base: int, byte_offsets: np.ndarray) -> np.ndarray:
        """Element gather: read float32 at ``base + off`` for each offset."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if offs.size == 0:
            return np.empty(0, dtype=np.float32)
        addrs = base + offs
        lo, hi = int(addrs.min()), int(addrs.max())
        self._check(lo, 1)
        self._check(hi, 4)
        if np.any(addrs % 4):
            raise AlignmentError("gather addresses must be 4-byte aligned for EEW=32")
        idx = addrs - self.base
        out = np.empty(offs.size, dtype=np.float32)
        flat = self._buf
        for k in range(4):
            out.view(np.uint8)[k::4] = flat[idx + k]
        return out

    def scatter_f32(self, base: int, byte_offsets: np.ndarray, values: np.ndarray) -> None:
        """Element scatter: write float32 values at ``base + off``."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=np.float32).ravel()
        if offs.size != vals.size:
            raise MemoryError_(
                f"scatter offsets ({offs.size}) and values ({vals.size}) differ in length"
            )
        if offs.size == 0:
            return
        addrs = base + offs
        self._check(int(addrs.min()), 1)
        self._check(int(addrs.max()), 4)
        if np.any(addrs % 4):
            raise AlignmentError("scatter addresses must be 4-byte aligned for EEW=32")
        idx = addrs - self.base
        raw = vals.view(np.uint8)
        for k in range(4):
            self._buf[idx + k] = raw[k::4]

    def strided_view_f32(self, addr: int, count: int, stride_bytes: int) -> np.ndarray:
        """A strided float32 view (stride in bytes, may exceed 4).

        Used by strided vector loads/stores; returns a NumPy view with the
        requested byte stride so reads and writes hit simulated memory
        directly.
        """
        if stride_bytes % 4 or addr % 4:
            raise AlignmentError(
                "strided fp32 access requires 4-byte aligned address and stride"
            )
        if count == 0:
            return np.empty(0, dtype=np.float32)
        if stride_bytes >= 0:
            span = stride_bytes * (count - 1) + 4
            off = self._check(addr, span)
        else:
            span = -stride_bytes * (count - 1) + 4
            off = self._check(addr + stride_bytes * (count - 1), span)
            off = addr - self.base
        f32 = self._buf[off : off + 4].view(np.float32) if count == 1 else None
        if count == 1:
            return f32  # type: ignore[return-value]
        return np.lib.stride_tricks.as_strided(
            self._buf[off : off + 4].view(np.float32),
            shape=(count,),
            strides=(stride_bytes,),
            writeable=True,
        )
