"""Instruction tracing and accounting for the functional simulators.

Every intrinsic executed on :class:`repro.rvv.RvvMachine` or
:class:`repro.sve.SveMachine` reports one dynamic instruction to the
machine's :class:`Tracer`.  The tracer plays the role Spike's commit log
and gem5's statistics play in the paper's toolchain:

- it accumulates per-:class:`~repro.isa.OpClass` instruction, element,
  flop and byte counts (:class:`OpStats`), which the analytical stream
  models of :mod:`repro.model` are validated against; and
- in *capture* mode it additionally records the memory access descriptor
  of every memory instruction so the exact cache simulator can replay
  the address stream of a functional run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.isa import FLOPS_PER_ELEM, OpClass


@dataclass(frozen=True)
class Operands:
    """Register-level operand metadata for one retired intrinsic.

    Machines attach one of these to every :class:`InstrEvent` so the
    static-analysis passes in :mod:`repro.analysis` can reason about
    register groups, def-use chains and vtype dataflow without guessing
    from opcode classes alone.

    ``vd`` is the destination vector register (or None for stores and
    configuration instructions), ``vs`` the tuple of vector source
    registers, ``vidx`` the index-vector register of an indexed access,
    ``imm`` a scalar immediate such as a slide amount, ``merges`` marks
    read-modify-write destinations (vfmacc, vslideup tails), and ``avl``
    the application vector length requested by a vsetvl.
    """

    mnemonic: str
    vd: int | None = None
    vs: tuple[int, ...] = ()
    vidx: int | None = None
    imm: int | None = None
    merges: bool = False
    avl: int | None = None


@dataclass(frozen=True)
class MemAccess:
    """A compact descriptor of one vector memory instruction's footprint.

    ``kind`` is "unit", "strided" or "indexed".  For unit and strided
    accesses the elements are at ``base + i*stride`` for ``i in
    range(elems)``; for indexed accesses they are at ``base + offsets[i]``.

    ``seq``, ``sew`` and ``lmul`` are stamped by the tracer in capture
    mode: the event's sequence number in program order and the vtype
    active when the access retired, so the cache replay and the analysis
    IR share one source of truth.
    """

    kind: str
    base: int
    elems: int
    ebytes: int
    stride: int = 0
    offsets: tuple[int, ...] | None = None
    is_load: bool = True
    seq: int = -1
    sew: int = 32
    lmul: int = 1

    def element_addresses(self) -> np.ndarray:
        """Byte addresses of every element touched, in access order."""
        if self.kind == "indexed":
            assert self.offsets is not None
            return self.base + np.asarray(self.offsets, dtype=np.int64)
        return self.base + np.arange(self.elems, dtype=np.int64) * self.stride

    def line_addresses(self, line_bytes: int = 64) -> np.ndarray:
        """Cache-line IDs touched, deduplicated per instruction in order.

        A single vector memory instruction touches each line at most once
        from the cache's point of view (the load/store unit coalesces
        element accesses to the same line), which is how gem5 models
        vector memory traffic too.
        """
        addrs = self.element_addresses()
        last = addrs + (self.ebytes - 1)
        lines = np.union1d(addrs // line_bytes, last // line_bytes)
        # union1d sorts; for unit/strided accesses sorted order equals
        # access order. Indexed patterns in the paper's kernels are
        # quad-replications whose line order is immaterial.
        return lines

    @property
    def bytes(self) -> int:
        """Bytes of payload moved by the instruction."""
        return self.elems * self.ebytes


@dataclass(frozen=True)
class InstrEvent:
    """One dynamic instruction, as reported by a machine.

    ``lmul`` is the register-group multiplier active at retirement and
    ``ops`` the operand metadata (None for legacy traces loaded from
    version-1 files, which predate operand capture).
    """

    opclass: OpClass
    elems: int
    eew: int
    mem: MemAccess | None = None
    lmul: int = 1
    ops: Operands | None = None


@dataclass
class OpStats:
    """Accumulated counts for one opcode class."""

    instrs: int = 0
    elems: int = 0
    flops: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0

    def merge(self, other: "OpStats") -> None:
        self.instrs += other.instrs
        self.elems += other.elems
        self.flops += other.flops
        self.bytes_loaded += other.bytes_loaded
        self.bytes_stored += other.bytes_stored


class Tracer:
    """Accumulates instruction statistics and, optionally, full events.

    Args:
        capture: when True, every :class:`InstrEvent` (including its
            :class:`MemAccess`) is retained in :attr:`events` so the
            address stream can be replayed through a cache model.
            Leave False for long runs where only counts are needed.
    """

    def __init__(self, capture: bool = False) -> None:
        self.capture = capture
        self.events: list[InstrEvent] = []
        self.by_class: dict[OpClass, OpStats] = {}

    # ------------------------------------------------------------------
    def record(
        self,
        opclass: OpClass,
        elems: int,
        eew: int,
        mem: MemAccess | None = None,
        *,
        lmul: int = 1,
        ops: Operands | None = None,
    ) -> None:
        """Account one dynamic instruction."""
        st = self.by_class.get(opclass)
        if st is None:
            st = self.by_class[opclass] = OpStats()
        st.instrs += 1
        st.elems += elems
        st.flops += FLOPS_PER_ELEM.get(opclass, 0) * elems
        if mem is not None:
            if mem.is_load:
                st.bytes_loaded += mem.bytes
            else:
                st.bytes_stored += mem.bytes
        if self.capture:
            if mem is not None and mem.seq < 0:
                mem = dataclasses.replace(
                    mem, seq=len(self.events), sew=eew, lmul=lmul
                )
            self.events.append(InstrEvent(opclass, elems, eew, mem, lmul, ops))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_instrs(self) -> int:
        return sum(s.instrs for s in self.by_class.values())

    @property
    def total_flops(self) -> int:
        return sum(s.flops for s in self.by_class.values())

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes_loaded + s.bytes_stored for s in self.by_class.values())

    def vector_instrs(self) -> int:
        """Dynamic vector instructions (everything except SCALAR)."""
        return sum(
            s.instrs for c, s in self.by_class.items() if c is not OpClass.SCALAR
        )

    def counts(self) -> dict[str, int]:
        """Instruction counts keyed by opclass value, for comparisons."""
        return {c.value: s.instrs for c, s in sorted(self.by_class.items())}

    def mem_events(self) -> Iterator[MemAccess]:
        """All captured memory accesses in program order.

        Raises:
            RuntimeError: if the tracer was not created with capture=True.
        """
        if not self.capture:
            raise RuntimeError("tracer was created with capture=False; no events kept")
        for ev in self.events:
            if ev.mem is not None:
                yield ev.mem

    def line_stream(self, line_bytes: int = 64) -> np.ndarray:
        """Concatenated cache-line address stream of all memory events."""
        parts = [m.line_addresses(line_bytes) for m in self.mem_events()]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def reset(self) -> None:
        """Forget everything recorded so far."""
        self.events.clear()
        self.by_class.clear()

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A human-readable per-class table (used by examples)."""
        rows = [f"{'class':<16}{'instrs':>12}{'elems':>14}{'flops':>14}{'bytes':>14}"]
        for c, s in sorted(self.by_class.items()):
            rows.append(
                f"{c.value:<16}{s.instrs:>12}{s.elems:>14}{s.flops:>14}"
                f"{s.bytes_loaded + s.bytes_stored:>14}"
            )
        rows.append(
            f"{'total':<16}{self.total_instrs:>12}{'':>14}{self.total_flops:>14}"
            f"{self.total_bytes:>14}"
        )
        return "\n".join(rows)


def assert_counts_match(
    expected: dict[str, int],
    actual: dict[str, int],
    context: str = "",
) -> None:
    """Raise :class:`TraceValidationError` unless two count maps agree.

    Used by the model-vs-trace validation harness; zero-count classes are
    treated as absent on both sides.
    """
    from repro.errors import TraceValidationError

    exp = {k: v for k, v in expected.items() if v}
    act = {k: v for k, v in actual.items() if v}
    if exp != act:
        keys = sorted(set(exp) | set(act))
        diff = "\n".join(
            f"  {k:<16} expected={exp.get(k, 0):>10} actual={act.get(k, 0):>10}"
            for k in keys
            if exp.get(k, 0) != act.get(k, 0)
        )
        raise TraceValidationError(
            f"instruction counts disagree{(' for ' + context) if context else ''}:\n{diff}"
        )
