"""Vector register file and a checking register allocator.

RVV 1.0 architecturally provides 32 vector registers.  The paper's
Section 3 discusses how the lack of vector-typed pointers forces long
open-coded transform sequences whose intermediate values create register
pressure and potential spilling.  To keep the Python kernels honest, the
functional machine hands registers out through :class:`RegAlloc`, which
raises :class:`~repro.errors.RegisterSpillError` the moment a kernel
would need more live registers than the architecture has — the same wall
a C intrinsics programmer hits.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.errors import RegisterSpillError, VectorStateError

#: Architectural number of vector registers in RVV 1.0 (and SVE).
NUM_VREGS = 32


class VRegFile:
    """Backing storage for the 32 architectural vector registers.

    Registers are stored as raw bytes; typed views are created per access
    according to the selected element width, mirroring how RVV reinterprets
    register contents under different SEW settings.
    """

    def __init__(self, vlen_bits: int) -> None:
        if vlen_bits % 8:
            raise VectorStateError(f"VLEN must be a multiple of 8 bits, got {vlen_bits}")
        self.vlen_bits = vlen_bits
        self.vlen_bytes = vlen_bits // 8
        self._data = np.zeros((NUM_VREGS, self.vlen_bytes), dtype=np.uint8)

    def _check_reg(self, idx: int, lmul: int = 1) -> None:
        if not 0 <= idx < NUM_VREGS:
            raise VectorStateError(f"vector register index {idx} out of range [0, 32)")
        if idx % lmul:
            raise VectorStateError(
                f"register v{idx} violates LMUL={lmul} group alignment"
            )
        if idx + lmul > NUM_VREGS:
            raise VectorStateError(
                f"register group v{idx}..v{idx + lmul - 1} exceeds the register file"
            )

    def f32(self, idx: int, lmul: int = 1) -> np.ndarray:
        """Float32 view over register group ``idx`` (lmul registers)."""
        self._check_reg(idx, lmul)
        return self._data[idx : idx + lmul].reshape(-1).view(np.float32)

    def i32(self, idx: int, lmul: int = 1) -> np.ndarray:
        """Int32 view over register group ``idx``."""
        self._check_reg(idx, lmul)
        return self._data[idx : idx + lmul].reshape(-1).view(np.int32)

    def u32(self, idx: int, lmul: int = 1) -> np.ndarray:
        """Uint32 view over register group ``idx``."""
        self._check_reg(idx, lmul)
        return self._data[idx : idx + lmul].reshape(-1).view(np.uint32)

    def raw(self, idx: int, lmul: int = 1) -> np.ndarray:
        self._check_reg(idx, lmul)
        return self._data[idx : idx + lmul].reshape(-1)


class RegAlloc:
    """Hands out architectural register indices and detects spilling.

    A kernel allocates with :meth:`alloc` (or the :meth:`scoped` context
    manager) and must :meth:`free` what it allocated.  Exhaustion raises
    :class:`RegisterSpillError` rather than silently modelling spills:
    the paper's kernels were written to fit the register file, and a
    reproduction that silently spilled would change the memory traffic
    it is supposed to measure.
    """

    def __init__(self, reserved: tuple[int, ...] = ()) -> None:
        self._free = [r for r in range(NUM_VREGS - 1, -1, -1) if r not in reserved]
        self._live: set[int] = set()
        self.high_water = 0

    def alloc(self, lmul: int = 1) -> int:
        """Allocate one register group aligned to ``lmul``."""
        for i, r in enumerate(self._free):
            if r % lmul == 0 and all(
                (r + k) in self._free or (r + k) == r for k in range(lmul)
            ):
                if lmul == 1:
                    self._free.pop(i)
                    self._live.add(r)
                    self.high_water = max(self.high_water, len(self._live))
                    return r
                group = [r + k for k in range(lmul)]
                if all(g in self._free for g in group):
                    for g in group:
                        self._free.remove(g)
                        self._live.add(g)
                    self.high_water = max(self.high_water, len(self._live))
                    return r
        raise RegisterSpillError(
            f"no free vector register group (lmul={lmul}); "
            f"{len(self._live)} live of {NUM_VREGS} — the kernel would spill"
        )

    def alloc_many(self, n: int, lmul: int = 1) -> list[int]:
        """Allocate ``n`` register groups at once."""
        return [self.alloc(lmul) for _ in range(n)]

    def free(self, idx: int, lmul: int = 1) -> None:
        for k in range(lmul):
            r = idx + k
            if r not in self._live:
                raise RegisterSpillError(f"double free of vector register v{r}")
            self._live.remove(r)
            self._free.append(r)
        self._free.sort(reverse=True)

    @property
    def live_count(self) -> int:
        return len(self._live)

    @contextmanager
    def scoped(self, n: int, lmul: int = 1) -> Iterator[list[int]]:
        """Allocate ``n`` registers for the duration of a ``with`` block."""
        regs = self.alloc_many(n, lmul)
        try:
            yield regs
        finally:
            for r in regs:
                self.free(r, lmul)
