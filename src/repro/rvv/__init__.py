"""Functional RISC-V Vector v1.0 simulator (the reproduction's "Spike").

Public surface:

- :class:`RvvMachine` — executes RVV 1.0 / EPI-style intrinsics with full
  architectural semantics over a simulated flat memory.
- :class:`Memory` — byte-addressed memory with a bump allocator.
- :class:`Tracer` / :class:`MemAccess` / :class:`InstrEvent` — dynamic
  instruction accounting and address-stream capture.
- :class:`RegAlloc` / :class:`VRegFile` — the 32-entry architectural
  vector register file and a spill-detecting allocator.
"""

from repro.rvv.machine import RvvMachine, VectorEngine
from repro.rvv.proposed import RvvPlusMachine, has_proposed_extensions
from repro.rvv.memory import LINE_BYTES, Memory
from repro.rvv.registers import NUM_VREGS, RegAlloc, VRegFile
from repro.rvv.disasm import disassemble, format_event, listing, summarize_basic_blocks
from repro.rvv.trace_io import load_trace, save_trace
from repro.rvv.tracer import InstrEvent, MemAccess, OpStats, Tracer, assert_counts_match

__all__ = [
    "RvvMachine",
    "RvvPlusMachine",
    "has_proposed_extensions",
    "VectorEngine",
    "Memory",
    "LINE_BYTES",
    "Tracer",
    "MemAccess",
    "InstrEvent",
    "OpStats",
    "assert_counts_match",
    "save_trace",
    "load_trace",
    "disassemble",
    "listing",
    "format_event",
    "summarize_basic_blocks",
    "RegAlloc",
    "VRegFile",
    "NUM_VREGS",
]
