"""Human-readable listings of captured instruction traces.

Vehave's trace output (which the paper's Section 7 workflow inspects)
renders each committed vector instruction with its operands; this
module does the same for captured :class:`~repro.rvv.Tracer` events,
giving the package a debugging surface for kernel work:

    vsetvli         vl=16, sew=32
    vlse32.v        base=0x10c0, stride=1936, vl=16
    vfmacc.vf       vl=16
    ...

Events recorded by current machines carry full operand metadata
(:class:`~repro.rvv.tracer.Operands`), so listings show exact mnemonics
and register numbers; legacy version-1 traces fall back to per-opclass
mnemonics and show only the dynamic behaviour — lengths, addresses,
strides.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigError
from repro.isa import OpClass
from repro.rvv.tracer import InstrEvent, Operands, Tracer

#: Mnemonics per opcode class (EEW-32 forms; the kernels are fp32).
_MNEMONIC = {
    OpClass.VSETVL: "vsetvli",
    OpClass.VLOAD_UNIT: "vle32.v",
    OpClass.VLOAD_STRIDED: "vlse32.v",
    OpClass.VLOAD_INDEXED: "vluxei32.v",
    OpClass.VSTORE_UNIT: "vse32.v",
    OpClass.VSTORE_STRIDED: "vsse32.v",
    OpClass.VSTORE_INDEXED: "vsuxei32.v",
    OpClass.VFMA: "vfmacc.vf/vv",
    OpClass.VFARITH: "vfadd/vfsub/vfmul",
    OpClass.VIARITH: "vadd/vmul (int)",
    OpClass.VREDUCE: "vfredusum.vs",
    OpClass.VSLIDE: "vslideup/down.vx",
    OpClass.VPERMUTE: "vrgather.vv",
    OpClass.VMOVE: "vmv/vfmv",
    OpClass.VMASK: "vmset/whilelt",
    OpClass.SCALAR: "(scalar)",
}


def _operand_str(ops: Operands) -> str:
    """Assembly-style operand list: destination, sources, index, imm."""
    parts: list[str] = []
    if ops.vd is not None:
        parts.append(f"v{ops.vd}")
    parts.extend(f"v{r}" for r in ops.vs)
    if ops.vidx is not None:
        parts.append(f"v{ops.vidx}")
    if ops.imm is not None:
        parts.append(str(ops.imm))
    if ops.avl is not None:
        parts.append(f"avl={ops.avl}")
    return ", ".join(parts)


def format_event(ev: InstrEvent) -> str:
    """One listing line for a dynamic instruction."""
    if ev.ops is not None:
        mnem = ev.ops.mnemonic
        regs = _operand_str(ev.ops)
        head = f"{mnem:<20} {regs}  " if regs else f"{mnem:<20} "
    else:
        head = f"{_MNEMONIC.get(ev.opclass, ev.opclass.value):<20} "
    if ev.mem is None:
        return f"{head}vl={ev.elems}"
    m = ev.mem
    if m.kind == "unit":
        detail = f"base={m.base:#x}"
    elif m.kind == "strided":
        detail = f"base={m.base:#x}, stride={m.stride}"
    else:
        span = ""
        if m.offsets:
            span = f", offs[0..{len(m.offsets) - 1}]={m.offsets[0]}..{m.offsets[-1]}"
        detail = f"base={m.base:#x}{span}"
    return f"{head}{detail}, vl={ev.elems}"


def disassemble(
    tracer: Tracer,
    start: int = 0,
    count: int | None = None,
) -> Iterator[str]:
    """Yield listing lines for a window of a captured trace.

    Args:
        tracer: a capturing tracer (``capture=True``).
        start: first event index.
        count: number of events (None = to the end).
    """
    if not tracer.capture:
        raise ConfigError("disassemble needs a Tracer(capture=True)")
    if start < 0:
        raise ConfigError(f"start must be non-negative, got {start}")
    end = len(tracer.events) if count is None else min(
        start + count, len(tracer.events)
    )
    for i in range(start, end):
        yield f"{i:>8}: {format_event(tracer.events[i])}"


def listing(tracer: Tracer, start: int = 0, count: int | None = None) -> str:
    """The whole window as one string (convenience for printing)."""
    return "\n".join(disassemble(tracer, start, count))


def summarize_basic_blocks(tracer: Tracer, max_rows: int = 20) -> str:
    """Collapse consecutive runs of identical opcode classes.

    Kernel inner loops show up as long repeated runs; this gives a
    compact structural view of a trace (the first thing one reads when
    a kernel misbehaves).
    """
    if not tracer.capture:
        raise ConfigError("summarize_basic_blocks needs a Tracer(capture=True)")
    runs: list[tuple[OpClass, int]] = []
    for ev in tracer.events:
        if runs and runs[-1][0] is ev.opclass:
            runs[-1] = (ev.opclass, runs[-1][1] + 1)
        else:
            runs.append((ev.opclass, 1))
    rows = [f"{'run':<24}{'count':>8}   ({len(runs)} runs total)"]
    for op, n in runs[:max_rows]:
        rows.append(f"{_MNEMONIC.get(op, op.value):<24}{n:>8}")
    if len(runs) > max_rows:
        rows.append(f"... {len(runs) - max_rows} more runs")
    return "\n".join(rows)
