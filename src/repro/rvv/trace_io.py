"""Trace export/import — the Vehave/MUSA workflow, reproduced.

The paper's Section 7 describes the BSC toolchain where Vehave records
execution traces of vectorized binaries that the MUSA simulator then
replays for performance exploration.  This module provides the same
decoupling for this package: :func:`save_trace` serializes a captured
:class:`~repro.rvv.Tracer` to a compact JSON-lines file and
:func:`load_trace` reconstructs a tracer that
:meth:`repro.sim.Simulator.run_trace` can replay — so a functional run
(possibly slow) can be recorded once and re-simulated under many
configurations, or shipped to another machine.

Format: one JSON object per line.
- header: ``{"repro_trace": 2}``
- events: ``{"o": opclass, "e": elems, "w": eew}`` plus, for memory
  events, ``{"k": kind, "b": base, "s": stride, "x": [offsets...],
  "l": is_load, "q": seq, "ms": sew, "ml": lmul}`` (offsets only for
  indexed accesses), plus ``{"m": lmul}`` when LMUL differs from 1 and
  ``{"op": {"mn", "vd", "vs", "vi", "im", "mg", "a"}}`` operand
  metadata when the recording machine attached any.

Version 1 files (no sequence/vtype/operand metadata) still load; their
events simply carry ``ops=None``, which the analysis passes treat as
"metadata unavailable".
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigError
from repro.isa import OpClass
from repro.rvv.tracer import MemAccess, Operands, Tracer

#: Format version written in the header line.
TRACE_VERSION = 2

#: Versions load_trace accepts.
SUPPORTED_VERSIONS = (1, 2)


def save_trace(tracer: Tracer, path: str | Path) -> int:
    """Write a captured trace to ``path``; returns the event count.

    Raises:
        ConfigError: if the tracer was not capturing (counts-only
            tracers have no events to serialize).
    """
    if not tracer.capture:
        raise ConfigError("save_trace needs a Tracer(capture=True)")
    p = Path(path)
    n = 0
    with p.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"repro_trace": TRACE_VERSION}) + "\n")
        for ev in tracer.events:
            rec: dict = {"o": ev.opclass.value, "e": ev.elems, "w": ev.eew}
            if ev.lmul != 1:
                rec["m"] = ev.lmul
            if ev.mem is not None:
                rec["k"] = ev.mem.kind
                rec["b"] = ev.mem.base
                rec["s"] = ev.mem.stride
                rec["l"] = ev.mem.is_load
                if ev.mem.offsets is not None:
                    rec["x"] = list(ev.mem.offsets)
                if ev.mem.seq >= 0:
                    rec["q"] = ev.mem.seq
                rec["ms"] = ev.mem.sew
                rec["ml"] = ev.mem.lmul
            if ev.ops is not None:
                op: dict = {"mn": ev.ops.mnemonic}
                if ev.ops.vd is not None:
                    op["vd"] = ev.ops.vd
                if ev.ops.vs:
                    op["vs"] = list(ev.ops.vs)
                if ev.ops.vidx is not None:
                    op["vi"] = ev.ops.vidx
                if ev.ops.imm is not None:
                    op["im"] = ev.ops.imm
                if ev.ops.merges:
                    op["mg"] = True
                if ev.ops.avl is not None:
                    op["a"] = ev.ops.avl
                rec["op"] = op
            fh.write(json.dumps(rec) + "\n")
            n += 1
    return n


def load_trace(path: str | Path) -> Tracer:
    """Read a trace file back into a capturing tracer.

    The returned tracer has both per-class statistics and full events,
    so it can be replayed with :meth:`repro.sim.Simulator.run_trace`.
    """
    p = Path(path)
    tracer = Tracer(capture=True)
    with p.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{p}: not a repro trace file") from exc
        if header.get("repro_trace") not in SUPPORTED_VERSIONS:
            raise ConfigError(
                f"{p}: unsupported trace version {header.get('repro_trace')!r}"
            )
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                opclass = OpClass(rec["o"])
                lmul = int(rec.get("m", 1))
                mem = None
                if "k" in rec:
                    mem = MemAccess(
                        kind=rec["k"],
                        base=int(rec["b"]),
                        elems=int(rec["e"]),
                        ebytes=rec["w"] // 8,
                        stride=int(rec.get("s", 0)),
                        offsets=(
                            tuple(rec["x"]) if "x" in rec else None
                        ),
                        is_load=bool(rec.get("l", True)),
                        seq=int(rec["q"]) if "q" in rec else -1,
                        sew=int(rec.get("ms", rec["w"])),
                        lmul=int(rec.get("ml", lmul)),
                    )
                ops = None
                if "op" in rec:
                    op = rec["op"]
                    ops = Operands(
                        mnemonic=str(op["mn"]),
                        vd=int(op["vd"]) if "vd" in op else None,
                        vs=tuple(int(r) for r in op.get("vs", ())),
                        vidx=int(op["vi"]) if "vi" in op else None,
                        imm=int(op["im"]) if "im" in op else None,
                        merges=bool(op.get("mg", False)),
                        avl=int(op["a"]) if "a" in op else None,
                    )
                tracer.record(opclass, int(rec["e"]), int(rec["w"]), mem,
                              lmul=lmul, ops=ops)
            except (KeyError, ValueError) as exc:
                raise ConfigError(f"{p}:{lineno}: malformed event") from exc
    return tracer
