"""The functional vector machine and its RVV 1.0 intrinsics surface.

:class:`RvvMachine` plays the role Spike plays in the paper: it executes
vectorized kernels instruction by instruction with full architectural
semantics (``vsetvl`` strip-mining, tail-undisturbed element handling,
slide/gather register movement, unit/strided/indexed memory accesses) so
their output can be validated against reference NumPy convolutions.
Every executed intrinsic is reported to a :class:`~repro.rvv.tracer.Tracer`,
which is what the timing model and the analytical stream models are
validated against.

The intrinsics exposed here follow the RVV 1.0 / EPI-builtins vocabulary
used by the paper (``vle32``/``vlse32``/``vluxei32``/``vslideup``/
``vfmacc``...), restricted to SEW=32 — the convolutions are fp32, and
index vectors are uint32 byte offsets exactly as ``vluxei32`` defines.

The shared execution engine lives in :class:`VectorEngine`; the ARM-SVE
flavor in :mod:`repro.sve` reuses it with SVE's instruction vocabulary,
which is how the paper's RVV-vs-SVE parity experiment is reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IllegalInstructionError, VectorStateError
from repro.isa import OpClass, vsetvl as isa_vsetvl
from repro.isa.encoding import VType, validate_vlen
from repro.rvv.memory import Memory
from repro.rvv.registers import RegAlloc, VRegFile
from repro.rvv.tracer import MemAccess, Operands, Tracer


class VectorEngine:
    """Shared state and element-level semantics for both ISA flavors.

    Args:
        vlen_bits: hardware vector length (VLEN) in bits.
        memory: the simulated memory; a private one is created if omitted.
        tracer: instruction tracer; a counting-only one is created if
            omitted.
        strict: when True, the engine raises :class:`VectorStateError`
            at execution time on RVV 1.0 register-group overlap
            violations (vslideup/vrgather destination overlapping a
            source group).  The default is permissive — the engine
            computes through the overlap with a source snapshot so
            existing traces keep replaying — and the overlap pass of
            :mod:`repro.analysis` flags the violation statically.
    """

    def __init__(
        self,
        vlen_bits: int = 512,
        memory: Memory | None = None,
        tracer: Tracer | None = None,
        strict: bool = False,
    ) -> None:
        validate_vlen(vlen_bits)
        self.vlen_bits = vlen_bits
        self.vlen_bytes = vlen_bits // 8
        self.memory = memory if memory is not None else Memory()
        self.tracer = tracer if tracer is not None else Tracer(capture=False)
        self.strict = strict
        self.regs = VRegFile(vlen_bits)
        self.alloc = RegAlloc()
        self.vtype = VType(sew=32, lmul=1)
        self.vl = 0
        self._configured = False
        # Scratch backing for load_index_u32.  Allocated lazily (an
        # eager allocation here would shift every subsequent simulated
        # address) but sized at the architectural maximum, so the bump
        # allocator — which cannot free — is asked exactly once.
        self._index_scratch = 0
        self._index_scratch_cap = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def vlmax(self) -> int:
        """Elements per register group at the current vtype."""
        return (self.vlen_bits * self.vtype.lmul) // self.vtype.sew

    def _require_vl(self) -> int:
        if not self._configured:
            raise VectorStateError(
                "vector operation before vsetvl: configure vl first"
            )
        return self.vl

    def _set_vl(self, avl: int, sew: int, lmul: int,
                mn: str = "vsetvli") -> int:
        self.vtype = VType(sew=sew, lmul=lmul)
        self.vl = isa_vsetvl(avl, self.vlen_bits, sew, lmul)
        self._configured = True
        self.tracer.record(OpClass.VSETVL, self.vl, sew, lmul=lmul,
                           ops=Operands(mn, avl=avl))
        return self.vl

    def _group_overlaps(self, a: int, b: int) -> bool:
        """True when register groups starting at ``a`` and ``b`` share
        any of the ``lmul`` architectural registers each occupies."""
        m = self.vtype.lmul
        return a < b + m and b < a + m

    # ------------------------------------------------------------------
    # Register views (fp32 / int32 over the active group)
    # ------------------------------------------------------------------
    def _f32(self, idx: int) -> np.ndarray:
        return self.regs.f32(idx, self.vtype.lmul)

    def _u32(self, idx: int) -> np.ndarray:
        return self.regs.u32(idx, self.vtype.lmul)

    def _i32(self, idx: int) -> np.ndarray:
        return self.regs.i32(idx, self.vtype.lmul)

    def read_f32(self, idx: int) -> np.ndarray:
        """Debug/test helper: copy of the active fp32 lanes of ``v[idx]``."""
        return self._f32(idx)[: self._require_vl()].copy()

    def write_f32(self, idx: int, values: np.ndarray) -> None:
        """Debug/test helper: set the leading fp32 lanes of ``v[idx]``."""
        arr = np.asarray(values, dtype=np.float32).ravel()
        self._f32(idx)[: arr.size] = arr

    # ------------------------------------------------------------------
    # Memory semantics (shared by both ISAs)
    # ------------------------------------------------------------------
    def _mem_desc(self, kind: str, base: int, elems: int, *, stride: int = 4,
                  offsets: np.ndarray | None = None, is_load: bool = True) -> MemAccess:
        offs = None
        if offsets is not None and self.tracer.capture:
            offs = tuple(int(o) for o in offsets)
        return MemAccess(kind=kind, base=base, elems=elems, ebytes=4,
                         stride=stride, offsets=offs, is_load=is_load)

    def _ld_unit(self, vd: int, addr: int, mn: str = "vle32.v") -> None:
        vl = self._require_vl()
        self._f32(vd)[:vl] = self.memory.view(addr, vl, np.float32)
        self.tracer.record(OpClass.VLOAD_UNIT, vl, 32,
                           self._mem_desc("unit", addr, vl),
                           lmul=self.vtype.lmul, ops=Operands(mn, vd=vd))

    def _st_unit(self, vs: int, addr: int, mn: str = "vse32.v") -> None:
        vl = self._require_vl()
        self.memory.view(addr, vl, np.float32)[:] = self._f32(vs)[:vl]
        self.tracer.record(OpClass.VSTORE_UNIT, vl, 32,
                           self._mem_desc("unit", addr, vl, is_load=False),
                           lmul=self.vtype.lmul, ops=Operands(mn, vs=(vs,)))

    def _ld_strided(self, vd: int, addr: int, stride_bytes: int,
                    mn: str = "vlse32.v") -> None:
        vl = self._require_vl()
        self._f32(vd)[:vl] = self.memory.strided_view_f32(addr, vl, stride_bytes)
        self.tracer.record(OpClass.VLOAD_STRIDED, vl, 32,
                           self._mem_desc("strided", addr, vl, stride=stride_bytes),
                           lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, imm=stride_bytes))

    def _st_strided(self, vs: int, addr: int, stride_bytes: int,
                    mn: str = "vsse32.v") -> None:
        vl = self._require_vl()
        self.memory.strided_view_f32(addr, vl, stride_bytes)[:] = self._f32(vs)[:vl]
        self.tracer.record(OpClass.VSTORE_STRIDED, vl, 32,
                           self._mem_desc("strided", addr, vl, stride=stride_bytes,
                                          is_load=False),
                           lmul=self.vtype.lmul,
                           ops=Operands(mn, vs=(vs,), imm=stride_bytes))

    def _ld_indexed(self, vd: int, base: int, vidx: int,
                    mn: str = "vluxei32.v") -> None:
        vl = self._require_vl()
        offsets = self._u32(vidx)[:vl].astype(np.int64)
        self._f32(vd)[:vl] = self.memory.gather_f32(base, offsets)
        self.tracer.record(OpClass.VLOAD_INDEXED, vl, 32,
                           self._mem_desc("indexed", base, vl, offsets=offsets),
                           lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vidx=vidx))

    def _st_indexed(self, vs: int, base: int, vidx: int,
                    mn: str = "vsuxei32.v") -> None:
        vl = self._require_vl()
        offsets = self._u32(vidx)[:vl].astype(np.int64)
        self.memory.scatter_f32(base, offsets, self._f32(vs)[:vl])
        self.tracer.record(OpClass.VSTORE_INDEXED, vl, 32,
                           self._mem_desc("indexed", base, vl, offsets=offsets,
                                          is_load=False),
                           lmul=self.vtype.lmul,
                           ops=Operands(mn, vs=(vs,), vidx=vidx))

    # ------------------------------------------------------------------
    # Arithmetic semantics
    # ------------------------------------------------------------------
    def _fma(self, vd: int, vs1: int, vs2: int, mn: str = "vfmacc.vv") -> None:
        """vd[i] += vs1[i] * vs2[i]  (vfmacc.vv)."""
        vl = self._require_vl()
        d = self._f32(vd)
        d[:vl] += self._f32(vs1)[:vl] * self._f32(vs2)[:vl]
        self.tracer.record(OpClass.VFMA, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs1, vs2), merges=True))

    def _fma_f(self, vd: int, f: float, vs: int, mn: str = "vfmacc.vf") -> None:
        """vd[i] += f * vs[i]  (vfmacc.vf)."""
        vl = self._require_vl()
        d = self._f32(vd)
        d[:vl] += np.float32(f) * self._f32(vs)[:vl]
        self.tracer.record(OpClass.VFMA, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), merges=True))

    def _nfms_f(self, vd: int, f: float, vs: int, mn: str = "vfnmsac.vf") -> None:
        """vd[i] -= f * vs[i]  (vfnmsac.vf)."""
        vl = self._require_vl()
        d = self._f32(vd)
        d[:vl] -= np.float32(f) * self._f32(vs)[:vl]
        self.tracer.record(OpClass.VFMA, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), merges=True))

    _ARITH = {
        "add": np.add,
        "sub": np.subtract,
        "mul": np.multiply,
    }

    def _arith(self, op: str, vd: int, vs1: int, vs2: int,
               mn: str | None = None) -> None:
        vl = self._require_vl()
        fn = self._ARITH[op]
        self._f32(vd)[:vl] = fn(self._f32(vs1)[:vl], self._f32(vs2)[:vl])
        self.tracer.record(OpClass.VFARITH, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn or f"vf{op}.vv", vd=vd,
                                        vs=(vs1, vs2)))

    def _arith_f(self, op: str, vd: int, vs: int, f: float,
                 mn: str | None = None) -> None:
        vl = self._require_vl()
        fn = self._ARITH[op]
        self._f32(vd)[:vl] = fn(self._f32(vs)[:vl], np.float32(f))
        self.tracer.record(OpClass.VFARITH, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn or f"vf{op}.vf", vd=vd, vs=(vs,)))

    def _splat_f(self, vd: int, f: float, mn: str = "vfmv.v.f") -> None:
        vl = self._require_vl()
        self._f32(vd)[:vl] = np.float32(f)
        self.tracer.record(OpClass.VMOVE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd))

    def _mov(self, vd: int, vs: int, mn: str = "vmv.v.v") -> None:
        vl = self._require_vl()
        self._f32(vd)[:vl] = self._f32(vs)[:vl]
        self.tracer.record(OpClass.VMOVE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,)))

    def _iota(self, vd: int, mn: str = "vid.v") -> None:
        vl = self._require_vl()
        self._u32(vd)[:vl] = np.arange(vl, dtype=np.uint32)
        self.tracer.record(OpClass.VMOVE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd))

    def _iadd_x(self, vd: int, vs: int, x: int, mn: str = "vadd.vx") -> None:
        vl = self._require_vl()
        self._u32(vd)[:vl] = self._u32(vs)[:vl] + np.uint32(x)
        self.tracer.record(OpClass.VIARITH, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), imm=x))

    def _imul_x(self, vd: int, vs: int, x: int, mn: str = "vmul.vx") -> None:
        vl = self._require_vl()
        self._u32(vd)[:vl] = self._u32(vs)[:vl] * np.uint32(x)
        self.tracer.record(OpClass.VIARITH, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), imm=x))

    def _iand_x(self, vd: int, vs: int, x: int, mn: str = "vand.vx") -> None:
        vl = self._require_vl()
        self._u32(vd)[:vl] = self._u32(vs)[:vl] & np.uint32(x)
        self.tracer.record(OpClass.VIARITH, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), imm=x))

    def _redsum(self, vs: int, mn: str = "vfredusum.vs") -> float:
        vl = self._require_vl()
        total = float(np.sum(self._f32(vs)[:vl], dtype=np.float64))
        self.tracer.record(OpClass.VREDUCE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vs=(vs,)))
        return total

    # ------------------------------------------------------------------
    # Register movement semantics
    # ------------------------------------------------------------------
    def _slideup(self, vd: int, vs: int, offset: int,
                 mn: str = "vslideup.vx") -> None:
        """vd[i] = vs[i - offset] for offset <= i < vl; lower lanes kept.

        RVV 1.0 reserves overlapping source/destination groups for
        ``vslideup`` — the rule that forces the paper's Algorithm 2
        register copies, which is why the slideup tuple-multiplication
        kernel ping-pongs between two registers.  A ``strict`` engine
        raises at execution time; the permissive default computes
        through a source snapshot and leaves detection to the overlap
        pass of :mod:`repro.analysis`.
        """
        vl = self._require_vl()
        if offset < 0:
            raise IllegalInstructionError(f"slide offset must be >= 0, got {offset}")
        d, s = self._f32(vd), self._f32(vs)
        if self._group_overlaps(vd, vs):
            if self.strict:
                raise VectorStateError(
                    f"vslideup v{vd}, v{vs}: overlapping source and "
                    "destination groups are reserved in RVV 1.0"
                )
            s = s[:vl].copy()
        if offset < vl:
            d[offset:vl] = s[: vl - offset]
        self.tracer.record(OpClass.VSLIDE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), imm=offset,
                                        merges=True))

    def _slidedown(self, vd: int, vs: int, offset: int,
                   mn: str = "vslidedown.vx") -> None:
        """vd[i] = vs[i + offset], zero beyond VLMAX."""
        vl = self._require_vl()
        if offset < 0:
            raise IllegalInstructionError(f"slide offset must be >= 0, got {offset}")
        d, s = self._f32(vd), self._f32(vs)
        vmax = self.vlmax
        take = max(0, min(vl, vmax - offset))
        out = np.zeros(vl, dtype=np.float32)
        out[:take] = s[offset : offset + take]
        d[:vl] = out
        self.tracer.record(OpClass.VSLIDE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), imm=offset))

    def _gather_reg(self, vd: int, vs: int, vidx: int,
                    mn: str = "vrgather.vv") -> None:
        """vd[i] = vs[vidx[i]] (vrgather.vv / SVE TBL); OOB lanes read 0."""
        vl = self._require_vl()
        if self.strict and (self._group_overlaps(vd, vs)
                            or self._group_overlaps(vd, vidx)):
            raise VectorStateError(
                f"vrgather v{vd}, v{vs}, v{vidx}: destination overlapping "
                "a source group is reserved in RVV 1.0"
            )
        idx = self._u32(vidx)[:vl].astype(np.int64)
        src = self._f32(vs)[: self.vlmax].copy()
        out = np.zeros(vl, dtype=np.float32)
        ok = idx < self.vlmax
        out[ok] = src[idx[ok]]
        self._f32(vd)[:vl] = out
        self.tracer.record(OpClass.VPERMUTE, vl, 32, lmul=self.vtype.lmul,
                           ops=Operands(mn, vd=vd, vs=(vs,), vidx=vidx))

    # ------------------------------------------------------------------
    def scalar_ops(self, n: int = 1) -> None:
        """Account ``n`` scalar bookkeeping instructions (optional)."""
        for _ in range(n):
            self.tracer.record(OpClass.SCALAR, 1, 64)


class RvvMachine(VectorEngine):
    """RISC-V "V" extension v1.0 intrinsics, EPI-builtins style.

    All operations act on the first ``vl`` elements as granted by the
    most recent :meth:`setvl`, with tail elements left undisturbed.
    Register operands are architectural indices 0..31, normally obtained
    from :attr:`alloc` (a :class:`~repro.rvv.registers.RegAlloc`).
    """

    # --- configuration -------------------------------------------------
    def setvl(self, avl: int, sew: int = 32, lmul: int = 1) -> int:
        """``vsetvli``: request ``avl`` elements, return granted ``vl``."""
        return self._set_vl(avl, sew, lmul)

    # --- memory ---------------------------------------------------------
    def vle32(self, vd: int, addr: int) -> None:
        """Unit-stride vector load of fp32 elements."""
        self._ld_unit(vd, addr)

    def vse32(self, vs: int, addr: int) -> None:
        """Unit-stride vector store of fp32 elements."""
        self._st_unit(vs, addr)

    def vlse32(self, vd: int, addr: int, stride_bytes: int) -> None:
        """Strided vector load (byte stride, as ``vlse32.v``)."""
        self._ld_strided(vd, addr, stride_bytes)

    def vsse32(self, vs: int, addr: int, stride_bytes: int) -> None:
        """Strided vector store (byte stride, as ``vsse32.v``)."""
        self._st_strided(vs, addr, stride_bytes)

    def vluxei32(self, vd: int, base: int, vidx: int) -> None:
        """Indexed (gather) load: offsets are uint32 *byte* offsets."""
        self._ld_indexed(vd, base, vidx)

    def vsuxei32(self, vs: int, base: int, vidx: int) -> None:
        """Indexed (scatter) store: offsets are uint32 *byte* offsets."""
        self._st_indexed(vs, base, vidx)

    # --- fp arithmetic ---------------------------------------------------
    def vfmacc_vv(self, vd: int, vs1: int, vs2: int) -> None:
        """``vd += vs1 * vs2`` element-wise."""
        self._fma(vd, vs1, vs2)

    def vfmacc_vf(self, vd: int, f: float, vs: int) -> None:
        """``vd += f * vs``."""
        self._fma_f(vd, f, vs)

    def vfnmsac_vf(self, vd: int, f: float, vs: int) -> None:
        """``vd -= f * vs``."""
        self._nfms_f(vd, f, vs)

    def vfadd_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self._arith("add", vd, vs1, vs2)

    def vfsub_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self._arith("sub", vd, vs1, vs2)

    def vfmul_vv(self, vd: int, vs1: int, vs2: int) -> None:
        self._arith("mul", vd, vs1, vs2)

    def vfadd_vf(self, vd: int, vs: int, f: float) -> None:
        self._arith_f("add", vd, vs, f)

    def vfmul_vf(self, vd: int, vs: int, f: float) -> None:
        self._arith_f("mul", vd, vs, f)

    def vfredusum(self, vs: int) -> float:
        """Ordered sum reduction of the active elements."""
        return self._redsum(vs)

    # --- moves / index construction --------------------------------------
    def vfmv_v_f(self, vd: int, f: float) -> None:
        """Splat a scalar float into every active lane."""
        self._splat_f(vd, f)

    def vmv_v_v(self, vd: int, vs: int) -> None:
        """Whole-lane register copy over the active elements."""
        self._mov(vd, vs)

    def vid_v(self, vd: int) -> None:
        """Write lane indices 0..vl-1 (uint32) into ``vd``."""
        self._iota(vd)

    def vadd_vx(self, vd: int, vs: int, x: int) -> None:
        self._iadd_x(vd, vs, x)

    def vmul_vx(self, vd: int, vs: int, x: int) -> None:
        self._imul_x(vd, vs, x)

    def vand_vx(self, vd: int, vs: int, x: int) -> None:
        self._iand_x(vd, vs, x)

    def load_index_u32(self, vd: int, offsets: np.ndarray) -> None:
        """Load precomputed uint32 byte offsets into an index register.

        Models the paper's pattern of materializing an index array in
        memory and loading it (Algorithm 1 lines 5-12 + line 15): the
        index array is placed in simulated memory once and the load is a
        unit-stride vector load.
        """
        vl = self._require_vl()
        offs = np.ascontiguousarray(offsets, dtype=np.uint32)
        if offs.size < vl:
            raise VectorStateError(
                f"index array has {offs.size} entries but vl={vl}"
            )
        if self._index_scratch_cap < vl:
            # First use: allocate once at the architectural maximum —
            # vlmax at LMUL=8 over 32-bit elements, 4 bytes each, i.e.
            # vlen_bits // 4 entries.  ``vl`` can never exceed that, so
            # the region is never regrown (the bump allocator cannot
            # free, and regrowth would leak the previous region).
            self._index_scratch = self.memory.alloc(
                self.vlen_bits, label="index_scratch"
            )
            self._index_scratch_cap = self.vlen_bits // 4
        self.memory.view(self._index_scratch, vl, np.uint32)[:] = offs[:vl]
        self._u32(vd)[:vl] = offs[:vl]
        self.tracer.record(
            OpClass.VLOAD_UNIT, vl, 32,
            self._mem_desc("unit", self._index_scratch, vl),
            lmul=self.vtype.lmul, ops=Operands("vle32.v", vd=vd),
        )

    # --- register movement ------------------------------------------------
    def vslideup_vx(self, vd: int, vs: int, offset: int) -> None:
        self._slideup(vd, vs, offset)

    def vslidedown_vx(self, vd: int, vs: int, offset: int) -> None:
        self._slidedown(vd, vs, offset)

    def vrgather_vv(self, vd: int, vs: int, vidx: int) -> None:
        self._gather_reg(vd, vs, vidx)
