"""Exception hierarchy for the repro package.

Every error raised by the simulator stack derives from :class:`ReproError`
so callers can catch the whole family with one handler while tests can
assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is out of range or internally inconsistent."""


class MemoryError_(ReproError):
    """An access fell outside an allocation or the simulated address space.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`, which means something entirely different.
    """


class AllocationError(MemoryError_):
    """The simulated heap cannot satisfy an allocation request."""


class AlignmentError(MemoryError_):
    """An address or stride violates an alignment requirement."""


class VectorStateError(ReproError):
    """A vector operation was attempted with invalid machine state.

    Examples: operating before any ``vsetvl``, using an SEW the machine
    does not implement, or using a register group that violates LMUL
    alignment rules.
    """


class ScheduleError(ReproError):
    """A scheduling primitive or composed schedule is illegal.

    Raised by :mod:`repro.schedule` *before* any instruction is emitted:
    an illegal schedule (misaligned vector tile, LMUL register-group
    overflow, vectorized reduction, ...) must never lower to a driver
    program, so the machines and audit pipelines only ever see
    well-formed kernels.
    """


class RegisterSpillError(ReproError):
    """A kernel requested more live vector registers than the file holds.

    The paper (Section 3) discusses register spilling pressure caused by
    RVV's lack of vector-typed pointers; the functional simulator surfaces
    the condition as a hard error so kernels are forced to stay within the
    architectural register file, exactly like hand-written intrinsics code.
    """


class IllegalInstructionError(ReproError):
    """An intrinsic was invoked with operands the ISA forbids.

    For example ``vslideup`` with overlapping source and destination
    register groups, which RVV 1.0 reserves.
    """


class TraceValidationError(ReproError):
    """An analytical instruction-stream model disagrees with a trace."""


class SimulationError(ReproError):
    """The timing simulator reached an inconsistent internal state."""


class ObsError(ReproError):
    """Misuse of the observability layer (:mod:`repro.obs`).

    Examples: emitting to a closed event sink, or comparing trace
    payloads whose identities make the comparison meaningless.
    Instrumentation is observation-only, so these never surface from an
    uninstrumented run — they mark bugs in tooling code, not in the
    simulation.
    """
