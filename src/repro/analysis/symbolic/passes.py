"""Symbolic variants of the extent- and VLEN-sensitive passes.

The register-shaped passes run folded over the compact trace
(:mod:`.fold`).  The two passes below need the VLEN domain made
explicit:

- :func:`check_memsafety` proves the memory-safety property of
  :mod:`repro.analysis.passes.memsafety` at **every** VLEN of a regime.
  Accesses are batched per interned signature: one (occurrences ×
  points) base matrix per signature, one vectorized span-in-extent
  check per domain point.  Only a span that is not contained in a
  single extent falls back to the concrete pass's exact per-element
  check, reproducing its messages verbatim (a violation names the VLEN
  it occurs at).
- :func:`check_vla` subsumes the sampled trace-diffing VLA pass: max
  grants and compute/store element totals are read off the regimes'
  compact traces at every admissible VLEN at once (an O(#signatures)
  fold per point), then fed through the same pinned-vector-length and
  fixed-work criteria (and the same message wording) as the concrete
  pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.analysis.passes import memsafety as _memsafety
from repro.analysis.passes import vla as _vla
from repro.isa import IS_STORE, OpClass
from repro.isa.encoding import vsetvl

from .core import SymInt
from .strace import Sig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .audit import Regime

PASS_MEMSAFETY = _memsafety.PASS_ID
PASS_VLA = _vla.PASS_ID


# ----------------------------------------------------------------------
# Memory safety, batched per signature, checked per domain point
# ----------------------------------------------------------------------
def check_memsafety(regime: "Regime") -> list[Finding]:
    strace, ctx, extents = regime.strace, regime.ctx, regime.extents
    if not extents:
        return []
    pis = regime.point_indices()
    npts = len(pis)
    mem_sigs = [s for s in strace.sigs
                if s.kind is not None and not s.is_config]
    if not mem_sigs:
        return []

    def _vals(x: Any) -> tuple[int, ...]:
        if isinstance(x, SymInt):
            v = x.values
            return tuple(v[p] for p in pis)
        xi = int(x)
        return (xi,) * npts

    # Per-sig occurrence positions and per-point base/elems/stride
    # batches, built once and reused at every domain point.
    batches: list[tuple[Sig, np.ndarray, np.ndarray | None,
                        tuple[int, ...] | None, tuple[int, ...] | None]] = []
    for s in mem_sigs:
        occ = strace.occurrences(s.sid)
        assert s.payload is not None
        if s.indexed:
            batches.append((s, occ, None, None, None))
            continue
        base_mat = np.empty((len(s.payload), npts), dtype=np.int64)
        for r, b in enumerate(s.payload):
            if isinstance(b, SymInt):
                v = b.values
                for j, p in enumerate(pis):
                    base_mat[r, j] = v[p]
            else:
                base_mat[r, :] = b
        batches.append((s, occ, base_mat, _vals(s.elems), _vals(s.stride)))

    # Index-content footprint bounds, cached per (content, point).
    bound_cache: dict[tuple[int, int], tuple[int, int, int]] = {}

    def _bounds(content: Any, pi: int) -> tuple[int, int, int]:
        key = (id(content), pi)
        out = bound_cache.get(key)
        if out is None:
            offs = content.at(pi)
            if offs.size == 0:
                out = (0, 0, 0)
            else:
                out = (int(offs.min()), int(offs.max()), int(offs.size))
            bound_cache[key] = out
        return out

    findings: list[Finding] = []
    for j, pi in enumerate(pis):
        vlen = ctx.points[pi][0]
        order = sorted(range(len(extents)),
                       key=lambda k: ctx.value_at(extents[k].base, pi))
        ext = [extents[k] for k in order]
        ebases = np.array([ctx.value_at(e.base, pi) for e in ext],
                          dtype=np.int64)
        eends = np.array([ctx.value_at(e.base, pi) + ctx.value_at(e.size, pi)
                          for e in ext], dtype=np.int64)

        # Fast path: a [lo, hi) span fully inside one extent implies
        # every element of the access is inside it.
        lo_parts: list[np.ndarray] = []
        hi_parts: list[np.ndarray] = []
        # Row bookkeeping so a failed span maps back to (batch, row).
        who: list[tuple[int, np.ndarray, int]] = []  # (batch idx, rows, row0)
        rows = 0
        for bi, (s, occ, base_mat, ev, sv) in enumerate(batches):
            if base_mat is not None:
                assert ev is not None and sv is not None
                n = ev[j]
                if n <= 0:
                    continue
                starts = base_mat[:, j]
                last = starts + (n - 1) * sv[j]
                lo_parts.append(np.minimum(starts, last))
                hi_parts.append(np.maximum(starts, last) + 4)
                who.append((bi, np.arange(len(starts)), rows))
                rows += len(starts)
            else:
                assert s.payload is not None
                los: list[int] = []
                his: list[int] = []
                keep: list[int] = []
                for r, (base, content) in enumerate(s.payload):
                    if content is None:
                        continue  # untracked indices: addresses unknown
                    mn, mx, size = _bounds(content, pi)
                    if size == 0:
                        continue
                    bv = ctx.value_at(base, pi)
                    los.append(bv + mn)
                    his.append(bv + mx + 4)
                    keep.append(r)
                if keep:
                    lo_parts.append(np.array(los, dtype=np.int64))
                    hi_parts.append(np.array(his, dtype=np.int64))
                    who.append((bi, np.array(keep, dtype=np.int64), rows))
                    rows += len(keep)
        if not rows:
            continue
        lo_arr = np.concatenate(lo_parts)
        hi_arr = np.concatenate(hi_parts)
        slot = np.searchsorted(ebases, lo_arr, side="right") - 1
        ok = (slot >= 0) & (hi_arr <= eends[np.maximum(slot, 0)])
        if bool(ok.all()):
            continue

        # Exact per-element fallback, in instruction order (matching
        # the concrete pass's messages element for element).
        suspects: list[tuple[int, int, int]] = []  # (position, batch, row)
        flat = np.nonzero(~ok)[0]
        for bi, occ_rows, row0 in who:
            occ = batches[bi][1]
            sel = flat[(flat >= row0) & (flat < row0 + len(occ_rows))]
            for f in sel:
                r = int(occ_rows[int(f) - row0])
                suspects.append((int(occ[r]), bi, r))
        for pos, bi, r in sorted(suspects):
            s, occ, base_mat, ev, sv = batches[bi]
            assert s.payload is not None
            if s.indexed:
                base, content = s.payload[r]
                addrs = ctx.value_at(base, pi) + content.at(pi)
            else:
                assert base_mat is not None and ev is not None and sv is not None
                addrs = (int(base_mat[r, j])
                         + np.arange(ev[j], dtype=np.int64) * sv[j])
            if addrs.size == 0:
                continue
            slot = np.searchsorted(ebases, addrs, side="right") - 1
            ok = (slot >= 0) & (addrs + 4 <= eends[np.maximum(slot, 0)])
            if bool(ok.all()):
                continue
            bad = int(np.argmin(ok))
            addr = int(addrs[bad])
            kind = "load" if s.is_load else "store"
            sl = int(slot[bad])
            near = ext[sl].label if sl >= 0 else None
            hint = f" (past extent {near!r})" if near else ""
            findings.append(Finding(
                PASS_MEMSAFETY, Severity.ERROR, pos,
                f"element {bad} of this {kind} touches {addr:#x}, which is "
                f"outside every declared buffer extent{hint}",
                strace.instr_at(pos).disasm(), vlen,
            ))
    return findings


# ----------------------------------------------------------------------
# VLA portability, across all regimes at once
# ----------------------------------------------------------------------
_COMPUTE = _vla._COMPUTE


def check_vla(regimes: list["Regime"], fixed_work: bool = True) -> list[Finding]:
    where: dict[int, tuple["Regime", int]] = {}
    for rg in regimes:
        for v, pi in zip(rg.vlens, rg.point_indices()):
            where[v] = (rg, pi)
    vlens = sorted(where)
    if len(vlens) < 2:
        return []
    findings: list[Finding] = []

    max_grants = {v: where[v][0].strace.max_grant_at(where[v][1])
                  for v in vlens}
    grants = set(max_grants.values())
    vlmaxes = {v: vsetvl(1 << 30, v, 32, 1) for v in vlens}
    if (len(grants) == 1 and len(set(vlmaxes.values())) > 1
            and max_grants[vlens[0]] == vlmaxes[vlens[0]]
            and max_grants[vlens[0]] > 0):
        pinned = max_grants[vlens[0]]
        rg, pi = where[vlens[-1]]
        idx, snippet = -1, ""
        st = rg.strace
        for i, sid in enumerate(st.sig_ids):
            s = st.sigs[sid]
            if s.is_config:
                e = s.elems
                v = e.values[pi] if isinstance(e, SymInt) else int(e)
                if v == pinned:
                    idx, snippet = i, st.instr_at(i).disasm()
                    break
        findings.append(Finding(
            PASS_VLA, Severity.ERROR, idx,
            f"granted vector length is pinned at {pinned} for every VLEN in "
            f"{vlens} although VLMAX grows to {vlmaxes[vlens[-1]]} — "
            "hard-coded vector length instead of vsetvl strip-mining",
            snippet,
        ))

    if fixed_work:
        stats_cache: dict[tuple[int, int], dict[OpClass, Any]] = {}

        def _total(v: int, classes: tuple[OpClass, ...]) -> int:
            rg, pi = where[v]
            key = (id(rg), pi)
            st = stats_cache.get(key)
            if st is None:
                st = stats_cache[key] = rg.strace.stats_at(pi)
            return sum(st[c].elems for c in classes if c in st)

        compute = {v: _total(v, _COMPUTE) for v in vlens}
        if len(set(compute.values())) > 1:
            detail = ", ".join(f"{v}b:{compute[v]}" for v in vlens)
            findings.append(Finding(
                PASS_VLA, Severity.ERROR, -1,
                "total compute elements vary with VLEN on a fixed-size "
                f"problem ({detail}) — work is derived from VLEN outside "
                "vsetvl",
            ))
        stores = {v: _total(v, tuple(IS_STORE)) for v in vlens}
        if len(set(stores.values())) > 1:
            detail = ", ".join(f"{v}b:{stores[v]}" for v in vlens)
            findings.append(Finding(
                PASS_VLA, Severity.ERROR, -1,
                f"total stored elements vary with VLEN ({detail}) — the "
                "kernel's memory footprint is VLEN-dependent",
            ))
    return findings
