"""Static cost model: per-opclass counts as functions of VLEN.

The abstract interpreter's tracer accumulates the same per-opclass
statistics a concrete counts-only run accumulates — except the counters
are :class:`~.core.SymInt` values, exact at every VLEN of a regime at
once.  :class:`StaticCostModel` reads them off and serves predictions
at any admissible VLEN; :func:`reconcile` is the trust gate that
machine-checks the model **bit-exactly** against concrete executions
(per-opclass instruction counts, element counts, flops and bytes
moved), including agreeing on which VLENs the kernel refuses to run
at.  This is the surrogate a schedule-search loop can query thousands
of times without ever executing a kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError, ReproError
from repro.isa import VLEN_CHOICES

from .affine import AffineExpr, fit_affine

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.audit import KernelSpec

    from .audit import SymbolicKernelAudit

#: The per-opclass metrics the model predicts (OpStats fields).
METRICS: tuple[str, ...] = (
    "instrs", "elems", "flops", "bytes_loaded", "bytes_stored")

#: Default VLENs reconciled against concrete runs: one per regime shape
#: of the paper's sweep (small / mid / beyond the sampled window).
RECONCILE_VLENS: tuple[int, ...] = (512, 2048, 8192)


@dataclass(frozen=True)
class CostForm:
    """One metric of one opclass over one regime, as a closed form.

    ``expr`` is the exact affine form in VLEN when one exists (it does
    for every shipped kernel — trip counts and grants are piecewise
    affine in VLEN within a regime); None when the metric is not affine
    over the regime, in which case ``values`` still carries the exact
    per-VLEN numbers.
    """

    opclass: str
    metric: str
    vlens: tuple[int, ...]
    values: tuple[int, ...]
    expr: AffineExpr | None

    def render(self) -> str:
        if self.expr is not None:
            return str(self.expr)
        return "{" + ", ".join(
            f"{v}:{n}" for v, n in zip(self.vlens, self.values)) + "}"


@dataclass
class StaticCostModel:
    """Per-kernel instruction/byte counts as functions of VLEN."""

    kernel: str
    machine: str
    table: dict[int, dict[str, dict[str, int]]]  # vlen -> opclass -> metric
    forms: tuple[CostForm, ...]
    unsupported: dict[int, str] = field(default_factory=dict)

    @property
    def vlens(self) -> tuple[int, ...]:
        return tuple(sorted(self.table))

    def at(self, vlen: int) -> dict[str, dict[str, int]]:
        if vlen not in self.table:
            reason = self.unsupported.get(vlen, "outside the audited domain")
            raise ConfigError(
                f"{self.kernel!r} has no cost at VLEN {vlen}: {reason}")
        return self.table[vlen]

    def totals(self, vlen: int) -> dict[str, int]:
        """Aggregate metrics at one VLEN (instrs, flops, bytes, ...)."""
        per = self.at(vlen)
        out = dict.fromkeys(METRICS, 0)
        for metrics in per.values():
            for k in METRICS:
                out[k] += metrics[k]
        out["bytes"] = out["bytes_loaded"] + out["bytes_stored"]
        return out

    def render(self) -> str:
        lines = [f"static cost model: {self.kernel} [{self.machine}] "
                 f"VLEN={{{','.join(str(v) for v in self.vlens)}}}"]
        if self.unsupported:
            why = "; ".join(f"{v}: {r}"
                            for v, r in sorted(self.unsupported.items()))
            lines.append(f"  unsupported: {why}")
        by_class: dict[str, list[CostForm]] = {}
        for form in self.forms:
            by_class.setdefault(form.opclass, []).append(form)
        for opclass in sorted(by_class):
            lines.append(f"  {opclass}:")
            for form in by_class[opclass]:
                span = f"{form.vlens[0]}..{form.vlens[-1]}"
                lines.append(
                    f"    {form.metric:<13} VLEN {span:<12} = {form.render()}")
        return "\n".join(lines)


def build_cost_model(audit: "SymbolicKernelAudit") -> StaticCostModel:
    """Read the cost surface off a symbolic audit's compact traces."""
    table: dict[int, dict[str, dict[str, int]]] = {}
    forms: list[CostForm] = []
    for rg in audit.regimes:
        ctx = rg.ctx
        pis = rg.point_indices()
        # Counters come from an O(#signatures) fold per domain point;
        # closed forms are fitted over the regime's full active set
        # (a superset of its vlens when regimes overlapped during
        # discovery), exactly as SymContext.as_affine does.
        need = sorted(set(ctx.active) | set(pis))
        stats = {pi: rg.strace.stats_at(pi) for pi in need}
        envs = {pi: dict(zip(ctx.names, ctx.points[pi])) for pi in need}
        active = sorted(ctx.active)
        per_class: dict[str, dict[str, tuple[int, ...]]] = {}
        for opclass in sorted(stats[pis[0]]):
            oc = opclass.value
            per_class[oc] = {
                m: tuple(getattr(stats[pi][opclass], m) for pi in pis)
                for m in METRICS
            }
            for m in METRICS:
                forms.append(CostForm(
                    oc, m, rg.vlens, per_class[oc][m],
                    fit_affine(ctx.names,
                               [(envs[pi], getattr(stats[pi][opclass], m))
                                for pi in active])))
        for v_i, vlen in enumerate(rg.vlens):
            table[vlen] = {
                oc: {m: vals[v_i] for m, vals in metrics.items()}
                for oc, metrics in per_class.items()
            }
    return StaticCostModel(
        kernel=audit.kernel,
        machine=audit.machine,
        table=table,
        forms=tuple(forms),
        unsupported=dict(audit.unsupported),
    )


def cost_model_for(
    spec: "KernelSpec",
    flavor: str = "rvv",
    vlens: tuple[int, ...] = VLEN_CHOICES,
) -> StaticCostModel:
    """Interpret a kernel symbolically and build its cost model."""
    from .audit import interpret_kernel

    return build_cost_model(interpret_kernel(spec, flavor, vlens))


def reconcile(
    model: StaticCostModel,
    spec: "KernelSpec",
    flavor: str | None = None,
    vlens: tuple[int, ...] = RECONCILE_VLENS,
) -> list[str]:
    """Bit-exactly check the model against concrete executions.

    Runs the kernel concretely (counts-only tracer) at each requested
    VLEN and compares every per-opclass metric.  Returns a list of
    human-readable mismatch descriptions — empty means the static model
    is exact.  A VLEN the model marks unsupported must also fail
    concretely (and vice versa).
    """
    from repro.analysis.audit import MACHINE_FLAVORS
    from repro.rvv import Memory, Tracer

    flavor = model.machine if flavor is None else flavor
    mismatches: list[str] = []
    for vlen in vlens:
        try:
            machine = MACHINE_FLAVORS[flavor](
                vlen, memory=Memory(1 << 26), tracer=Tracer(capture=False))
            spec.run(machine)
        except ReproError as exc:
            if vlen in model.table:
                mismatches.append(
                    f"VLEN {vlen}: concrete run failed ({type(exc).__name__}: "
                    f"{exc}) but the model predicts "
                    f"{model.table[vlen]}")
            continue
        if vlen not in model.table:
            mismatches.append(
                f"VLEN {vlen}: concrete run succeeded but the model marks "
                f"it {model.unsupported.get(vlen, 'uncovered')!r}")
            continue
        predicted = model.at(vlen)
        actual = {c.value: {m: getattr(st, m) for m in METRICS}
                  for c, st in machine.tracer.by_class.items()}
        for oc in sorted(set(predicted) | set(actual)):
            p = predicted.get(oc)
            a = actual.get(oc)
            if p is None or a is None:
                mismatches.append(
                    f"VLEN {vlen} {oc}: predicted={p} actual={a}")
                continue
            for m in METRICS:
                if p[m] != a[m]:
                    mismatches.append(
                        f"VLEN {vlen} {oc}.{m}: predicted={p[m]} "
                        f"actual={a[m]}")
    return mismatches
