"""VLEN-parametric abstract interpretation of the kernel registry.

The symbolic analyzer proves, without executing a single kernel
element, what the trace-lifted audit samples: it runs kernel drivers
against data-free abstract machines whose VLEN is symbolic over the
full admissible domain, lifts the resulting *parametric* programs, and
feeds them through the pass pipeline plus a static cost model that
reconciles bit-exactly against concrete traces.

Layering:

- :mod:`.affine` — the exact affine algebra closed forms live in
- :mod:`.core` — finite-domain relational integers (SymInt/SymContext)
- :mod:`.strace` — compact signature-interned symbolic traces
- :mod:`.machine` — abstract RVV/RVV+/SVE machines
- :mod:`.fold` — register-shaped passes folded per signature
- :mod:`.passes` — symbolic memory-safety and VLA passes
- :mod:`.audit` — the regime-splitting driver and static audit
- :mod:`.cost` — the reconciled static cost model
"""

from .affine import AffineExpr, NonAffineError, fit_affine
from .audit import (
    Regime,
    SymbolicKernelAudit,
    audit_kernel_static,
    audit_kernels_static,
    interpret_kernel,
)
from .core import SymbolicError, SymContext, SymInt
from .fold import analyze_strace
from .cost import (
    METRICS,
    RECONCILE_VLENS,
    CostForm,
    StaticCostModel,
    build_cost_model,
    cost_model_for,
    reconcile,
)
from .machine import (
    ABSTRACT_FLAVORS,
    AbstractMemory,
    AbstractRvvMachine,
    AbstractRvvPlusMachine,
    AbstractSveMachine,
    SymMemAccess,
)
from .strace import Sig, SymTrace

__all__ = [
    "ABSTRACT_FLAVORS",
    "METRICS",
    "RECONCILE_VLENS",
    "AbstractMemory",
    "AbstractRvvMachine",
    "AbstractRvvPlusMachine",
    "AbstractSveMachine",
    "AffineExpr",
    "CostForm",
    "NonAffineError",
    "Regime",
    "Sig",
    "StaticCostModel",
    "SymContext",
    "SymInt",
    "SymMemAccess",
    "SymTrace",
    "SymbolicError",
    "SymbolicKernelAudit",
    "analyze_strace",
    "audit_kernel_static",
    "audit_kernels_static",
    "build_cost_model",
    "cost_model_for",
    "fit_affine",
    "interpret_kernel",
    "reconcile",
]
