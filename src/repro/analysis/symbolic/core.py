"""Finite-domain relational values for the abstract kernel interpreter.

The admissible hardware vector lengths form a *finite* set
(:data:`repro.isa.VLEN_CHOICES`, 128..16384 bits), so the symbolic
analyzer does not need a general-purpose symbolic integer theory: a
quantity that depends on VLEN is represented *relationally*, as its
exact integer value at every point of the domain
(:class:`SymInt.values`), plus the identity of a *witness* point whose
control-flow outcomes the interpretation follows.

Comparisons are where abstraction meets control flow.  When the driver
branches on a symbolic quantity (``while done < n``, ``min(a, b)``,
``range(k_panels)``), the comparison returns the witness outcome and
*restricts* the active domain to the points that agree with it — the
classic guard of a path-sensitive abstract interpreter, specialized to
a finite domain where the guard is computed exactly by enumeration.
One interpretation therefore covers a *regime*: the maximal set of
VLENs whose dynamic instruction stream is structurally identical to the
witness's.  The driver in :mod:`repro.analysis.symbolic.audit` re-runs
with fresh witnesses until every point is covered.

Two coercions deserve a note:

- ``__index__``/``__int__`` (hit by ``range()``, ``np.arange`` and
  friends) *pin* the domain to the points equal to the witness value —
  the coarsest sound response to a value escaping into a world that
  needs one concrete integer.
- uniform values collapse: any operation whose result is equal at every
  *active* point returns a plain ``int``.  The active set only ever
  shrinks, so the collapse stays sound — and it makes singleton-regime
  interpretation nearly as cheap as a concrete counts-only run.

After the run the context is *sealed*: comparisons switch from
guard-semantics to verdict-semantics (``==`` means "equal at every
active point"), which is what the analysis passes want when they compare
fields of a parametric program.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Sequence, Union

from repro.errors import ReproError

from .affine import AffineExpr, fit_affine

IntLike = Union[int, "SymInt"]


class SymbolicError(ReproError):
    """The abstract interpreter was used outside its contract."""


class SymContext:
    """The domain, active set and witness of one abstract interpretation.

    ``names`` are the symbol names (currently ``("VLEN",)``) and
    ``points`` the full domain grid: one tuple of symbol values per
    point.  ``active`` is the set of point indices still compatible
    with every branch outcome observed so far; it always contains the
    witness.
    """

    __slots__ = ("names", "points", "witness_index", "active",
                 "recording", "_symcache")

    def __init__(
        self,
        names: Sequence[str],
        points: Sequence[Sequence[int]],
        witness: Sequence[int],
    ) -> None:
        self.names = tuple(names)
        self.points = tuple(tuple(p) for p in points)
        if not self.points:
            raise SymbolicError("empty symbolic domain")
        for p in self.points:
            if len(p) != len(self.names):
                raise SymbolicError(f"point arity mismatch: {p}")
        try:
            self.witness_index = self.points.index(tuple(witness))
        except ValueError:
            raise SymbolicError(
                f"witness {tuple(witness)} not in domain") from None
        self.active: tuple[int, ...] = tuple(range(len(self.points)))
        self.recording = True
        self._symcache: dict[str, SymInt] = {}

    # -- construction helpers -----------------------------------------
    @staticmethod
    def for_vlens(vlens: Sequence[int], witness: int) -> "SymContext":
        return SymContext(("VLEN",), [(v,) for v in vlens], (witness,))

    def symbol(self, name: str) -> IntLike:
        """The SymInt whose value at each point is that point's symbol."""
        cached = self._symcache.get(name)
        if cached is not None:
            return cached
        col = self.names.index(name)
        sym = SymInt(self, tuple(p[col] for p in self.points))
        self._symcache[name] = sym
        return self.collapse(sym)

    # -- domain bookkeeping -------------------------------------------
    def seal(self) -> None:
        """Freeze the active set; comparisons become verdicts."""
        self.recording = False

    def restrict(self, keep: Iterable[int]) -> None:
        if not self.recording:
            raise SymbolicError("cannot restrict a sealed context")
        kept = tuple(i for i in self.active if i in set(keep))
        if self.witness_index not in kept:
            raise SymbolicError("restriction dropped the witness point")
        self.active = kept

    def active_points(self) -> tuple[tuple[int, ...], ...]:
        return tuple(self.points[i] for i in self.active)

    def active_envs(self) -> tuple[dict[str, int], ...]:
        return tuple(dict(zip(self.names, p)) for p in self.active_points())

    # -- value helpers ------------------------------------------------
    def collapse(self, x: "SymInt") -> IntLike:
        """Return a plain int when the value is uniform on the active set."""
        vals = x.values
        it = iter(self.active)
        first = vals[next(it)]
        for i in it:
            if vals[i] != first:
                return x
        return first

    def lift(self, x: IntLike) -> "SymInt":
        if isinstance(x, SymInt):
            return x
        return SymInt(self, (int(x),) * len(self.points))

    def value_at(self, x: IntLike, point_index: int) -> int:
        if isinstance(x, SymInt):
            return x.values[point_index]
        return int(x)

    def witness_of(self, x: IntLike) -> int:
        return self.value_at(x, self.witness_index)

    def pointwise(self, fn: Callable[..., int], *xs: IntLike) -> IntLike:
        """Apply fn at every point WITHOUT touching control flow.

        This is how machine internals compute data that happens to be
        exactly representable (``vl = min(avl, VLMAX)``): no guard, no
        domain restriction, just the pointwise image.  Points outside
        the active set are computed on a best-effort basis (they are
        never read back) — if fn raises there, the witness value is
        substituted.
        """
        if not any(isinstance(x, SymInt) for x in xs):
            return fn(*xs)
        cols = [x.values if isinstance(x, SymInt) else None for x in xs]
        n = len(self.points)
        out = [0] * n
        active = set(self.active)
        wvals: list[int] | None = None
        for i in range(n):
            args = [c[i] if c is not None else x
                    for c, x in zip(cols, xs)]
            try:
                out[i] = fn(*args)
            except Exception:
                if i in active:
                    raise
                if wvals is None:
                    wi = self.witness_index
                    wvals = [c[wi] if c is not None else x
                             for c, x in zip(cols, xs)]
                out[i] = fn(*wvals)
        return self.collapse(SymInt(self, tuple(out)))

    def pointwise_min(self, a: IntLike, b: IntLike) -> IntLike:
        return self.pointwise(min, a, b)

    def pointwise_max(self, a: IntLike, b: IntLike) -> IntLike:
        return self.pointwise(max, a, b)

    def forall(self, pred: Callable[[int], bool], x: IntLike) -> bool:
        if isinstance(x, SymInt):
            return all(pred(x.values[i]) for i in self.active)
        return pred(int(x))

    def exists(self, pred: Callable[[int], bool], x: IntLike) -> bool:
        return not self.forall(lambda v: not pred(v), x)

    # -- rendering ----------------------------------------------------
    def as_affine(self, x: IntLike) -> AffineExpr | None:
        """Fit an exact affine closed form over the active points."""
        if not isinstance(x, SymInt):
            return AffineExpr.constant(int(x))
        pts = [(dict(zip(self.names, self.points[i])), x.values[i])
               for i in self.active]
        return fit_affine(self.names, pts)

    def render(self, x: IntLike) -> str:
        if not isinstance(x, SymInt):
            return str(int(x))
        expr = self.as_affine(x)
        if expr is not None:
            return str(expr)
        pairs = ", ".join(
            f"{'/'.join(str(v) for v in self.points[i])}:{x.values[i]}"
            for i in self.active)
        return "{" + pairs + "}"


class SymInt:
    """An integer-valued function on the context's domain points.

    Only the entries at *active* indices are meaningful; inactive
    entries are whatever the pointwise computation produced before the
    domain was restricted.  Uniform values never reach user code as
    SymInt — :meth:`SymContext.collapse` turns them into plain ints —
    so observing a SymInt means the quantity genuinely varies across
    the current regime.
    """

    __slots__ = ("ctx", "values")

    def __init__(self, ctx: SymContext, values: tuple[int, ...]) -> None:
        if len(values) != len(ctx.points):
            raise SymbolicError("value/domain arity mismatch")
        self.ctx = ctx
        self.values = values

    # -- arithmetic ---------------------------------------------------
    def _binop(self, other: object, fn: Callable[[int, int], int],
               swap: bool = False) -> IntLike:
        if isinstance(other, SymInt):
            if other.ctx is not self.ctx:
                raise SymbolicError("mixing values from different contexts")
            ov: Sequence[int] | None = other.values
        elif isinstance(other, int):
            ov = None
        else:
            return NotImplemented
        sv = self.values
        if ov is None:
            o = int(other)  # type: ignore[arg-type]
            if swap:
                vals = tuple(fn(o, a) for a in sv)
            else:
                vals = tuple(fn(a, o) for a in sv)
        elif swap:
            vals = tuple(fn(b, a) for a, b in zip(sv, ov))
        else:
            vals = tuple(fn(a, b) for a, b in zip(sv, ov))
        return self.ctx.collapse(SymInt(self.ctx, vals))

    def __add__(self, other: object) -> IntLike:
        return self._binop(other, operator.add)

    def __radd__(self, other: object) -> IntLike:
        return self._binop(other, operator.add, swap=True)

    def __sub__(self, other: object) -> IntLike:
        return self._binop(other, operator.sub)

    def __rsub__(self, other: object) -> IntLike:
        return self._binop(other, operator.sub, swap=True)

    def __mul__(self, other: object) -> IntLike:
        return self._binop(other, operator.mul)

    def __rmul__(self, other: object) -> IntLike:
        return self._binop(other, operator.mul, swap=True)

    def __floordiv__(self, other: object) -> IntLike:
        return self._binop(other, operator.floordiv)

    def __rfloordiv__(self, other: object) -> IntLike:
        return self._binop(other, operator.floordiv, swap=True)

    def __mod__(self, other: object) -> IntLike:
        return self._binop(other, operator.mod)

    def __rmod__(self, other: object) -> IntLike:
        return self._binop(other, operator.mod, swap=True)

    def __and__(self, other: object) -> IntLike:
        return self._binop(other, operator.and_)

    __rand__ = __and__

    def __neg__(self) -> "SymInt":
        return SymInt(self.ctx, tuple(-a for a in self.values))

    def __abs__(self) -> IntLike:
        return self.ctx.collapse(
            SymInt(self.ctx, tuple(abs(a) for a in self.values)))

    # -- comparisons: guards while recording, verdicts when sealed ----
    def _cmp(self, other: object, op: Callable[[int, int], bool],
             swap: bool = False) -> bool:
        if isinstance(other, SymInt):
            if other.ctx is not self.ctx:
                raise SymbolicError("mixing values from different contexts")
            get: Callable[[int], int] = other.values.__getitem__
        elif isinstance(other, int):
            o = int(other)
            get = lambda i: o  # noqa: E731
        else:
            return NotImplemented  # type: ignore[return-value]
        ctx = self.ctx
        sv = self.values

        def at(i: int) -> bool:
            a, b = sv[i], get(i)
            return op(b, a) if swap else op(a, b)

        w = at(ctx.witness_index)
        if ctx.recording:
            keep = [i for i in ctx.active if at(i) == w]
            if len(keep) != len(ctx.active):
                ctx.restrict(keep)
            return w
        return all(at(i) for i in ctx.active)

    def __lt__(self, other: object) -> bool:
        return self._cmp(other, operator.lt)

    def __le__(self, other: object) -> bool:
        return self._cmp(other, operator.le)

    def __gt__(self, other: object) -> bool:
        return self._cmp(other, operator.gt)

    def __ge__(self, other: object) -> bool:
        return self._cmp(other, operator.ge)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        out = self._cmp(other, operator.eq)
        if out is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return out

    # __eq__ restricts/quantifies over a *subset* of points, so no hash
    # can be consistent with it.
    __hash__ = None  # type: ignore[assignment]

    def __bool__(self) -> bool:
        ctx = self.ctx
        w = bool(self.values[ctx.witness_index])
        if ctx.recording:
            keep = [i for i in ctx.active if bool(self.values[i]) == w]
            if len(keep) != len(ctx.active):
                ctx.restrict(keep)
            return w
        return all(bool(self.values[i]) for i in ctx.active)

    # -- escape hatches: pin the domain to the witness value ----------
    def __index__(self) -> int:
        ctx = self.ctx
        w = self.values[ctx.witness_index]
        if ctx.recording:
            keep = [i for i in ctx.active if self.values[i] == w]
            if len(keep) != len(ctx.active):
                ctx.restrict(keep)
            return w
        if all(self.values[i] == w for i in ctx.active):
            return w
        raise SymbolicError(
            f"cannot concretize {ctx.render(self)} after sealing")

    __int__ = __index__

    def __float__(self) -> float:
        return float(self.__index__())

    # True division leaves the integers, so it pins like __index__
    # (np.arange sizes its output with a true division of the stop).
    def __truediv__(self, other: object) -> float:
        if not isinstance(other, (int, float)):
            return NotImplemented  # type: ignore[return-value]
        return self.__index__() / other

    def __rtruediv__(self, other: object) -> float:
        if not isinstance(other, (int, float)):
            return NotImplemented  # type: ignore[return-value]
        return other / self.__index__()

    # -- rendering ----------------------------------------------------
    def __str__(self) -> str:
        return self.ctx.render(self)

    def __repr__(self) -> str:
        return f"SymInt({self.ctx.render(self)})"

    def __format__(self, spec: str) -> str:
        vals = {self.values[i] for i in self.ctx.active}
        if len(vals) == 1:
            return format(next(iter(vals)), spec)
        return self.ctx.render(self)
