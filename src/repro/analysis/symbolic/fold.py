"""Folded register-shaped passes over the compact symbolic trace.

The concrete register passes (:mod:`repro.analysis.passes.overlap`,
``vtype``, ``defuse``) walk one materialized instruction at a time.  On
a :class:`~.strace.SymTrace` that walk is redundant: every occurrence
of an interned signature has identical registers, configuration and
LMUL, so a per-*signature* check reaches the same verdict as a
per-*instruction* check — and a clean kernel is judged in O(#signatures)
instead of O(#instructions).

Equivalence with the concrete pipeline (pass order, message text,
finding order, dedup counts) is load-bearing — the differential tests
compare these passes against ``analyze_program`` on the materialized
program, golden-bad fragments included:

- **overlap / vtype** are per-instruction stateless, so they fold
  completely.  For a signature without per-occurrence payload the
  disassembly is constant, and one :class:`Finding` with
  ``count=N`` reproduces exactly what concrete-then-dedupe yields;
  memory signatures (whose bases vary per occurrence) emit
  per-occurrence findings and let the final dedup merge what is
  mergeable, again exactly like the concrete path.
- **defuse** is a sequential dataflow scan, folded differently: the
  signature-id stream of a strip-mined loop is *periodic* (varying
  base addresses live in payloads, not in the stream), so after one
  silent, state-stable trial period the remaining repetitions are
  skipped wholesale (the period boundary found with one vectorized
  comparison).  Any emission or state change falls back to the exact
  scan, so kernels with real def-use bugs get exact positions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.findings import Finding, Severity, dedupe_findings
from repro.analysis.passes import defuse as _defuse
from repro.analysis.passes import overlap as _overlap
from repro.analysis.passes import vtype as _vtype
from repro.isa import OpClass

from .strace import SymTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .audit import Regime

__all__ = ["analyze_strace", "check_overlap", "check_vtype", "check_defuse"]

_SLIDEUP_LIKE = _overlap._SLIDEUP_LIKE
_GATHER_LIKE = _overlap._GATHER_LIKE


def _emit(findings: list[Finding], strace: SymTrace, sid: int, count: int,
          pass_id: str, severity: Severity, message: str) -> None:
    """Emit one folded finding, occurrence-expanded for memory sigs.

    Non-memory signatures have position-independent disassembly, so a
    single finding with ``count`` occurrences is exactly what the
    concrete pass plus dedup produces.  Memory signatures interpolate
    the per-occurrence base address into their disassembly; emit each
    occurrence and let the final dedup merge the ones that coincide.
    """
    s = strace.sigs[sid]
    if s.payload is not None and not s.is_config:
        for pos in strace.occurrences(sid):
            p = int(pos)
            findings.append(Finding(
                pass_id, severity, p, message,
                strace.instr_at(p).disasm(), None))
    else:
        findings.append(Finding(
            pass_id, severity, s.first, message,
            strace.instr_at(s.first).disasm(), None, count=count))


# ----------------------------------------------------------------------
# Pass 1 — register-group overlap, folded per signature
# ----------------------------------------------------------------------
def check_overlap(strace: SymTrace) -> list[Finding]:
    findings: list[Finding] = []
    sigs = strace.sigs
    for sid, c in strace.counts().items():
        s = sigs[sid]
        ops = s.ops
        if ops is None or s.opclass is OpClass.SCALAR:
            continue
        lmul = s.lmul
        if lmul > 1:
            regs = list(ops.vs)
            if ops.vd is not None:
                regs.append(ops.vd)
            if ops.vidx is not None:
                regs.append(ops.vidx)
            for reg in regs:
                if reg % lmul:
                    _emit(findings, strace, sid, c,
                          _overlap.PASS_ID, Severity.ERROR,
                          f"v{reg} is not aligned to the LMUL={lmul} register "
                          "group size (groups must start at multiples of "
                          "LMUL)")
        if ops.vd is None:
            continue
        hazards: list[int] = []
        if ops.mnemonic in _SLIDEUP_LIKE:
            hazards = list(ops.vs)
        elif ops.mnemonic in _GATHER_LIKE:
            hazards = list(ops.vs)
            if ops.vidx is not None:
                hazards.append(ops.vidx)
        for src in hazards:
            if ops.vd < src + lmul and src < ops.vd + lmul:
                _emit(findings, strace, sid, c,
                      _overlap.PASS_ID, Severity.ERROR,
                      f"{ops.mnemonic}: destination group v{ops.vd} overlaps "
                      f"source group v{src} — reserved in RVV 1.0 (the rule "
                      "behind Algorithm 2's register copies)")
    return findings


# ----------------------------------------------------------------------
# Pass 2 — vtype configuration dataflow, folded per signature
# ----------------------------------------------------------------------
def check_vtype(strace: SymTrace) -> list[Finding]:
    findings: list[Finding] = []
    sigs = strace.sigs
    for sid, c in strace.counts().items():
        s = sigs[sid]
        if s.opclass is OpClass.SCALAR or s.is_config:
            continue
        if s.vl is None:
            _emit(findings, strace, sid, c, _vtype.PASS_ID, Severity.ERROR,
                  "vector instruction executed before any vsetvl/whilelt: "
                  "vtype is never-set")
            continue
        if s.elems is not s.vl and s.elems != s.vl:
            _emit(findings, strace, sid, c, _vtype.PASS_ID, Severity.ERROR,
                  f"instruction retired {s.elems} elements but the active "
                  f"configuration granted vl={s.vl} — stale vtype")
        if s.sew is not None and s.eew != s.sew:
            _emit(findings, strace, sid, c, _vtype.PASS_ID, Severity.ERROR,
                  f"instruction EEW={s.eew} under active SEW={s.sew}")
        if s.cfg_lmul is not None and s.lmul != s.cfg_lmul:
            _emit(findings, strace, sid, c, _vtype.PASS_ID, Severity.ERROR,
                  f"instruction LMUL={s.lmul} under active "
                  f"LMUL={s.cfg_lmul}")
        if s.kind is not None and s.sew is not None and s.eew != s.sew:
            # Materialized memory descriptors carry sew = the sig's EEW.
            _emit(findings, strace, sid, c, _vtype.PASS_ID, Severity.ERROR,
                  f"memory access recorded SEW={s.eew} under active "
                  f"SEW={s.sew} (indexed EEW inconsistency)")
    return findings


# ----------------------------------------------------------------------
# Pass 3 — def-use dataflow with periodic loop skipping
# ----------------------------------------------------------------------
def check_defuse(strace: SymTrace) -> list[Finding]:
    findings: list[Finding] = []
    sigs = strace.sigs
    ids = strace.sig_ids
    n = len(ids)
    # Per-sig (uses, defs) unit tuples; False marks a skipped sig.
    pre: list = [None] * len(sigs)

    def _pre(sid: int):
        s = sigs[sid]
        ops = s.ops
        if ops is None or s.opclass is OpClass.SCALAR or s.is_config:
            pre[sid] = False
            return False
        lmul = s.lmul
        uses: set[int] = set()
        defs: set[int] = set()
        for r in ops.vs:
            uses.update(range(r, r + lmul))
        if ops.vidx is not None:
            uses.update(range(ops.vidx, ops.vidx + lmul))
        if ops.vd is not None:
            defs.update(range(ops.vd, ops.vd + lmul))
            if ops.merges:
                uses.update(range(ops.vd, ops.vd + lmul))
        t = (tuple(sorted(uses)), tuple(sorted(defs)))
        pre[sid] = t
        return t

    defined: set[int] = set()
    # unit -> [def position, def sig id, used since that def]
    live: dict[int, list] = {}
    last: dict[int, int] = {}

    def _step(j: int) -> None:
        sid = ids[j]
        last[sid] = j
        ud = pre[sid]
        if ud is None:
            ud = _pre(sid)
        if ud is False:
            return
        uses, defs = ud
        flagged = False
        for u in uses:
            if u not in defined:
                if not flagged:
                    findings.append(Finding(
                        _defuse.PASS_ID, Severity.ERROR, j,
                        f"v{u} is read but no traced instruction has written "
                        "it — uninitialized on real hardware",
                        strace.instr_at(j).disasm(), None))
                    flagged = True
                defined.add(u)
            e = live.get(u)
            if e is not None:
                e[2] = True
        for u in defs:
            e = live.get(u)
            if e is not None and not e[2]:
                findings.append(Finding(
                    _defuse.PASS_ID, Severity.WARNING, e[0],
                    f"v{u} defined here is overwritten at instruction {j} "
                    "without ever being read — dead def",
                    strace.instr_at(e[0]).disasm(), None))
            defined.add(u)
            live[u] = [j, sid, False]

    def _state_key():
        return (frozenset(defined),
                frozenset((u, e[1], e[2]) for u, e in live.items()))

    arr: np.ndarray | None = None
    i = 0
    next_attempt = 0
    while i < n:
        sid = ids[i]
        p = i - last[sid] if sid in last else 0
        periodic = False
        if 0 < p <= n - i and i >= next_attempt:
            q = 8 if p > 8 else p
            if ids[i:i + q] == ids[i - p:i - p + q]:
                periodic = ids[i:i + p] == ids[i - p:i]
        if not periodic:
            _step(i)
            i += 1
            continue
        # One exact trial period; skip the rest only if it was silent
        # and left the dataflow state (modulo def positions) unchanged.
        next_attempt = i + p
        end = i + p
        snap = len(findings)
        key_before = _state_key()
        for j in range(i, end):
            _step(j)
        if len(findings) == snap and _state_key() == key_before:
            if arr is None:
                arr = strace.ids_array()
            neq = arr[end:] != arr[end - p:n - p]
            nz = np.nonzero(neq)[0]
            run_end = end + int(nz[0]) if nz.size else n
            k = (run_end - i) // p - 1  # full periods beyond the trial
            if k > 0:
                kp = k * p
                # The state after k more identical periods differs only
                # in def positions of entries touched this period; the
                # last occurrences of the period's sigs advance the same
                # way.  Shift both so later findings cite exact indices.
                for e in live.values():
                    if e[0] >= i:
                        e[0] += kp
                for s2 in set(ids[i:end]):
                    if last.get(s2, -1) >= i:
                        last[s2] += kp
                i = end + kp
                next_attempt = i
                continue
        i = end
    return findings


def analyze_strace(regime: "Regime") -> list[Finding]:
    """The register-shaped pipeline (overlap, vtype, defuse), folded.

    Equivalent to running ``analyze_program(passes=(overlap, vtype,
    defuse))`` over a concrete lift at *every* VLEN of the regime —
    same findings, same ``vlen_bits`` stamps, same dedup counts —
    without materializing a single program.  One fold serves the whole
    regime; the verdict is then replicated per covered VLEN exactly as
    the concrete per-program passes would have reported it.
    """
    st = regime.strace
    base = check_overlap(st) + check_vtype(st) + check_defuse(st)
    findings = [replace(f, vlen_bits=vlen)
                for vlen in regime.vlens for f in base]
    return dedupe_findings(findings)
