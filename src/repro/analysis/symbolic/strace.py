"""Compact signature-interned recording for the abstract machines.

A concrete capture trace stores one :class:`~repro.rvv.tracer.InstrEvent`
per dynamic instruction.  Abstract interpretation cannot afford that:
the static audit's value proposition is being an order of magnitude
faster than execute-and-lift, and allocating three dataclasses per
dynamic op *is* the execute-and-lift cost profile.

The observation that makes a cheaper encoding exact is that a dynamic
instruction stream is a loop unrolling: almost every op is a repeat of
an earlier op with identical *static* signature — mnemonic, registers,
vector configuration, stride — differing at most in its memory base
address (strip-mined loops walk a buffer) or requested AVL.  So a
:class:`SymTrace` interns each distinct signature once as a :class:`Sig`
and records the stream as a flat ``list[int]`` of signature ids, plus a
per-signature *payload* list holding only the genuinely varying data:

- configuration sigs (vsetvl/whilelt) carry the per-occurrence AVL;
- memory sigs carry the per-occurrence base address (and, for indexed
  accesses, the abstract index-register content);
- everything else carries nothing — the signature is the instruction.

The hot recording path is a tuple hash, a dict lookup and a list
append.  Everything a concrete trace offers is recoverable:

- :meth:`SymTrace.lift` materializes the exact
  :class:`~repro.analysis.ir.LiftedProgram` the old eager path built
  (bit-identical events, including ``seq`` stamps), for the perf lints
  and the abstract-vs-concrete equivalence tests;
- :meth:`SymTrace.instr_at` materializes a single instruction, so pass
  findings can quote real disassembly without paying for the rest;
- :meth:`SymTrace.stats_at` reproduces the per-opclass
  :class:`~repro.rvv.tracer.OpStats` accounting of a counts-only tracer
  at any domain point, in O(#signatures) — the static cost model reads
  these.

A SymTrace is append-only while the machine runs and read-only during
analysis; the occurrence counts and id arrays are cached on first use.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from repro.isa import FLOPS_PER_ELEM, OpClass
from repro.rvv.memory import Extent
from repro.rvv.tracer import InstrEvent, Operands, OpStats

from .core import IntLike, SymContext, SymInt

__all__ = ["Sig", "SymTrace", "sig_key_part"]


def sig_key_part(x: IntLike) -> Any:
    """A hashable intern-key component for a possibly-symbolic value.

    SymInt is deliberately unhashable (its ``__eq__`` is a domain
    guard), so symbolic values intern by their full per-point value
    tuple — stable for the whole run, unlike the shrinking active set.
    """
    return x.values if isinstance(x, SymInt) else x


class Sig:
    """One interned static instruction signature.

    ``elems``/``vl`` are the (possibly symbolic) grant the op retired
    under; ``vl``/``sew``/``cfg_lmul`` are the lifted configuration
    state (for a configuration sig: the newly established values).
    ``payload`` is None for ops whose occurrences are fully described
    by the signature, else the per-occurrence varying datum (see the
    module docstring).  ``first`` is the position of the sig's first
    occurrence in the stream.
    """

    __slots__ = ("sid", "opclass", "mn", "ops", "eew", "lmul", "elems",
                 "vl", "sew", "cfg_lmul", "is_config", "kind", "stride",
                 "is_load", "indexed", "payload", "first")

    def __init__(self, sid: int, opclass: OpClass, mn: str,
                 ops: Operands | None, eew: int, lmul: int, elems: IntLike,
                 vl: IntLike | None, sew: int | None, cfg_lmul: int | None,
                 is_config: bool, kind: str | None, stride: IntLike,
                 is_load: bool, indexed: bool, payload: list[Any] | None,
                 first: int) -> None:
        self.sid = sid
        self.opclass = opclass
        self.mn = mn
        self.ops = ops
        self.eew = eew
        self.lmul = lmul
        self.elems = elems
        self.vl = vl
        self.sew = sew
        self.cfg_lmul = cfg_lmul
        self.is_config = is_config
        self.kind = kind
        self.stride = stride
        self.is_load = is_load
        self.indexed = indexed
        self.payload = payload
        self.first = first


class SymTrace:
    """The compact dynamic stream: interned sigs + id list + payloads."""

    __slots__ = ("ctx", "sig_ids", "sigs", "_map", "_counts", "_ids_arr")

    def __init__(self, ctx: SymContext) -> None:
        self.ctx = ctx
        self.sig_ids: list[int] = []
        self.sigs: list[Sig] = []
        self._map: dict[Any, int] = {}
        self._counts: dict[int, int] | None = None
        self._ids_arr: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.sig_ids)

    # -- recording (hot path lives in the machine overrides) -----------
    def new_config(self, key: Any, opclass: OpClass, mn: str, vl: IntLike,
                   sew: int, lmul: int) -> int:
        """Intern a vsetvl/whilelt signature (payload: per-occurrence AVL)."""
        sid = len(self.sigs)
        self.sigs.append(Sig(
            sid, opclass, mn, None, sew, lmul, vl, vl, sew, lmul,
            True, None, 0, True, False, [], len(self.sig_ids)))
        self._map[key] = sid
        return sid

    def new_op(self, key: Any, opclass: OpClass, ops: Operands | None,
               cfg: "Sig | None", *, eew: int = 32, lmul: int = 1,
               kind: str | None = None, stride: IntLike = 0,
               is_load: bool = True, indexed: bool = False) -> int:
        """Intern a non-configuration signature under config state ``cfg``."""
        if cfg is None:
            vl: IntLike | None = None
            sew: int | None = None
            cfg_lmul: int | None = None
            elems: IntLike = 1
        else:
            vl, sew, cfg_lmul = cfg.vl, cfg.sew, cfg.cfg_lmul
            elems = cfg.elems
        if opclass is OpClass.SCALAR:
            elems = 1
        payload: list[Any] | None = [] if kind is not None else None
        sid = len(self.sigs)
        self.sigs.append(Sig(
            sid, opclass, ops.mnemonic if ops is not None else "", ops,
            eew, lmul, elems, vl, sew, cfg_lmul, False, kind, stride,
            is_load, indexed, payload, len(self.sig_ids)))
        self._map[key] = sid
        return sid

    # -- cached read-side indexes --------------------------------------
    def counts(self) -> dict[int, int]:
        """Occurrences per sig id, in first-occurrence order (cached)."""
        if self._counts is None:
            self._counts = dict(Counter(self.sig_ids))
        return self._counts

    def ids_array(self) -> np.ndarray:
        """The id stream as an int64 array (cached)."""
        if self._ids_arr is None:
            self._ids_arr = np.asarray(self.sig_ids, dtype=np.int64)
        return self._ids_arr

    def occurrences(self, sid: int) -> np.ndarray:
        """Absolute stream positions of every occurrence of ``sid``."""
        return np.nonzero(self.ids_array() == sid)[0]

    # -- materialization -----------------------------------------------
    def _event(self, s: Sig, item: Any, seq: int) -> InstrEvent:
        from .machine import SymMemAccess

        if s.is_config:
            return InstrEvent(s.opclass, s.elems, s.eew, None,  # type: ignore[arg-type]
                              s.lmul, Operands(s.mn, avl=item))
        if s.kind is not None:
            base, content = item if s.indexed else (item, None)
            mem = SymMemAccess(
                kind=s.kind, base=base, elems=s.elems,  # type: ignore[arg-type]
                ebytes=4, stride=s.stride,  # type: ignore[arg-type]
                offsets=None, is_load=s.is_load, seq=seq, sew=s.eew,
                lmul=s.lmul, sym_offsets=content)
            return InstrEvent(s.opclass, s.elems, s.eew, mem,  # type: ignore[arg-type]
                              s.lmul, s.ops)
        return InstrEvent(s.opclass, s.elems, s.eew, None,  # type: ignore[arg-type]
                          s.lmul, s.ops)

    def instr_at(self, pos: int) -> Any:
        """Materialize the single LiftedInstr at stream position ``pos``.

        O(pos) — used to quote evidence for the rare finding, not to
        walk programs.
        """
        from repro.analysis.ir import LiftedInstr

        sid = self.sig_ids[pos]
        s = self.sigs[sid]
        item = None
        if s.payload is not None:
            item = s.payload[self.sig_ids[:pos].count(sid)]
        return LiftedInstr(pos, self._event(s, item, pos),
                           s.vl, s.sew, s.cfg_lmul)  # type: ignore[arg-type]

    def lift(self, vlen_bits: int | None = None,
             extents: tuple[Extent, ...] = ()) -> Any:
        """Materialize the full parametric LiftedProgram.

        Bit-identical to what lifting an eagerly-captured tracer would
        have produced (the equivalence tests compare events field by
        field at concrete VLENs).  Only the perf lints and those tests
        pay this cost; the static audit itself runs on the compact form.
        """
        from repro.analysis.ir import LiftedInstr, LiftedProgram

        sigs = self.sigs
        cursors = [0] * len(sigs)
        instrs = []
        for i, sid in enumerate(self.sig_ids):
            s = sigs[sid]
            item = None
            if s.payload is not None:
                item = s.payload[cursors[sid]]
                cursors[sid] += 1
            instrs.append(LiftedInstr(
                i, self._event(s, item, i), s.vl, s.sew, s.cfg_lmul))  # type: ignore[arg-type]
        return LiftedProgram(tuple(instrs), vlen_bits, tuple(extents))

    # -- accounting -----------------------------------------------------
    def stats_at(self, point_index: int) -> dict[OpClass, OpStats]:
        """Per-opclass counters at one domain point, as plain ints.

        Reproduces exactly what a concrete counts-only
        :class:`~repro.rvv.Tracer` accumulates at that VLEN — every
        occurrence of a sig retires the same element count at a fixed
        point, so the fold is O(#sigs), not O(#ops).
        """
        out: dict[OpClass, OpStats] = {}
        for sid, c in self.counts().items():
            s = self.sigs[sid]
            e = s.elems
            ev = e.values[point_index] if isinstance(e, SymInt) else e
            st = out.get(s.opclass)
            if st is None:
                st = out[s.opclass] = OpStats()
            st.instrs += c
            st.elems += c * ev
            fl = FLOPS_PER_ELEM.get(s.opclass, 0)
            if fl:
                st.flops += fl * c * ev
            if s.kind is not None:
                if s.is_load:
                    st.bytes_loaded += 4 * c * ev
                else:
                    st.bytes_stored += 4 * c * ev
        return out

    def max_grant_at(self, point_index: int) -> int:
        """The largest vl any configuration instruction granted."""
        mg = 0
        for s in self.sigs:
            if s.is_config:
                e = s.elems
                v = e.values[point_index] if isinstance(e, SymInt) else int(e)
                if v > mg:
                    mg = v
        return mg
