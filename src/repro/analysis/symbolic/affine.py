"""Exact affine expressions over named integer symbols.

The symbolic analyzer reports memory extents, trip counts and cost-model
counts as *closed forms* in (VLEN, shape).  This module provides the
tiny exact algebra those closed forms live in: an :class:`AffineExpr` is

    c0 + c1*s1 + c2*s2 + ...

with :class:`~fractions.Fraction` coefficients (``VLEN/8`` is affine
with a rational coefficient even though every concrete evaluation is an
integer).  The algebra is deliberately *partial*: multiplying two
non-constant expressions, or dividing by anything that does not divide
exactly, raises :class:`NonAffineError` instead of silently
approximating.  The abstract interpreter never depends on staying
inside the affine fragment — it tracks exact per-domain-point values —
so affine forms are *derived* afterwards by fitting
(:func:`fit_affine`) and verified against every point of the domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Sequence, Union

from repro.errors import ReproError

Rational = Union[int, Fraction]


class NonAffineError(ReproError):
    """An operation left the affine fragment (e.g. symbol * symbol)."""


def _frac(x: Rational) -> Fraction:
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    raise TypeError(f"not a rational: {x!r}")


@dataclass(frozen=True)
class AffineExpr:
    """An immutable affine form ``const + sum(coeffs[s] * s)``.

    ``coeffs`` maps symbol names to non-zero Fraction coefficients; the
    canonical representation never stores a zero coefficient, so
    structural equality coincides with semantic equality.
    """

    const: Fraction = Fraction(0)
    coeffs: tuple[tuple[str, Fraction], ...] = field(default_factory=tuple)

    # -- construction -------------------------------------------------
    @staticmethod
    def constant(value: Rational) -> "AffineExpr":
        return AffineExpr(const=_frac(value))

    @staticmethod
    def symbol(name: str) -> "AffineExpr":
        return AffineExpr(coeffs=((name, Fraction(1)),))

    @staticmethod
    def _make(const: Fraction, coeffs: Mapping[str, Fraction]) -> "AffineExpr":
        canon = tuple(sorted((s, c) for s, c in coeffs.items() if c != 0))
        return AffineExpr(const=const, coeffs=canon)

    # -- inspection ---------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def symbols(self) -> tuple[str, ...]:
        return tuple(s for s, _ in self.coeffs)

    def coeff(self, name: str) -> Fraction:
        for s, c in self.coeffs:
            if s == name:
                return c
        return Fraction(0)

    # -- ring operations ---------------------------------------------
    def __add__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        o = _coerce(other)
        if o is None:
            return NotImplemented
        acc = dict(self.coeffs)
        for s, c in o.coeffs:
            acc[s] = acc.get(s, Fraction(0)) + c
        return AffineExpr._make(self.const + o.const, acc)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr._make(-self.const, {s: -c for s, c in self.coeffs})

    def __sub__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        o = _coerce(other)
        if o is None:
            return NotImplemented
        return self + (-o)

    def __rsub__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        o = _coerce(other)
        if o is None:
            return NotImplemented
        return o + (-self)

    def __mul__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        o = _coerce(other)
        if o is None:
            return NotImplemented
        if not o.is_constant and not self.is_constant:
            raise NonAffineError(
                f"product of two non-constant affine forms: "
                f"({self}) * ({o})")
        if o.is_constant:
            k = o.const
            var = self
        else:
            k = self.const
            var = o
        return AffineExpr._make(var.const * k, {s: c * k for s, c in var.coeffs})

    __rmul__ = __mul__

    def __truediv__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        o = _coerce(other)
        if o is None:
            return NotImplemented
        if not o.is_constant:
            raise NonAffineError(f"division by non-constant: ({self}) / ({o})")
        if o.const == 0:
            raise ZeroDivisionError("affine division by zero")
        return self * Fraction(1, 1) * (1 / o.const)

    # -- substitution and evaluation ----------------------------------
    def substitute(self, env: Mapping[str, Rational]) -> "AffineExpr":
        """Replace the named symbols with rational values; keep the rest."""
        const = self.const
        acc: dict[str, Fraction] = {}
        for s, c in self.coeffs:
            if s in env:
                const += c * _frac(env[s])
            else:
                acc[s] = c
        return AffineExpr._make(const, acc)

    def evaluate(self, env: Mapping[str, Rational]) -> Fraction:
        """Fully evaluate; raises KeyError if a symbol is missing."""
        out = self.substitute(env)
        if not out.is_constant:
            missing = ", ".join(out.symbols)
            raise KeyError(f"unbound symbols in evaluation: {missing}")
        return out.const

    def evaluate_int(self, env: Mapping[str, Rational]) -> int:
        """Evaluate and require an integral result."""
        v = self.evaluate(env)
        if v.denominator != 1:
            raise NonAffineError(f"non-integral evaluation of {self}: {v}")
        return int(v)

    def bounds(
        self, intervals: Mapping[str, tuple[Rational, Rational]]
    ) -> tuple[Fraction, Fraction]:
        """Exact [lo, hi] of the form over a box of symbol intervals."""
        lo = hi = self.const
        for s, c in self.coeffs:
            a, b = intervals[s]
            fa, fb = _frac(a), _frac(b)
            if fa > fb:
                raise ValueError(f"empty interval for {s}: [{fa}, {fb}]")
            if c >= 0:
                lo += c * fa
                hi += c * fb
            else:
                lo += c * fb
                hi += c * fa
        return lo, hi

    # -- rendering ----------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        for s, c in self.coeffs:
            if c == 1:
                parts.append(s)
            elif c == -1:
                parts.append(f"-{s}")
            elif c.denominator == 1:
                parts.append(f"{c.numerator}*{s}")
            elif c.numerator == 1:
                parts.append(f"{s}/{c.denominator}")
            elif c.numerator == -1:
                parts.append(f"-{s}/{c.denominator}")
            else:
                parts.append(f"{c.numerator}*{s}/{c.denominator}")
        if self.const != 0 or not parts:
            if self.const.denominator == 1:
                parts.append(str(self.const.numerator))
            else:
                parts.append(str(self.const))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")


def _coerce(x: "AffineExpr | Rational | object") -> AffineExpr | None:
    if isinstance(x, AffineExpr):
        return x
    if isinstance(x, (int, Fraction)):
        return AffineExpr.constant(x)
    return None


def fit_affine(
    symbols: Sequence[str],
    points: Iterable[tuple[Mapping[str, int], Rational]],
) -> AffineExpr | None:
    """Fit an exact affine form through sample points, or None.

    ``points`` is an iterable of (environment, value) pairs.  The fit is
    exact: a candidate is solved from a linearly independent subset via
    Gaussian elimination over Fractions and *verified against every
    point*; any mismatch returns None.  Underdetermined systems resolve
    the free coefficients to zero (e.g. a single sample fits as a
    constant), which is still exact on the sampled domain.
    """
    pts = [(dict(env), _frac(val)) for env, val in points]
    if not pts:
        return None
    syms = list(symbols)
    ncol = len(syms) + 1
    # Build rows [coeff_s1, ..., coeff_sk, 1 | value].
    rows = [[_frac(env.get(s, 0)) for s in syms] + [Fraction(1), val]
            for env, val in pts]
    # Gaussian elimination with partial (first non-zero) pivoting.
    sol: list[Fraction | None] = [None] * ncol
    pivots: list[tuple[int, list[Fraction]]] = []
    work = [row[:] for row in rows]
    # Pivot on the constant column first so underdetermined systems
    # (e.g. a single-point regime) resolve to a constant rather than a
    # spurious symbol coefficient.
    for col in [ncol - 1, *range(ncol - 1)]:
        pivot_row = None
        for row in work:
            if row[col] != 0:
                pivot_row = row
                break
        if pivot_row is None:
            continue
        work.remove(pivot_row)
        norm = [x / pivot_row[col] for x in pivot_row]
        pivots.append((col, norm))
        work = [
            [x - row[col] * n for x, n in zip(row, norm)]
            for row in work
        ]
    # Inconsistent system: a residual row 0 == nonzero.
    for row in work:
        if all(x == 0 for x in row[:-1]) and row[-1] != 0:
            return None
    # Back-substitute; unresolved columns default to zero.
    # Each pivot row has zeros in every previously-pivoted column, so
    # processing pivots in reverse resolves all its dependencies first;
    # never-pivoted columns stay None and default to zero.
    for col, norm in reversed(pivots):
        rhs = norm[-1]
        for c2 in range(ncol):
            if c2 != col and norm[c2] != 0 and sol[c2] is not None:
                rhs -= norm[c2] * sol[c2]  # type: ignore[operator]
        sol[col] = rhs
    coeffs = {s: (sol[i] if sol[i] is not None else Fraction(0))
              for i, s in enumerate(syms)}
    const = sol[len(syms)] if sol[len(syms)] is not None else Fraction(0)
    expr = AffineExpr._make(
        const,  # type: ignore[arg-type]
        {s: c for s, c in coeffs.items() if c is not None},  # type: ignore[misc]
    )
    for env, val in pts:
        if expr.evaluate({s: env.get(s, 0) for s in syms}) != val:
            return None
    return expr
