"""The execution-free static audit behind ``repro lint-kernels --static``.

:func:`interpret_kernel` runs a registered kernel harness against an
abstract machine (:mod:`.machine`) with VLEN symbolic over the full
admissible domain :data:`repro.isa.VLEN_CHOICES`.  One interpretation
covers a *regime* — the maximal set of VLENs whose dynamic instruction
stream is structurally identical to the chosen witness's — so the
driver re-runs with fresh witnesses (largest uncovered VLEN first)
until the domain is exhausted.  VLENs the kernel rejects by
construction (``ConfigError`` from a geometry check, say) are recorded
as *unsupported* rather than flagged: refusing to run is a legitimate
static verdict.

:func:`audit_kernel_static` then runs the pass pipeline over each
regime directly on its compact trace — the register-shaped passes
folded per signature (:mod:`.fold`), memory safety and VLA through
their symbolic variants (:mod:`.passes`) — producing the same
:class:`~repro.analysis.findings.KernelAuditReport` the trace-lifted
audit produces, with zero kernel executions and a verdict that covers
**all** VLENs, not the sampled ones.  The parametric
:class:`~repro.analysis.ir.LiftedProgram` is materialized lazily
(:attr:`Regime.program`), only for consumers that genuinely walk
instructions — the performance lints and the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable

from repro.analysis.audit import KernelSpec
from repro.analysis.findings import Finding, KernelAuditReport, dedupe_findings
from repro.analysis.ir import LiftedProgram
from repro.analysis.pipeline import PASS_IDS, PERF_PASS_IDS, analyze_perf
from repro.errors import ConfigError, ReproError
from repro.isa import VLEN_CHOICES
from repro.rvv.memory import Extent

from .core import SymContext
from .fold import analyze_strace
from .machine import ABSTRACT_FLAVORS
from .passes import check_memsafety, check_vla
from .strace import SymTrace

__all__ = [
    "Regime",
    "SymbolicKernelAudit",
    "interpret_kernel",
    "audit_kernel_static",
    "audit_kernels_static",
]


@dataclass
class Regime:
    """One abstract interpretation: a parametric trace and its domain.

    ``vlens`` are the VLENs proven structurally identical; ``ctx`` is
    the (sealed) context whose active points cover those VLENs;
    ``strace`` the compact symbolic trace the interpretation recorded
    and ``extents`` the abstract memory's declared buffer extents.
    ``program`` materializes the full parametric lifted program on
    first use (and caches it).
    """

    vlens: tuple[int, ...]
    ctx: SymContext
    strace: SymTrace
    extents: tuple[Extent, ...]

    @cached_property
    def program(self) -> LiftedProgram:
        return self.strace.lift(vlen_bits=None, extents=self.extents)

    def point_index(self, vlen: int) -> int:
        return self.ctx.points.index((vlen,))

    def point_indices(self) -> tuple[int, ...]:
        return tuple(self.point_index(v) for v in self.vlens)


@dataclass
class SymbolicKernelAudit:
    """Everything one symbolic sweep of a kernel established."""

    kernel: str
    machine: str
    domain: tuple[int, ...]
    regimes: list[Regime] = field(default_factory=list)
    unsupported: dict[int, str] = field(default_factory=dict)

    @property
    def supported_vlens(self) -> tuple[int, ...]:
        return tuple(sorted(v for rg in self.regimes for v in rg.vlens))

    def regime_of(self, vlen: int) -> Regime:
        for rg in self.regimes:
            if vlen in rg.vlens:
                return rg
        raise ConfigError(
            f"VLEN {vlen} not covered by any regime of {self.kernel!r} "
            f"({self.unsupported.get(vlen, 'not in the audited domain')})")


def interpret_kernel(
    spec: KernelSpec,
    flavor: str,
    vlens: tuple[int, ...] = VLEN_CHOICES,
) -> SymbolicKernelAudit:
    """Abstract-interpret one kernel until the VLEN domain is covered."""
    if flavor not in ABSTRACT_FLAVORS:
        raise ConfigError(f"unknown machine flavor {flavor!r}")
    audit = SymbolicKernelAudit(spec.name, flavor, tuple(sorted(vlens)))
    remaining = set(vlens)
    while remaining:
        witness = max(remaining)
        ctx = SymContext.for_vlens(audit.domain, witness)
        machine = ABSTRACT_FLAVORS[flavor](ctx)
        try:
            spec.run(machine)  # type: ignore[arg-type]
        except ReproError as exc:
            ctx.seal()
            covered = _covered(ctx, remaining)
            reason = f"{type(exc).__name__}: {exc}"
            for v in covered:
                audit.unsupported[v] = reason
            remaining -= set(covered)
            continue
        ctx.seal()
        covered = _covered(ctx, remaining)
        audit.regimes.append(Regime(
            covered, ctx, machine.trace,
            tuple(machine.memory.allocations)))
        remaining -= set(covered)
    audit.regimes.sort(key=lambda rg: rg.vlens[0])
    return audit


def _covered(ctx: SymContext, remaining: set[int]) -> tuple[int, ...]:
    """Newly-covered VLENs: the active points still awaiting a regime."""
    active_vlens = {ctx.points[i][0] for i in ctx.active}
    return tuple(sorted(active_vlens & remaining))


def audit_kernel_static(
    spec: KernelSpec,
    flavor: str = "rvv",
    vlens: tuple[int, ...] = VLEN_CHOICES,
    perf: bool = False,
) -> KernelAuditReport:
    """Statically audit one kernel variant over the whole VLEN domain."""
    audit = interpret_kernel(spec, flavor, vlens)
    findings: list[Finding] = []
    perf_findings: list[Finding] = []
    for rg in audit.regimes:
        # Register-shaped passes fold over the compact trace; memory
        # safety needs the domain made explicit.
        findings.extend(analyze_strace(rg))
        findings.extend(check_memsafety(rg))
        if perf:
            perf_findings.extend(analyze_perf(rg.program))
    findings.extend(check_vla(audit.regimes, fixed_work=spec.fixed_work))
    instr_counts = {v: len(rg.strace)
                    for rg in audit.regimes for v in rg.vlens}
    return KernelAuditReport(
        kernel=spec.name,
        machine=flavor,
        vlens=audit.supported_vlens,
        findings=dedupe_findings(findings),
        instr_counts=instr_counts,
        passes_run=PASS_IDS + (PERF_PASS_IDS if perf else ()),
        mode="static",
        regimes=tuple(rg.vlens for rg in audit.regimes),
        unsupported=dict(audit.unsupported),
        perf=dedupe_findings(perf_findings),
    )


def audit_kernels_static(
    specs: Iterable[KernelSpec] | None = None,
    vlens: tuple[int, ...] = VLEN_CHOICES,
    perf: bool = False,
) -> list[KernelAuditReport]:
    """Statically audit specs (default: the registry) on all machines."""
    from repro.analysis.audit import KERNEL_SPECS

    reports = []
    for spec in (KERNEL_SPECS if specs is None else specs):
        for flavor in spec.machines:
            reports.append(audit_kernel_static(spec, flavor, vlens, perf))
    return reports
