"""Abstract (data-free) machines for the symbolic kernel analyzer.

These classes expose the exact register/vsetvl/memory API of
:class:`~repro.rvv.RvvMachine`, :class:`~repro.rvv.proposed.RvvPlusMachine`
and :class:`~repro.sve.SveMachine` — they *subclass* them, so any
``isinstance`` or capability check a kernel performs keeps working — but
override every execution primitive with a recording-only version:

- no :class:`~repro.rvv.registers.VRegFile` is ever constructed and no
  element data moves (the zero-kernel-executions property the static
  audit advertises; a test pins it by making ``VRegFile.__init__``
  raise);
- VLEN is the symbolic parameter of a :class:`~.core.SymContext`, so
  ``vl`` grants, trip counts, buffer sizes and addresses come out as
  :class:`~.core.SymInt` values — exact at every admissible VLEN of the
  active regime at once;
- memory is an :class:`AbstractMemory`: the same bump allocator as
  :class:`~repro.rvv.Memory` evaluated pointwise, handing out symbolic
  addresses and recording symbolic extents, but backed by no bytes.

Recording goes to a :class:`~.strace.SymTrace` rather than an eager
event list: each override interns its static signature once (mnemonic,
registers, configuration) and appends one integer per dynamic op, with
only the genuinely varying data (memory bases, AVLs, index contents)
kept per occurrence.  The compact trace materializes on demand to a
:class:`~repro.analysis.ir.LiftedProgram` that is *bit-identical*
(mnemonics, registers, grants, addresses, ``seq`` stamps) to lifting a
concrete capture trace at any concrete VLEN — the equivalence and
cost-reconcile tests enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import (
    AlignmentError,
    AllocationError,
    IllegalInstructionError,
    VectorStateError,
)
from repro.isa import OpClass
from repro.isa.encoding import VType
from repro.kernels.common import QUAD
from repro.rvv.machine import RvvMachine
from repro.rvv.memory import LINE_BYTES, Extent
from repro.rvv.proposed import RvvPlusMachine
from repro.rvv.registers import RegAlloc
from repro.rvv.tracer import MemAccess, Operands
from repro.sve.machine import SveMachine

from .core import IntLike, SymContext, SymbolicError
from .strace import Sig, SymTrace, sig_key_part as _k

__all__ = [
    "AbstractMemory",
    "AbstractRvvMachine",
    "AbstractRvvPlusMachine",
    "AbstractSveMachine",
    "SymMemAccess",
    "ABSTRACT_FLAVORS",
]


@dataclass(frozen=True)
class SymMemAccess(MemAccess):
    """A memory-access descriptor with symbolic fields.

    ``base``/``elems`` may be SymInt (typed loosely on the base class);
    ``offsets`` is always None — indexed-access footprints live in
    ``sym_offsets`` instead, as the abstract index-register content at
    the time of the access (see :class:`IndexContent`), resolvable per
    domain point.
    """

    sym_offsets: Any = None


class IndexContent:
    """Abstract content of an index (uint32 offset) register.

    Two shapes cover everything the kernels do: a concrete offset array
    loaded from memory (``load_index_u32``) truncated to the grant, and
    an affine lane sequence ``start + i*step`` (``vid.v``/``INDEX``)
    possibly transformed by ``vadd.vx``/``vmul.vx``/``vand.vx``.
    ``at(point)`` materializes the byte offsets for one domain point.
    """

    __slots__ = ("ctx", "kind", "arr", "start", "step", "mask", "vl")

    def __init__(self, ctx: SymContext, kind: str, vl: IntLike, *,
                 arr: np.ndarray | None = None, start: int = 0,
                 step: int = 1, mask: int | None = None) -> None:
        self.ctx = ctx
        self.kind = kind  # "arr" | "lin"
        self.vl = vl
        self.arr = arr
        self.start = start
        self.step = step
        self.mask = mask

    def at(self, point: int) -> np.ndarray:
        n = self.ctx.value_at(self.vl, point)
        if self.kind == "arr":
            assert self.arr is not None
            return self.arr[:n]
        out = self.start + np.arange(n, dtype=np.int64) * self.step
        if self.mask is not None:
            out &= self.mask
        return out

    def map_lin(self, fn_start: Callable[[int], int],
                fn_step: Callable[[int], int]) -> "IndexContent | None":
        """Transform an affine sequence; None when not representable."""
        if self.kind != "lin" or self.mask is not None:
            return None
        return IndexContent(self.ctx, "lin", self.vl,
                            start=fn_start(self.start),
                            step=fn_step(self.step))


class AbstractMemory:
    """The simulator's bump allocator, evaluated pointwise — no bytes.

    Mirrors :class:`repro.rvv.Memory` address-for-address: same base,
    same alignment rounding, same out-of-memory check (enforced at the
    active domain points).  ``view``/``read_f32`` return throwaway zero
    arrays — staged input data cannot influence the traced instruction
    stream, only its addresses can, and those are symbolic.
    """

    def __init__(self, ctx: SymContext, size_bytes: int = 1 << 26,
                 base: int = 1 << 12) -> None:
        if size_bytes <= 0:
            raise AllocationError(
                f"memory size must be positive, got {size_bytes}")
        self.ctx = ctx
        self.size = int(size_bytes)
        self.base = int(base)
        self._brk: IntLike = self.base
        self._allocations: list[tuple[IntLike, IntLike]] = []
        self._labels: list[str | None] = []

    # -- allocation ----------------------------------------------------
    def alloc(self, nbytes: IntLike, align: int = LINE_BYTES,
              label: str | None = None) -> IntLike:
        ctx = self.ctx
        if ctx.exists(lambda v: v < 0, nbytes):
            raise AllocationError(
                f"allocation size must be non-negative, got {nbytes}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise AlignmentError(
                f"alignment must be a positive power of two, got {align}")
        addr = ctx.pointwise(
            lambda b: (b + align - 1) & ~(align - 1), self._brk)
        end = self.base + self.size
        limit = ctx.pointwise(lambda a, n: a + n, addr, nbytes)
        if ctx.exists(lambda v: v > end, limit):
            raise AllocationError(
                f"out of simulated memory: need {nbytes} bytes at {addr}, "
                f"heap ends at {end:#x}")
        self._brk = limit
        self._allocations.append((addr, nbytes))
        self._labels.append(label)
        return addr

    def alloc_f32(self, nelems: IntLike, align: int = LINE_BYTES,
                  label: str | None = None) -> IntLike:
        return self.alloc(4 * nelems, align, label=label)

    @property
    def allocations(self) -> tuple[Extent, ...]:
        """Labeled extents with (possibly) symbolic base and size."""
        return tuple(
            Extent(label, addr, nbytes)  # type: ignore[arg-type]
            for (addr, nbytes), label in zip(self._allocations, self._labels)
        )

    @property
    def bytes_allocated(self) -> IntLike:
        total: IntLike = 0
        for _, n in self._allocations:
            total = total + n  # type: ignore[operator, assignment]
        return total

    # -- data access: sinks and zero sources ---------------------------
    def view(self, addr: IntLike, count: IntLike,
             dtype: np.dtype | type = np.float32) -> np.ndarray:
        dt = np.dtype(dtype)
        ctx = self.ctx
        if ctx.exists(lambda a: a % dt.itemsize != 0, addr):
            raise AlignmentError(
                f"address {addr} is not aligned to element size {dt.itemsize}")
        return np.zeros(ctx.witness_of(count), dtype=dt)

    def read_f32(self, addr: IntLike, count: IntLike) -> np.ndarray:
        return np.zeros(self.ctx.witness_of(count), dtype=np.float32)

    def write_f32(self, addr: IntLike, values: np.ndarray) -> None:
        return None

    def fill_noise(self, addr: IntLike, nelems: IntLike,
                   rng: np.random.Generator) -> None:
        """Staging protocol: a no-op — abstract buffers hold no data."""
        return None


class AbstractCore:
    """Recording-only override of every VectorEngine execution primitive.

    Mixed in *before* a concrete machine class so the concrete mnemonic
    surface (``vle32``/``fmla``/``vrep4_vi``/...) is inherited while all
    data movement funnels into these overrides.  Each override's
    recording is three steps — signature-key lookup, intern on miss,
    id append — so the per-op cost stays near a dict access (the whole
    point of :class:`~.strace.SymTrace`).
    """

    #: Mnemonic recorded by load_index_u32 (flavor hook).
    _INDEX_LOAD_MN = "vle32.v"

    def __init__(self, ctx: SymContext,
                 memory: AbstractMemory | None = None) -> None:
        self.ctx = ctx
        self.vlen_bits = ctx.symbol("VLEN")
        self.vlen_bytes = self.vlen_bits // 8
        self.memory = memory if memory is not None else AbstractMemory(ctx)
        self.trace = SymTrace(ctx)
        self.strict = False
        self.alloc = RegAlloc()
        self.vtype = VType(sew=32, lmul=1)
        self.vl: IntLike = 0
        self._cfg: Sig | None = None
        self._index_scratch: IntLike = 0
        self._index_scratch_cap: IntLike = 0
        self._index_contents: dict[int, IndexContent | None] = {}

    # -- the zero-execution guarantee ----------------------------------
    @property
    def regs(self) -> Any:
        raise SymbolicError(
            "abstract machines have no register file; a code path tried "
            "to touch element data during symbolic analysis")

    def _f32(self, idx: int) -> np.ndarray:
        raise SymbolicError("abstract machines cannot read register data")

    _u32 = _f32
    _i32 = _f32
    read_f32 = _f32  # type: ignore[assignment]

    def write_f32(self, idx: int, values: np.ndarray) -> None:
        raise SymbolicError("abstract machines cannot write register data")

    # -- configuration -------------------------------------------------
    def _set_vl(self, avl: IntLike, sew: int, lmul: int,
                mn: str = "vsetvli") -> IntLike:
        ctx = self.ctx
        self.vtype = VType(sew=sew, lmul=lmul)
        if ctx.exists(lambda v: v < 0, avl):
            raise VectorStateError(f"AVL must be non-negative, got {avl}")
        self.vl = ctx.pointwise_min(avl, self.vlmax)
        tr = self.trace
        key = ("cfg", mn, sew, lmul, _k(self.vl))
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_config(key, OpClass.VSETVL, mn, self.vl, sew, lmul)
        tr.sig_ids.append(sid)
        cfg = tr.sigs[sid]
        cfg.payload.append(avl)  # type: ignore[union-attr]
        self._cfg = cfg
        return self.vl

    def _require_vl(self) -> IntLike:
        if self._cfg is None:
            raise VectorStateError(
                "vector operation before vsetvl: configure vl first")
        return self.vl

    # -- index-register content tracking -------------------------------
    def _content(self, reg: int) -> IndexContent | None:
        return self._index_contents.get(reg)

    def _set_content(self, reg: int, content: IndexContent | None) -> None:
        if content is None:
            self._index_contents.pop(reg, None)
        else:
            self._index_contents[reg] = content

    # -- memory primitives ---------------------------------------------
    def _ld_unit(self, vd: int, addr: IntLike, mn: str = "vle32.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VLOAD_UNIT, Operands(mn, vd=vd),
                            cfg, lmul=self.vtype.lmul, kind="unit", stride=4)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append(addr)  # type: ignore[union-attr]

    def _st_unit(self, vs: int, addr: IntLike, mn: str = "vse32.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        tr = self.trace
        key = (mn, vs, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VSTORE_UNIT, Operands(mn, vs=(vs,)),
                            cfg, lmul=self.vtype.lmul, kind="unit", stride=4,
                            is_load=False)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append(addr)  # type: ignore[union-attr]

    def _ld_strided(self, vd: int, addr: IntLike, stride_bytes: int,
                    mn: str = "vlse32.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, _k(stride_bytes), cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VLOAD_STRIDED,
                            Operands(mn, vd=vd, imm=stride_bytes), cfg,
                            lmul=self.vtype.lmul, kind="strided",
                            stride=stride_bytes)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append(addr)  # type: ignore[union-attr]

    def _st_strided(self, vs: int, addr: IntLike, stride_bytes: int,
                    mn: str = "vsse32.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        tr = self.trace
        key = (mn, vs, _k(stride_bytes), cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VSTORE_STRIDED,
                            Operands(mn, vs=(vs,), imm=stride_bytes), cfg,
                            lmul=self.vtype.lmul, kind="strided",
                            stride=stride_bytes, is_load=False)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append(addr)  # type: ignore[union-attr]

    def _ld_indexed(self, vd: int, base: IntLike, vidx: int,
                    mn: str = "vluxei32.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        content = self._index_contents.get(vidx)
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, vidx, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VLOAD_INDEXED,
                            Operands(mn, vd=vd, vidx=vidx), cfg,
                            lmul=self.vtype.lmul, kind="indexed", stride=4,
                            indexed=True)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append((base, content))  # type: ignore[union-attr]

    def _st_indexed(self, vs: int, base: IntLike, vidx: int,
                    mn: str = "vsuxei32.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        content = self._index_contents.get(vidx)
        tr = self.trace
        key = (mn, vs, vidx, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VSTORE_INDEXED,
                            Operands(mn, vs=(vs,), vidx=vidx), cfg,
                            lmul=self.vtype.lmul, kind="indexed", stride=4,
                            indexed=True, is_load=False)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append((base, content))  # type: ignore[union-attr]

    # -- arithmetic primitives -----------------------------------------
    def _fma(self, vd: int, vs1: int, vs2: int, mn: str = "vfmacc.vv") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, vs1, vs2, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VFMA,
                            Operands(mn, vd=vd, vs=(vs1, vs2), merges=True),
                            cfg, lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _fma_f(self, vd: int, f: float, vs: int,
               mn: str = "vfmacc.vf") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, vs, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VFMA,
                            Operands(mn, vd=vd, vs=(vs,), merges=True),
                            cfg, lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _nfms_f(self, vd: int, f: float, vs: int,
                mn: str = "vfnmsac.vf") -> None:
        self._fma_f(vd, f, vs, mn)

    def _arith(self, op: str, vd: int, vs1: int, vs2: int,
               mn: str | None = None) -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        mn = mn or f"vf{op}.vv"
        tr = self.trace
        key = (mn, vd, vs1, vs2, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VFARITH,
                            Operands(mn, vd=vd, vs=(vs1, vs2)), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _arith_f(self, op: str, vd: int, vs: int, f: float,
                 mn: str | None = None) -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        mn = mn or f"vf{op}.vf"
        tr = self.trace
        key = (mn, vd, vs, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VFARITH,
                            Operands(mn, vd=vd, vs=(vs,)), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _splat_f(self, vd: int, f: float, mn: str = "vfmv.v.f") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VMOVE, Operands(mn, vd=vd), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _mov(self, vd: int, vs: int, mn: str = "vmv.v.v") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._set_content(vd, self._content(vs))
        tr = self.trace
        key = (mn, vd, vs, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VMOVE,
                            Operands(mn, vd=vd, vs=(vs,)), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _iota(self, vd: int, mn: str = "vid.v") -> None:
        vl = self._require_vl()
        self._set_content(vd, IndexContent(self.ctx, "lin", vl,
                                           start=0, step=1))
        cfg = self._cfg
        tr = self.trace
        key = (mn, vd, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VMOVE, Operands(mn, vd=vd), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _ix_transform(self, vd: int, vs: int,
                      fn_start: Callable[[int], int],
                      fn_step: Callable[[int], int]) -> None:
        src = self._content(vs)
        self._set_content(
            vd, src.map_lin(fn_start, fn_step) if src is not None else None)

    def _irec(self, mn: str, vd: int, vs: int, x: int) -> None:
        cfg = self._cfg
        tr = self.trace
        key = (mn, vd, vs, x, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VIARITH,
                            Operands(mn, vd=vd, vs=(vs,), imm=x), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _iadd_x(self, vd: int, vs: int, x: int, mn: str = "vadd.vx") -> None:
        self._require_vl()
        self._ix_transform(vd, vs, lambda s: s + x, lambda d: d)
        self._irec(mn, vd, vs, x)

    def _imul_x(self, vd: int, vs: int, x: int, mn: str = "vmul.vx") -> None:
        self._require_vl()
        self._ix_transform(vd, vs, lambda s: s * x, lambda d: d * x)
        self._irec(mn, vd, vs, x)

    def _iand_x(self, vd: int, vs: int, x: int, mn: str = "vand.vx") -> None:
        self._require_vl()
        src = self._content(vs)
        out: IndexContent | None = None
        if src is not None and src.kind == "lin" and src.mask is None:
            out = IndexContent(self.ctx, "lin", src.vl, start=src.start,
                               step=src.step, mask=x)
        self._set_content(vd, out)
        self._irec(mn, vd, vs, x)

    def _redsum(self, vs: int, mn: str = "vfredusum.vs") -> float:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        tr = self.trace
        key = (mn, vs, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VREDUCE, Operands(mn, vs=(vs,)),
                            cfg, lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)
        return 0.0

    # -- register movement ---------------------------------------------
    def _slideup(self, vd: int, vs: int, offset: IntLike,
                 mn: str = "vslideup.vx") -> None:
        self._require_vl()
        if offset < 0:
            raise IllegalInstructionError(
                f"slide offset must be >= 0, got {offset}")
        self._index_contents.pop(vd, None)
        cfg = self._cfg
        tr = self.trace
        key = (mn, vd, vs, _k(offset), cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VSLIDE,
                            Operands(mn, vd=vd, vs=(vs,), imm=offset,
                                     merges=True),
                            cfg, lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _slidedown(self, vd: int, vs: int, offset: IntLike,
                   mn: str = "vslidedown.vx") -> None:
        self._require_vl()
        if offset < 0:
            raise IllegalInstructionError(
                f"slide offset must be >= 0, got {offset}")
        self._index_contents.pop(vd, None)
        cfg = self._cfg
        tr = self.trace
        key = (mn, vd, vs, _k(offset), cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VSLIDE,
                            Operands(mn, vd=vd, vs=(vs,), imm=offset),
                            cfg, lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def _gather_reg(self, vd: int, vs: int, vidx: int,
                    mn: str = "vrgather.vv") -> None:
        cfg = self._cfg
        if cfg is None:
            self._require_vl()
        self._index_contents.pop(vd, None)
        tr = self.trace
        key = (mn, vd, vs, vidx, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VPERMUTE,
                            Operands(mn, vd=vd, vs=(vs,), vidx=vidx), cfg,
                            lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    # -- misc -----------------------------------------------------------
    def scalar_ops(self, n: int = 1) -> None:
        cfg = self._cfg
        tr = self.trace
        key = ("sc", cfg.sid if cfg is not None else None)
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.SCALAR, None, cfg, eew=64)
        if n == 1:
            tr.sig_ids.append(sid)
        else:
            tr.sig_ids.extend([sid] * n)

    def _index_scratch_request(self) -> tuple[IntLike, IntLike]:
        """(bytes to allocate, resulting capacity) — RVV sizing."""
        return self.vlen_bits, self.vlen_bits // 4

    def load_index_u32(self, vd: int, offsets: np.ndarray) -> None:
        vl = self._require_vl()
        offs = np.ascontiguousarray(offsets, dtype=np.uint32)
        if offs.size < vl:
            raise VectorStateError(
                f"index array has {offs.size} entries but vl={vl}")
        if self._index_scratch_cap < vl:
            nbytes, cap = self._index_scratch_request()
            self._index_scratch = self.memory.alloc(
                nbytes, label="index_scratch")
            self._index_scratch_cap = cap
        self._set_content(vd, IndexContent(self.ctx, "arr", vl,
                                           arr=offs.astype(np.int64)))
        # Recorded exactly like a unit-stride load of the scratch region
        # (the concrete machines do the same), so the signature may be
        # shared with plain _ld_unit occurrences — the events coincide.
        mn = self._INDEX_LOAD_MN
        cfg = self._cfg
        tr = self.trace
        key = (mn, vd, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VLOAD_UNIT, Operands(mn, vd=vd),
                            cfg, lmul=self.vtype.lmul, kind="unit", stride=4)
        tr.sig_ids.append(sid)
        tr.sigs[sid].payload.append(self._index_scratch)  # type: ignore[union-attr]


class AbstractRvvMachine(AbstractCore, RvvMachine):
    """Abstract RVV 1.0 machine: RvvMachine's surface, no data."""


class AbstractRvvPlusMachine(AbstractCore, RvvPlusMachine):
    """Abstract machine with the paper's proposed extensions."""

    def vrep4_vi(self, vd: int, vs: int, q: int) -> None:
        self._require_vl()
        if vd == vs:
            raise IllegalInstructionError(
                "vrep4 destination cannot overlap its source")
        if q < 0 or QUAD * q + QUAD > self.vlmax:
            raise IllegalInstructionError(
                f"vrep4 quad index {q} out of range for VLMAX={self.vlmax}")
        self._index_contents.pop(vd, None)
        cfg = self._cfg
        tr = self.trace
        key = ("vrep4.vi", vd, vs, q, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VPERMUTE,
                            Operands("vrep4.vi", vd=vd, vs=(vs,), imm=q),
                            cfg, lmul=self.vtype.lmul)
        tr.sig_ids.append(sid)

    def vtrn4_vv(
        self, vd: tuple[int, int, int, int], vs: tuple[int, int, int, int]
    ) -> None:
        vl = self._require_vl()
        if vl % QUAD:
            raise IllegalInstructionError(
                f"vtrn4 requires vl divisible by 4, got {vl}")
        if set(vd) & set(vs) or len(set(vd)) != QUAD or len(set(vs)) != QUAD:
            raise IllegalInstructionError(
                "vtrn4 needs four distinct destinations disjoint from sources")
        cfg = self._cfg
        tr = self.trace
        for g in range(QUAD):
            self._index_contents.pop(vd[g], None)
            key = ("vtrn4.vv", vd[g], vs, cfg.sid)  # type: ignore[union-attr]
            sid = tr._map.get(key)
            if sid is None:
                sid = tr.new_op(key, OpClass.VPERMUTE,
                                Operands("vtrn4.vv", vd=vd[g], vs=vs),
                                cfg, lmul=self.vtype.lmul)
            tr.sig_ids.append(sid)


class AbstractSveMachine(AbstractCore, SveMachine):
    """Abstract SVE machine: whilelt configuration, gather adapters."""

    _INDEX_LOAD_MN = "ld1w"

    def whilelt(self, i: IntLike, n: IntLike) -> IntLike:
        if i > n:
            raise VectorStateError(f"whilelt with i={i} > n={n}")
        ctx = self.ctx
        self.vtype = VType(sew=32, lmul=1)
        avl = ctx.pointwise(lambda a, b: a - b, n, i)
        if ctx.exists(lambda v: v < 0, avl):
            raise VectorStateError(f"AVL must be non-negative, got {avl}")
        self.vl = ctx.pointwise_min(avl, self.vlmax)
        tr = self.trace
        key = ("cfg", "whilelt", _k(self.vl))
        sid = tr._map.get(key)
        if sid is None:
            # The concrete flavor records whilelt without an lmul stamp
            # (whilelt configurations are always LMUL=1); mirror it.
            sid = tr.new_config(key, OpClass.VMASK, "whilelt",
                                self.vl, 32, 1)
        tr.sig_ids.append(sid)
        cfg = tr.sigs[sid]
        cfg.payload.append(avl)  # type: ignore[union-attr]
        self._cfg = cfg
        return self.vl

    def index_u32(self, vd: int, start: int, step: int) -> None:
        vl = self._require_vl()
        self._set_content(vd, IndexContent(self.ctx, "lin", vl,
                                           start=start, step=step))
        cfg = self._cfg
        tr = self.trace
        key = ("index", vd, start, step, cfg.sid)  # type: ignore[union-attr]
        sid = tr._map.get(key)
        if sid is None:
            sid = tr.new_op(key, OpClass.VIARITH,
                            Operands("index", vd=vd, imm=step), cfg)
        tr.sig_ids.append(sid)

    def _index_scratch_request(self) -> tuple[IntLike, IntLike]:
        """SVE sizes the scratch at 4*VLMAX bytes (LMUL=1 fp32 lanes)."""
        return 4 * self.vlmax, self.vlmax


#: Abstract counterpart of repro.analysis.audit.MACHINE_FLAVORS.
ABSTRACT_FLAVORS: dict[str, type[AbstractCore]] = {
    "rvv": AbstractRvvMachine,
    "rvv+": AbstractRvvPlusMachine,
    "sve": AbstractSveMachine,
}
