"""The kernel registry and audit driver behind ``repro lint-kernels``.

Every shipped kernel variant is registered as a :class:`KernelSpec`: a
harness that executes the kernel on a freshly-prepared machine, plus
the machine flavors it supports and whether its total work is expected
to be VLEN-invariant.  :func:`audit_kernel` runs one spec at every
requested VLEN on one machine flavor, lifts the traces, and runs the
full pass pipeline; :func:`audit_kernels` sweeps the registry.

Audit shapes are chosen so no problem dimension coincides with a
VLMAX of the swept VLENs (which would mask — or falsely trigger — the
pinned-vector-length heuristic of the VLA pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.analysis.findings import KernelAuditReport
from repro.analysis.ir import LiftedProgram, lift
from repro.analysis.pipeline import PASS_IDS, analyze_programs
from repro.errors import ConfigError
from repro.kernels.buffers import GemmBuffers, Im2colBuffers, WinogradBuffers
from repro.kernels.common import GemmGeometry, Im2colGeometry, WinogradGeometry
from repro.kernels.direct import direct_conv1x1_sim
from repro.kernels.drivers import im2col_gemm_conv2d_sim, winograd_conv2d_sim
from repro.kernels.gemm import gemm_kernel
from repro.kernels.im2col import im2col_kernel
from repro.kernels.streaming import run_streaming
from repro.kernels.transforms import (
    filter_transform,
    input_transform,
    output_transform,
)
from repro.kernels.transpose import (
    transpose4_indexed,
    transpose4_native,
    transpose4_strided,
)
from repro.kernels.tuple_mult import (
    INDEXED,
    SLIDEUP,
    SLIDEUP_LOG,
    NATIVE,
    tuple_multiplication,
)
from repro.rvv import Memory, RvvMachine, RvvPlusMachine, Tracer
from repro.rvv.machine import VectorEngine
from repro.schedule.library import SCHEDULED_VARIANTS
from repro.sve import SveMachine

#: The paper's co-design sweep points; the VLA pass diffs across these.
DEFAULT_VLENS: tuple[int, ...] = (512, 1024, 2048, 4096)

#: Machine flavor -> constructor.
MACHINE_FLAVORS: dict[str, type[VectorEngine]] = {
    "rvv": RvvMachine,
    "rvv+": RvvPlusMachine,
    "sve": SveMachine,
}


@dataclass(frozen=True)
class KernelSpec:
    """One auditable kernel variant.

    ``run`` executes the kernel on a capture-tracing machine (staging
    its own inputs through untraced driver-side writes).  ``fixed_work``
    declares whether total compute/store elements are VLEN-invariant —
    per-vector-register primitives like the transposes do more work per
    call at larger VLEN by design and opt out.  ``fast`` marks the
    subset the tier-1 test suite audits on every run.
    """

    name: str
    run: Callable[[VectorEngine], None]
    machines: tuple[str, ...] = ("rvv", "sve")
    fixed_work: bool = True
    fast: bool = True


# ----------------------------------------------------------------------
# Harnesses.  Shapes deliberately avoid VLMAX collisions: no dimension
# that strip-mines equals 16/32/64/128 (= VLMAX at the swept VLENs).
# ----------------------------------------------------------------------
def _winograd_geom(machine: VectorEngine) -> WinogradGeometry:
    return WinogradGeometry(c_in=4, h=12, w=12, c_out=12, pad=1,
                            vlen_elems=machine.vlen_bits // 32)


def _stage_winograd(machine: VectorEngine) -> tuple[WinogradGeometry, WinogradBuffers]:
    rng = np.random.default_rng(11)
    geom = _winograd_geom(machine)
    bufs = WinogradBuffers.allocate(machine, geom)
    bufs.load_input(machine, geom,
                    rng.standard_normal((geom.c_in, geom.h, geom.w))
                    .astype(np.float32))
    bufs.load_weights(machine, geom,
                      rng.standard_normal((geom.c_out, geom.c_in, 3, 3))
                      .astype(np.float32))
    return geom, bufs


def _tuple_mult_harness(variant: str) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        rng = np.random.default_rng(13)
        geom, bufs = _stage_winograd(machine)
        machine.memory.fill_noise(bufs.v, geom.v_size, rng)
        machine.memory.fill_noise(bufs.u, geom.u_size, rng)
        tuple_multiplication(machine, geom, bufs, variant=variant)
    return run


def _transform_harness(which: str) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        rng = np.random.default_rng(17)
        geom, bufs = _stage_winograd(machine)
        if which == "input":
            input_transform(machine, geom, bufs)
        elif which == "filter":
            filter_transform(machine, geom, bufs)
        else:
            machine.memory.fill_noise(bufs.m, geom.m_size, rng)
            output_transform(machine, geom, bufs)
    return run


def _transpose_harness(which: str) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        rng = np.random.default_rng(41)
        vl = machine.setvl(machine.vlen_bits // 32)
        src = machine.memory.alloc_f32(4 * vl, label="transpose.src")
        buf = machine.memory.alloc_f32(4 * vl, label="transpose.buf")
        out = machine.memory.alloc_f32(4 * vl, label="transpose.out")
        machine.memory.fill_noise(src, 4 * vl, rng)
        nregs = 9 if which == "indexed" else 8
        with machine.alloc.scoped(nregs) as regs:
            ins, outs = list(regs[:4]), list(regs[4:8])
            for r in range(4):
                machine.vle32(ins[r], src + 4 * vl * r)
            if which == "indexed":
                transpose4_indexed(machine, ins, outs, buf, regs[8])
            elif which == "strided":
                transpose4_strided(machine, ins, outs, buf)
            else:
                transpose4_native(machine, ins, outs)
            for g in range(4):
                machine.vse32(outs[g], out + 4 * vl * g)
    return run


def _gemm_harness(machine: VectorEngine) -> None:
    rng = np.random.default_rng(19)
    geom = GemmGeometry(m=6, kd=9, n=40,
                        vlen_elems=machine.vlen_bits // 32)
    bufs = GemmBuffers.allocate(machine, geom)
    bufs.load(machine, geom,
              rng.standard_normal((geom.m, geom.kd)).astype(np.float32),
              rng.standard_normal((geom.kd, geom.n)).astype(np.float32))
    gemm_kernel(machine, geom, bufs)


def _im2col_harness(machine: VectorEngine) -> None:
    rng = np.random.default_rng(23)
    geom = Im2colGeometry(c_in=3, h=10, w=20, ksize=3, stride=1, pad=1)
    bufs = Im2colBuffers.allocate(machine, geom)
    bufs.load_input(machine, geom,
                    rng.standard_normal((geom.c_in, geom.h, geom.w))
                    .astype(np.float32))
    im2col_kernel(machine, geom, bufs)


def _direct1x1_harness(machine: VectorEngine) -> None:
    rng = np.random.default_rng(29)
    x = rng.standard_normal((4, 5, 20)).astype(np.float32)
    w = rng.standard_normal((6, 4, 1, 1)).astype(np.float32)
    direct_conv1x1_sim(machine, x, w)


def _streaming_harness(kernel: str, lmul: int = 1) -> Callable[[VectorEngine], None]:
    def run(machine: VectorEngine) -> None:
        run_streaming(kernel, machine, n=100, lmul=lmul)
    return run


def _winograd_driver_harness(machine: VectorEngine) -> None:
    rng = np.random.default_rng(31)
    x = rng.standard_normal((4, 12, 12)).astype(np.float32)
    w = rng.standard_normal((12, 4, 3, 3)).astype(np.float32)
    winograd_conv2d_sim(machine, x, w, pad=1, variant=SLIDEUP)


def _im2col_driver_harness(machine: VectorEngine) -> None:
    rng = np.random.default_rng(37)
    x = rng.standard_normal((3, 10, 10)).astype(np.float32)
    w = rng.standard_normal((6, 3, 3, 3)).astype(np.float32)
    im2col_gemm_conv2d_sim(machine, x, w, stride=1, pad=1)


#: Every registered kernel variant, audited by ``repro lint-kernels``.
KERNEL_SPECS: tuple[KernelSpec, ...] = (
    KernelSpec(f"tuple_mult/{INDEXED}", _tuple_mult_harness(INDEXED)),
    KernelSpec(f"tuple_mult/{SLIDEUP}", _tuple_mult_harness(SLIDEUP)),
    KernelSpec(f"tuple_mult/{SLIDEUP_LOG}", _tuple_mult_harness(SLIDEUP_LOG)),
    KernelSpec(f"tuple_mult/{NATIVE}", _tuple_mult_harness(NATIVE),
               machines=("rvv+",)),
    KernelSpec("transpose4/indexed", _transpose_harness("indexed"),
               fixed_work=False),
    KernelSpec("transpose4/strided", _transpose_harness("strided"),
               fixed_work=False),
    KernelSpec("transpose4/native", _transpose_harness("native"),
               machines=("rvv+",), fixed_work=False),
    KernelSpec("winograd/input_transform", _transform_harness("input")),
    KernelSpec("winograd/filter_transform", _transform_harness("filter")),
    KernelSpec("winograd/output_transform", _transform_harness("output")),
    KernelSpec("gemm", _gemm_harness),
    KernelSpec("im2col", _im2col_harness),
    KernelSpec("direct1x1", _direct1x1_harness),
    KernelSpec("streaming/memcpy", _streaming_harness("memcpy")),
    KernelSpec("streaming/axpy", _streaming_harness("axpy")),
    KernelSpec("streaming/dot", _streaming_harness("dot")),
    KernelSpec("streaming/axpy@lmul2", _streaming_harness("axpy", lmul=2),
               machines=("rvv",)),
    KernelSpec("conv/winograd", _winograd_driver_harness, fast=False),
    KernelSpec("conv/im2col_gemm", _im2col_driver_harness, fast=False),
) + tuple(
    # DSL-generated kernels (repro.schedule): the default schedules
    # reproduce the hand-written gemm/im2col/direct1x1 programs, the
    # rest keep LMUL grouping and reduction blocking under continuous
    # audit.  Same passes, same gates — generated code earns no slack.
    KernelSpec(v.name, v.run, machines=v.machines)
    for v in SCHEDULED_VARIANTS
)


def find_spec(name: str) -> KernelSpec:
    for spec in KERNEL_SPECS:
        if spec.name == name:
            return spec
    known = ", ".join(s.name for s in KERNEL_SPECS)
    raise ConfigError(f"unknown kernel {name!r} (known: {known})")


def fast_specs() -> tuple[KernelSpec, ...]:
    return tuple(s for s in KERNEL_SPECS if s.fast)


def _lift_run(spec: KernelSpec, flavor: str, vlen: int) -> LiftedProgram:
    machine = MACHINE_FLAVORS[flavor](
        vlen, memory=Memory(1 << 26), tracer=Tracer(capture=True))
    spec.run(machine)
    return lift(machine.tracer, vlen_bits=vlen,
                extents=machine.memory.allocations)


def audit_kernel(
    spec: KernelSpec,
    flavor: str = "rvv",
    vlens: tuple[int, ...] = DEFAULT_VLENS,
) -> KernelAuditReport:
    """Execute, lift and analyze one kernel variant at every VLEN."""
    if flavor not in MACHINE_FLAVORS:
        raise ConfigError(f"unknown machine flavor {flavor!r}")
    programs = {v: _lift_run(spec, flavor, v) for v in vlens}
    findings = analyze_programs(programs, fixed_work=spec.fixed_work)
    return KernelAuditReport(
        kernel=spec.name,
        machine=flavor,
        vlens=tuple(vlens),
        findings=findings,
        instr_counts={v: len(p) for v, p in programs.items()},
        passes_run=PASS_IDS,
    )


def audit_kernels(
    specs: Iterable[KernelSpec] | None = None,
    vlens: tuple[int, ...] = DEFAULT_VLENS,
) -> list[KernelAuditReport]:
    """Audit specs (default: the whole registry) on all their machines."""
    reports = []
    for spec in (KERNEL_SPECS if specs is None else specs):
        for flavor in spec.machines:
            reports.append(audit_kernel(spec, flavor, vlens))
    return reports
