"""Pass pipeline: run the checkers over lifted programs.

:func:`analyze_program` runs the four per-program correctness passes
over one lifted execution; :func:`analyze_programs` additionally runs
the cross-VLEN VLA pass over a family of executions of the same
kernel.  Passes are independent — the pipeline concatenates their
findings in pass order, then in instruction order within each pass,
and deduplicates identical findings emitted once per loop iteration
(the first occurrence is kept with a count).

The performance lints (:mod:`repro.analysis.passes.perf`) are a
separate, non-gating family: :func:`analyze_perf` runs them on demand
(``repro analyze``, ``repro lint-kernels --perf``) without affecting
the audit verdict.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.findings import Finding, dedupe_findings
from repro.analysis.ir import LiftedProgram
from repro.analysis.passes import defuse, memsafety, overlap, perf, vla, vtype

#: The per-program correctness passes, in pipeline order.
PER_PROGRAM_PASSES: tuple[tuple[str, Callable[[LiftedProgram], list[Finding]]], ...] = (
    (overlap.PASS_ID, overlap.check),
    (vtype.PASS_ID, vtype.check),
    (defuse.PASS_ID, defuse.check),
    (memsafety.PASS_ID, memsafety.check),
)

#: Every correctness pass id the pipeline can emit findings for.
PASS_IDS: tuple[str, ...] = tuple(p for p, _ in PER_PROGRAM_PASSES) + (vla.PASS_ID,)

#: The non-gating performance-lint pass ids.
PERF_PASS_IDS: tuple[str, ...] = perf.PERF_PASS_IDS


def analyze_program(
    program: LiftedProgram,
    passes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Run the per-program passes (optionally a subset, by pass id)."""
    findings: list[Finding] = []
    for pass_id, run in PER_PROGRAM_PASSES:
        if passes is not None and pass_id not in passes:
            continue
        findings.extend(run(program))
    return dedupe_findings(findings)


def analyze_perf(
    program: LiftedProgram,
    passes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Run the performance-lint passes (non-gating, see module doc)."""
    findings: list[Finding] = []
    for pass_id, run in perf.PERF_PASSES:
        if passes is not None and pass_id not in passes:
            continue
        findings.extend(run(program))
    return dedupe_findings(findings)


def analyze_programs(
    programs: dict[int, LiftedProgram],
    fixed_work: bool = True,
    passes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Per-program passes at every VLEN plus the cross-VLEN VLA pass."""
    findings: list[Finding] = []
    for vlen in sorted(programs):
        findings.extend(analyze_program(programs[vlen], passes))
    if passes is None or vla.PASS_ID in passes:
        findings.extend(vla.check(programs, fixed_work=fixed_work))
    return dedupe_findings(findings)
