"""Pass pipeline: run the checkers over lifted programs.

:func:`analyze_program` runs the four per-program passes over one
lifted execution; :func:`analyze_programs` additionally runs the
cross-VLEN VLA pass over a family of executions of the same kernel.
Passes are independent — the pipeline concatenates their findings in
pass order, then in instruction order within each pass.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.findings import Finding
from repro.analysis.ir import LiftedProgram
from repro.analysis.passes import defuse, memsafety, overlap, vla, vtype

#: The per-program passes, in pipeline order.
PER_PROGRAM_PASSES: tuple[tuple[str, Callable[[LiftedProgram], list[Finding]]], ...] = (
    (overlap.PASS_ID, overlap.check),
    (vtype.PASS_ID, vtype.check),
    (defuse.PASS_ID, defuse.check),
    (memsafety.PASS_ID, memsafety.check),
)

#: Every pass id the pipeline can emit findings for.
PASS_IDS: tuple[str, ...] = tuple(p for p, _ in PER_PROGRAM_PASSES) + (vla.PASS_ID,)


def analyze_program(
    program: LiftedProgram,
    passes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Run the per-program passes (optionally a subset, by pass id)."""
    findings: list[Finding] = []
    for pass_id, run in PER_PROGRAM_PASSES:
        if passes is not None and pass_id not in passes:
            continue
        findings.extend(run(program))
    return findings


def analyze_programs(
    programs: dict[int, LiftedProgram],
    fixed_work: bool = True,
    passes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """Per-program passes at every VLEN plus the cross-VLEN VLA pass."""
    findings: list[Finding] = []
    for vlen in sorted(programs):
        findings.extend(analyze_program(programs[vlen], passes))
    if passes is None or vla.PASS_ID in passes:
        findings.extend(vla.check(programs, fixed_work=fixed_work))
    return findings
