"""Static analysis of traced kernel executions — the kernel verifier.

The paper's central kernel finding — that ``vslideup`` quad replication
must insert register copies because of RVV 1.0's destination/source
overlap rule, yet still beats indexed loads — exists precisely because
RVV imposes spec constraints that are easy to violate silently in a
functional simulator.  This package turns captured instruction traces
into an analyzable IR (:mod:`repro.analysis.ir`) and runs a pipeline of
independent checker passes over it:

- ``overlap``   — RVV 1.0 register-group overlap rules for slides,
  gathers and LMUL>1 groups (the rule behind Algorithm 2's copies);
- ``vtype``     — vsetvl/vtype configuration dataflow (no vector op
  under a stale or never-set vtype, SEW/EEW consistency);
- ``defuse``    — uninitialized-vector-register reads and dead defs;
- ``memsafety`` — proofs of every traced access against the declared
  buffer extents;
- ``vla``       — vector-length-agnosticism: diffs lifted programs
  across VLEN and flags hard-coded vector lengths or VLEN-dependent
  work.

Findings are structured (:class:`~repro.analysis.findings.Finding`),
aggregated per kernel by
:class:`~repro.analysis.findings.KernelAuditReport`, and surfaced by the
``repro lint-kernels`` CLI subcommand, which audits every registered
kernel variant on both the RVV and SVE machines.
"""

from repro.analysis.findings import Finding, KernelAuditReport, Severity
from repro.analysis.ir import LiftedInstr, LiftedProgram, lift
from repro.analysis.pipeline import (
    PASS_IDS,
    analyze_program,
    analyze_programs,
)
from repro.analysis.audit import (
    KERNEL_SPECS,
    KernelSpec,
    audit_kernel,
    audit_kernels,
    fast_specs,
    find_spec,
)

__all__ = [
    "Finding",
    "KernelAuditReport",
    "Severity",
    "LiftedInstr",
    "LiftedProgram",
    "lift",
    "PASS_IDS",
    "analyze_program",
    "analyze_programs",
    "KERNEL_SPECS",
    "KernelSpec",
    "audit_kernel",
    "audit_kernels",
    "fast_specs",
    "find_spec",
]
