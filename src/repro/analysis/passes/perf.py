"""Performance-lint passes over the lifted IR.

Unlike passes 1-5, nothing here is a correctness hazard: these lints
flag instruction sequences that are architecturally fine but leave
performance on the table — the questions a reviewer of hand-written
vector code asks.  They run on concrete *and* parametric (symbolic)
programs, and they are **non-gating**: ``repro lint-kernels`` reports
them separately from the audit verdict.  The shipped registry audits
clean under them too — ``im2col`` and the direct convolution take a
dedicated unit-stride path at conv stride 1 instead of issuing
``vlse32`` with a 4-byte stride, which is precisely the degeneration
:data:`PASS_MEMSTRIDE` exists to catch in hand-written code.

- ``vsetvl`` lint: configurations superseded before any vector
  instruction uses them (dead config), and vtype (SEW/LMUL) state
  ping-ponging A-B-A-B between configurations (thrash) — strip-mining
  varies ``vl``, it does not need to flip vtype.
- ``copies`` lint: whole-register copies (``vmv.v.v``/``mov``) that
  are self-copies, or that repeat an earlier copy while neither side
  changed.
- ``pressure`` lint: peak simultaneously-live architectural registers
  (LMUL-weighted) above :data:`PRESSURE_LIMIT` — a schedule this tight
  spills the moment anything else needs a register.
- ``memstride`` lint: strided accesses whose stride equals the element
  size and gathers/scatters whose offsets form the unit-stride
  sequence — a plain unit-stride access would move the same bytes for
  a fraction of the address-generation cost, which on the paper's
  memory-bound kernels is the difference that matters.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.analysis.ir import LiftedInstr, LiftedProgram
from repro.analysis.passes.defuse import _uses_defs

PASS_VSETVL = "vsetvl"
PASS_COPIES = "copies"
PASS_PRESSURE = "pressure"
PASS_MEMSTRIDE = "memstride"

#: Minimum A-B-A vtype returns before the thrash lint fires.
THRASH_MIN_SWITCHES = 4

#: Peak live register units above which the pressure lint fires.
PRESSURE_LIMIT = 28

#: Whole-register copy mnemonics (RVV / SVE).
_COPY_MNEMONICS = frozenset({"vmv.v.v", "mov"})


# ----------------------------------------------------------------------
# vsetvl lint: dead configurations and vtype thrash
# ----------------------------------------------------------------------
def check_vsetvl(program: LiftedProgram) -> list[Finding]:
    findings: list[Finding] = []
    last_cfg: LiftedInstr | None = None
    cfg_used = True
    vtypes: list[tuple[tuple[int, int], LiftedInstr]] = []
    for instr in program:
        if not instr.is_vector:
            continue
        if instr.is_config:
            if last_cfg is not None and not cfg_used:
                findings.append(Finding(
                    PASS_VSETVL, Severity.WARNING, last_cfg.index,
                    "configuration is superseded before any vector "
                    "instruction executes under it — dead vsetvl",
                    last_cfg.disasm(), program.vlen_bits,
                ))
            last_cfg, cfg_used = instr, False
            state = (instr.event.eew, instr.event.lmul)
            if not vtypes or vtypes[-1][0] != state:
                vtypes.append((state, instr))
        else:
            cfg_used = True
    switches = [j for j in range(2, len(vtypes))
                if vtypes[j][0] == vtypes[j - 2][0]]
    if len(switches) >= THRASH_MIN_SWITCHES:
        first = vtypes[switches[0]][1]
        states = {f"SEW={s}/LMUL={m}" for (s, m), _ in vtypes}
        findings.append(Finding(
            PASS_VSETVL, Severity.WARNING, first.index,
            f"vtype thrashes between {sorted(states)} "
            f"({len(switches)} returns to a previous SEW/LMUL) — group "
            "work by vtype instead of reconfiguring per operation",
            first.disasm(), program.vlen_bits,
        ))
    return findings


# ----------------------------------------------------------------------
# copies lint: self-copies and repeated copies
# ----------------------------------------------------------------------
def check_copies(program: LiftedProgram) -> list[Finding]:
    findings: list[Finding] = []
    # (vd, vs) -> (index of the live earlier copy, its register units)
    live_copies: dict[tuple[int, int], tuple[int, frozenset[int]]] = {}
    for instr in program:
        ops = instr.ops
        if ops is None or not instr.is_vector or instr.is_config:
            continue
        _, defs = _uses_defs(instr)
        is_copy = (ops.mnemonic in _COPY_MNEMONICS and ops.vd is not None
                   and len(ops.vs) == 1)
        if is_copy:
            vd, vs = ops.vd, ops.vs[0]
            assert vd is not None
            if vd == vs:
                findings.append(Finding(
                    PASS_COPIES, Severity.WARNING, instr.index,
                    f"v{vd} is copied onto itself — the instruction has "
                    "no architectural effect",
                    instr.disasm(), program.vlen_bits,
                ))
                continue
            key = (vd, vs)
            prev = live_copies.get(key)
            if prev is not None:
                findings.append(Finding(
                    PASS_COPIES, Severity.WARNING, instr.index,
                    f"copy v{vs} -> v{vd} repeats instruction {prev[0]} "
                    "while neither register changed in between — "
                    "redundant copy",
                    instr.disasm(), program.vlen_bits,
                ))
                continue
            lmul = instr.lmul
            units = frozenset(range(vd, vd + lmul)) | frozenset(
                range(vs, vs + lmul))
            # This copy defines vd; drop stale entries it invalidates
            # before registering itself.
            _invalidate(live_copies, defs)
            live_copies[key] = (instr.index, units)
            continue
        if defs:
            _invalidate(live_copies, defs)
    return findings


def _invalidate(
    live_copies: dict[tuple[int, int], tuple[int, frozenset[int]]],
    defs: set[int],
) -> None:
    for key in [k for k, (_, units) in live_copies.items() if units & defs]:
        del live_copies[key]


# ----------------------------------------------------------------------
# pressure lint: peak simultaneously-live register units
# ----------------------------------------------------------------------
def check_pressure(program: LiftedProgram) -> list[Finding]:
    instrs = [i for i in program
              if i.ops is not None and i.is_vector and not i.is_config]
    # unit -> list of (event index, is_def) in program order
    events: dict[int, list[tuple[int, bool]]] = {}
    for instr in instrs:
        uses, defs = _uses_defs(instr)
        for u in uses:
            events.setdefault(u, []).append((instr.index, False))
        for u in defs:
            events.setdefault(u, []).append((instr.index, True))
    # A unit is live from each def to the last use before its next def
    # (defs that are never read contribute a single-instruction interval).
    intervals: list[tuple[int, int]] = []
    for evs in events.values():
        start: int | None = None
        end = 0
        for idx, is_def in evs:
            if is_def:
                if start is not None:
                    intervals.append((start, end))
                start, end = idx, idx
            elif start is not None:
                end = idx
        if start is not None:
            intervals.append((start, end))
    if not intervals:
        return []
    deltas: dict[int, int] = {}
    for s, e in intervals:
        deltas[s] = deltas.get(s, 0) + 1
        deltas[e + 1] = deltas.get(e + 1, 0) - 1
    live = peak = 0
    peak_at = 0
    for idx in sorted(deltas):
        live += deltas[idx]
        if live > peak:
            peak, peak_at = live, idx
    if peak <= PRESSURE_LIMIT:
        return []
    at = next((i for i in instrs if i.index >= peak_at), instrs[-1])
    return [Finding(
        PASS_PRESSURE, Severity.WARNING, at.index,
        f"register pressure peaks at {peak} simultaneously-live "
        f"register units (> {PRESSURE_LIMIT} of 32) — the schedule "
        "has no headroom before spilling",
        at.disasm(), program.vlen_bits,
    )]


# ----------------------------------------------------------------------
# memstride lint: unit-stride work issued through strided/indexed ops
# ----------------------------------------------------------------------
def _unit_equivalent_offsets(m: Any) -> bool:
    """True when the access's offsets form base + i*ebytes."""
    offs = m.offsets
    if offs is None:
        content = getattr(m, "sym_offsets", None)
        if content is None:
            return False
        if content.kind == "lin":
            return content.mask is None and content.step == m.ebytes
        offs = content.arr
    arr = np.asarray(offs, dtype=np.int64)
    if arr.size < 2:
        return False
    return bool(np.all(np.diff(arr) == m.ebytes))


def check_memstride(program: LiftedProgram) -> list[Finding]:
    findings: list[Finding] = []
    for instr in program.mem_instrs():
        m = instr.mem
        assert m is not None
        what = "load" if m.is_load else "store"
        if m.kind == "strided":
            if m.stride == m.ebytes:
                findings.append(Finding(
                    PASS_MEMSTRIDE, Severity.WARNING, instr.index,
                    f"strided {what} with stride == element size "
                    f"({m.ebytes} bytes) — a unit-stride access moves "
                    "the same bytes without per-element address "
                    "generation",
                    instr.disasm(), program.vlen_bits,
                ))
            elif m.stride == 0:
                findings.append(Finding(
                    PASS_MEMSTRIDE, Severity.WARNING, instr.index,
                    f"strided {what} with stride 0 re-reads one address "
                    "per lane — a scalar load plus a splat would do",
                    instr.disasm(), program.vlen_bits,
                ))
        elif m.kind == "indexed" and _unit_equivalent_offsets(m):
            findings.append(Finding(
                PASS_MEMSTRIDE, Severity.WARNING, instr.index,
                f"indexed {what} whose offsets are the unit-stride "
                "sequence — a contiguous access would avoid the "
                "gather/scatter entirely",
                instr.disasm(), program.vlen_bits,
            ))
    return findings


#: The perf-lint pass family, in pipeline order.
PERF_PASSES: tuple[tuple[str, Any], ...] = (
    (PASS_VSETVL, check_vsetvl),
    (PASS_COPIES, check_copies),
    (PASS_PRESSURE, check_pressure),
    (PASS_MEMSTRIDE, check_memstride),
)

PERF_PASS_IDS: tuple[str, ...] = tuple(p for p, _ in PERF_PASSES)
