"""Pass 3 — def-use analysis over the vector register file.

The lifted program is a straight-line dynamic instruction stream, so
def-use chains are exact.  The pass tracks all 32 architectural
registers at single-register granularity (an LMUL=m operand occupies m
consecutive units) and reports:

- **uninitialized reads** (ERROR): a source register read before any
  traced instruction defined it.  The functional machines zero-fill
  registers, so such kernels "work" in simulation while reading
  whatever the register file holds on hardware.
- **dead defs** (WARNING): a register written and then fully
  overwritten without any intervening use.  Live-out defs (never
  overwritten) are exempt — the driver may read them back.

Read-modify-write instructions (``vfmacc``, ``vslideup`` with its
undisturbed low lanes) carry ``merges=True`` in their operand metadata
and count as a use *and* a def of the destination.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.ir import LiftedInstr, LiftedProgram

PASS_ID = "defuse"


def _units(reg: int, lmul: int) -> range:
    return range(reg, reg + lmul)


def _uses_defs(instr: LiftedInstr) -> tuple[set[int], set[int]]:
    ops = instr.ops
    assert ops is not None
    lmul = instr.lmul
    uses: set[int] = set()
    defs: set[int] = set()
    for r in ops.vs:
        uses.update(_units(r, lmul))
    if ops.vidx is not None:
        uses.update(_units(ops.vidx, lmul))
    if ops.vd is not None:
        defs.update(_units(ops.vd, lmul))
        if ops.merges:
            uses.update(_units(ops.vd, lmul))
    return uses, defs


def check(program: LiftedProgram) -> list[Finding]:
    findings: list[Finding] = []
    defined: set[int] = set()
    # unit -> (def index, disasm, used since that def)
    live: dict[int, tuple[int, str, bool]] = {}
    for instr in program:
        if instr.ops is None or not instr.is_vector or instr.is_config:
            continue
        uses, defs = _uses_defs(instr)
        flagged = False
        for u in sorted(uses):
            if u not in defined and not flagged:
                findings.append(Finding(
                    PASS_ID, Severity.ERROR, instr.index,
                    f"v{u} is read but no traced instruction has written "
                    "it — uninitialized on real hardware",
                    instr.disasm(), program.vlen_bits,
                ))
                flagged = True  # one finding per instruction
            defined.add(u)  # suppress cascaded reports of the same unit
            if u in live:
                di, dd, _ = live[u]
                live[u] = (di, dd, True)
        for u in sorted(defs):
            prev = live.get(u)
            if prev is not None and not prev[2]:
                findings.append(Finding(
                    PASS_ID, Severity.WARNING, prev[0],
                    f"v{u} defined here is overwritten at instruction "
                    f"{instr.index} without ever being read — dead def",
                    prev[1], program.vlen_bits,
                ))
            defined.add(u)
            live[u] = (instr.index, instr.disasm(), False)
    return findings
