"""Pass 1 — RVV 1.0 register-group overlap rules.

The RVV 1.0 spec reserves instruction encodings in which the
destination register group of ``vslideup`` or ``vrgather`` overlaps a
source group: the destination is written while source elements at
lower indices are still needed, so hardware is allowed to produce
garbage.  This is the rule that forced the paper's Algorithm 2 to
ping-pong its slide chain between two registers.  The proposed
``vrep4``/``vtrn4`` extensions inherit the same constraint.

For LMUL > 1, operands occupy groups of ``lmul`` consecutive registers
that must be naturally aligned (``v0, v2, v4, ...`` at LMUL=2); the
pass also checks that alignment, which a hand-built or loaded trace can
violate even though the register file rejects it at execution time.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.ir import LiftedInstr, LiftedProgram

PASS_ID = "overlap"

#: Mnemonics whose destination must not overlap the vector source.
_SLIDEUP_LIKE = frozenset({"vslideup.vx", "ext", "vrep4.vi"})

#: Mnemonics whose destination must not overlap source or index.
_GATHER_LIKE = frozenset({"vrgather.vv", "tbl", "vtrn4.vv"})


def _groups_overlap(a: int, b: int, lmul: int) -> bool:
    return a < b + lmul and b < a + lmul


def _operand_groups(instr: LiftedInstr) -> list[int]:
    assert instr.ops is not None
    regs = list(instr.ops.vs)
    if instr.ops.vd is not None:
        regs.append(instr.ops.vd)
    if instr.ops.vidx is not None:
        regs.append(instr.ops.vidx)
    return regs


def check(program: LiftedProgram) -> list[Finding]:
    findings: list[Finding] = []
    for instr in program:
        ops = instr.ops
        if ops is None or not instr.is_vector:
            continue
        lmul = instr.lmul
        if lmul > 1:
            for reg in _operand_groups(instr):
                if reg % lmul:
                    findings.append(Finding(
                        PASS_ID, Severity.ERROR, instr.index,
                        f"v{reg} is not aligned to the LMUL={lmul} register "
                        "group size (groups must start at multiples of LMUL)",
                        instr.disasm(), program.vlen_bits,
                    ))
        if ops.vd is None:
            continue
        hazards: list[int] = []
        if ops.mnemonic in _SLIDEUP_LIKE:
            hazards = list(ops.vs)
        elif ops.mnemonic in _GATHER_LIKE:
            hazards = list(ops.vs)
            if ops.vidx is not None:
                hazards.append(ops.vidx)
        for src in hazards:
            if _groups_overlap(ops.vd, src, lmul):
                findings.append(Finding(
                    PASS_ID, Severity.ERROR, instr.index,
                    f"{ops.mnemonic}: destination group v{ops.vd} overlaps "
                    f"source group v{src} — reserved in RVV 1.0 (the rule "
                    "behind Algorithm 2's register copies)",
                    instr.disasm(), program.vlen_bits,
                ))
    return findings
