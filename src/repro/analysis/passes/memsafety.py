"""Pass 4 — memory-safety proofs against declared buffer extents.

:class:`~repro.rvv.memory.Memory` hands out labeled extents
(:class:`~repro.rvv.memory.Extent`) and bounds-checks accesses only
against the whole simulated address space.  A store that runs a few
elements past its buffer therefore executes fine — it lands in the
cache-line alignment gap after the allocation, or silently corrupts
the next buffer.  This pass proves the stronger property: **every
element of every traced access lies entirely within a single declared
extent.**

Programs lifted without extent information (legacy traces) are skipped
— the pass has nothing to prove against.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.analysis.ir import LiftedProgram

PASS_ID = "memsafety"


def check(program: LiftedProgram) -> list[Finding]:
    if not program.extents:
        return []
    extents = sorted(program.extents, key=lambda e: e.base)
    bases = np.array([e.base for e in extents], dtype=np.int64)
    ends = np.array([e.end for e in extents], dtype=np.int64)
    findings: list[Finding] = []
    for instr in program.mem_instrs():
        m = instr.mem
        assert m is not None
        if m.kind == "indexed" and m.offsets is None:
            continue  # counts-only descriptor: addresses unknown
        addrs = m.element_addresses()
        slot = np.searchsorted(bases, addrs, side="right") - 1
        ok = (slot >= 0) & (addrs + m.ebytes <= ends[np.maximum(slot, 0)])
        if bool(ok.all()):
            continue
        bad = int(np.argmin(ok))
        addr = int(addrs[bad])
        kind = "load" if m.is_load else "store"
        # Name the nearest extent below the address for the report.
        s = int(slot[bad])
        near = extents[s].label if s >= 0 else None
        hint = f" (past extent {near!r})" if near else ""
        findings.append(Finding(
            PASS_ID, Severity.ERROR, instr.index,
            f"element {bad} of this {kind} touches {addr:#x}, which is "
            f"outside every declared buffer extent{hint}",
            instr.disasm(), program.vlen_bits,
        ))
    return findings
