"""The checker passes.

Each per-program pass exposes ``PASS_ID`` and
``check(program) -> list[Finding]``; the cross-VLEN VLA pass exposes
``check(programs: dict[int, LiftedProgram], fixed_work) -> list[Finding]``.
Passes are independent: each detects exactly one family of defects, so
a known-bad fragment is flagged by one pass and one pass only.
"""

from repro.analysis.passes import defuse, memsafety, overlap, vla, vtype

__all__ = ["defuse", "memsafety", "overlap", "vla", "vtype"]
