"""Pass 5 — VLA portability: diff lifted programs across VLEN.

The paper's kernels are vector-length-agnostic: the same source runs at
any VLEN, strip-mining through ``vsetvl``.  A kernel that hard-codes a
vector length "works" at the VLEN it was written for and silently
wastes (or corrupts) lanes everywhere else.  The pass lifts the same
kernel at several VLENs (the paper's sweep points 512–4096) and flags:

- **pinned vector length** (ERROR): the maximum granted vl is the same
  constant at every VLEN *and* that constant saturates VLMAX at the
  smallest VLEN while VLMAX grows — the signature of a loop written
  against one machine's vector length instead of against ``vsetvl``'s
  grant.  Genuinely small fixed trip counts (avl < every VLMAX) are
  not flagged.
- **VLEN-dependent work** (ERROR, ``fixed_work`` kernels only): the
  total number of compute elements (FMA/arith/reduce) or stored
  elements differs between VLENs.  A fixed-size problem must do the
  same arithmetic at every vector length; varying totals mean some
  address pattern or trip count is derived from VLEN outside vsetvl.

Per-vector-register primitives (the in-register transposes) do more
work per call at larger VLEN by design; their specs set
``fixed_work=False`` and only the pinned-length check applies.
"""

from __future__ import annotations

from typing import Collection

from repro.analysis.findings import Finding, Severity
from repro.analysis.ir import LiftedProgram
from repro.isa import IS_STORE, OpClass
from repro.isa.encoding import vsetvl

PASS_ID = "vla"

#: Classes whose element totals must be VLEN-invariant for fixed work.
_COMPUTE = (OpClass.VFMA, OpClass.VFARITH, OpClass.VREDUCE)


def _granted_vls(program: LiftedProgram) -> list[int]:
    return [i.event.elems for i in program if i.is_config]


def _elem_total(program: LiftedProgram, classes: Collection[OpClass]) -> int:
    return sum(i.event.elems for i in program if i.opclass in classes)


def check(
    programs: dict[int, LiftedProgram],
    fixed_work: bool = True,
) -> list[Finding]:
    if len(programs) < 2:
        return []
    findings: list[Finding] = []
    vlens = sorted(programs)

    # Pinned vector length: same max grant everywhere, saturating the
    # smallest machine while larger machines offer more lanes.
    max_grants = {v: max(_granted_vls(programs[v]), default=0) for v in vlens}
    grants = set(max_grants.values())
    vlmaxes = {v: vsetvl(1 << 30, v, 32, 1) for v in vlens}
    if (len(grants) == 1 and len(set(vlmaxes.values())) > 1
            and max_grants[vlens[0]] == vlmaxes[vlens[0]]
            and max_grants[vlens[0]] > 0):
        pinned = max_grants[vlens[0]]
        # Point at the first config instruction that granted the pinned vl.
        idx, snippet = -1, ""
        for instr in programs[vlens[-1]]:
            if instr.is_config and instr.event.elems == pinned:
                idx, snippet = instr.index, instr.disasm()
                break
        findings.append(Finding(
            PASS_ID, Severity.ERROR, idx,
            f"granted vector length is pinned at {pinned} for every VLEN in "
            f"{vlens} although VLMAX grows to {vlmaxes[vlens[-1]]} — "
            "hard-coded vector length instead of vsetvl strip-mining",
            snippet,
        ))

    if fixed_work:
        compute = {v: _elem_total(programs[v], _COMPUTE) for v in vlens}
        if len(set(compute.values())) > 1:
            detail = ", ".join(f"{v}b:{compute[v]}" for v in vlens)
            findings.append(Finding(
                PASS_ID, Severity.ERROR, -1,
                "total compute elements vary with VLEN on a fixed-size "
                f"problem ({detail}) — work is derived from VLEN outside "
                "vsetvl",
            ))
        stores = {v: _elem_total(programs[v], IS_STORE) for v in vlens}
        if len(set(stores.values())) > 1:
            detail = ", ".join(f"{v}b:{stores[v]}" for v in vlens)
            findings.append(Finding(
                PASS_ID, Severity.ERROR, -1,
                f"total stored elements vary with VLEN ({detail}) — the "
                "kernel's memory footprint is VLEN-dependent",
            ))
    return findings
