"""Pass 2 — vsetvl/vtype configuration dataflow.

Every RVV vector instruction executes under the vtype/vl established by
the most recent ``vsetvli`` (``whilelt`` on the SVE flavor).  Executing
a vector op before any configuration, or under a configuration whose
granted vl / SEW / LMUL disagrees with what the instruction actually
retired with, means the trace was produced (or patched) outside the
architectural contract — on hardware the op would use whatever stale
vtype the CSR held.  Indexed accesses additionally require the index
EEW to be consistent with the data SEW (this package's kernels are all
EEW=SEW=32).
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity
from repro.analysis.ir import LiftedProgram

PASS_ID = "vtype"


def check(program: LiftedProgram) -> list[Finding]:
    findings: list[Finding] = []
    for instr in program:
        if not instr.is_vector or instr.is_config:
            continue
        if instr.vl is None:
            findings.append(Finding(
                PASS_ID, Severity.ERROR, instr.index,
                "vector instruction executed before any vsetvl/whilelt: "
                "vtype is never-set",
                instr.disasm(), program.vlen_bits,
            ))
            continue
        ev = instr.event
        if ev.elems != instr.vl:
            findings.append(Finding(
                PASS_ID, Severity.ERROR, instr.index,
                f"instruction retired {ev.elems} elements but the active "
                f"configuration granted vl={instr.vl} — stale vtype",
                instr.disasm(), program.vlen_bits,
            ))
        if instr.sew is not None and ev.eew != instr.sew:
            findings.append(Finding(
                PASS_ID, Severity.ERROR, instr.index,
                f"instruction EEW={ev.eew} under active SEW={instr.sew}",
                instr.disasm(), program.vlen_bits,
            ))
        if instr.cfg_lmul is not None and ev.lmul != instr.cfg_lmul:
            findings.append(Finding(
                PASS_ID, Severity.ERROR, instr.index,
                f"instruction LMUL={ev.lmul} under active LMUL={instr.cfg_lmul}",
                instr.disasm(), program.vlen_bits,
            ))
        if ev.mem is not None and instr.sew is not None and ev.mem.sew != instr.sew:
            findings.append(Finding(
                PASS_ID, Severity.ERROR, instr.index,
                f"memory access recorded SEW={ev.mem.sew} under active "
                f"SEW={instr.sew} (indexed EEW inconsistency)",
                instr.disasm(), program.vlen_bits,
            ))
    return findings
