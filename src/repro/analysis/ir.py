"""The lifted instruction IR the analysis passes run over.

A captured :class:`~repro.rvv.tracer.Tracer` is a flat list of retired
:class:`~repro.rvv.tracer.InstrEvent` objects.  :func:`lift` folds the
vsetvl/whilelt configuration dataflow over that list, producing a
:class:`LiftedProgram` in which every instruction knows the vector
configuration it retired under — which is exactly the state the
spec-conformance passes need and that the raw trace only carries
implicitly.

The IR is deliberately trace-shaped rather than CFG-shaped: the
machines execute straight-line dynamic instruction streams (loops are
already unrolled by execution), so dataflow analyses over the lifted
program are exact, not conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.isa import IS_MEM, OpClass
from repro.rvv.disasm import format_event
from repro.rvv.memory import Extent
from repro.rvv.tracer import InstrEvent, MemAccess, Operands, Tracer


@dataclass(frozen=True)
class LiftedInstr:
    """One dynamic instruction plus the vector state it retired under.

    ``vl``/``sew``/``cfg_lmul`` are the values granted by the most
    recent configuration instruction (vsetvli or whilelt), or None when
    no configuration had executed yet.  For the configuration
    instruction itself they are the newly-established values.
    """

    index: int
    event: InstrEvent
    vl: int | None
    sew: int | None
    cfg_lmul: int | None

    @property
    def opclass(self) -> OpClass:
        return self.event.opclass

    @property
    def ops(self) -> Operands | None:
        return self.event.ops

    @property
    def mem(self) -> MemAccess | None:
        return self.event.mem

    @property
    def lmul(self) -> int:
        return self.event.lmul

    @property
    def is_config(self) -> bool:
        """True for instructions that establish the vector configuration."""
        if self.opclass is OpClass.VSETVL:
            return True
        return (self.opclass is OpClass.VMASK and self.ops is not None
                and self.ops.avl is not None)

    @property
    def is_vector(self) -> bool:
        return self.opclass is not OpClass.SCALAR

    def disasm(self) -> str:
        """The listing line for this instruction (pass evidence)."""
        return format_event(self.event)


@dataclass(frozen=True)
class LiftedProgram:
    """A lifted kernel execution: instructions + the memory it declared.

    ``vlen_bits`` is the hardware vector length of the machine that
    produced the trace (None for loaded traces of unknown origin) and
    ``extents`` the labeled allocations of its memory — the ground truth
    the memory-safety pass proves accesses against.
    """

    instrs: tuple[LiftedInstr, ...]
    vlen_bits: int | None = None
    extents: tuple[Extent, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[LiftedInstr]:
        return iter(self.instrs)

    def __getitem__(self, i: int) -> LiftedInstr:
        return self.instrs[i]

    def vector_instrs(self) -> tuple[LiftedInstr, ...]:
        return tuple(i for i in self.instrs if i.is_vector)

    def mem_instrs(self) -> tuple[LiftedInstr, ...]:
        return tuple(i for i in self.instrs if i.opclass in IS_MEM)


def lift(
    tracer: Tracer,
    vlen_bits: int | None = None,
    extents: tuple[Extent, ...] = (),
) -> LiftedProgram:
    """Lift a captured trace into an analyzable program.

    Raises:
        ValueError: if the tracer was not capturing (a counts-only
            tracer has no event stream to lift).
    """
    if not tracer.capture:
        raise ValueError("lift needs a Tracer(capture=True)")
    instrs: list[LiftedInstr] = []
    vl: int | None = None
    sew: int | None = None
    cfg_lmul: int | None = None
    for i, ev in enumerate(tracer.events):
        is_cfg = ev.opclass is OpClass.VSETVL or (
            ev.opclass is OpClass.VMASK and ev.ops is not None
            and ev.ops.avl is not None
        )
        if is_cfg:
            vl, sew, cfg_lmul = ev.elems, ev.eew, ev.lmul
        instrs.append(LiftedInstr(i, ev, vl, sew, cfg_lmul))
    return LiftedProgram(tuple(instrs), vlen_bits, tuple(extents))
