"""Structured findings and per-kernel audit reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique


@unique
class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings are spec violations or correctness hazards; a
    kernel with any finding (either severity) fails the lint gate —
    shipped kernels are expected to audit completely clean.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One defect located in a lifted program.

    ``index`` is the instruction index in the lifted program (-1 for
    program-level findings such as VLA work-variance) and ``disasm``
    the listing line of the offending instruction, so a finding is
    actionable without re-running the kernel.  ``vlen_bits`` records
    which VLEN the program was lifted at (None when the finding spans
    several, as VLA findings do).
    """

    pass_id: str
    severity: Severity
    index: int
    message: str
    disasm: str = ""
    vlen_bits: int | None = None

    def render(self) -> str:
        where = f"@{self.index}" if self.index >= 0 else "@program"
        vlen = f" [VLEN={self.vlen_bits}]" if self.vlen_bits else ""
        line = f"  {self.severity.value:<7} {self.pass_id:<9} {where:>8}{vlen}: {self.message}"
        if self.disasm:
            line += f"\n            {self.disasm}"
        return line


@dataclass
class KernelAuditReport:
    """All findings for one kernel variant on one machine flavor."""

    kernel: str
    machine: str
    vlens: tuple[int, ...]
    findings: list[Finding] = field(default_factory=list)
    instr_counts: dict[int, int] = field(default_factory=dict)
    passes_run: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_pass(self, pass_id: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_id == pass_id]

    def render(self) -> str:
        instrs = sum(self.instr_counts.values())
        head = (
            f"{self.kernel} [{self.machine}] "
            f"VLEN={','.join(str(v) for v in self.vlens)} "
            f"({instrs} instrs, passes: {', '.join(self.passes_run)})"
        )
        if self.ok:
            return f"ok    {head}"
        lines = [f"FAIL  {head}"]
        lines.extend(f.render() for f in self.findings)
        return "\n".join(lines)
