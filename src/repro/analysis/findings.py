"""Structured findings and per-kernel audit reports."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Any, Iterable


@unique
class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings are spec violations or correctness hazards; a
    kernel with any finding (either severity) fails the lint gate —
    shipped kernels are expected to audit completely clean.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One defect located in a lifted program.

    ``index`` is the instruction index in the lifted program (-1 for
    program-level findings such as VLA work-variance) and ``disasm``
    the listing line of the offending instruction, so a finding is
    actionable without re-running the kernel.  ``vlen_bits`` records
    which VLEN the program was lifted at (None when the finding spans
    several, as VLA findings do).  ``count`` is the number of identical
    occurrences this finding stands for after deduplication (loops emit
    the same defect once per iteration; the report keeps the first).
    """

    pass_id: str
    severity: Severity
    index: int
    message: str
    disasm: str = ""
    vlen_bits: int | None = None
    count: int = 1

    def render(self) -> str:
        where = f"@{self.index}" if self.index >= 0 else "@program"
        vlen = f" [VLEN={self.vlen_bits}]" if self.vlen_bits else ""
        times = f" (x{self.count})" if self.count > 1 else ""
        line = (f"  {self.severity.value:<7} {self.pass_id:<9} "
                f"{where:>8}{vlen}: {self.message}{times}")
        if self.disasm:
            line += f"\n            {self.disasm}"
        return line

    def to_json(self) -> dict[str, Any]:
        """Stable machine-readable form (``repro lint-kernels --json``)."""
        d = dataclasses.asdict(self)
        d["severity"] = self.severity.value
        return d


def dedupe_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Collapse repeated identical findings into one with a count.

    Two findings are identical when everything but the instruction
    index matches — a loop that trips the same check every iteration
    produces one finding anchored at its first occurrence, with
    ``count`` recording how many times it fired.  Order of first
    occurrence is preserved.
    """
    seen: dict[tuple[Any, ...], int] = {}
    kept: list[Finding] = []
    for f in findings:
        key = (f.pass_id, f.severity, f.message, f.disasm, f.vlen_bits)
        at = seen.get(key)
        if at is None:
            seen[key] = len(kept)
            kept.append(f)
        else:
            prev = kept[at]
            kept[at] = dataclasses.replace(prev, count=prev.count + f.count)
    return kept


@dataclass
class KernelAuditReport:
    """All findings for one kernel variant on one machine flavor.

    ``mode`` is ``"trace"`` for the classic execute-and-lift audit and
    ``"static"`` for the symbolic audit, which additionally reports the
    ``regimes`` it proved (each a tuple of VLENs whose instruction
    streams are structurally identical), any ``unsupported`` VLENs the
    kernel rejected by construction, and non-gating performance-lint
    ``perf`` findings.
    """

    kernel: str
    machine: str
    vlens: tuple[int, ...]
    findings: list[Finding] = field(default_factory=list)
    instr_counts: dict[int, int] = field(default_factory=dict)
    passes_run: tuple[str, ...] = ()
    mode: str = "trace"
    regimes: tuple[tuple[int, ...], ...] = ()
    unsupported: dict[int, str] = field(default_factory=dict)
    perf: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_pass(self, pass_id: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_id == pass_id]

    def to_json(self) -> dict[str, Any]:
        """Stable machine-readable form (``repro lint-kernels --json``)."""
        return {
            "kernel": self.kernel,
            "machine": self.machine,
            "mode": self.mode,
            "vlens": list(self.vlens),
            "ok": self.ok,
            "passes_run": list(self.passes_run),
            "instr_counts": {str(v): n for v, n in self.instr_counts.items()},
            "regimes": [list(r) for r in self.regimes],
            "unsupported": {str(v): r for v, r in self.unsupported.items()},
            "findings": [f.to_json() for f in self.findings],
            "perf": [f.to_json() for f in self.perf],
        }

    def render(self) -> str:
        instrs = sum(self.instr_counts.values())
        head = (
            f"{self.kernel} [{self.machine}] "
            f"VLEN={','.join(str(v) for v in self.vlens)} "
            f"({instrs} instrs, passes: {', '.join(self.passes_run)})"
        )
        tail: list[str] = []
        if self.mode == "static" and self.regimes:
            groups = " | ".join(
                ",".join(str(v) for v in r) for r in self.regimes)
            tail.append(f"        regimes: {groups}")
        if self.unsupported:
            why = "; ".join(
                f"{v}: {r}" for v, r in sorted(self.unsupported.items()))
            tail.append(f"        unsupported: {why}")
        if self.perf:
            tail.append("        perf lints (non-gating):")
            tail.extend(f.render() for f in self.perf)
        if self.ok:
            return "\n".join([f"ok    {head}", *tail])
        lines = [f"FAIL  {head}"]
        lines.extend(f.render() for f in self.findings)
        lines.extend(tail)
        return "\n".join(lines)
