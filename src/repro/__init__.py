"""repro — reproduction of "Challenges and Opportunities in the Co-design
of Convolutions and RISC-V Vector Processors" (Gupta, Papadopoulou,
Pericàs; SC-W 2023).

The package rebuilds the paper's entire experimental stack in Python:

- :mod:`repro.rvv` / :mod:`repro.sve` — functional RVV 1.0 and ARM-SVE
  vector machines (the "Spike" role);
- :mod:`repro.sim` — an in-order-core timing model with a cache
  hierarchy (the "gem5 RiscvMinorCPU" role);
- :mod:`repro.winograd` — Cook-Toom transform generation and the
  NNPACK-style F(6x6, 3x3) formulation;
- :mod:`repro.conv` — reference convolution algorithms (direct,
  im2col+GEMM, Winograd) and the hybrid selection policy;
- :mod:`repro.kernels` — the paper's vectorized kernels (transforms,
  tuple multiplication with indexed vs slideup variants, transpose
  variants, im2col, GEMM), single-source across both ISAs;
- :mod:`repro.model` — analytical instruction-stream generators that
  scale the kernels to full network layers;
- :mod:`repro.nets` — VGG16 and YOLOv3 layer geometry (Darknet cfg);
- :mod:`repro.roofline` / :mod:`repro.codesign` — the paper's roofline
  analysis and vector-length x L2-size co-design study.
"""

from repro.errors import (
    AlignmentError,
    AllocationError,
    ConfigError,
    IllegalInstructionError,
    MemoryError_,
    RegisterSpillError,
    ReproError,
    SimulationError,
    TraceValidationError,
    VectorStateError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigError",
    "MemoryError_",
    "AllocationError",
    "AlignmentError",
    "VectorStateError",
    "RegisterSpillError",
    "IllegalInstructionError",
    "TraceValidationError",
    "SimulationError",
]
