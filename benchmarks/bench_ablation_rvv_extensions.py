"""Ablation A5 — what the paper's proposed RVV extensions would buy.

Section 3 of the paper advocates standardizing vector transpose
instructions (and richer sub-vector manipulation) because the Algorithm
1-4 workarounds either go through memory or burn slide chains.  This
ablation runs the same kernels on :class:`~repro.rvv.RvvPlusMachine`,
which models the proposal (``vrep4``/``vtrn4`` as register permutes),
and quantifies the claim "that would eliminate the need for memory
operations".
"""

import numpy as np

from benchmarks.conftest import record
from repro.kernels import (
    INDEXED,
    NATIVE,
    SLIDEUP,
    WinogradBuffers,
    WinogradGeometry,
    filter_transform,
    input_transform,
    transpose4_indexed,
    transpose4_native,
    transpose4_strided,
    tuple_multiplication,
)
from repro.rvv import Memory, RvvPlusMachine, Tracer
from repro.sim import Simulator, SystemConfig


def _tuple_mult_cycles(variant: str, vlen: int) -> float:
    geom = WinogradGeometry(c_in=16, h=26, w=26, c_out=16, pad=1,
                            vlen_elems=vlen // 32)
    m = RvvPlusMachine(vlen, memory=Memory(1 << 27), tracer=Tracer(capture=True))
    bufs = WinogradBuffers.allocate(m, geom)
    rng = np.random.default_rng(0)
    bufs.load_input(m, geom, rng.standard_normal((16, 26, 26)).astype(np.float32))
    bufs.load_weights(m, geom,
                      rng.standard_normal((16, 16, 3, 3)).astype(np.float32))
    filter_transform(m, geom, bufs)
    input_transform(m, geom, bufs)
    m.tracer.reset()
    tuple_multiplication(m, geom, bufs, variant=variant)
    return Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer).cycles


def test_a5_native_tuple_mult(benchmark):
    def measure():
        out = {}
        for vlen in (512, 2048, 4096):
            out[vlen] = {
                v: _tuple_mult_cycles(v, vlen)
                for v in (INDEXED, SLIDEUP, NATIVE)
            }
        return out

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA5 — tuple multiplication with the proposed vrep4:")
    print(f"{'VLEN':>8}{'indexed':>12}{'slideup':>12}{'native':>12}"
          f"{'native gain':>13}")
    for vlen, c in table.items():
        gain = c[SLIDEUP] / c[NATIVE]
        print(f"{vlen:>8}{c[INDEXED]:>12.0f}{c[SLIDEUP]:>12.0f}"
              f"{c[NATIVE]:>12.0f}{gain:>12.2f}x")
        record(benchmark, **{f"gain_{vlen}": round(gain, 2)})
    # The proposal removes the slide chain: a solid win at every VL
    # (the small benchmark layer caps its panel width at 4K lanes, so
    # the chain length — and the gain — plateaus around 1.4x here;
    # larger layers at longer VLs gain more, per the A2 ablation).
    for vlen, c in table.items():
        assert c[NATIVE] <= c[SLIDEUP]
        assert c[SLIDEUP] / c[NATIVE] > 1.25
        assert c[INDEXED] > c[NATIVE]  # and it beats the gather easily


def test_a5_native_transpose(benchmark):
    def measure():
        m = RvvPlusMachine(2048, memory=Memory(1 << 24),
                           tracer=Tracer(capture=True))
        vl = m.setvl(64)
        buf = m.memory.alloc_f32(8 * vl)
        cycles = {}
        mem_instrs = {}
        with m.alloc.scoped(9) as regs:
            src, dst, idx = regs[:4], regs[4:8], regs[8]
            for r in range(4):
                m.write_f32(src[r], np.arange(vl, dtype=np.float32))
            for name in ("indexed", "strided", "native"):
                m.tracer.reset()
                for _ in range(100):
                    if name == "indexed":
                        transpose4_indexed(m, src, dst, buf, idx)
                    elif name == "strided":
                        transpose4_strided(m, src, dst, buf)
                    else:
                        transpose4_native(m, src, dst)
                stats = Simulator(SystemConfig(vlen_bits=2048)).run_trace(m.tracer)
                cycles[name] = stats.cycles
                mem_instrs[name] = sum(
                    s.instrs for c, s in m.tracer.by_class.items()
                    if "load" in c.value or "store" in c.value
                )
        return cycles, mem_instrs

    cycles, mem_instrs = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA5 — transpose with the proposed vtrn4 (2048-bit, 100 reps):")
    for name in ("indexed", "strided", "native"):
        print(f"  {name:<8} {cycles[name]:>10.0f} cycles, "
              f"{mem_instrs[name]:>5} memory instructions")
    record(benchmark, **{f"{k}_cycles": v for k, v in cycles.items()})
    # "Eliminate the need for memory operations": literally zero.
    assert mem_instrs["native"] == 0
    assert cycles["native"] < cycles["strided"] / 2
