"""Experiment K1 — tuple multiplication: slideup vs indexed (Section 3).

The paper compares its two quad-replication workarounds over 100
iterations of the tuple-multiplication kernel and finds the slideup
variant (Algorithm 2) ~2.3x faster than the indexed-load variant
(Algorithm 1), because indexed loads cost one memory access per element.

This bench runs both variants of the real kernel on the functional
machine and replays the traces through the timing model on the paper's
base configuration.
"""

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.codesign import PAPER_HEADLINES, Comparison, comparison_table
from repro.kernels import (
    INDEXED,
    SLIDEUP,
    SLIDEUP_LOG,
    WinogradBuffers,
    WinogradGeometry,
    filter_transform,
    input_transform,
    tuple_multiplication,
)
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig


def _simulated_cycles(variant: str, vlen: int = 512) -> float:
    geom = WinogradGeometry(
        c_in=16, h=26, w=26, c_out=16, pad=1, vlen_elems=vlen // 32
    )
    m = RvvMachine(vlen, memory=Memory(1 << 27), tracer=Tracer(capture=True))
    bufs = WinogradBuffers.allocate(m, geom)
    rng = np.random.default_rng(0)
    bufs.load_input(m, geom, rng.standard_normal((16, 26, 26)).astype(np.float32))
    bufs.load_weights(m, geom, rng.standard_normal((16, 16, 3, 3)).astype(np.float32))
    filter_transform(m, geom, bufs)
    input_transform(m, geom, bufs)
    m.tracer.reset()
    tuple_multiplication(m, geom, bufs, variant=variant)
    return Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer).cycles


def test_k1_slideup_vs_indexed(benchmark):
    cycles = benchmark.pedantic(
        lambda: {v: _simulated_cycles(v) for v in (INDEXED, SLIDEUP, SLIDEUP_LOG)},
        rounds=1, iterations=1,
    )
    ratio = cycles[INDEXED] / cycles[SLIDEUP]
    ratio_log = cycles[INDEXED] / cycles[SLIDEUP_LOG]
    print()
    print(comparison_table(
        [Comparison("tuple mult: indexed / slideup cycles",
                    PAPER_HEADLINES["tuple_mult_slideup_vs_indexed"], ratio),
         Comparison("indexed / slideup-log2 (ablation)", 2.3, ratio_log)],
        "K1 — quad-replication workarounds (512-bit):",
    ))
    record(benchmark, indexed_cycles=cycles[INDEXED],
           slideup_cycles=cycles[SLIDEUP], ratio=round(ratio, 2))
    # Shape: the slideup workaround clearly beats indexed loads.
    assert ratio > 1.5
    # The doubling-amount refinement is at least as good as linear.
    assert cycles[SLIDEUP_LOG] <= cycles[SLIDEUP] * 1.01


@pytest.mark.parametrize("vlen", [512, 1024, 2048, 4096])
def test_k1_ratio_across_vlen(benchmark, vlen):
    """The gather penalty grows with VL (more elements per gather),
    while the slide chain also grows — the advantage persists."""
    cycles = benchmark.pedantic(
        lambda: {v: _simulated_cycles(v, vlen) for v in (INDEXED, SLIDEUP)},
        rounds=1, iterations=1,
    )
    ratio = cycles[INDEXED] / cycles[SLIDEUP]
    record(benchmark, vlen=vlen, ratio=round(ratio, 2))
    print(f"\nK1 @ {vlen}-bit: indexed/slideup = {ratio:.2f}x")
    assert ratio > 1.2
