"""Experiment F4 — Figure 4: VGG16 runtime over the VLEN x L2 grid.

Paper findings: ~1.4x speedup from 512- to 4096-bit vectors with no
significant gain beyond 2048 bits; ~1.3x from growing the L2 to 64 MB,
with no significant gain beyond.

The grid comes from the shared ``vgg_sweep`` fixture, which honours
``REPRO_SWEEP_WORKERS`` / ``REPRO_SWEEP_CHECKPOINT`` (parallel,
resumable sweeps — see benchmarks/README.md).
"""

import time

from benchmarks.conftest import record
from repro.codesign import (
    MISS_RATE_BOUND,
    PAPER_HEADLINES,
    Comparison,
    backend_timing_report,
    codesign_sweep,
    comparison_table,
    runtime_figure,
)
from repro.nets import vgg16_layers
from repro.nets.inference import simulate_inference
from repro.sim.system import SystemConfig


def test_fig4_vgg16_codesign(benchmark, vgg_sweep):
    sweep = benchmark.pedantic(lambda: vgg_sweep, rounds=1, iterations=1)
    print()
    print(runtime_figure(sweep, "Figure 4 — VGG16 (Winograd)"))
    vl_2048 = sweep.speedup(2048, 1)
    vl_beyond = sweep.seconds(2048, 1) / sweep.seconds(4096, 1)
    l2_64 = sweep.seconds(512, 1) / sweep.seconds(512, 64)
    l2_beyond = sweep.seconds(512, 64) / sweep.seconds(512, 256)
    comps = [
        Comparison("VL speedup 512->2048 bits @ 1 MB",
                   PAPER_HEADLINES["vgg_vl_speedup_512_to_2048"], vl_2048),
        Comparison("VL gain 2048->4096 (paper: none)", 1.0, vl_beyond),
        Comparison("L2 speedup 1->64 MB @ 512-bit",
                   PAPER_HEADLINES["vgg_l2_speedup_1_to_64mb"], l2_64),
        Comparison("L2 gain 64->256 MB (paper: none)", 1.0, l2_beyond),
    ]
    print(comparison_table(comps, "paper-vs-measured:"))
    record(benchmark, vl_speedup_2048=round(vl_2048, 2),
           vl_gain_beyond_2048=round(vl_beyond, 2),
           l2_speedup_64=round(l2_64, 2),
           l2_gain_beyond_64=round(l2_beyond, 2))
    # Shape: vector length helps through 2048 bits, then the gain
    # flattens (slide-replication chains grow with VL); L2 helps to
    # 64 MB and flattens beyond.
    assert vl_2048 > 1.25
    assert vl_beyond < vl_2048 ** 0.5  # diminishing returns
    assert l2_64 > 1.05
    assert l2_beyond < l2_64


def test_fig4_fastpath_vs_exact(benchmark, vgg_sweep):
    """Fast-vs-exact backend on the Figure 4 grid: the stack-distance
    fast path must reproduce the exact best (VLEN, L2) point, and both
    backends must beat the unamortized axis cost (len(l2_mbs)
    independent simulations) — the exact backend by recording the
    column once and replaying it per L2 size, the fast backend with
    one profiling pass."""
    layers = vgg16_layers()
    l2s = vgg_sweep.l2_mbs
    # The unamortized baseline: one fresh exact simulation, scaled to
    # the axis length.
    t0 = time.perf_counter()
    simulate_inference("vgg16", layers,
                       SystemConfig(vlen_bits=512, l2_mb=l2s[0]))
    axis_cost = (time.perf_counter() - t0) * len(l2s)
    # Time the exact L2 axis at the narrowest (most expensive) VLEN —
    # this is the benchmark target.
    t0 = time.perf_counter()
    exact_col = benchmark.pedantic(
        lambda: codesign_sweep("vgg16", layers, vlens=(512,), l2_mbs=l2s,
                               mode="exact"),
        rounds=1, iterations=1)
    exact_seconds = time.perf_counter() - t0
    # The fast column, min of 3 runs (timer noise only ever slows a
    # run down; the minimum is the honest cost of the profiling pass).
    fast_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        fast_col = codesign_sweep("vgg16", layers, vlens=(512,),
                                  l2_mbs=l2s, mode="fast")
        fast_seconds = min(fast_seconds, time.perf_counter() - t0)
    # Accuracy over the full grid, against the session's exact sweep.
    fast_full = codesign_sweep("vgg16", layers, vlens=vgg_sweep.vlens,
                               l2_mbs=l2s, mode="fast")
    deltas = {
        p: abs(fast_full.at(*p).total.l2_miss_rate
               - vgg_sweep.at(*p).total.l2_miss_rate)
        for p in vgg_sweep.points
    }
    max_delta = max(deltas.values())
    best_agrees = fast_full.best() == vgg_sweep.best()
    exact_speedup = axis_cost / exact_seconds
    fast_speedup = axis_cost / fast_seconds
    print()
    print(backend_timing_report("VGG16 @ 512-bit", exact_seconds,
                                fast_seconds, len(l2s), max_delta,
                                best_agrees))
    record(benchmark, exact_axis_seconds=round(exact_seconds, 2),
           fast_axis_seconds=round(fast_seconds, 2),
           unamortized_axis_seconds=round(axis_cost, 2),
           exact_axis_speedup=round(exact_speedup, 2),
           fast_axis_speedup=round(fast_speedup, 2),
           max_miss_rate_delta=round(max_delta, 4),
           best_exact=list(vgg_sweep.best()),
           best_fast=list(fast_full.best()))
    # The exact column is deterministic: it must reproduce the session
    # sweep's points bit for bit.
    for l2 in l2s:
        assert exact_col.at(512, l2) == vgg_sweep.at(512, l2)
    # Acceptance: same best point, both backends amortize the axis
    # (well past half its unamortized cost even with timer noise),
    # bounded fast-path error.
    assert best_agrees, (fast_full.best(), vgg_sweep.best())
    assert exact_speedup >= 2.0, exact_speedup
    assert fast_speedup >= 2.0, fast_speedup
    assert max_delta <= MISS_RATE_BOUND
    # The fast column agrees with the fast full grid on shared points.
    for l2 in l2s:
        assert fast_col.at(512, l2) == fast_full.at(512, l2)
