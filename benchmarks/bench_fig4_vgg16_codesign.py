"""Experiment F4 — Figure 4: VGG16 runtime over the VLEN x L2 grid.

Paper findings: ~1.4x speedup from 512- to 4096-bit vectors with no
significant gain beyond 2048 bits; ~1.3x from growing the L2 to 64 MB,
with no significant gain beyond.

The grid comes from the shared ``vgg_sweep`` fixture, which honours
``REPRO_SWEEP_WORKERS`` / ``REPRO_SWEEP_CHECKPOINT`` (parallel,
resumable sweeps — see benchmarks/README.md).
"""

from benchmarks.conftest import record
from repro.codesign import PAPER_HEADLINES, Comparison, comparison_table, runtime_figure


def test_fig4_vgg16_codesign(benchmark, vgg_sweep):
    sweep = benchmark.pedantic(lambda: vgg_sweep, rounds=1, iterations=1)
    print()
    print(runtime_figure(sweep, "Figure 4 — VGG16 (Winograd)"))
    vl_2048 = sweep.speedup(2048, 1)
    vl_beyond = sweep.seconds(2048, 1) / sweep.seconds(4096, 1)
    l2_64 = sweep.seconds(512, 1) / sweep.seconds(512, 64)
    l2_beyond = sweep.seconds(512, 64) / sweep.seconds(512, 256)
    comps = [
        Comparison("VL speedup 512->2048 bits @ 1 MB",
                   PAPER_HEADLINES["vgg_vl_speedup_512_to_2048"], vl_2048),
        Comparison("VL gain 2048->4096 (paper: none)", 1.0, vl_beyond),
        Comparison("L2 speedup 1->64 MB @ 512-bit",
                   PAPER_HEADLINES["vgg_l2_speedup_1_to_64mb"], l2_64),
        Comparison("L2 gain 64->256 MB (paper: none)", 1.0, l2_beyond),
    ]
    print(comparison_table(comps, "paper-vs-measured:"))
    record(benchmark, vl_speedup_2048=round(vl_2048, 2),
           vl_gain_beyond_2048=round(vl_beyond, 2),
           l2_speedup_64=round(l2_64, 2),
           l2_gain_beyond_64=round(l2_beyond, 2))
    # Shape: vector length helps through 2048 bits, then the gain
    # flattens (slide-replication chains grow with VL); L2 helps to
    # 64 MB and flattens beyond.
    assert vl_2048 > 1.25
    assert vl_beyond < vl_2048 ** 0.5  # diminishing returns
    assert l2_64 > 1.05
    assert l2_beyond < l2_64
