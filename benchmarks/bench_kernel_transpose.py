"""Experiment K2 — 4-vector transpose: indexed vs strided (Section 3).

The paper implements the missing vector-transpose operation two ways —
Algorithm 3 (contiguous stores + index build + gathers) and Algorithm 4
(stride-16 stores + contiguous loads) — and finds "no significant
performance difference ... as they both cannot avoid memory accesses".
"""

import numpy as np

from benchmarks.conftest import record
from repro.codesign import Comparison, comparison_table
from repro.kernels import transpose4_indexed, transpose4_strided
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig

REPS = 100  # the paper times its snippets over repeated iterations


def _simulated_cycles(variant: str, vlen: int = 512) -> float:
    m = RvvMachine(vlen, memory=Memory(1 << 24), tracer=Tracer(capture=True))
    vl = m.setvl(vlen // 32)
    buf = m.memory.alloc_f32(8 * vl)
    rng = np.random.default_rng(0)
    with m.alloc.scoped(9) as regs:
        src, dst, idx = regs[:4], regs[4:8], regs[8]
        for r in range(4):
            m.write_f32(src[r], rng.standard_normal(vl).astype(np.float32))
        m.tracer.reset()
        for _ in range(REPS):
            if variant == "indexed":
                transpose4_indexed(m, src, dst, buf, idx)
            else:
                transpose4_strided(m, src, dst, buf)
    return Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer).cycles


def test_k2_transpose_parity(benchmark):
    cycles = benchmark.pedantic(
        lambda: {v: _simulated_cycles(v) for v in ("indexed", "strided")},
        rounds=1, iterations=1,
    )
    ratio = cycles["indexed"] / cycles["strided"]
    print()
    print(comparison_table(
        [Comparison("transpose: indexed / strided cycles", 1.0, ratio)],
        "K2 — transpose workarounds (512-bit, 100 reps):",
    ))
    record(benchmark, indexed_cycles=cycles["indexed"],
           strided_cycles=cycles["strided"], ratio=round(ratio, 2))
    # Shape: no decisive winner — both bounce through memory.  The
    # paper reports "no significant difference"; we accept +-2x (the
    # index build adds instructions, the buffers dominate).
    assert 0.5 < ratio < 2.5
