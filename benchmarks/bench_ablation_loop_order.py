"""Ablation A9 — tuple-multiplication loop order: the deviation's root cause.

EXPERIMENTS.md traces the reproduction's one systematic deviation
(L2 miss-rate level/trend vs the paper's Tables 1/2) to loop order: our
default tuple multiplication is *filter-stationary* (filters stay hot,
the transformed input streams), while the paper's measured 80%+ miss
rates imply a *tile-stationary* schedule that re-streams the filter
tensor.  Both orders are implemented; this ablation runs them on the
same layer, confirms bit-identical results, and measures the trade:
tile-stationary produces the paper-like (lower-hit) L2 profile at the
cost of cycles.
"""

import numpy as np

from benchmarks.conftest import record
from repro.kernels import (
    WinogradBuffers,
    WinogradGeometry,
    filter_transform,
    input_transform,
    tuple_multiplication,
)
from repro.kernels.tuple_mult import FILTER_STATIONARY, TILE_STATIONARY
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig


def _run(order: str):
    geom = WinogradGeometry(c_in=24, h=32, w=32, c_out=24, pad=1,
                            vlen_elems=16)
    m = RvvMachine(512, memory=Memory(1 << 27), tracer=Tracer(capture=True))
    bufs = WinogradBuffers.allocate(m, geom)
    rng = np.random.default_rng(0)
    bufs.load_input(m, geom, rng.standard_normal((24, 32, 32)).astype(np.float32))
    bufs.load_weights(m, geom,
                      rng.standard_normal((24, 24, 3, 3)).astype(np.float32))
    filter_transform(m, geom, bufs)
    input_transform(m, geom, bufs)
    m.tracer.reset()
    tuple_multiplication(m, geom, bufs, loop_order=order)
    result = m.memory.read_f32(bufs.m, geom.m_size)
    stats = Simulator(SystemConfig(l2_mb=1)).run_trace(m.tracer)
    return result, stats


def test_a9_loop_order(benchmark):
    (rf, sf), (rt, st) = benchmark.pedantic(
        lambda: (_run(FILTER_STATIONARY), _run(TILE_STATIONARY)),
        rounds=1, iterations=1,
    )
    np.testing.assert_array_equal(rf, rt)  # same mathematics
    print("\nA9 — tuple-multiplication loop order (512-bit, 1 MB L2):")
    for name, s in (("filter-stationary (default)", sf),
                    ("tile-stationary (paper-like)", st)):
        print(f"  {name:<30} cycles={s.cycles:>10.0f} "
              f"L2 accesses={s.hierarchy.l2.accesses:>7} "
              f"L2 miss rate={100 * s.l2_miss_rate:5.1f}%")
    record(benchmark,
           filter_cycles=sf.cycles, tile_cycles=st.cycles,
           filter_l2_mr=round(sf.l2_miss_rate, 3),
           tile_l2_mr=round(st.l2_miss_rate, 3))
    # The trade EXPERIMENTS.md describes: the tile-stationary order
    # pushes far more traffic to the L2 (its filter re-streaming turns
    # L1-captured reuse into L2 traffic) and costs cycles; the
    # filter-stationary default wins time, which is why we ship it.
    assert st.hierarchy.l2.accesses > 2 * sf.hierarchy.l2.accesses
    assert st.cycles >= sf.cycles
