"""Experiment F6 — Figure 6: roofline, first 10 VGG16 layers, im2col+GEMM.

Paper: only 3 of 10 layers are memory-bound; the rest are compute-bound
(im2col+GEMM does ~5x more arithmetic per DRAM byte than Winograd),
and achieved performance stays well below the compute ceiling.
"""

from benchmarks.conftest import record
from repro.conv import ConvAlgorithm
from repro.nets import vgg16_conv_layers
from repro.roofline import render_roofline, roofline_points
from repro.sim import SystemConfig


def _measure():
    return roofline_points(
        vgg16_conv_layers()[:10], SystemConfig(), ConvAlgorithm.IM2COL_GEMM
    )


def test_fig6_roofline_im2col(benchmark):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(render_roofline(points, "Figure 6 — VGG16 im2col+GEMM @ 512-bit/1 MB"))
    mem_bound = sum(1 for p in points if p.memory_bound)
    record(
        benchmark,
        memory_bound_layers=mem_bound,
        paper_memory_bound_layers=3,
    )
    # Shape: mostly compute-bound (paper: 7/10), far below the peak.
    assert mem_bound <= 4
    assert all(p.efficiency < 0.8 for p in points)
    # Cross-figure check: im2col's AI beats Winograd's layer-for-layer.
    wino = roofline_points(
        vgg16_conv_layers()[:10], SystemConfig(), ConvAlgorithm.WINOGRAD
    )
    assert sum(1 for w, g in zip(wino, points) if g.ai > w.ai) >= 8
