"""Experiment H2 — VGG16: Winograd vs im2col+GEMM.

Paper (Section 5): with every convolutional layer 3x3/stride-1, VGG16
uses Winograd throughout and beats the all-im2col+GEMM configuration
by ~1.2x at 2048-bit VLEN / 1 MB L2.
"""

from benchmarks.conftest import record
from repro.codesign import PAPER_HEADLINES, Comparison, comparison_table
from repro.nets import simulate_inference, vgg16_layers
from repro.sim import SystemConfig


def _measure():
    layers = vgg16_layers()
    cfg = SystemConfig(vlen_bits=2048, l2_mb=1)
    wino = simulate_inference("vgg-wino", layers, cfg, hybrid=True)
    gemm = simulate_inference("vgg-gemm", layers, cfg, hybrid=False)
    return wino, gemm


def test_h2_winograd_vs_gemm(benchmark):
    wino, gemm = benchmark.pedantic(_measure, rounds=1, iterations=1)
    speedup = gemm.cycles / wino.cycles
    print()
    print(comparison_table(
        [Comparison("VGG16 Winograd vs im2col+GEMM @2048b/1MB",
                    PAPER_HEADLINES["vgg_winograd_vs_gemm"], speedup)],
        "H2 — Winograd on an all-3x3 network:",
    ))
    flop_ratio = gemm.total.flops / wino.total.flops
    print(f"FLOP reduction (im2col / Winograd executed flops): "
          f"{flop_ratio:.2f}x (algorithmic bound 5.06x at F(6x6,3x3))")
    record(benchmark, speedup=round(speedup, 3),
           flop_ratio=round(flop_ratio, 2))
    # Shape: Winograd wins clearly, by more than YOLOv3's hybrid does.
    assert speedup > 1.1
    assert 2.0 < flop_ratio < 5.06  # transforms eat part of the 5.06x
