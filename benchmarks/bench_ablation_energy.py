"""Ablation A8 — the energy argument for long vectors, quantified.

The paper's introduction claims long vectors improve "energy efficiency
by reducing the number of instructions ... reducing the energy consumed
by the processor's front end".  With the event-energy model of
:mod:`repro.sim.energy` applied to the VGG16 inference:

- front-end energy indeed falls steeply with vector length (the claim);
- but *total* energy can rise, because the slideup replication chains
  add datapath lane-operations as VL grows — so the proposed ``vrep4``
  instruction (ablation A5) is an energy feature too, not just a
  performance one.
"""

from benchmarks.conftest import record
from repro.kernels import NATIVE, SLIDEUP
from repro.nets import simulate_inference, vgg16_layers
from repro.sim import SystemConfig, estimate_energy


def _energy(vlen: int, variant: str):
    cfg = SystemConfig(vlen_bits=vlen, l2_mb=1)
    st = simulate_inference("vgg", vgg16_layers(), cfg, variant=variant).total
    return estimate_energy(st)


def test_a8_energy_vs_vlen(benchmark):
    def measure():
        return {
            (vlen, var): _energy(vlen, var)
            for vlen in (512, 2048, 4096)
            for var in (SLIDEUP, NATIVE)
        }

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA8 — VGG16 inference energy (event model):")
    print(f"{'VLEN':>8}{'variant':>10}{'total J':>10}{'front-end J':>13}"
          f"{'FE share':>10}")
    for (vlen, var), e in table.items():
        print(f"{vlen:>8}{var:>10}{e.total:>10.2f}{e.front_end:>13.3f}"
              f"{100 * e.front_end_share:>9.1f}%")
        record(benchmark, **{f"{var}_{vlen}_total_j": round(e.total, 3)})

    # The paper's claim: front-end energy falls with vector length.
    fe = [table[(v, SLIDEUP)].front_end for v in (512, 2048, 4096)]
    assert fe[0] > fe[1] > fe[2]
    assert fe[0] / fe[2] > 2.0
    # The extension's bonus: with vrep4 the long-VL total improves too.
    assert table[(4096, NATIVE)].total < table[(4096, SLIDEUP)].total
