"""Ablation A6 — direct 1x1 convolution vs the paper's im2col+GEMM.

The paper routes YOLOv3's six 1x1 layers through im2col+GEMM, where
im2col degenerates to a full copy of the input tensor.  The direct
kernel (:mod:`repro.kernels.direct`) skips the copy.  This ablation
runs YOLOv3's 20-layer prefix under three policies — pure GEMM, the
paper's hybrid, and hybrid + direct-1x1 — quantifying a further
"opportunity" the paper's setup leaves on the table.
"""

from benchmarks.conftest import record
from repro.conv import ConvAlgorithm, ConvLayerSpec, choose_algorithm
from repro.kernels.tuple_mult import SLIDEUP
from repro.model.layer_model import NetworkResult, layer_phases
from repro.model.traffic import stats_from_model
from repro.nets import simulate_inference, yolov3_layers
from repro.nets.layers import MaxPoolSpec, ShortcutSpec
from repro.model.aux_model import maxpool_model, shortcut_model
from repro.sim import SimStats, SystemConfig


def _simulate_direct_hybrid(layers, config) -> SimStats:
    """Hybrid policy plus the direct-1x1 extension."""
    total = SimStats(freq_ghz=config.freq_ghz, label="hybrid+direct1x1")
    for layer in layers:
        if isinstance(layer, ConvLayerSpec):
            algo = choose_algorithm(layer, hybrid=True, direct_1x1=True)
            phases = layer_phases(layer, config, algorithm=algo, variant=SLIDEUP)
        elif isinstance(layer, ShortcutSpec):
            phases = [shortcut_model(layer, config.lanes)]
        else:
            assert isinstance(layer, MaxPoolSpec)
            phases = [maxpool_model(layer, config.lanes)]
        total.merge(stats_from_model(phases, config))
    return total


def test_a6_direct_1x1(benchmark):
    def measure():
        layers = yolov3_layers()
        cfg = SystemConfig(vlen_bits=2048, l2_mb=1)
        return {
            "pure_gemm": simulate_inference("y", layers, cfg, hybrid=False).total,
            "hybrid": simulate_inference("y", layers, cfg, hybrid=True).total,
            "hybrid_direct": _simulate_direct_hybrid(layers, cfg),
        }

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = out["pure_gemm"].cycles
    print("\nA6 — YOLOv3 (20 layers) algorithm policies @ 2048-bit/1 MB:")
    for name, st in out.items():
        print(f"  {name:<14} {st.cycles / 1e9:7.2f} Gcycles "
              f"(speedup {base / st.cycles:5.2f}x, "
              f"DRAM {st.dram_bytes / 1e6:7.0f} MB)")
        record(benchmark, **{f"{name}_speedup": round(base / st.cycles, 3)})
    # Direct 1x1 must improve on the paper's hybrid: less DRAM traffic
    # (no column-matrix round trip) and fewer cycles.
    assert out["hybrid_direct"].cycles < out["hybrid"].cycles
    assert out["hybrid_direct"].dram_bytes < out["hybrid"].dram_bytes
