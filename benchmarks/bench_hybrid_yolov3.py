"""Experiment H1 — YOLOv3: hybrid (Winograd + im2col+GEMM) vs pure GEMM.

Paper (Section 5): at 2048-bit VLEN / 1 MB L2, the hybrid approach is
~8% faster than implementing every convolution with im2col+GEMM; the
improvement is limited because only 5 of the 20 simulated layers can
use Winograd (3 are strided, 6 are 1x1, the first has 3 channels, 5
are shortcuts).
"""

from benchmarks.conftest import record
from repro.codesign import PAPER_HEADLINES, Comparison, comparison_table
from repro.nets import simulate_inference, winograd_layer_count, yolov3_layers
from repro.sim import SystemConfig


def _measure():
    layers = yolov3_layers()
    cfg = SystemConfig(vlen_bits=2048, l2_mb=1)
    hybrid = simulate_inference("yolo-hybrid", layers, cfg, hybrid=True)
    pure = simulate_inference("yolo-gemm", layers, cfg, hybrid=False)
    return layers, hybrid, pure


def test_h1_hybrid_vs_pure_gemm(benchmark):
    layers, hybrid, pure = benchmark.pedantic(_measure, rounds=1, iterations=1)
    speedup = pure.cycles / hybrid.cycles
    print()
    print(comparison_table(
        [Comparison("YOLOv3 hybrid vs pure im2col+GEMM @2048b/1MB",
                    PAPER_HEADLINES["yolo_hybrid_vs_gemm"], speedup)],
        "H1 — the hybrid approach:",
    ))
    print(f"Winograd-eligible layers: {winograd_layer_count(layers)} of 20 "
          f"(paper: 5)")
    record(benchmark, speedup=round(speedup, 3),
           winograd_layers=winograd_layer_count(layers))
    # Shape: the hybrid wins, but modestly (few layers are eligible).
    assert 1.0 < speedup < 1.35
    assert winograd_layer_count(layers) == 5
