"""Experiment T2 — Table 2: VGG16 L2 miss rate vs vector length (1 MB L2).

Paper values: 80 / 84 / 85 / 82 % for 512 / 1024 / 2048 / 4096 bits —
high at every vector length (the transformed tensors stream).
"""

from benchmarks.conftest import record, sweep_kwargs
from repro.codesign import PAPER_TABLE2_VGG, codesign_sweep, miss_rate_report
from repro.nets import vgg16_layers


def _measure():
    sweep = codesign_sweep(
        "vgg16", vgg16_layers(), vlens=(512, 1024, 2048, 4096),
        l2_mbs=(1,), **sweep_kwargs("table2-vgg16"),
    )
    return sweep.miss_rate_table(1)


def test_table2_vgg16_l2_miss_rate(benchmark, vgg_sweep):
    rates = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(miss_rate_report(vgg_sweep, PAPER_TABLE2_VGG, l2_mb=1,
                           title="Table 2 — VGG16 L2 miss rate at 1 MB"))
    for v, r in rates.items():
        record(benchmark, **{f"miss_rate_{v}": round(100 * r, 1),
                             f"paper_{v}": PAPER_TABLE2_VGG[v]})
    # Shape: VGG16's Winograd pipeline misses substantially at 1 MB for
    # every VLEN, and more than YOLOv3's hybrid at 512-bit.
    assert all(r > 0.2 for r in rates.values())
