"""Serve-layer load benchmark: hot queries must be store-bound.

The tentpole claim of the serving layer is that a repeated co-design
query never re-enters the simulator: a hot grid point is answered from
the content-addressed store in well under a millisecond.  This bench
warms a service with one cold query, then measures

- the raw store hit (``ResultStore.get_or_compute`` on a hot key), and
- a full repeat query through ``CodesignService.handle_query``
  (per point, including event streaming into a sink),

and asserts the sub-millisecond bound on both.  Wall-clock assertions
are machine-dependent, so the whole module is gated behind
``REPRO_RUN_WALL_BENCH=1`` like the other wall-time guards.
"""

import asyncio
import os
import time

import pytest

from benchmarks.conftest import record
from repro.obs import METRICS, MemorySink
from repro.serve import (
    CodesignService,
    Query,
    ResultStore,
    point_key,
)

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_WALL_BENCH"),
    reason="wall-time guard; set REPRO_RUN_WALL_BENCH=1 to run",
)

PAYLOAD = {"network": "vgg16", "max_layers": 2,
           "vlens": [512, 1024], "l2_mbs": [1, 16], "mode": "fast"}
REPEATS = 200


def test_hot_query_is_store_bound(benchmark):
    query = Query.from_payload(PAYLOAD)
    service = CodesignService(ResultStore(max_bytes=1 << 22), workers=2)

    async def warm():
        return await service.handle_query(query, MemorySink())

    async def repeat(n):
        start = time.perf_counter()
        for _ in range(n):
            await service.handle_query(query, MemorySink())
        return time.perf_counter() - start

    asyncio.run(warm())

    # Raw store hit: the content-addressed lookup itself.
    key = point_key(query, 512, 1)

    def fail():
        raise AssertionError("hot key must not compute")

    t0 = time.perf_counter()
    for _ in range(REPEATS):
        payload, source = service.store.get_or_compute(key, fail)
        assert source == "store"
    store_hit_us = (time.perf_counter() - t0) / REPEATS * 1e6

    # Full repeat query, amortized per point (4-point grid).
    seconds = asyncio.run(repeat(REPEATS))
    query_ms = seconds / REPEATS * 1e3
    point_ms = query_ms / len(query.points)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(benchmark, store_hit_us=round(store_hit_us, 2),
           hot_query_ms=round(query_ms, 3),
           hot_point_ms=round(point_ms, 4))
    print(f"\nstore hit: {store_hit_us:.1f}us  "
          f"hot query: {query_ms:.3f}ms  per point: {point_ms:.4f}ms")

    assert store_hit_us < 1000, (
        f"store hit took {store_hit_us:.0f}us; the content-addressed "
        f"lookup must stay under a millisecond"
    )
    assert point_ms < 1.0, (
        f"hot grid point took {point_ms:.3f}ms through the service; "
        f"repeat queries must be store-bound (<1ms per point)"
    )


def test_metrics_overhead_on_hot_path_is_bounded(benchmark):
    """Telemetry must be observation-only in cost terms too.

    The same hot repeat-query loop is timed with the process metrics
    registry enabled and disabled (``METRICS.disable()`` turns every
    mutation into a no-op on the same code path); the instrumented run
    must stay within 10% of the uninstrumented one.  Best-of-3 per arm,
    interleaved, to keep scheduler noise out of the ratio.
    """
    query = Query.from_payload(PAYLOAD)
    service = CodesignService(ResultStore(max_bytes=1 << 22), workers=2)

    async def drive(n):
        start = time.perf_counter()
        for _ in range(n):
            await service.handle_query(query, MemorySink())
        return time.perf_counter() - start

    asyncio.run(drive(1))  # warm: the grid lands in the store
    asyncio.run(drive(20))  # warm the loop itself

    enabled_s, disabled_s = [], []
    try:
        for _ in range(3):
            METRICS.enable()
            enabled_s.append(asyncio.run(drive(REPEATS)))
            METRICS.disable()
            disabled_s.append(asyncio.run(drive(REPEATS)))
    finally:
        METRICS.enable()

    on_ms = min(enabled_s) / REPEATS * 1e3
    off_ms = min(disabled_s) / REPEATS * 1e3
    ratio = on_ms / off_ms

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(benchmark, hot_query_metrics_on_ms=round(on_ms, 4),
           hot_query_metrics_off_ms=round(off_ms, 4),
           metrics_overhead_ratio=round(ratio, 4))
    print(f"\nhot query with metrics: {on_ms:.4f}ms  "
          f"without: {off_ms:.4f}ms  ratio: {ratio:.3f}")

    assert ratio < 1.10, (
        f"metrics add {100 * (ratio - 1):.1f}% to the hot store-hit "
        f"query; telemetry must stay under 10%"
    )
