"""Experiment H3 — RVV vs ARM-SVE: same kernels, same performance.

Paper (Section 5): "for performance validation, we compare the
performance achieved on RISC-VV to the performance we have previously
achieved with ARM-SVE ... finding that Winograd performs the same on
both vector architectures."

The kernels are single-source; this bench runs the full Winograd
pipeline on both functional machines and replays both traces through
the same timing model.
"""

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.codesign import Comparison, comparison_table
from repro.kernels import winograd_conv2d_sim
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig
from repro.sve import SveMachine


def _run(machine_cls, vlen=512):
    m = machine_cls(vlen, memory=Memory(1 << 27), tracer=Tracer(capture=True))
    rng = np.random.default_rng(7)
    x = rng.standard_normal((12, 26, 26)).astype(np.float32)
    w = rng.standard_normal((12, 12, 3, 3)).astype(np.float32)
    out = winograd_conv2d_sim(m, x, w, pad=1)
    stats = Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer)
    return out, stats


def test_h3_rvv_vs_sve(benchmark):
    (rvv_out, rvv), (sve_out, sve) = benchmark.pedantic(
        lambda: (_run(RvvMachine), _run(SveMachine)), rounds=1, iterations=1
    )
    np.testing.assert_array_equal(rvv_out, sve_out)  # bit-identical maths
    ratio = sve.cycles / rvv.cycles
    print()
    print(comparison_table(
        [Comparison("SVE / RVV simulated cycles (Winograd)", 1.0, ratio)],
        "H3 — ISA parity:",
    ))
    print(f"RVV instructions: {rvv.total_instrs}, SVE: {sve.total_instrs} "
          f"(SVE replaces strided ops with gathers and vsetvl with whilelt)")
    record(benchmark, rvv_cycles=rvv.cycles, sve_cycles=sve.cycles,
           ratio=round(ratio, 3))
    # Shape: similar performance and identical trends; SVE pays a
    # moderate premium where it lacks strided memory operations.
    assert 0.8 < ratio < 1.6


def test_h3_trends_match_across_isas(benchmark):
    """The VL-scaling trend is ISA-independent (the paper's point)."""

    def measure():
        out = {}
        for cls in (RvvMachine, SveMachine):
            c512 = _run(cls, 512)[1].cycles
            c2048 = _run(cls, 2048)[1].cycles
            out[cls.__name__] = c512 / c2048
        return out

    trends = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nVL 512->2048 speedup: RVV {trends['RvvMachine']:.2f}x, "
          f"SVE {trends['SveMachine']:.2f}x")
    record(benchmark, **{k: round(v, 2) for k, v in trends.items()})
    assert trends["RvvMachine"] == pytest.approx(
        trends["SveMachine"], rel=0.25
    )

