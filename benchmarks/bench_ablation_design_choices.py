"""Ablations A2-A4 — kernel/system design choices (DESIGN.md section 6).

- A2: slide-replication strategy — the paper's linear amounts vs the
  doubling refinement, across vector lengths.
- A3: L1 size sensitivity (the paper fixes 64 kB).
- A4: Winograd interpolation-point selection vs fp32 accuracy
  (reference [1] of the paper).
"""

from fractions import Fraction

import pytest

from benchmarks.conftest import record
from repro.kernels import slide_amounts
from repro.nets import simulate_inference, vgg16_layers
from repro.sim import SystemConfig
from repro.winograd import NNPACK_POINTS_F6X3, compare_point_sets


def test_a2_slide_strategy(benchmark):
    """Instruction counts of the two replication strategies per quad."""

    def measure():
        table = {}
        for vlen in (512, 1024, 2048, 4096, 8192):
            vl = vlen // 32
            table[vlen] = (
                2 * len(slide_amounts(vl, log2=False)),  # vmv + vslideup
                2 * len(slide_amounts(vl, log2=True)),
            )
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA2 — quad-replication instructions per vfmacc:")
    print(f"{'VLEN':>8}{'linear (paper)':>16}{'doubling':>10}")
    for vlen, (lin, log) in table.items():
        print(f"{vlen:>8}{lin:>16}{log:>10}")
    record(benchmark, **{f"linear_{v}": t[0] for v, t in table.items()})
    # Linear grows ~O(sqrt(vl)); doubling grows O(log vl): the gap
    # widens with VL — one reason Winograd stops scaling beyond 2048.
    assert table[8192][1] < table[8192][0]
    assert table[512][0] <= 6


@pytest.mark.parametrize("l1_kb", [16, 32, 64, 128])
def test_a3_l1_size(benchmark, l1_kb):
    """The paper fixes 64 kB of L1; how sensitive is the result?"""

    def measure():
        cfg = SystemConfig(vlen_bits=2048, l2_mb=1, l1_kb=l1_kb)
        return simulate_inference("vgg", vgg16_layers()[:6], cfg).total

    total = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nA3 — VGG16 head with {l1_kb} kB L1: "
          f"{total.seconds * 1e3:.1f} ms, L1 miss {100 * total.l1_miss_rate:.1f}%")
    record(benchmark, l1_kb=l1_kb, seconds=total.seconds,
           l1_miss_rate=round(total.l1_miss_rate, 3))
    assert total.cycles > 0


def test_a4_point_selection(benchmark):
    """F(6,3) interpolation points vs fp32 error (Alam et al. [1])."""
    candidates = {
        "nnpack (0,±1,±2,±1/2)": NNPACK_POINTS_F6X3,
        "integers (0,±1,±2,±3)": tuple(
            Fraction(x) for x in (0, 1, -1, 2, -2, 3, -3)
        ),
        "wide (0,±1,±3,±4)": tuple(
            Fraction(x) for x in (0, 1, -1, 3, -3, 4, -4)
        ),
    }
    def measure():
        reports = compare_point_sets(
            6, 3, list(candidates.values()), samples=150
        )
        return dict(zip(candidates, reports))

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA4 — F(6,3) fp32 accuracy by interpolation points:")
    for name, rep in reports.items():
        print(f"  {name:<26} mean rel err {rep.mean_rel_error:.2e}")
        record(benchmark, **{name.split()[0]: rep.mean_rel_error})
    errs = [r.mean_rel_error for r in reports.values()]
    assert errs[0] == min(errs)  # NNPACK's points are the best set
