"""Experiment F3 — Figure 3: YOLOv3 runtime over the VLEN x L2 grid.

Paper findings: ~1.76x speedup from 512- to 4096-bit vectors at 1 MB;
a further 1.5x (512/1024-bit), 1.54x (2048) and 1.6x (4096) from
growing the L2 from 1 MB to 256 MB — ~2.6x combined.

The grid comes from the shared ``yolo_sweep`` fixture, which honours
``REPRO_SWEEP_WORKERS`` / ``REPRO_SWEEP_CHECKPOINT`` (parallel,
resumable sweeps — see benchmarks/README.md).
"""

from benchmarks.conftest import record
from repro.codesign import PAPER_HEADLINES, Comparison, comparison_table, runtime_figure


def test_fig3_yolov3_codesign(benchmark, yolo_sweep):
    sweep = benchmark.pedantic(lambda: yolo_sweep, rounds=1, iterations=1)
    print()
    print(runtime_figure(sweep, "Figure 3 — YOLOv3 (first 20 layers, hybrid)"))
    vl_speedup = sweep.speedup(4096, 1)
    l2_speedup = sweep.seconds(4096, 1) / sweep.seconds(4096, 256)
    total = sweep.speedup(4096, 256)
    comps = [
        Comparison("VL speedup 512->4096 bits @ 1 MB",
                   PAPER_HEADLINES["yolo_vl_speedup_512_to_4096"], vl_speedup),
        Comparison("L2 speedup 1->256 MB @ 4096-bit",
                   PAPER_HEADLINES["yolo_l2_speedup_1_to_256mb"], l2_speedup),
        Comparison("combined best vs base", 2.6, total),
    ]
    print(comparison_table(comps, "paper-vs-measured:"))
    record(benchmark, vl_speedup=round(vl_speedup, 2),
           l2_speedup=round(l2_speedup, 2), combined=round(total, 2))
    # Shape: both knobs help, and they compose.
    assert vl_speedup > 1.3
    assert l2_speedup > 1.2
    assert total > max(vl_speedup, l2_speedup)
    # Monotonicity along each axis from the base point.
    times_vl = [sweep.seconds(v, 1) for v in sweep.vlens]
    assert all(a >= b for a, b in zip(times_vl, times_vl[1:]))
    times_l2 = [sweep.seconds(4096, l) for l in sweep.l2_mbs]
    assert all(a >= b for a, b in zip(times_l2, times_l2[1:]))
