"""Experiment F3 — Figure 3: YOLOv3 runtime over the VLEN x L2 grid.

Paper findings: ~1.76x speedup from 512- to 4096-bit vectors at 1 MB;
a further 1.5x (512/1024-bit), 1.54x (2048) and 1.6x (4096) from
growing the L2 from 1 MB to 256 MB — ~2.6x combined.

The grid comes from the shared ``yolo_sweep`` fixture, which honours
``REPRO_SWEEP_WORKERS`` / ``REPRO_SWEEP_CHECKPOINT`` (parallel,
resumable sweeps — see benchmarks/README.md).
"""

import time

from benchmarks.conftest import record
from repro.codesign import (
    MISS_RATE_BOUND,
    PAPER_HEADLINES,
    Comparison,
    backend_timing_report,
    codesign_sweep,
    comparison_table,
    runtime_figure,
)
from repro.nets import yolov3_layers
from repro.nets.inference import simulate_inference
from repro.sim.system import SystemConfig


def test_fig3_yolov3_codesign(benchmark, yolo_sweep):
    sweep = benchmark.pedantic(lambda: yolo_sweep, rounds=1, iterations=1)
    print()
    print(runtime_figure(sweep, "Figure 3 — YOLOv3 (first 20 layers, hybrid)"))
    vl_speedup = sweep.speedup(4096, 1)
    l2_speedup = sweep.seconds(4096, 1) / sweep.seconds(4096, 256)
    total = sweep.speedup(4096, 256)
    comps = [
        Comparison("VL speedup 512->4096 bits @ 1 MB",
                   PAPER_HEADLINES["yolo_vl_speedup_512_to_4096"], vl_speedup),
        Comparison("L2 speedup 1->256 MB @ 4096-bit",
                   PAPER_HEADLINES["yolo_l2_speedup_1_to_256mb"], l2_speedup),
        Comparison("combined best vs base", 2.6, total),
    ]
    print(comparison_table(comps, "paper-vs-measured:"))
    record(benchmark, vl_speedup=round(vl_speedup, 2),
           l2_speedup=round(l2_speedup, 2), combined=round(total, 2))
    # Shape: both knobs help, and they compose.
    assert vl_speedup > 1.3
    assert l2_speedup > 1.2
    assert total > max(vl_speedup, l2_speedup)
    # Monotonicity along each axis from the base point.
    times_vl = [sweep.seconds(v, 1) for v in sweep.vlens]
    assert all(a >= b for a, b in zip(times_vl, times_vl[1:]))
    times_l2 = [sweep.seconds(4096, l) for l in sweep.l2_mbs]
    assert all(a >= b for a, b in zip(times_l2, times_l2[1:]))


def test_fig3_fastpath_vs_exact(benchmark, yolo_sweep):
    """Fast-vs-exact backend on the Figure 3 grid.

    YOLOv3's working set saturates inside the swept L2 range, so under
    the fast backend's sharp Mattson criterion the largest capacities
    tie bit-for-bit and ``best()`` picks the smallest of the tied
    plateau — the assertion is therefore tie-tolerant: the exact best
    must lie on the fast backend's optimal plateau."""
    layers = yolov3_layers()
    l2s = yolo_sweep.l2_mbs
    # The unamortized baseline: one fresh exact simulation, scaled to
    # the axis length.
    t0 = time.perf_counter()
    simulate_inference("yolov3-20L", layers,
                       SystemConfig(vlen_bits=512, l2_mb=l2s[0]))
    axis_cost = (time.perf_counter() - t0) * len(l2s)
    t0 = time.perf_counter()
    exact_col = benchmark.pedantic(
        lambda: codesign_sweep("yolov3-20L", layers, vlens=(512,),
                               l2_mbs=l2s, mode="exact"),
        rounds=1, iterations=1)
    exact_seconds = time.perf_counter() - t0
    fast_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        codesign_sweep("yolov3-20L", layers, vlens=(512,), l2_mbs=l2s,
                       mode="fast")
        fast_seconds = min(fast_seconds, time.perf_counter() - t0)
    fast_full = codesign_sweep("yolov3-20L", layers,
                               vlens=yolo_sweep.vlens, l2_mbs=l2s,
                               mode="fast")
    deltas = {
        p: abs(fast_full.at(*p).total.l2_miss_rate
               - yolo_sweep.at(*p).total.l2_miss_rate)
        for p in yolo_sweep.points
    }
    max_delta = max(deltas.values())
    on_plateau = (fast_full.seconds(*yolo_sweep.best())
                  <= fast_full.seconds(*fast_full.best()) * (1 + 1e-9))
    exact_speedup = axis_cost / exact_seconds
    fast_speedup = axis_cost / fast_seconds
    print()
    print(backend_timing_report("YOLOv3 @ 512-bit", exact_seconds,
                                fast_seconds, len(l2s), max_delta,
                                on_plateau))
    record(benchmark, exact_axis_seconds=round(exact_seconds, 2),
           fast_axis_seconds=round(fast_seconds, 2),
           unamortized_axis_seconds=round(axis_cost, 2),
           exact_axis_speedup=round(exact_speedup, 2),
           fast_axis_speedup=round(fast_speedup, 2),
           max_miss_rate_delta=round(max_delta, 4),
           best_exact=list(yolo_sweep.best()),
           best_fast=list(fast_full.best()))
    for l2 in l2s:
        assert exact_col.at(512, l2) == yolo_sweep.at(512, l2)
    assert on_plateau, (fast_full.best(), yolo_sweep.best())
    # Both backends must amortize the L2 axis well past half its
    # unamortized cost, even with timer noise.
    assert exact_speedup >= 2.0, exact_speedup
    assert fast_speedup >= 2.0, fast_speedup
    assert max_delta <= MISS_RATE_BOUND
