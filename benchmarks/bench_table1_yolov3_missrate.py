"""Experiment T1 — Table 1: YOLOv3 L2 miss rate vs vector length (1 MB L2).

Paper values: 39 / 47 / 50 / 52 % for 512 / 1024 / 2048 / 4096 bits.
"""

from benchmarks.conftest import record, sweep_kwargs
from repro.codesign import PAPER_TABLE1_YOLO, codesign_sweep, miss_rate_report
from repro.nets import yolov3_layers


def _measure():
    sweep = codesign_sweep(
        "yolov3-20L", yolov3_layers(), vlens=(512, 1024, 2048, 4096),
        l2_mbs=(1,), **sweep_kwargs("table1-yolov3"),
    )
    return sweep.miss_rate_table(1)


def test_table1_yolov3_l2_miss_rate(benchmark, yolo_sweep):
    rates = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(miss_rate_report(yolo_sweep, PAPER_TABLE1_YOLO, l2_mb=1,
                           title="Table 1 — YOLOv3 L2 miss rate at 1 MB"))
    for v, r in rates.items():
        record(benchmark, **{f"miss_rate_{v}": round(100 * r, 1),
                             f"paper_{v}": PAPER_TABLE1_YOLO[v]})
    # Shape: substantial miss rates at every VLEN (the paper's 39-52%
    # band; our kernels capture more reuse — see EXPERIMENTS.md).
    assert all(0.15 < r < 0.75 for r in rates.values())
