"""Ablation A1 — constant-latency vector instructions vs throughput mode.

The paper flags its own methodological caveat (Section 4): "this fork
of gem5 models a constant latency for all the vector instructions.  In
practice, the latency of the instructions will vary with the
implementation."  This ablation quantifies how much of the VL-scaling
conclusion rests on that assumption: in ``throughput`` mode a fixed
512-bit datapath executes long vectors over multiple cycles, so the
front-end savings of longer vectors shrink to the real ones.
"""

from benchmarks.conftest import record
from repro.nets import simulate_inference, vgg16_layers
from repro.sim import CONSTANT, THROUGHPUT, SystemConfig


def _vl_speedup(mode: str) -> float:
    layers = vgg16_layers()
    times = {}
    for vlen in (512, 4096):
        cfg = SystemConfig(vlen_bits=vlen, l2_mb=1, latency_mode=mode)
        times[vlen] = simulate_inference("vgg", layers, cfg).total.seconds
    return times[512] / times[4096]


def test_a1_latency_mode(benchmark):
    speedups = benchmark.pedantic(
        lambda: {m: _vl_speedup(m) for m in (CONSTANT, THROUGHPUT)},
        rounds=1, iterations=1,
    )
    print(f"\nA1 — VGG16 VL speedup 512->4096 bits at 1 MB L2:")
    print(f"  constant-latency (the paper's fork): {speedups[CONSTANT]:.2f}x")
    print(f"  throughput (512-bit datapath):       {speedups[THROUGHPUT]:.2f}x")
    record(benchmark, constant=round(speedups[CONSTANT], 2),
           throughput=round(speedups[THROUGHPUT], 2))
    # The constant-latency assumption inflates the VL benefit: with a
    # real fixed-width datapath most of the gain disappears.
    assert speedups[CONSTANT] > speedups[THROUGHPUT]
    assert speedups[THROUGHPUT] < 1.4
