"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md).  The pytest-benchmark timings measure
the harness itself; the *reproduced quantities* (simulated cycles, miss
rates, speedups) are printed and attached to ``benchmark.extra_info``
so they land in the saved benchmark JSON.

The two network sweeps are session-scoped: Figure 3 and Table 1 share
the YOLOv3 grid, Figure 4 and Table 2 the VGG16 grid.
"""

from __future__ import annotations

import pytest

from repro.codesign import codesign_sweep
from repro.nets import vgg16_layers, yolov3_layers


@pytest.fixture(scope="session")
def yolo_sweep():
    """YOLOv3 (first 20 layers, hybrid) over the paper's full grid."""
    return codesign_sweep("yolov3-20L", yolov3_layers())


@pytest.fixture(scope="session")
def vgg_sweep():
    """VGG16 (hybrid = Winograd everywhere eligible) over the grid."""
    return codesign_sweep("vgg16", vgg16_layers())


def record(benchmark, **info) -> None:
    """Attach reproduced quantities to the benchmark record."""
    for k, v in info.items():
        benchmark.extra_info[k] = v
