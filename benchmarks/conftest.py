"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md).  The pytest-benchmark timings measure
the harness itself; the *reproduced quantities* (simulated cycles, miss
rates, speedups) are printed and attached to ``benchmark.extra_info``
so they land in the saved benchmark JSON.

The two network sweeps are session-scoped: Figure 3 and Table 1 share
the YOLOv3 grid, Figure 4 and Table 2 the VGG16 grid.  Both honour the
sweep executor's environment knobs:

- ``REPRO_SWEEP_WORKERS`` — grid points evaluated in parallel
  (default 1, the serial path; results are identical either way);
- ``REPRO_SWEEP_CHECKPOINT`` — a checkpoint directory root; each
  network sweep gets a subdirectory there and an interrupted bench run
  resumes instead of recomputing finished points;
- ``REPRO_SWEEP_TRACE`` — a trace directory root; each network sweep
  gets a subdirectory with a run ``manifest.json`` and an
  ``events.jsonl`` flight recorder of its structured event stream
  (progress ticks, checkpoint drops, pool degradation);
- ``REPRO_BENCH_BASELINE`` — a baseline-store directory (see
  :mod:`repro.obs.baseline`); every sweep point this session computes
  is recorded into a :class:`~repro.obs.BenchRecorder`, and at session
  end the lot is frozen as ``BENCH_<rev>.json`` under the current git
  revision — so a bench run leaves a trajectory point behind for
  ``repro bench compare``.
"""

from __future__ import annotations

import os

import pytest

from repro.codesign import codesign_sweep
from repro.envknobs import env_dir, env_int
from repro.nets import vgg16_layers, yolov3_layers

_bench_recorder = None


def _session_recorder():
    """The session's shared bench recorder (both network sweeps feed
    one baseline file)."""
    global _bench_recorder
    if _bench_recorder is None:
        from repro.obs import BenchRecorder

        _bench_recorder = BenchRecorder()
    return _bench_recorder


def sweep_kwargs(tag: str) -> dict:
    """Executor arguments for one named sweep, from the environment."""
    kwargs: dict = {"workers": env_int("REPRO_SWEEP_WORKERS", 1, minimum=1)}
    root = env_dir("REPRO_SWEEP_CHECKPOINT")
    if root:
        kwargs["checkpoint_dir"] = os.path.join(root, tag)
    trace_root = env_dir("REPRO_SWEEP_TRACE")
    if trace_root:
        from repro.obs import JsonlSink, run_manifest, write_manifest

        trace_dir = os.path.join(trace_root, tag)
        write_manifest(trace_dir, run_manifest(
            "bench-sweep", extra={"sweep": tag, **{
                k: str(v) for k, v in kwargs.items()}},
        ))
        kwargs["sink"] = JsonlSink(os.path.join(trace_dir, "events.jsonl"))
    if env_dir("REPRO_BENCH_BASELINE"):
        kwargs["recorder"] = _session_recorder()
    return kwargs


@pytest.fixture(scope="session", autouse=True)
def bench_baseline_session():
    """Freeze the session's recorded sweep points at teardown."""
    yield
    root = env_dir("REPRO_BENCH_BASELINE")
    if not root or _bench_recorder is None or not len(_bench_recorder):
        return
    from repro.obs import BaselineStore, baseline_payload, git_rev

    payload = baseline_payload(
        git_rev() or "untracked", _bench_recorder,
        config={"source": "benchmarks session",
                "workers": env_int("REPRO_SWEEP_WORKERS", 1, minimum=1)},
    )
    path = BaselineStore(root).save(payload)
    print(f"\nrecorded bench baseline {payload['rev']} -> {path}")


@pytest.fixture(scope="session")
def yolo_sweep():
    """YOLOv3 (first 20 layers, hybrid) over the paper's full grid."""
    return codesign_sweep("yolov3-20L", yolov3_layers(),
                          **sweep_kwargs("yolov3-20L"))


@pytest.fixture(scope="session")
def vgg_sweep():
    """VGG16 (hybrid = Winograd everywhere eligible) over the grid."""
    return codesign_sweep("vgg16", vgg16_layers(), **sweep_kwargs("vgg16"))


def record(benchmark, **info) -> None:
    """Attach reproduced quantities to the benchmark record."""
    for k, v in info.items():
        benchmark.extra_info[k] = v
