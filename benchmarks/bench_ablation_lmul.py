"""Ablation A7 — LMUL register grouping vs hardware vector length.

Long vectors cut dynamic instruction counts (the paper's front-end
argument); RVV's LMUL reaches the same count reduction by ganging
registers on a fixed-VLEN machine.  This ablation runs the streaming
axpy kernel across (VLEN, LMUL) and compares simulated cycles: under
the constant-latency model the two levers are nearly equivalent for
compute, while cache behavior stays VLEN-agnostic for streaming.
"""

from benchmarks.conftest import record
from repro.kernels.streaming import axpy_kernel
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig

N = 1 << 16  # 64k elements = 256 kB per operand


def _cycles(vlen: int, lmul: int) -> tuple[float, int]:
    m = RvvMachine(vlen, memory=Memory(1 << 22), tracer=Tracer(capture=True))
    x = m.memory.alloc_f32(N)
    y = m.memory.alloc_f32(N)
    axpy_kernel(m, 2.0, x, y, N, lmul=lmul)
    stats = Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer)
    return stats.cycles, stats.total_instrs


def test_a7_lmul_vs_vlen(benchmark):
    def measure():
        return {
            ("512b", 1): _cycles(512, 1),
            ("512b", 4): _cycles(512, 4),
            ("512b", 8): _cycles(512, 8),
            ("2048b", 1): _cycles(2048, 1),
            ("4096b", 1): _cycles(4096, 1),
        }

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nA7 — axpy (64k elements): LMUL grouping vs longer VLEN:")
    print(f"{'config':>14}{'instructions':>14}{'cycles':>12}")
    for (vlen, lmul), (cyc, instr) in table.items():
        print(f"{vlen:>9}/m{lmul:<3}{instr:>14}{cyc:>12.0f}")
        record(benchmark, **{f"{vlen}_m{lmul}_cycles": cyc})
    # 512-bit LMUL=4 issues the same dynamic instruction count as a
    # 2048-bit LMUL=1 machine (the equivalence the ISA design intends).
    assert table[("512b", 4)][1] == table[("2048b", 1)][1]
    assert table[("512b", 8)][1] == table[("4096b", 1)][1]
    # And grouping cuts cycles on the fixed 512-bit machine.
    assert table[("512b", 8)][0] < table[("512b", 1)][0]
