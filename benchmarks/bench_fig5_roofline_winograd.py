"""Experiment F5 — Figure 5: roofline, first 10 VGG16 layers, Winograd.

Paper: on the 512-bit / 1 MB configuration (64 GFLOP/s peak, 13 GB/s),
all ten layers are memory-bound and sit far below the bandwidth
ceiling ("scope for further improvement ... cache-aware optimizations").
"""

from benchmarks.conftest import record
from repro.conv import ConvAlgorithm
from repro.nets import vgg16_conv_layers
from repro.roofline import render_roofline, roofline_points
from repro.sim import SystemConfig


def _measure():
    return roofline_points(
        vgg16_conv_layers()[:10], SystemConfig(), ConvAlgorithm.WINOGRAD
    )


def test_fig5_roofline_winograd(benchmark):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(render_roofline(points, "Figure 5 — VGG16 Winograd @ 512-bit/1 MB"))
    mem_bound = sum(1 for p in points if p.memory_bound)
    record(
        benchmark,
        memory_bound_layers=mem_bound,
        paper_memory_bound_layers=10,
        mean_efficiency=round(
            sum(p.efficiency for p in points) / len(points), 3
        ),
    )
    # Shape: the majority (and every early layer) memory-bound; every
    # layer far below its ceiling.
    assert mem_bound >= 6
    assert all(p.memory_bound for p in points[:4])
    assert all(p.efficiency < 0.6 for p in points)
