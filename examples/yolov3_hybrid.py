#!/usr/bin/env python3
"""Reproduce the paper's YOLOv3 hybrid-approach study (Fig. 3, Table 1).

The first 20 layers of YOLOv3 mix layer shapes, so only 5 of the 15
convolutions can use Winograd (3 are strided, 6 are 1x1, the first has
just 3 input channels); the paper's *hybrid approach* runs those with
the optimized Winograd kernels and everything else with im2col+GEMM,
gaining ~8% over the pure-GEMM baseline at 2048-bit/1 MB, ~1.76x from
growing the vector length to 4096 bits, and up to ~1.6x more from a
256 MB L2.

Run:  python examples/yolov3_hybrid.py [--quick]
"""

import argparse

from repro.codesign import (
    PAPER_HEADLINES,
    PAPER_TABLE1_YOLO,
    Comparison,
    codesign_sweep,
    comparison_table,
    miss_rate_report,
    runtime_figure,
)
from repro.conv import ConvLayerSpec
from repro.nets import (
    simulate_inference,
    winograd_layer_count,
    yolov3_layers,
)
from repro.sim import SystemConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    layers = yolov3_layers()
    convs = [l for l in layers if isinstance(l, ConvLayerSpec)]
    print("YOLOv3, first 20 layers at 768x576 (as the paper):")
    print(f"  convolutional layers : {len(convs)}   (paper: 15)")
    print(f"  stride-2 layers      : {sum(1 for c in convs if c.stride == 2)}"
          f"   (paper: 3)")
    print(f"  1x1 layers           : {sum(1 for c in convs if c.ksize == 1)}"
          f"   (paper: 6)")
    print(f"  Winograd-eligible    : {winograd_layer_count(layers)}   (paper: 5)")

    # The hybrid headline at the paper's comparison point.
    cfg = SystemConfig(vlen_bits=2048, l2_mb=1)
    hybrid = simulate_inference("hybrid", layers, cfg, hybrid=True)
    pure = simulate_inference("pure-gemm", layers, cfg, hybrid=False)
    print()
    print(comparison_table(
        [Comparison("hybrid vs pure im2col+GEMM @ 2048-bit/1 MB",
                    PAPER_HEADLINES["yolo_hybrid_vs_gemm"],
                    pure.cycles / hybrid.cycles)],
        "the hybrid approach:",
    ))

    # The co-design sweep.
    if args.quick:
        vlens, l2s = (512, 4096), (1, 256)
    else:
        vlens, l2s = (512, 1024, 2048, 4096), (1, 16, 64, 128, 256)
    print(f"\nSweeping VLEN {vlens} x L2 {l2s} MB ...")
    sweep = codesign_sweep("yolov3-20L", layers, vlens=vlens, l2_mbs=l2s)
    print()
    print(runtime_figure(sweep, "Figure 3 — YOLOv3 runtime over the grid"))
    print()
    print(miss_rate_report(sweep, PAPER_TABLE1_YOLO, l2_mb=1,
                           title="Table 1 — YOLOv3 L2 miss rate at 1 MB"))
    comps = [
        Comparison("VL speedup 512->4096 @ 1 MB",
                   PAPER_HEADLINES["yolo_vl_speedup_512_to_4096"],
                   sweep.speedup(4096, 1)),
        Comparison("L2 speedup 1->256 MB @ 4096-bit",
                   PAPER_HEADLINES["yolo_l2_speedup_1_to_256mb"],
                   sweep.seconds(4096, 1) / sweep.seconds(4096, max(l2s))),
        Comparison("combined", 2.6, sweep.speedup(4096, max(l2s))),
    ]
    print()
    print(comparison_table(comps, "headline conclusions (paper vs measured):"))


if __name__ == "__main__":
    main()
