#!/usr/bin/env python3
"""The paper's Section 3 kernel-level findings, reproduced end to end.

1. Tuple multiplication: the slideup workaround (Algorithm 2) vs the
   indexed-load implementation (Algorithm 1) — the paper measures the
   slideup variant ~2.3x faster.
2. The 4-vector transpose: indexed (Algorithm 3) vs strided
   (Algorithm 4) — the paper finds no significant difference.
3. Register pressure: the transform kernels' open-coded instruction
   sequences stay inside the 32-register architectural file (the
   paper's vector-pointer programmability complaint).

Run:  python examples/kernel_microbench.py
"""

import numpy as np

from repro.kernels import (
    INDEXED,
    SLIDEUP,
    SLIDEUP_LOG,
    WinogradBuffers,
    WinogradGeometry,
    filter_transform,
    input_transform,
    transpose4_indexed,
    transpose4_strided,
    tuple_multiplication,
)
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig


def tuple_mult_cycles(variant: str, vlen: int = 512) -> float:
    geom = WinogradGeometry(c_in=16, h=26, w=26, c_out=16, pad=1,
                            vlen_elems=vlen // 32)
    m = RvvMachine(vlen, memory=Memory(1 << 27), tracer=Tracer(capture=True))
    bufs = WinogradBuffers.allocate(m, geom)
    rng = np.random.default_rng(0)
    bufs.load_input(m, geom, rng.standard_normal((16, 26, 26)).astype(np.float32))
    bufs.load_weights(m, geom,
                      rng.standard_normal((16, 16, 3, 3)).astype(np.float32))
    filter_transform(m, geom, bufs)
    input_transform(m, geom, bufs)
    m.tracer.reset()
    tuple_multiplication(m, geom, bufs, variant=variant)
    return Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer).cycles


def transpose_cycles(variant: str, vlen: int = 512, reps: int = 100) -> float:
    m = RvvMachine(vlen, memory=Memory(1 << 24), tracer=Tracer(capture=True))
    vl = m.setvl(vlen // 32)
    buf = m.memory.alloc_f32(8 * vl)
    with m.alloc.scoped(9) as regs:
        src, dst, idx = regs[:4], regs[4:8], regs[8]
        for r in range(4):
            m.write_f32(src[r], np.arange(vl, dtype=np.float32))
        m.tracer.reset()
        for _ in range(reps):
            if variant == "indexed":
                transpose4_indexed(m, src, dst, buf, idx)
            else:
                transpose4_strided(m, src, dst, buf)
    return Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer).cycles


def main() -> None:
    print("1. Tuple multiplication — quad replication workarounds")
    print(f"{'VLEN':>8}{'indexed':>12}{'slideup':>12}{'slideup-log2':>14}"
          f"{'idx/slide':>11}")
    for vlen in (512, 1024, 2048, 4096):
        c = {v: tuple_mult_cycles(v, vlen)
             for v in (INDEXED, SLIDEUP, SLIDEUP_LOG)}
        print(f"{vlen:>8}{c[INDEXED]:>12.0f}{c[SLIDEUP]:>12.0f}"
              f"{c[SLIDEUP_LOG]:>14.0f}{c[INDEXED] / c[SLIDEUP]:>10.2f}x")
    print("   (paper: slideup ~2.3x faster than indexed at its setup)")

    print("\n2. Transpose — Algorithm 3 (indexed) vs Algorithm 4 (strided)")
    print(f"{'VLEN':>8}{'indexed':>12}{'strided':>12}{'ratio':>9}")
    for vlen in (512, 1024, 2048):
        ci = transpose_cycles("indexed", vlen)
        cs = transpose_cycles("strided", vlen)
        print(f"{vlen:>8}{ci:>12.0f}{cs:>12.0f}{ci / cs:>8.2f}x")
    print("   (paper: no significant difference — both bounce through memory)")

    print("\n3. Register pressure of the full pipeline")
    m = RvvMachine(512, memory=Memory(1 << 26))
    from repro.kernels import winograd_conv2d_sim

    winograd_conv2d_sim(
        m,
        np.zeros((8, 14, 14), dtype=np.float32),
        np.zeros((8, 8, 3, 3), dtype=np.float32),
        pad=1,
    )
    print(f"   high-water mark: {m.alloc.high_water} of 32 architectural "
          f"vector registers (no spilling)")


if __name__ == "__main__":
    main()
