#!/usr/bin/env python3
"""Reproduce the paper's VGG16 co-design study (Figure 4 + Table 2).

Sweeps the two hardware knobs of the paper's gem5 exploration — vector
length (512-4096 bits) and L2 capacity (1-256 MB) — over a full VGG16
inference at the paper's 768x576 input, prints the runtime grid, the
Table 2 miss-rate comparison, and the paper's headline conclusions:

- Winograd benefits from vector lengths up to 2048 bits (~1.4x) but
  not beyond;
- Winograd scales with L2 up to 64 MB (~1.3x) but needs no more;
- Winograd beats im2col+GEMM (~1.2x at 2048-bit / 1 MB).

Run:  python examples/vgg16_codesign.py          (full grid, ~2-4 min)
      python examples/vgg16_codesign.py --quick  (reduced grid)
"""

import argparse

from repro.codesign import (
    PAPER_HEADLINES,
    PAPER_TABLE2_VGG,
    Comparison,
    codesign_sweep,
    comparison_table,
    miss_rate_report,
    runtime_figure,
)
from repro.nets import simulate_inference, vgg16_layers
from repro.sim import SystemConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid (2 VLENs x 2 L2 sizes)")
    args = parser.parse_args()

    layers = vgg16_layers()
    if args.quick:
        vlens, l2s = (512, 2048), (1, 64)
    else:
        vlens, l2s = (512, 1024, 2048, 4096), (1, 16, 64, 128, 256)

    print(f"Sweeping VGG16 over VLEN {vlens} x L2 {l2s} MB ...")
    sweep = codesign_sweep("vgg16", layers, vlens=vlens, l2_mbs=l2s)

    print()
    print(runtime_figure(sweep, "Figure 4 — VGG16 runtime over the grid"))
    print()
    print(miss_rate_report(sweep, PAPER_TABLE2_VGG, l2_mb=1,
                           title="Table 2 — VGG16 L2 miss rate at 1 MB"))

    # Headline comparisons.
    comps = []
    if 2048 in vlens:
        comps.append(Comparison(
            "VL speedup 512->2048 bits @ 1 MB",
            PAPER_HEADLINES["vgg_vl_speedup_512_to_2048"],
            sweep.speedup(2048, 1),
        ))
    if 64 in l2s:
        comps.append(Comparison(
            "L2 speedup 1->64 MB @ 512-bit",
            PAPER_HEADLINES["vgg_l2_speedup_1_to_64mb"],
            sweep.seconds(512, 1) / sweep.seconds(512, 64),
        ))
    cfg = SystemConfig(vlen_bits=2048, l2_mb=1)
    wino = simulate_inference("vgg-wino", layers, cfg, hybrid=True)
    gemm = simulate_inference("vgg-gemm", layers, cfg, hybrid=False)
    comps.append(Comparison(
        "Winograd vs im2col+GEMM @ 2048-bit/1 MB",
        PAPER_HEADLINES["vgg_winograd_vs_gemm"],
        gemm.cycles / wino.cycles,
    ))
    print()
    print(comparison_table(comps, "headline conclusions (paper vs measured):"))
    best_v, best_l = sweep.best()
    print(f"\nfastest configuration on the grid: {best_v}-bit / {best_l} MB "
          f"({1e3 * sweep.seconds(best_v, best_l):.0f} ms per inference)")


if __name__ == "__main__":
    main()
