#!/usr/bin/env python3
"""RISC-VV vs ARM-SVE: the paper's cross-ISA validation (Section 5).

The kernels in this package are single-source across the two ISAs —
the vector-length-agnostic style the paper advocates.  The SVE machine
executes the same Winograd pipeline with SVE's vocabulary: ``whilelt``
predicates instead of ``vsetvl``, gathers instead of (missing) strided
memory operations, ``EXT`` instead of ``vslideup``.  The paper finds
"similar performance and performance trends on both".

Run:  python examples/sve_comparison.py
"""

import numpy as np

from repro.isa import OpClass
from repro.kernels import winograd_conv2d_sim
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig
from repro.sve import SveMachine


def run(machine_cls, vlen: int):
    m = machine_cls(vlen, memory=Memory(1 << 27), tracer=Tracer(capture=True))
    rng = np.random.default_rng(3)
    x = rng.standard_normal((12, 26, 26)).astype(np.float32)
    w = rng.standard_normal((12, 12, 3, 3)).astype(np.float32)
    out = winograd_conv2d_sim(m, x, w, pad=1)
    stats = Simulator(SystemConfig(vlen_bits=vlen)).run_trace(m.tracer)
    return out, m.tracer, stats


def main() -> None:
    print("Winograd convolution (12ch -> 12ch, 26x26), both ISAs:\n")
    results = {}
    for vlen in (512, 1024, 2048):
        rvv_out, rvv_tr, rvv = run(RvvMachine, vlen)
        sve_out, sve_tr, sve = run(SveMachine, vlen)
        assert np.array_equal(rvv_out, sve_out), "results must be identical"
        results[vlen] = (rvv, sve)
        print(f"VLEN {vlen:>5}: RVV {rvv.cycles:>10.0f} cycles | "
              f"SVE {sve.cycles:>10.0f} cycles | "
              f"SVE/RVV = {sve.cycles / rvv.cycles:.2f}x  (results identical)")

    r512 = results[512]
    r2048 = results[2048]
    print(f"\nVL-scaling trend 512->2048: "
          f"RVV {r512[0].cycles / r2048[0].cycles:.2f}x, "
          f"SVE {r512[1].cycles / r2048[1].cycles:.2f}x "
          f"(the paper: identical trends)")

    # Where the ISAs differ: the instruction mix.
    _, rvv_tr, _ = run(RvvMachine, 512)
    _, sve_tr, _ = run(SveMachine, 512)
    print("\nInstruction-mix differences at 512-bit (per full pipeline):")
    keys = [
        (OpClass.VSETVL, "vsetvl (RVV strip-mining)"),
        (OpClass.VMASK, "whilelt (SVE predication)"),
        (OpClass.VLOAD_STRIDED, "strided loads (RVV only)"),
        (OpClass.VLOAD_INDEXED, "gathers (SVE substitutes strided)"),
        (OpClass.VSLIDE, "slides / EXT"),
    ]
    print(f"{'class':<36}{'RVV':>10}{'SVE':>10}")
    for op, label in keys:
        print(f"{label:<36}"
              f"{rvv_tr.by_class.get(op).instrs if op in rvv_tr.by_class else 0:>10}"
              f"{sve_tr.by_class.get(op).instrs if op in sve_tr.by_class else 0:>10}")


if __name__ == "__main__":
    main()
