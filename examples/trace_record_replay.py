#!/usr/bin/env python3
"""Record once, replay everywhere — the Vehave/MUSA workflow.

The paper's tools discussion (Section 7) describes BSC's flow where
Vehave records execution traces that the MUSA simulator replays for
performance exploration.  This example does the same with this
package: run a vectorized Winograd convolution once on the functional
machine, save its instruction trace to disk, reload it, and replay it
through the timing model under several hardware configurations —
without re-executing a single kernel instruction.

Run:  python examples/trace_record_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.kernels import winograd_conv2d_sim
from repro.rvv import Memory, RvvMachine, Tracer, load_trace, save_trace
from repro.sim import Simulator, SystemConfig


def main() -> None:
    # 1. Record: one functional execution with full trace capture.
    machine = RvvMachine(
        vlen_bits=1024,
        memory=Memory(1 << 27),
        tracer=Tracer(capture=True),
    )
    rng = np.random.default_rng(11)
    x = rng.standard_normal((12, 26, 26)).astype(np.float32)
    w = rng.standard_normal((8, 12, 3, 3)).astype(np.float32)
    winograd_conv2d_sim(machine, x, w, pad=1)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "winograd-1024b.trace"
        n = save_trace(machine.tracer, path)
        size_kb = path.stat().st_size / 1024
        print(f"recorded {n} instructions -> {path.name} ({size_kb:.0f} kB)")

        # 2. Replay under different memory systems (no re-execution).
        trace = load_trace(path)
        print(f"\n{'configuration':<34}{'cycles':>12}{'L2 miss':>9}{'ms':>8}")
        for l2_mb in (1, 4, 16):
            for l1_kb in (32, 64):
                cfg = SystemConfig(vlen_bits=1024, l2_mb=l2_mb, l1_kb=l1_kb)
                stats = Simulator(cfg).run_trace(trace)
                print(
                    f"L1={l1_kb:>3} kB, L2={l2_mb:>3} MB            "
                    f"{stats.cycles:>12.0f}{100 * stats.l2_miss_rate:>8.1f}%"
                    f"{1e3 * stats.seconds:>8.3f}"
                )

        # 3. Sanity: the replayed trace carries identical statistics.
        assert trace.counts() == machine.tracer.counts()
        print("\nreplayed instruction counts identical to the recording.")


if __name__ == "__main__":
    main()
