#!/usr/bin/env python3
"""Quickstart: run a Winograd convolution on the simulated RVV machine.

This walks the full public API surface in one page:

1. build a functional RISC-V Vector machine (the "Spike" role),
2. run a real vectorized Winograd convolution on it, instruction by
   instruction, and validate the result against a direct convolution,
3. replay the captured instruction trace through the timing model (the
   "gem5" role) on the paper's base configuration, and
4. print the performance counters the paper's study is built on.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.conv import direct_conv2d
from repro.kernels import winograd_conv2d_sim
from repro.rvv import Memory, RvvMachine, Tracer
from repro.sim import Simulator, SystemConfig


def main() -> None:
    # A small convolutional layer: 8 input channels, 6 output channels.
    rng = np.random.default_rng(42)
    x = rng.standard_normal((8, 20, 20)).astype(np.float32)
    weights = rng.standard_normal((6, 8, 3, 3)).astype(np.float32)

    # 1. A 512-bit RVV machine with trace capture.
    machine = RvvMachine(
        vlen_bits=512,
        memory=Memory(size_bytes=1 << 26),
        tracer=Tracer(capture=True),
    )

    # 2. The full vectorized pipeline: filter transform, input
    #    transform, tuple multiplication (slideup variant), output
    #    transform — every instruction executed architecturally.
    out = winograd_conv2d_sim(machine, x, weights, pad=1)
    ref = direct_conv2d(x.astype(np.float64), weights.astype(np.float64), pad=1)
    err = float(np.max(np.abs(out - ref)))
    print(f"Winograd vs direct convolution: max abs error = {err:.2e}")
    assert err < 1e-2

    print("\nDynamic instruction mix (functional machine):")
    print(machine.tracer.summary())

    # 3. Replay the trace on the paper's base system configuration:
    #    2 GHz in-order core, 64 kB L1, 1 MB L2, 13 GB/s DRAM.
    config = SystemConfig()  # 512-bit VLEN, the paper's base point
    stats = Simulator(config).run_trace(machine.tracer, label="quickstart")

    # 4. The counters the co-design study reads.
    print(f"\nTiming model ({config.describe()}):")
    print(stats.report())


if __name__ == "__main__":
    main()
