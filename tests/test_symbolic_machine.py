"""Abstract-vs-concrete equivalence of the symbolic interpreter.

The static audit's claim is not "approximately the same program" — it
is that abstract interpretation at a symbolic VLEN records *the very
trace* a concrete capture run would have recorded.  These tests
materialize the parametric program of the regime covering a concrete
VLEN, collapse every symbolic value at that domain point, and compare
it field-by-field (mnemonics, operands, configuration state, memory
footprints, sequence stamps) against an actual execute-and-lift run.
They also pin the compact trace encoding itself: interning really
compresses, ``instr_at`` agrees with full materialization, and
``stats_at`` reproduces a concrete counts-only tracer bit-exactly.
"""

import numpy as np
import pytest

from repro.analysis import find_spec
from repro.analysis.audit import MACHINE_FLAVORS, _lift_run
from repro.analysis.symbolic import interpret_kernel
from repro.analysis.symbolic.core import SymInt
from repro.rvv import Memory, Tracer

#: (kernel, flavor, concrete VLEN) triples covering every access shape:
#: unit/strided/indexed memory, slides, gathers, LMUL>1 groups, whilelt
#: configuration, and the rvv+ tuple ISA extension.
CASES = [
    ("gemm", "rvv", 512),
    ("gemm", "sve", 4096),
    ("im2col", "rvv", 1024),
    ("transpose4/indexed", "rvv", 512),
    ("transpose4/native", "rvv+", 2048),
    ("tuple_mult/slideup", "rvv", 2048),
    ("streaming/axpy@lmul2", "rvv", 512),
    ("winograd/input_transform", "sve", 1024),
]


def _static_program(spec, flavor, vlen):
    audit = interpret_kernel(spec, flavor)
    rg = audit.regime_of(vlen)
    return rg, rg.program, rg.point_index(vlen)


def _val(ctx, pi, x):
    if x is None:
        return None
    if isinstance(x, SymInt):
        return ctx.value_at(x, pi)
    return int(x)


def _assert_same_instr(ctx, pi, sym, conc, where):
    assert sym.opclass is conc.opclass, where
    assert sym.lmul == conc.lmul, where
    assert sym.event.eew == conc.event.eew, where
    assert _val(ctx, pi, sym.event.elems) == conc.event.elems, where
    assert _val(ctx, pi, sym.vl) == conc.vl, where
    assert sym.sew == conc.sew, where
    assert sym.cfg_lmul == conc.cfg_lmul, where
    so, co = sym.ops, conc.ops
    assert (so is None) == (co is None), where
    if so is not None:
        assert so.mnemonic == co.mnemonic, where
        assert so.vd == co.vd and so.vs == co.vs, where
        assert so.vidx == co.vidx and so.merges == co.merges, where
        assert _val(ctx, pi, so.imm) == co.imm, where
        assert _val(ctx, pi, so.avl) == co.avl, where
    sm, cm = sym.mem, conc.mem
    assert (sm is None) == (cm is None), where
    if sm is not None:
        assert sm.kind == cm.kind and sm.is_load == cm.is_load, where
        assert sm.ebytes == cm.ebytes, where
        assert _val(ctx, pi, sm.base) == cm.base, where
        assert _val(ctx, pi, sm.elems) == cm.elems, where
        assert _val(ctx, pi, sm.stride) == cm.stride, where
        assert sm.seq == cm.seq, where
        if cm.offsets is not None:
            assert sm.sym_offsets is not None, where
            np.testing.assert_array_equal(
                sm.sym_offsets.at(pi), np.asarray(cm.offsets), err_msg=where)


@pytest.mark.parametrize("kernel,flavor,vlen", CASES)
def test_abstract_trace_is_bit_identical_to_concrete(kernel, flavor, vlen):
    spec = find_spec(kernel)
    concrete = _lift_run(spec, flavor, vlen)
    rg, program, pi = _static_program(spec, flavor, vlen)
    ctx = rg.ctx
    assert len(program) == len(concrete), (
        f"{kernel}[{flavor}]@{vlen}: {len(program)} abstract instrs vs "
        f"{len(concrete)} concrete")
    for sym, conc in zip(program, concrete):
        _assert_same_instr(
            ctx, pi, sym, conc,
            f"{kernel}[{flavor}]@{vlen} instr {conc.index}: "
            f"{conc.disasm()}")
    # The declared memory extents match label-for-label and byte-for-byte.
    assert [(e.label, _val(ctx, pi, e.base), _val(ctx, pi, e.size))
            for e in program.extents] == \
           [(e.label, e.base, e.size) for e in concrete.extents]


@pytest.mark.parametrize("kernel,flavor,vlen", [
    ("gemm", "rvv", 512),
    ("streaming/dot", "sve", 2048),
    ("tuple_mult/native", "rvv+", 8192),
])
def test_stats_fold_matches_concrete_counts_only_tracer(kernel, flavor, vlen):
    spec = find_spec(kernel)
    machine = MACHINE_FLAVORS[flavor](
        vlen, memory=Memory(1 << 26), tracer=Tracer(capture=False))
    spec.run(machine)
    rg, _, pi = None, None, None
    audit = interpret_kernel(spec, flavor)
    rg = audit.regime_of(vlen)
    stats = rg.strace.stats_at(rg.point_index(vlen))
    assert set(stats) == set(machine.tracer.by_class)
    for opclass, actual in machine.tracer.by_class.items():
        predicted = stats[opclass]
        for m in ("instrs", "elems", "flops", "bytes_loaded", "bytes_stored"):
            assert getattr(predicted, m) == getattr(actual, m), (
                f"{kernel}[{flavor}]@{vlen} {opclass.value}.{m}")


def test_interning_compresses_the_stream():
    """The compact encoding is the speed story: sigs << dynamic ops."""
    audit = interpret_kernel(find_spec("gemm"), "rvv")
    for rg in audit.regimes:
        n_ops = len(rg.strace)
        n_sigs = len(rg.strace.sigs)
        assert n_sigs < n_ops / 2, (
            f"interning should fold loop iterations: {n_sigs} sigs for "
            f"{n_ops} dynamic ops")


def test_instr_at_agrees_with_full_materialization():
    audit = interpret_kernel(find_spec("streaming/axpy"), "rvv")
    rg = audit.regimes[0]
    program = rg.program
    for pos in {0, 1, len(program) // 2, len(program) - 1}:
        single = rg.strace.instr_at(pos)
        full = program[pos]
        assert single.index == full.index == pos
        assert single.disasm() == full.disasm()
        assert single.vl is full.vl and single.sew == full.sew


def test_interpretation_never_touches_registers_or_memory(monkeypatch):
    """Zero-execution guarantee: no register file, no concrete memory."""
    def boom(*a, **k):
        raise AssertionError("static path constructed concrete state")

    monkeypatch.setattr("repro.rvv.registers.VRegFile.__init__", boom)
    monkeypatch.setattr("repro.rvv.memory.Memory.__init__", boom)
    for kernel, flavor in [("gemm", "rvv"), ("gemm", "sve"),
                           ("tuple_mult/native", "rvv+")]:
        audit = interpret_kernel(find_spec(kernel), flavor)
        assert audit.regimes, f"{kernel}[{flavor}] produced no regimes"


def test_regimes_partition_the_domain():
    audit = interpret_kernel(find_spec("gemm"), "rvv")
    seen = [v for rg in audit.regimes for v in rg.vlens]
    assert sorted(seen) == sorted(set(seen)), "regimes must not overlap"
    assert sorted(seen + list(audit.unsupported)) == list(audit.domain)
    # Different regimes really are structurally different programs.
    lengths = {rg.vlens: len(rg.strace) for rg in audit.regimes}
    assert len(set(lengths.values())) > 1, (
        f"gemm strip-mines, so instruction counts must vary: {lengths}")


def test_unsupported_vlens_record_the_refusal():
    """Winograd's geometry check rejects tiny VLENs; that is a verdict,
    not a crash, and the reason string names the exception."""
    audit = interpret_kernel(find_spec("tuple_mult/slideup"), "rvv")
    assert audit.unsupported, "expected small VLENs to be rejected"
    for vlen, reason in audit.unsupported.items():
        assert vlen not in audit.supported_vlens
        assert ":" in reason  # "ExceptionName: message"
