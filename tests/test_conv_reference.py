"""Tests for reference convolutions and the hybrid algorithm policy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import (
    ConvAlgorithm,
    ConvLayerSpec,
    choose_algorithm,
    conv_out_size,
    direct_conv2d,
    im2col,
    im2col_gemm_conv2d,
    run_layer,
)
from repro.errors import ConfigError


class TestDirectConv:
    def test_identity_filter(self):
        x = np.arange(2 * 5 * 5, dtype=np.float64).reshape(2, 5, 5)
        w = np.zeros((2, 2, 1, 1))
        w[0, 0, 0, 0] = 1.0
        w[1, 1, 0, 0] = 1.0
        np.testing.assert_array_equal(direct_conv2d(x, w), x)

    def test_known_3x3(self):
        x = np.zeros((1, 3, 3))
        x[0, 1, 1] = 1.0
        w = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        out = direct_conv2d(x, w, pad=1)
        # Cross-correlation of a unit impulse yields the flipped kernel.
        np.testing.assert_array_equal(out[0], w[0, 0, ::-1, ::-1])

    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 1)])
    def test_output_shape(self, stride, pad):
        x = np.zeros((3, 17, 23))
        w = np.zeros((5, 3, 3, 3))
        out = direct_conv2d(x, w, stride=stride, pad=pad)
        assert out.shape == (
            5,
            conv_out_size(17, 3, stride, pad),
            conv_out_size(23, 3, stride, pad),
        )

    def test_channel_mismatch(self):
        with pytest.raises(ConfigError):
            direct_conv2d(np.zeros((2, 5, 5)), np.zeros((1, 3, 3, 3)))

    def test_too_large_filter(self):
        with pytest.raises(ConfigError):
            direct_conv2d(np.zeros((1, 3, 3)), np.zeros((1, 1, 5, 5)))


class TestIm2col:
    def test_matrix_shape(self):
        x = np.zeros((3, 10, 12))
        cols = im2col(x, 3, 3, stride=1, pad=1)
        assert cols.shape == (27, 120)

    def test_1x1_is_reshape(self):
        x = np.arange(2 * 3 * 4, dtype=np.float64).reshape(2, 3, 4)
        cols = im2col(x, 1, 1)
        np.testing.assert_array_equal(cols, x.reshape(2, 12))

    def test_column_content(self):
        """Each column must hold the receptive field of one output pixel."""
        x = np.arange(1 * 4 * 4, dtype=np.float64).reshape(1, 4, 4)
        cols = im2col(x, 3, 3, stride=1, pad=0)
        # Output (0,0): rows of the 3x3 patch at origin, row-major.
        np.testing.assert_array_equal(
            cols[:, 0], x[0, :3, :3].ravel()
        )
        # Output (1,1) is column index 1*2+1 = 3 (h_out = w_out = 2).
        np.testing.assert_array_equal(cols[:, 3], x[0, 1:4, 1:4].ravel())

    @given(
        seed=st.integers(0, 10**6),
        c=st.integers(1, 4),
        k=st.integers(1, 5),
        ksize=st.sampled_from([1, 3, 5]),
        stride=st.integers(1, 3),
        pad=st.integers(0, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_im2col_gemm_equals_direct(self, seed, c, k, ksize, stride, pad):
        rng = np.random.default_rng(seed)
        h, w = rng.integers(ksize, 16, size=2)
        x = rng.standard_normal((c, int(h), int(w)))
        wts = rng.standard_normal((k, c, ksize, ksize))
        got = im2col_gemm_conv2d(x, wts, stride=stride, pad=pad)
        ref = direct_conv2d(x, wts, stride=stride, pad=pad)
        np.testing.assert_allclose(got, ref, atol=1e-10)


class TestAlgorithmPolicy:
    def spec(self, **kw):
        base = dict(name="l", c_in=64, h_in=56, w_in=56, c_out=64, ksize=3, stride=1, pad=1)
        base.update(kw)
        return ConvLayerSpec(**base)

    def test_3x3_stride1_uses_winograd(self):
        assert choose_algorithm(self.spec()) is ConvAlgorithm.WINOGRAD

    def test_1x1_uses_gemm(self):
        assert choose_algorithm(self.spec(ksize=1, pad=0)) is ConvAlgorithm.IM2COL_GEMM

    def test_stride2_uses_gemm(self):
        assert choose_algorithm(self.spec(stride=2)) is ConvAlgorithm.IM2COL_GEMM

    def test_three_channel_first_layer_uses_gemm(self):
        """The paper excludes YOLOv3's 3-channel first layer from Winograd."""
        assert choose_algorithm(self.spec(c_in=3)) is ConvAlgorithm.IM2COL_GEMM

    def test_pure_gemm_mode(self):
        assert choose_algorithm(self.spec(), hybrid=False) is ConvAlgorithm.IM2COL_GEMM

    def test_flops_formula(self):
        s = self.spec(c_in=2, c_out=4, h_in=8, w_in=8, ksize=3, pad=1)
        # 2 * K*H*W * C*3*3 = 2*4*8*8*2*9
        assert s.flops == 2 * 4 * 8 * 8 * 2 * 9

    def test_run_layer_winograd_matches_direct(self):
        rng = np.random.default_rng(11)
        s = self.spec(c_in=4, c_out=3, h_in=12, w_in=14)
        x = rng.standard_normal((4, 12, 14)).astype(np.float32)
        w = rng.standard_normal((3, 4, 3, 3)).astype(np.float32)
        got = run_layer(s, x, w)
        ref = direct_conv2d(x.astype(np.float64), w.astype(np.float64), pad=1)
        np.testing.assert_allclose(got, ref, atol=1e-3)

    def test_run_layer_validates_shapes(self):
        s = self.spec()
        with pytest.raises(ConfigError):
            run_layer(s, np.zeros((1, 2, 3)), np.zeros((64, 64, 3, 3)))

    def test_winograd_on_strided_layer_rejected(self):
        s = self.spec(stride=2)
        x = np.zeros((s.c_in, s.h_in, s.w_in), dtype=np.float32)
        w = np.zeros((s.c_out, s.c_in, 3, 3), dtype=np.float32)
        with pytest.raises(ConfigError):
            run_layer(s, x, w, algorithm=ConvAlgorithm.WINOGRAD)
