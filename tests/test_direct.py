"""Tests for the direct 1x1 convolution kernel and its model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import ConvAlgorithm, ConvLayerSpec, choose_algorithm, direct_conv2d
from repro.errors import ConfigError
from repro.kernels import (
    Direct1x1Buffers,
    Direct1x1Geometry,
    direct1x1_kernel,
    direct_conv1x1_sim,
)
from repro.model import direct1x1_model, simulate_layer
from repro.rvv import Memory, RvvMachine, Tracer, assert_counts_match
from repro.sim import SystemConfig


def machine(vlen=512):
    return RvvMachine(vlen, memory=Memory(1 << 25), tracer=Tracer())


RNG = np.random.default_rng(99)


class TestGeometry:
    def test_output_size(self):
        g = Direct1x1Geometry(c_in=4, h=10, w=12, c_out=8, stride=2, vlen_elems=16)
        assert (g.h_out, g.w_out) == (5, 6)
        assert g.k_blocks == 1

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            Direct1x1Geometry(c_in=0, h=10, w=10, c_out=8, stride=1, vlen_elems=16)


class TestKernel:
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("c,k,h,w", [(3, 5, 9, 11), (8, 16, 12, 20), (16, 4, 7, 33)])
    def test_matches_direct_reference(self, c, k, h, w, stride):
        x = RNG.standard_normal((c, h, w)).astype(np.float32)
        wt = RNG.standard_normal((k, c, 1, 1)).astype(np.float32)
        got = direct_conv1x1_sim(machine(), x, wt, stride=stride)
        ref = direct_conv2d(
            x.astype(np.float64), wt.astype(np.float64), stride=stride, pad=0
        )
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)

    def test_bad_filter_shape(self):
        with pytest.raises(ConfigError):
            direct_conv1x1_sim(
                machine(), np.zeros((2, 4, 4), np.float32),
                np.zeros((2, 2, 3, 3), np.float32),
            )

    def test_stride2_uses_strided_loads(self):
        from repro.isa import OpClass

        m = machine()
        direct_conv1x1_sim(
            m, np.zeros((2, 8, 8), np.float32), np.zeros((2, 2, 1, 1), np.float32),
            stride=2,
        )
        assert OpClass.VLOAD_STRIDED in m.tracer.by_class

    @given(
        seed=st.integers(0, 10**6),
        c=st.integers(1, 8),
        k=st.integers(1, 12),
        stride=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_random(self, seed, c, k, stride):
        rng = np.random.default_rng(seed)
        h, w = rng.integers(stride, 20, size=2)
        x = rng.standard_normal((c, int(h), int(w))).astype(np.float32)
        wt = rng.standard_normal((k, c, 1, 1)).astype(np.float32)
        got = direct_conv1x1_sim(machine(), x, wt, stride=stride)
        ref = direct_conv2d(
            x.astype(np.float64), wt.astype(np.float64), stride=stride, pad=0
        )
        np.testing.assert_allclose(got, ref, rtol=1e-3, atol=1e-4)


class TestModelValidation:
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("c,k,h,w", [(3, 5, 9, 11), (8, 16, 12, 40)])
    def test_instruction_counts_exact(self, c, k, h, w, stride):
        m = machine()
        x = np.zeros((c, h, w), np.float32)
        wt = np.zeros((k, c, 1, 1), np.float32)
        direct_conv1x1_sim(m, x, wt, stride=stride)
        geom = Direct1x1Geometry(
            c_in=c, h=h, w=w, c_out=k, stride=stride, vlen_elems=16
        )
        model = {
            cl.value: n for cl, n in direct1x1_model(geom).instrs.items() if n
        }
        assert_counts_match(model, m.tracer.counts(), "direct1x1")


class TestPolicyIntegration:
    def spec(self, **kw):
        base = dict(name="p", c_in=64, h_in=28, w_in=28, c_out=32,
                    ksize=1, stride=1, pad=0)
        base.update(kw)
        return ConvLayerSpec(**base)

    def test_policy_off_by_default(self):
        assert choose_algorithm(self.spec()) is ConvAlgorithm.IM2COL_GEMM

    def test_policy_opt_in(self):
        assert (
            choose_algorithm(self.spec(), direct_1x1=True)
            is ConvAlgorithm.DIRECT
        )

    def test_policy_never_steals_winograd_layers(self):
        s = self.spec(ksize=3, pad=1)
        assert choose_algorithm(s, direct_1x1=True) is ConvAlgorithm.WINOGRAD

    def test_simulate_layer_direct(self):
        stats = simulate_layer(
            self.spec(), SystemConfig(), algorithm=ConvAlgorithm.DIRECT
        )
        assert stats.cycles > 0
        assert stats.flops == self.spec().flops

    def test_direct_beats_im2col_gemm_on_1x1(self):
        """The whole point: skipping the im2col copy saves traffic."""
        spec = self.spec(c_in=128, c_out=64, h_in=72, w_in=96)
        cfg = SystemConfig(vlen_bits=2048, l2_mb=1)
        d = simulate_layer(spec, cfg, algorithm=ConvAlgorithm.DIRECT)
        g = simulate_layer(spec, cfg, algorithm=ConvAlgorithm.IM2COL_GEMM)
        assert d.cycles < g.cycles
        assert d.dram_bytes < g.dram_bytes

    def test_direct_on_3x3_rejected(self):
        with pytest.raises(ConfigError):
            simulate_layer(
                self.spec(ksize=3, pad=1), SystemConfig(),
                algorithm=ConvAlgorithm.DIRECT,
            )
